//! The out-of-core dataset store: JSON-cache parse vs binary pack decode on
//! the same corpus, plus a streaming training epoch over a replicated
//! (~100x) pack to price the double-buffered shard prefetcher. Results land
//! in `BENCH_dataset.json` at the repo root, including the headline
//! `speedup_binary_vs_json_load`, `graphs_per_sec_ingest`,
//! `epoch_wall_s_100x` and `prefetch_stall_frac` entries.
//!
//! CI smoke mode: set `IRNUMA_BENCH_QUICK=1` to shrink the corpus (2 flag
//! sequences, 2 sampled calls, 20x replication) so the whole benchmark runs
//! in seconds. Regression gating lives in `irnuma bench-check` (rules in
//! `results/bench_baselines.json`): binary load must stay >= 3x the JSON
//! parse and the prefetch stall under 10% of the epoch wall; the bench
//! itself always exits zero so a noisy run can't mask the numbers.

use criterion::{black_box, Criterion};
use irnuma_core::{build_dataset, open_stream, pack_dataset, read_meta, Dataset, DatasetParams};
use irnuma_graph::Vocab;
use irnuma_nn::{GnnClassifier, GnnConfig, TrainParams};
use irnuma_sim::MicroArch;

fn main() {
    let quick = std::env::var("IRNUMA_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
    let (seqs, calls, samples, replicate) = if quick { (2, 2, 2, 20) } else { (4, 4, 20, 100) };

    let params = DatasetParams { num_sequences: seqs, calls, ..DatasetParams::default() };
    let ds = build_dataset(MicroArch::Skylake, &params);

    let root = std::env::temp_dir().join(format!("irnuma-bench-dataset-{}", std::process::id()));
    std::fs::create_dir_all(&root).expect("bench tmp dir");
    let json_path = root.join("dataset.json");
    let pack_dir = root.join("pack");
    ds.save_json(&json_path).expect("json cache");
    let summary = pack_dataset(&ds, &pack_dir, 64).expect("pack");

    let mut c = Criterion::default().configure_from_args();
    {
        let mut grp = c.benchmark_group("dataset");
        grp.sample_size(samples);
        // Both sides are measured to the same end state: a dataset whose
        // graphs are ready to train on. The JSON cache stores only edge
        // lists, so its cost includes materializing the CSR/CSC adjacency
        // the engines consume; the pack stores those views verbatim and
        // decodes them near-zero-copy.
        grp.bench_function("json_load", |b| {
            b.iter(|| {
                let ds = Dataset::load_json(black_box(&json_path)).expect("json load");
                for r in &ds.regions {
                    for g in &r.graphs {
                        black_box(g.csr());
                        black_box(g.csc());
                    }
                }
                black_box(ds)
            })
        });
        grp.bench_function("binary_load", |b| {
            b.iter(|| black_box(Dataset::load_auto(black_box(&pack_dir)).expect("binary load")))
        });
        grp.finish();
    }

    // Streaming epoch at ~100x the corpus: replicate the regions (the label
    // table replicates with them), pack, and drive one `fit_streaming`
    // epoch through the double-buffered loader. The stall fraction is the
    // loader's own `loader.prefetch_stall_ns` counter over the measured
    // wall — if decode overlapped compute perfectly it would be the
    // pipeline-fill cost of the first shard and nothing else.
    let mut big = ds.clone();
    // Keep the replicated corpus bounded: 8 regions x seqs x replicate
    // graphs is enough to amortize pipeline fill without packing gigabytes.
    big.regions.truncate(8);
    big.labels.truncate(8);
    let (base_regions, base_labels) = (big.regions.clone(), big.labels.clone());
    for _ in 1..replicate {
        big.regions.extend(base_regions.iter().cloned());
        big.labels.extend(base_labels.iter().cloned());
    }
    let big_dir = root.join("pack-big");
    let big_summary = pack_dataset(&big, &big_dir, 64).expect("pack 100x");
    let meta = read_meta(&big_dir).expect("pack meta");
    let train_seqs: Vec<usize> = (0..meta.sequences.len()).collect();
    let mut stream = open_stream(&big_dir, &meta, &train_seqs).expect("open stream");
    let mut clf = GnnClassifier::new(GnnConfig {
        vocab_size: Vocab::full().len(),
        hidden: 64,
        classes: meta.chosen_configs.len().max(2),
        layers: 2,
        layer_norm: true,
        seed: 1,
    });
    let p = TrainParams { epochs: 1, batch_size: 16, lr: 3e-3, seed: 17 };
    let stall_before = irnuma_obs::registry().counter("loader.prefetch_stall_ns").get();
    let t0 = std::time::Instant::now();
    clf.fit_streaming(&mut stream, p, None).expect("streaming epoch");
    let wall = t0.elapsed();
    let stall_ns = irnuma_obs::registry().counter("loader.prefetch_stall_ns").get() - stall_before;
    drop(stream);
    let stall_frac = stall_ns as f64 / wall.as_nanos().max(1) as f64;

    let medians = c.medians().to_vec();
    let get = |id: &str| {
        medians.iter().find(|(k, _)| k == id).map(|&(_, v)| v).expect("bench id present")
    };
    let json_ns = get("dataset/json_load");
    let bin_ns = get("dataset/binary_load");
    let speedup = json_ns / bin_ns;
    let graphs_per_sec = summary.graphs as f64 / (bin_ns / 1e9);

    let mut entries = medians.clone();
    entries.push(("dataset/speedup_binary_vs_json_load".into(), speedup));
    entries.push(("dataset/graphs_per_sec_ingest".into(), graphs_per_sec));
    entries.push(("dataset/epoch_wall_s_100x".into(), wall.as_secs_f64()));
    entries.push(("dataset/prefetch_stall_frac".into(), stall_frac));
    entries.push(("dataset/pack_graphs".into(), summary.graphs as f64));
    entries.push(("dataset/pack_bytes".into(), summary.bytes as f64));
    let path = irnuma_bench::write_bench_json("dataset", &entries).expect("write bench json");
    println!(
        "binary load {:.1} ms vs JSON {:.1} ms -> {speedup:.2}x ({graphs_per_sec:.0} graphs/s) -> {}",
        bin_ns / 1e6,
        json_ns / 1e6,
        path.display()
    );
    println!(
        "streaming epoch over {} graphs in {} shards: {:.2} s wall, prefetch stall {:.2}%",
        big.regions.len() * big.sequences.len(),
        big_summary.shards,
        wall.as_secs_f64(),
        stall_frac * 100.0
    );
    if speedup < 3.0 {
        eprintln!("warning: binary load only {speedup:.2}x faster than JSON (gate: >= 3x)");
    }
    if stall_frac >= 0.10 {
        eprintln!(
            "warning: prefetch stall {:.1}% of epoch wall exceeds the 10% budget",
            stall_frac * 100.0
        );
    }
    std::fs::remove_dir_all(&root).ok();
}
