//! Wall-time of the experiment harness itself: dataset construction
//! (steps A–C over all 56 regions) and one cross-validation fold of model
//! training — the units every figure is built from.

use criterion::{criterion_group, criterion_main, Criterion};
use irnuma_core::dataset::{build_dataset, DatasetParams};
use irnuma_core::models::static_gnn::{StaticModel, StaticParams};
use irnuma_core::models::DynamicModel;
use irnuma_ml::kfold;
use irnuma_sim::MicroArch;

fn bench_dataset(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("dataset_56regions_4seqs", |b| {
        b.iter(|| {
            build_dataset(
                MicroArch::Skylake,
                &DatasetParams { num_sequences: 4, calls: 3, ..Default::default() },
            )
        })
    });
    g.finish();
}

fn bench_fold(c: &mut Criterion) {
    let ds = build_dataset(
        MicroArch::Skylake,
        &DatasetParams { num_sequences: 4, calls: 3, ..Default::default() },
    );
    let folds = kfold(ds.regions.len(), 10, 1).expect("10 folds fit the region suite");
    let train: Vec<usize> = irnuma_ml::cv::train_indices(&folds, 0);
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("train_static_one_fold_h16_e5", |b| {
        b.iter(|| {
            StaticModel::train(
                &ds,
                &train,
                StaticParams { hidden: 16, epochs: 5, train_sequences: 2, ..Default::default() },
            )
        })
    });
    g.bench_function("train_dynamic_one_fold", |b| b.iter(|| DynamicModel::train(&ds, &train)));
    g.finish();
}

criterion_group!(benches, bench_dataset, bench_fold);
criterion_main!(benches);
