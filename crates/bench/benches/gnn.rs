//! Step D cost: RGCN forward, backward, and a full training epoch on
//! realistic region graphs.

use criterion::{criterion_group, criterion_main, Criterion};
use irnuma_graph::{build_module_graph, Vocab};
use irnuma_ir::extract::extract_region;
use irnuma_nn::{GnnClassifier, GnnConfig, GraphData, TrainParams};
use irnuma_workloads::all_regions;

fn region_graph(name: &str, vocab: &Vocab) -> GraphData {
    let spec = all_regions().into_iter().find(|r| r.name == name).unwrap();
    let m = spec.module();
    let e = extract_region(&m, &spec.region_fn()).unwrap();
    GraphData::from_graph(&build_module_graph(&e, vocab))
}

fn bench_forward_backward(c: &mut Criterion) {
    let vocab = Vocab::full();
    let g = region_graph("lulesh.calc_fb", &vocab);
    let model = GnnClassifier::new(GnnConfig {
        vocab_size: vocab.len(),
        hidden: 32,
        classes: 13,
        layers: 2,
        layer_norm: true,
        seed: 1,
    });
    let mut grp = c.benchmark_group("gnn");
    grp.bench_function("forward_predict", |b| b.iter(|| model.predict(std::hint::black_box(&g))));
    grp.bench_function("embedding", |b| b.iter(|| model.embedding(std::hint::black_box(&g))));
    grp.bench_function("loss_and_grads", |b| {
        b.iter(|| model.model.loss_and_grads(std::hint::black_box(&g), 3))
    });
    grp.finish();
}

fn bench_epoch(c: &mut Criterion) {
    let vocab = Vocab::full();
    let names = ["hotspot.temp", "cg.spmv", "bt.x_solve", "is.rank", "srad.update", "nw.fill"];
    let graphs: Vec<GraphData> = names.iter().map(|n| region_graph(n, &vocab)).collect();
    let labels: Vec<usize> = (0..graphs.len()).map(|i| i % 3).collect();
    let mut grp = c.benchmark_group("gnn_train");
    grp.sample_size(10);
    grp.bench_function("one_epoch_6_graphs_h32", |b| {
        b.iter(|| {
            let mut clf = GnnClassifier::new(GnnConfig {
                vocab_size: vocab.len(),
                hidden: 32,
                classes: 3,
                layers: 2,
                layer_norm: true,
                seed: 2,
            });
            clf.fit(&graphs, &labels, TrainParams { epochs: 1, batch_size: 6, lr: 1e-3, seed: 3 })
        })
    });
    grp.finish();
}

criterion_group!(benches, bench_forward_backward, bench_epoch);
criterion_main!(benches);
