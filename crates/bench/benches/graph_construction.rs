//! Step B cost: ProGraML graph construction and GNN-ready conversion.

use criterion::{criterion_group, criterion_main, Criterion};
use irnuma_graph::{build_module_graph, Vocab};
use irnuma_ir::extract::extract_region;
use irnuma_nn::GraphData;
use irnuma_workloads::all_regions;

fn bench_graphs(c: &mut Criterion) {
    let vocab = Vocab::full();
    let mut g = c.benchmark_group("graph");
    for name in ["hotspot.temp", "cg.spmv", "lulesh.calc_fb"] {
        let spec = all_regions().into_iter().find(|r| r.name == name).unwrap();
        let module = spec.module();
        let extracted = extract_region(&module, &spec.region_fn()).unwrap();
        g.bench_function(format!("extract/{name}"), |b| {
            b.iter(|| extract_region(std::hint::black_box(&module), &spec.region_fn()).unwrap())
        });
        g.bench_function(format!("build/{name}"), |b| {
            b.iter(|| build_module_graph(std::hint::black_box(&extracted), &vocab))
        });
        let graph = build_module_graph(&extracted, &vocab);
        g.bench_function(format!("to_gnn_data/{name}"), |b| {
            b.iter(|| GraphData::from_graph(std::hint::black_box(&graph)))
        });
    }
    g.finish();
}

fn bench_vocab(c: &mut Criterion) {
    c.bench_function("vocab/full_build", |b| b.iter(Vocab::full));
}

criterion_group!(benches, bench_graphs, bench_vocab);
criterion_main!(benches);
