//! The RGCN inference hot path at paper width (hidden = 256): tape-based
//! forward (the old `predict` path) vs the tape-free engine, per graph and
//! batched. Medians land in `BENCH_inference.json` at the repo root,
//! including the headline `speedup_batch_vs_tape` ratio.

use criterion::{black_box, Criterion};
use irnuma_graph::{build_module_graph, Vocab};
use irnuma_ir::extract::extract_region;
use irnuma_nn::{GnnConfig, GnnModel, GraphData, Scratch};
use irnuma_workloads::all_regions;

fn region_graphs(vocab: &Vocab, count: usize) -> Vec<GraphData> {
    all_regions()
        .iter()
        .take(count)
        .map(|spec| {
            let m = spec.module();
            let e = extract_region(&m, &spec.region_fn()).unwrap();
            GraphData::from_graph(&build_module_graph(&e, vocab))
        })
        .collect()
}

/// The pre-engine prediction path: full autograd tape per graph.
fn tape_predict(model: &GnnModel, g: &GraphData) -> usize {
    let f = model.forward(g);
    let l = f.tape.value(f.logits);
    l.data.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i).unwrap()
}

/// What downstream callers actually paid per region before the engine:
/// `predict` + `embedding` + `embedding_with_confidence`, each a separate
/// tape forward (label, flag-model features, router features).
fn tape_triple_forward(model: &GnnModel, g: &GraphData) -> (usize, Vec<f32>, Vec<f32>) {
    let label = tape_predict(model, g);
    let fe = model.forward(g);
    let pooled = fe.tape.value(fe.pooled).data.clone();
    let f = model.forward(g);
    let logits = f.tape.value(f.logits);
    let mut features = f.tape.value(f.pooled).data.clone();
    let max = logits.data.iter().cloned().fold(f32::MIN, f32::max);
    let exps: Vec<f32> = logits.data.iter().map(|v| (v - max).exp()).collect();
    let z: f32 = exps.iter().sum();
    let probs: Vec<f32> = exps.iter().map(|e| e / z).collect();
    let mut sorted = probs.clone();
    sorted.sort_by(|a, b| b.total_cmp(a));
    features.extend_from_slice(&probs);
    features.push(sorted[0] - sorted.get(1).copied().unwrap_or(0.0));
    (label, pooled, features)
}

fn main() {
    let vocab = Vocab::full();
    let graphs = region_graphs(&vocab, 8);
    let model = GnnModel::new(GnnConfig {
        vocab_size: vocab.len(),
        hidden: 256,
        classes: 13,
        layers: 2,
        layer_norm: true,
        seed: 1,
    });

    let mut c = Criterion::default().configure_from_args();
    {
        let mut grp = c.benchmark_group("inference");
        grp.sample_size(10);
        grp.bench_function("tape_triple_forward_loop_8_graphs_h256", |b| {
            b.iter(|| {
                graphs.iter().map(|g| tape_triple_forward(&model, black_box(g)).0).sum::<usize>()
            })
        });
        grp.bench_function("tape_single_forward_loop_8_graphs_h256", |b| {
            b.iter(|| graphs.iter().map(|g| tape_predict(&model, black_box(g))).sum::<usize>())
        });
        grp.bench_function("infer_serial_loop_8_graphs_h256", |b| {
            let mut scratch = Scratch::new();
            b.iter(|| {
                graphs
                    .iter()
                    .map(|g| model.infer_with(black_box(g), &mut scratch).label())
                    .sum::<usize>()
            })
        });
        grp.bench_function("infer_batch_8_graphs_h256", |b| {
            b.iter(|| model.infer_batch(black_box(&graphs)).len())
        });
        // Tracing overhead: the identical batched path with a live JSONL
        // sink (per-batch span + per-graph histogram records). The ratio
        // against the untraced bench above lands in the JSON and must stay
        // under 2%.
        let trace_path = std::env::temp_dir().join("irnuma-bench-inference-trace.jsonl");
        irnuma_obs::set_sink(std::sync::Arc::new(
            irnuma_obs::JsonlSink::create(&trace_path).expect("trace file"),
        ));
        grp.bench_function("infer_batch_traced_8_graphs_h256", |b| {
            b.iter(|| model.infer_batch(black_box(&graphs)).len())
        });
        irnuma_obs::clear_sink();
        std::fs::remove_file(&trace_path).ok();
        grp.finish();
    }

    let medians = c.medians().to_vec();
    let get = |id: &str| {
        medians.iter().find(|(k, _)| k == id).map(|&(_, v)| v).expect("bench id present")
    };
    let triple = get("inference/tape_triple_forward_loop_8_graphs_h256");
    let single = get("inference/tape_single_forward_loop_8_graphs_h256");
    let serial = get("inference/infer_serial_loop_8_graphs_h256");
    let batch = get("inference/infer_batch_8_graphs_h256");
    let traced = get("inference/infer_batch_traced_8_graphs_h256");

    let mut entries = medians.clone();
    entries.push(("inference/speedup_batch_vs_tape_triple".into(), triple / batch));
    entries.push(("inference/speedup_batch_vs_tape_single".into(), single / batch));
    entries.push(("inference/speedup_serial_vs_tape_single".into(), single / serial));
    entries.push(("inference/tracing_overhead_ratio".into(), traced / batch));
    let path = irnuma_bench::write_bench_json("inference", &entries).expect("write bench json");
    println!(
        "speedup vs triple-forward {:.2}x, vs single forward {:.2}x (serial {:.2}x) -> {}",
        triple / batch,
        single / batch,
        single / serial,
        path.display()
    );
    let overhead_pct = (traced / batch - 1.0) * 100.0;
    println!("tracing overhead on batched inference: {overhead_pct:+.2}% (budget <2%)");
    if overhead_pct >= 2.0 {
        eprintln!("warning: tracing overhead {overhead_pct:.2}% exceeds the 2% budget");
    }
}
