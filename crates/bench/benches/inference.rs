//! The RGCN inference hot path: tape-based forward (the old `predict` path)
//! vs the tape-free engine, per graph and batched, at the paper width
//! (hidden = 256) and the common small width (hidden = 64). The batched
//! path is also measured with shape-specialized kernel dispatch
//! force-disabled (`set_dispatch(false)`), giving the headline
//! `speedup_specialized_vs_generic_h{64,256}` ratios alongside
//! `speedup_batch_vs_tape`. Medians land in `BENCH_inference.json` at the
//! repo root.
//!
//! CI smoke mode: set `IRNUMA_BENCH_QUICK=1` to run only the h64
//! specialized-vs-generic pair with small sample counts. Regression gating
//! lives in `irnuma bench-check` (rules in `results/bench_baselines.json`),
//! which compares the written medians against the committed baselines; the
//! bench itself always exits zero so a noisy run can't mask the numbers.

use criterion::{black_box, Criterion};
use irnuma_graph::{build_module_graph, Vocab};
use irnuma_ir::extract::extract_region;
use irnuma_nn::{set_dispatch, GnnConfig, GnnModel, GraphData, Scratch};
use irnuma_workloads::all_regions;

fn region_graphs(vocab: &Vocab, count: usize) -> Vec<GraphData> {
    all_regions()
        .iter()
        .take(count)
        .map(|spec| {
            let m = spec.module();
            let e = extract_region(&m, &spec.region_fn()).unwrap();
            GraphData::from_graph(&build_module_graph(&e, vocab))
        })
        .collect()
}

/// The pre-engine prediction path: full autograd tape per graph.
fn tape_predict(model: &GnnModel, g: &GraphData) -> usize {
    let f = model.forward(g);
    let l = f.tape.value(f.logits);
    l.data.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i).unwrap()
}

/// What downstream callers actually paid per region before the engine:
/// `predict` + `embedding` + `embedding_with_confidence`, each a separate
/// tape forward (label, flag-model features, router features).
fn tape_triple_forward(model: &GnnModel, g: &GraphData) -> (usize, Vec<f32>, Vec<f32>) {
    let label = tape_predict(model, g);
    let fe = model.forward(g);
    let pooled = fe.tape.value(fe.pooled).data.clone();
    let f = model.forward(g);
    let logits = f.tape.value(f.logits);
    let mut features = f.tape.value(f.pooled).data.clone();
    let max = logits.data.iter().cloned().fold(f32::MIN, f32::max);
    let exps: Vec<f32> = logits.data.iter().map(|v| (v - max).exp()).collect();
    let z: f32 = exps.iter().sum();
    let probs: Vec<f32> = exps.iter().map(|e| e / z).collect();
    let mut sorted = probs.clone();
    sorted.sort_by(|a, b| b.total_cmp(a));
    features.extend_from_slice(&probs);
    features.push(sorted[0] - sorted.get(1).copied().unwrap_or(0.0));
    (label, pooled, features)
}

fn main() {
    let quick = std::env::var("IRNUMA_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
    let vocab = Vocab::full();
    let graphs = region_graphs(&vocab, 8);
    let mk = |hidden: usize| {
        GnnModel::new(GnnConfig {
            vocab_size: vocab.len(),
            hidden,
            classes: 13,
            layers: 2,
            layer_norm: true,
            seed: 1,
        })
    };
    let model64 = mk(64);
    let model256 = mk(256);

    let mut c = Criterion::default().configure_from_args();
    {
        let mut grp = c.benchmark_group("inference");
        grp.sample_size(if quick { 4 } else { 10 });
        if !quick {
            grp.bench_function("tape_triple_forward_loop_8_graphs_h256", |b| {
                b.iter(|| {
                    graphs
                        .iter()
                        .map(|g| tape_triple_forward(&model256, black_box(g)).0)
                        .sum::<usize>()
                })
            });
            grp.bench_function("tape_single_forward_loop_8_graphs_h256", |b| {
                b.iter(|| {
                    graphs.iter().map(|g| tape_predict(&model256, black_box(g))).sum::<usize>()
                })
            });
            grp.bench_function("infer_serial_loop_8_graphs_h256", |b| {
                let mut scratch = Scratch::new();
                b.iter(|| {
                    graphs
                        .iter()
                        .map(|g| model256.infer_with(black_box(g), &mut scratch).label())
                        .sum::<usize>()
                })
            });
        }
        grp.finish();
    }

    let medians = c.medians().to_vec();
    let get = |id: &str| {
        medians.iter().find(|(k, _)| k == id).map(|&(_, v)| v).expect("bench id present")
    };
    let mut entries = medians.clone();

    // The specialized-vs-generic pairs: the identical batched call with
    // kernel dispatch on (prepacked weights + monomorphized ISA-wide tiles)
    // and force-disabled (the pre-dispatch generic blocked kernels).
    // Measured as alternating on/off pairs — medians of the per-pair times
    // and ratios — because back-to-back medians drift by more than the
    // effect under measurement on a busy host; the toggle always sits
    // outside the timed region.
    let widths: &[(&GnnModel, &str)] =
        if quick { &[(&model64, "h64")] } else { &[(&model64, "h64"), (&model256, "h256")] };
    let pairs = if quick { 5 } else { 15 };
    for &(model, tag) in widths {
        let mut spec_ns = Vec::with_capacity(pairs);
        let mut generic_ns = Vec::with_capacity(pairs);
        let mut ratios = Vec::with_capacity(pairs);
        for i in 0..=pairs {
            set_dispatch(true);
            let t0 = std::time::Instant::now();
            black_box(model.infer_batch(black_box(&graphs)).len());
            let spec = t0.elapsed().as_secs_f64() * 1e9;
            set_dispatch(false);
            let t1 = std::time::Instant::now();
            black_box(model.infer_batch(black_box(&graphs)).len());
            let generic = t1.elapsed().as_secs_f64() * 1e9;
            set_dispatch(true);
            if i > 0 {
                // First pair is warmup (plan-cache fill, cold branches).
                spec_ns.push(spec);
                generic_ns.push(generic);
                ratios.push(generic / spec);
            }
        }
        let med = |v: &mut Vec<f64>| {
            v.sort_by(|a, b| a.total_cmp(b));
            v[v.len() / 2]
        };
        let (spec, generic) = (med(&mut spec_ns), med(&mut generic_ns));
        let ratio = med(&mut ratios);
        entries.push((format!("inference/infer_batch_8_graphs_{tag}"), spec));
        entries.push((format!("inference/infer_batch_generic_8_graphs_{tag}"), generic));
        entries.push((format!("inference/speedup_specialized_vs_generic_{tag}"), ratio));
        println!(
            "specialized vs generic batch ({tag}): {ratio:.2}x ({:.2} ms vs {:.2} ms)",
            spec / 1e6,
            generic / 1e6
        );
        if ratio < 1.0 {
            eprintln!("warning: specialized dispatch slower than generic at {tag} ({ratio:.2}x)");
        }
    }
    if !quick {
        // Tracing overhead: the identical batched path with a live JSONL
        // sink (per-batch span + per-graph histogram records), as alternating
        // untraced/traced pairs. The median per-pair ratio lands in the JSON
        // and must stay under 2%.
        let trace_path = std::env::temp_dir().join("irnuma-bench-inference-trace.jsonl");
        let sink =
            std::sync::Arc::new(irnuma_obs::JsonlSink::create(&trace_path).expect("trace file"));
        let mut trace_ratios = Vec::with_capacity(pairs);
        let mut batch_ns = Vec::with_capacity(pairs);
        for i in 0..=pairs {
            let t0 = std::time::Instant::now();
            black_box(model256.infer_batch(black_box(&graphs)).len());
            let plain = t0.elapsed().as_secs_f64();
            irnuma_obs::set_sink(sink.clone());
            let t1 = std::time::Instant::now();
            black_box(model256.infer_batch(black_box(&graphs)).len());
            let traced = t1.elapsed().as_secs_f64();
            irnuma_obs::clear_sink();
            if i > 0 {
                trace_ratios.push(traced / plain);
                batch_ns.push(plain * 1e9);
            }
        }
        std::fs::remove_file(&trace_path).ok();
        let med = |v: &mut Vec<f64>| {
            v.sort_by(|a, b| a.total_cmp(b));
            v[v.len() / 2]
        };
        let trace_ratio = med(&mut trace_ratios);
        let batch = med(&mut batch_ns);

        let triple = get("inference/tape_triple_forward_loop_8_graphs_h256");
        let single = get("inference/tape_single_forward_loop_8_graphs_h256");
        let serial = get("inference/infer_serial_loop_8_graphs_h256");
        entries.push(("inference/speedup_batch_vs_tape_triple".into(), triple / batch));
        entries.push(("inference/speedup_batch_vs_tape_single".into(), single / batch));
        entries.push(("inference/speedup_serial_vs_tape_single".into(), single / serial));
        entries.push(("inference/tracing_overhead_ratio".into(), trace_ratio));
        println!(
            "speedup vs triple-forward {:.2}x, vs single forward {:.2}x (serial {:.2}x)",
            triple / batch,
            single / batch,
            single / serial,
        );
        let overhead_pct = (trace_ratio - 1.0) * 100.0;
        println!("tracing overhead on batched inference: {overhead_pct:+.2}% (budget <2%)");
        if overhead_pct >= 2.0 {
            eprintln!("warning: tracing overhead {overhead_pct:.2}% exceeds the 2% budget");
        }
    }
    let path = irnuma_bench::write_bench_json("inference", &entries).expect("write bench json");
    println!("wrote {} — gate with `irnuma bench-check`", path.display());
}
