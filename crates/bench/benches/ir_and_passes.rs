//! Substrate benchmarks: IR text round-trip and the middle-end passes
//! (step A's augmentation cost is `sequences × regions × pipeline-run`).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use irnuma_ir::{parse_module, print_module};
use irnuma_passes::{o3_sequence, sample_sequences, PassManager, SampleParams};
use irnuma_workloads::all_regions;

fn region_module(name: &str) -> irnuma_ir::Module {
    all_regions().into_iter().find(|r| r.name == name).expect("region exists").module()
}

fn bench_print_parse(c: &mut Criterion) {
    let m = region_module("cfd.compute_flux");
    let text = print_module(&m);
    c.bench_function("ir/print_module", |b| b.iter(|| print_module(std::hint::black_box(&m))));
    c.bench_function("ir/parse_module", |b| {
        b.iter(|| parse_module(std::hint::black_box(&text)).unwrap())
    });
}

fn bench_passes(c: &mut Criterion) {
    let m = region_module("lulesh.calc_fb");
    let pm = PassManager::new(false);
    let mut g = c.benchmark_group("passes");
    for pass in
        ["dce", "constprop", "gvn", "instcombine", "simplifycfg", "licm", "loop-unroll", "inline"]
    {
        g.bench_function(pass, |b| {
            b.iter_batched(
                || m.clone(),
                |mut module| pm.run(&mut module, &[pass.to_string()]).unwrap(),
                BatchSize::SmallInput,
            )
        });
    }
    g.bench_function("o3_pipeline", |b| {
        let seq: Vec<String> = o3_sequence().iter().map(|s| s.to_string()).collect();
        b.iter_batched(
            || m.clone(),
            |mut module| pm.run(&mut module, &seq).unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_augmentation(c: &mut Criterion) {
    // One region through one sampled flag sequence: the unit of step A.
    let m = region_module("cg.spmv");
    let seqs = sample_sequences(4, 9, SampleParams::default());
    let pm = PassManager::new(false);
    c.bench_function("stepA/one_region_one_sequence", |b| {
        b.iter_batched(
            || m.clone(),
            |mut module| pm.run(&mut module, &seqs[0].passes).unwrap(),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_print_parse, bench_passes, bench_augmentation);
criterion_main!(benches);
