//! Step C cost: the NUMA/prefetch simulator — single calls, full-space
//! sweeps (288/320 configurations), and the exhaustive best search.

use criterion::{criterion_group, criterion_main, Criterion};
use irnuma_sim::{
    config_space, default_config, exhaustive_best, simulate, sweep_region, Machine, MicroArch,
};
use irnuma_workloads::{all_regions, InputSize};

fn bench_simulate(c: &mut Criterion) {
    let m = Machine::new(MicroArch::Skylake);
    let cfg = default_config(&m);
    let r = all_regions().into_iter().find(|r| r.name == "cg.spmv").unwrap();
    c.bench_function("sim/one_call", |b| {
        b.iter(|| {
            simulate(&r.name, &r.profile, &m, std::hint::black_box(&cfg), InputSize::Size1, 0)
        })
    });
}

fn bench_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_sweep");
    g.sample_size(20);
    for arch in [MicroArch::Skylake, MicroArch::SandyBridge] {
        let m = Machine::new(arch);
        let r = all_regions().into_iter().find(|r| r.name == "bt.x_solve").unwrap();
        let n = config_space(&m).len();
        g.bench_function(format!("{arch:?}_{n}_configs"), |b| {
            b.iter(|| sweep_region(std::hint::black_box(&r), &m, InputSize::Size1, 3))
        });
    }
    g.finish();
}

fn bench_exhaustive(c: &mut Criterion) {
    let m = Machine::new(MicroArch::Skylake);
    let r = all_regions().into_iter().find(|r| r.name == "is.rank").unwrap();
    let mut g = c.benchmark_group("sim_best");
    g.sample_size(20);
    g.bench_function("exhaustive_best_10calls", |b| {
        b.iter(|| exhaustive_best(std::hint::black_box(&r), &m, InputSize::Size1, 10))
    });
    g.finish();
}

criterion_group!(benches, bench_simulate, bench_sweep, bench_exhaustive);
criterion_main!(benches);
