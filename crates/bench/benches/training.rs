//! The RGCN training hot path at paper width (hidden = 256): one epoch over
//! 8 region graphs through the autograd tape (the old `fit` path) vs the
//! tape-free fused forward+backward engine, plus paired-run measurements
//! of the live-tracing overhead and the kernel-dispatch payoff on the
//! fused path. Results land in `BENCH_training.json` at the repo root,
//! including the headline `speedup_fused_vs_tape`,
//! `speedup_specialized_vs_generic` and `tracing_overhead_ratio` entries.
//!
//! CI smoke mode: set `IRNUMA_BENCH_QUICK=1` to shrink the model (h64) and
//! sample counts so the whole benchmark runs in seconds. Regression gating
//! lives in `irnuma bench-check` (rules in `results/bench_baselines.json`);
//! the bench itself always exits zero so a noisy run can't mask the
//! numbers.

use criterion::{black_box, Criterion};
use irnuma_graph::{build_module_graph, Vocab};
use irnuma_ir::extract::extract_region;
use irnuma_nn::{set_dispatch, GnnClassifier, GnnConfig, GraphData, TrainEngine, TrainParams};
use irnuma_workloads::all_regions;

fn region_graphs(vocab: &Vocab, count: usize) -> Vec<GraphData> {
    all_regions()
        .iter()
        .take(count)
        .map(|spec| {
            let m = spec.module();
            let e = extract_region(&m, &spec.region_fn()).unwrap();
            GraphData::from_graph(&build_module_graph(&e, vocab))
        })
        .collect()
}

/// One full training epoch (shuffle, minibatch gradients, Adam steps)
/// through the chosen engine, on a fresh clone of the untrained classifier
/// so every iteration optimizes from the same starting weights.
fn one_epoch(
    clf: &GnnClassifier,
    graphs: &[GraphData],
    labels: &[usize],
    p: TrainParams,
    engine: TrainEngine,
) -> f64 {
    let mut clf = clf.clone();
    let hist = clf.fit_with_engine(graphs, labels, p, None, engine).expect("no checkpoint I/O");
    hist[0]
}

fn main() {
    let quick = std::env::var("IRNUMA_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
    let (hidden, samples) = if quick { (64, 2) } else { (256, 40) };

    let vocab = Vocab::full();
    let graphs = region_graphs(&vocab, 8);
    let labels: Vec<usize> = (0..graphs.len()).map(|i| i % 13).collect();
    let clf = GnnClassifier::new(GnnConfig {
        vocab_size: vocab.len(),
        hidden,
        classes: 13,
        layers: 2,
        layer_norm: true,
        seed: 1,
    });
    let p = TrainParams { epochs: 1, batch_size: 4, lr: 3e-3, seed: 17 };

    let mut c = Criterion::default().configure_from_args();
    {
        let mut grp = c.benchmark_group("training");
        grp.sample_size(samples);
        grp.bench_function("tape_epoch_8_graphs", |b| {
            b.iter(|| one_epoch(&clf, black_box(&graphs), &labels, p, TrainEngine::TapeReference))
        });
        grp.bench_function("fused_epoch_8_graphs", |b| {
            b.iter(|| one_epoch(&clf, black_box(&graphs), &labels, p, TrainEngine::Fused))
        });
        grp.finish();
    }

    // Tracing overhead: the identical fused epoch with a live JSONL sink
    // must stay under the gate. With a sink installed, causal tracing is
    // fully on: epoch/batch root spans PLUS the per-worker fan-out spans
    // (`train.graph_grads` inheriting the epoch's trace context across the
    // rayon boundary), so this ratio prices the whole propagation machinery,
    // not just the top-level spans. Measured as alternating untraced/traced
    // pairs — the median of the per-pair ratios — because back-to-back
    // criterion medians drift by more than the effect being measured on a
    // busy host.
    let trace_path = std::env::temp_dir().join("irnuma-bench-training-trace.jsonl");
    let sink = std::sync::Arc::new(irnuma_obs::JsonlSink::create(&trace_path).expect("trace file"));
    let pairs = if quick { 3 } else { 15 };
    let mut ratios = Vec::with_capacity(pairs);
    for i in 0..=pairs {
        let t0 = std::time::Instant::now();
        black_box(one_epoch(&clf, black_box(&graphs), &labels, p, TrainEngine::Fused));
        let plain = t0.elapsed().as_secs_f64();
        irnuma_obs::set_sink(sink.clone());
        let t1 = std::time::Instant::now();
        black_box(one_epoch(&clf, black_box(&graphs), &labels, p, TrainEngine::Fused));
        let traced = t1.elapsed().as_secs_f64();
        irnuma_obs::clear_sink();
        if i > 0 {
            // First pair is warmup (sink setup, cold branches).
            ratios.push(traced / plain);
        }
    }
    std::fs::remove_file(&trace_path).ok();
    ratios.sort_by(|a, b| a.total_cmp(b));
    let overhead_ratio = ratios[ratios.len() / 2];

    // Kernel-dispatch payoff on training: the identical fused epoch with
    // shape specialization + weight prepacking on vs force-disabled, again
    // as alternating pairs (median of per-pair generic/specialized ratios)
    // so host drift cancels out.
    let mut spec_ratios = Vec::with_capacity(pairs);
    for i in 0..=pairs {
        set_dispatch(true);
        let t0 = std::time::Instant::now();
        black_box(one_epoch(&clf, black_box(&graphs), &labels, p, TrainEngine::Fused));
        let specialized = t0.elapsed().as_secs_f64();
        set_dispatch(false);
        let t1 = std::time::Instant::now();
        black_box(one_epoch(&clf, black_box(&graphs), &labels, p, TrainEngine::Fused));
        let generic = t1.elapsed().as_secs_f64();
        set_dispatch(true);
        if i > 0 {
            // First pair is warmup (plan-cache fill, cold branches).
            spec_ratios.push(generic / specialized);
        }
    }
    spec_ratios.sort_by(|a, b| a.total_cmp(b));
    let spec_speedup = spec_ratios[spec_ratios.len() / 2];

    let medians = c.medians().to_vec();
    let get = |id: &str| {
        medians.iter().find(|(k, _)| k == id).map(|&(_, v)| v).expect("bench id present")
    };
    let tape = get("training/tape_epoch_8_graphs");
    let fused = get("training/fused_epoch_8_graphs");

    let speedup = tape / fused;
    let mut entries = medians.clone();
    entries.push(("training/speedup_fused_vs_tape".into(), speedup));
    entries.push(("training/speedup_specialized_vs_generic".into(), spec_speedup));
    entries.push(("training/tracing_overhead_ratio".into(), overhead_ratio));
    entries.push(("training/epochs_per_sec_fused".into(), 1e9 / fused));
    entries.push(("training/hidden".into(), hidden as f64));
    let path = irnuma_bench::write_bench_json("training", &entries).expect("write bench json");
    println!(
        "fused epoch {:.1} ms vs tape {:.1} ms -> {speedup:.2}x speedup (h{hidden}) -> {}",
        fused / 1e6,
        tape / 1e6,
        path.display()
    );
    println!("kernel dispatch on fused training: {spec_speedup:.2}x vs generic kernels");
    if spec_speedup < 1.0 {
        eprintln!(
            "warning: specialized dispatch slower than generic on training ({spec_speedup:.2}x)"
        );
    }
    // Budget mirrors the training/tracing_overhead_ratio gate in
    // results/bench_baselines.json (<= 1.10): training epochs are short in
    // quick mode, so the per-worker fan-out spans weigh more than on the
    // long-latency inference path (whose gate stays at 1.02).
    let overhead_pct = (overhead_ratio - 1.0) * 100.0;
    println!("tracing overhead on fused training: {overhead_pct:+.2}% (budget <10%)");
    if overhead_pct >= 10.0 {
        eprintln!("warning: tracing overhead {overhead_pct:.2}% exceeds the 10% budget");
    }
    if speedup < 1.0 {
        eprintln!("warning: fused engine slower than the tape ({speedup:.2}x)");
    }
}
