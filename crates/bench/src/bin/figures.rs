//! Regenerates the paper's evaluation figures.
//!
//! ```text
//! figures -- all                 # every figure, CSVs under results/
//! figures -- fig3 fig9           # a subset
//! figures -- summary             # headline numbers only
//! figures -- --smoke all         # tiny settings (CI)
//! figures -- --flags 200 all     # override the number of flag sequences
//! ```

use irnuma_bench::{paper_scale_config, smoke_config, standard_config};
use irnuma_core::dataset::build_dataset;
use irnuma_core::evaluation::{evaluate, evaluate_on, Evaluation, PipelineConfig};
use irnuma_core::experiments::*;
use irnuma_sim::MicroArch;
use std::collections::HashSet;
use std::path::Path;
use std::time::Instant;

use irnuma_obs::info;

struct Args {
    figs: HashSet<String>,
    smoke: bool,
    paper_scale: bool,
    flags_override: Option<usize>,
    epochs_override: Option<usize>,
    hidden_override: Option<usize>,
}

fn parse_args() -> Args {
    let mut args = Args {
        figs: HashSet::new(),
        smoke: false,
        paper_scale: false,
        flags_override: None,
        epochs_override: None,
        hidden_override: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--paper-scale" => args.paper_scale = true,
            "--flags" => {
                args.flags_override = it.next().and_then(|v| v.parse().ok());
            }
            "--epochs" => {
                args.epochs_override = it.next().and_then(|v| v.parse().ok());
            }
            "--hidden" => {
                args.hidden_override = it.next().and_then(|v| v.parse().ok());
            }
            other => {
                args.figs.insert(other.to_string());
            }
        }
    }
    if args.figs.is_empty() {
        args.figs.insert("summary".to_string());
    }
    args
}

fn config_for(args: &Args, arch: MicroArch) -> PipelineConfig {
    let mut cfg = if args.smoke {
        smoke_config(arch)
    } else if args.paper_scale {
        paper_scale_config(arch)
    } else {
        standard_config(arch)
    };
    if let Some(f) = args.flags_override {
        cfg.dataset.num_sequences = f;
    }
    if let Some(e) = args.epochs_override {
        cfg.static_params.epochs = e;
    }
    if let Some(h) = args.hidden_override {
        cfg.static_params.hidden = h;
    }
    cfg
}

fn main() {
    let _obs = irnuma_obs::init(irnuma_obs::Level::Info);
    let args = parse_args();
    let out_dir = Path::new("results");
    let want = |f: &str| {
        let extension = matches!(f, "ablations" | "input-sensitivity" | "cost-comparison");
        args.figs.contains(f)
            || (!extension && args.figs.contains("all"))
            || args.figs.contains("everything")
    };

    let t0 = Instant::now();
    // Figures 3/4/5/8/9/11/12 and the summary all consume full evaluations.
    let need_skl = ["fig3", "fig4", "fig5", "fig7", "fig8", "fig9", "fig11", "fig12", "summary"]
        .iter()
        .any(|f| want(f));
    let need_snb = ["fig5", "fig8", "fig11", "summary"].iter().any(|f| want(f));

    let skl_cfg = config_for(&args, MicroArch::Skylake);
    let snb_cfg = config_for(&args, MicroArch::SandyBridge);

    let skl: Option<Evaluation> = need_skl.then(|| {
        info!("[figures] evaluating Skylake pipeline…");
        evaluate(&skl_cfg).expect("Skylake pipeline evaluates")
    });
    let snb: Option<Evaluation> = need_snb.then(|| {
        info!("[figures] evaluating Sandy Bridge pipeline…");
        evaluate(&snb_cfg).expect("Sandy Bridge pipeline evaluates")
    });

    let emit = |report: irnuma_core::experiments::FigureReport| {
        println!("{report}");
        match report.write_csv(out_dir) {
            Ok(p) => info!("[figures] wrote {}", p.display()),
            Err(e) => irnuma_obs::warn!("[figures] CSV write failed: {e}"),
        }
    };

    if want("fig3") {
        emit(fig3::run(skl.as_ref().unwrap()).report());
    }
    if want("fig4") {
        emit(fig4::run(skl.as_ref().unwrap()).report());
    }
    if want("fig5") {
        emit(fig5::run(skl.as_ref().unwrap(), snb.as_ref().unwrap()).report());
    }
    if want("fig6") {
        for arch in [MicroArch::Skylake, MicroArch::SandyBridge] {
            info!("[figures] fig6 label sweep on {arch:?}…");
            let mut cfg = config_for(&args, arch);
            cfg.light = true; // only static/dynamic needed for the sweep
            let ds = build_dataset(arch, &cfg.dataset);
            let (fig, _) = fig6::run(&cfg, &ds, &[2, 6, 13]);
            emit(fig.report());
        }
    }
    if want("fig7") {
        // Skylake, 6 labels (re-label + re-evaluate).
        info!("[figures] fig7 (Skylake, 6 labels)…");
        let ds = build_dataset(MicroArch::Skylake, &skl_cfg.dataset);
        let mut cfg6 = skl_cfg;
        cfg6.light = true;
        let eval6 =
            evaluate_on(&cfg6, fig6::relabel(&ds, 6)).expect("relabeled pipeline evaluates");
        emit(fig7::run(&eval6).report());
    }
    if want("fig8") {
        emit(fig8::run(skl.as_ref().unwrap(), snb.as_ref().unwrap()).report());
    }
    if want("fig9") {
        emit(fig9::run(skl.as_ref().unwrap()).report());
    }
    if want("fig10") {
        emit(fig10::run(if args.smoke { 3 } else { 10 }).report());
    }
    if want("fig11") {
        emit(fig11::run(&[skl.as_ref().unwrap(), snb.as_ref().unwrap()]).report());
    }
    if want("fig12") {
        emit(fig12::run(skl.as_ref().unwrap(), 4, if args.smoke { 12 } else { 30 }).report());
    }
    if want("ablations") {
        info!("[figures] ablations (Skylake, 3-fold)…");
        let cfg = config_for(&args, MicroArch::Skylake);
        let ds = build_dataset(MicroArch::Skylake, &cfg.dataset);
        emit(ablations::run(&ds, cfg.static_params).report());
    }
    if want("cost-comparison") {
        let cc = cost_comparison::run();
        match cc.write_json(out_dir) {
            Ok(p) => info!("[figures] wrote {}", p.display()),
            Err(e) => irnuma_obs::warn!("[figures] JSON write failed: {e}"),
        }
        emit(cc.report());
    }
    if want("input-sensitivity") {
        info!("[figures] input-sensitivity extension (Xeon Gold)…");
        let cfg = config_for(&args, MicroArch::Skylake);
        let ds = build_dataset(MicroArch::Skylake, &cfg.dataset);
        emit(
            input_sensitivity::run(&ds, cfg.static_params, 0.05, if args.smoke { 3 } else { 8 })
                .report(),
        );
    }

    if want("summary") {
        let mut r = FigureReport::new(
            "summary",
            "Headline paper-vs-measured numbers",
            &["metric", "skylake", "sandy_bridge", "paper"],
        );
        let (s, b) = (skl.as_ref().unwrap(), snb.as_ref().unwrap());
        let f = |v: f64| format!("{v:.3}");
        r.push_row(vec![
            "full_exploration_speedup".into(),
            f(s.full_exploration_speedup()),
            f(b.full_exploration_speedup()),
            ">2x (avg)".into(),
        ]);
        r.push_row(vec![
            "label_set_coverage".into(),
            f(s.dataset.label_coverage()),
            f(b.dataset.label_coverage()),
            "~99%".into(),
        ]);
        r.push_row(vec![
            "static_speedup".into(),
            f(s.static_speedup()),
            f(b.static_speedup()),
            "~80% of dynamic".into(),
        ]);
        r.push_row(vec![
            "dynamic_speedup".into(),
            f(s.dynamic_speedup()),
            f(b.dynamic_speedup()),
            "reference".into(),
        ]);
        let ratio =
            |e: &Evaluation| (e.static_speedup() - 1.0) / (e.dynamic_speedup() - 1.0).max(1e-9);
        r.push_row(vec![
            "static/dynamic gain ratio".into(),
            f(ratio(s)),
            f(ratio(b)),
            "~0.8".into(),
        ]);
        r.push_row(vec![
            "hybrid_speedup".into(),
            f(s.hybrid_speedup()),
            f(b.hybrid_speedup()),
            "~dynamic".into(),
        ]);
        r.push_row(vec![
            "profiled_fraction".into(),
            f(s.profiled_fraction()),
            f(b.profiled_fraction()),
            "~30%".into(),
        ]);
        r.push_row(vec![
            "router_accuracy".into(),
            f(s.route_accuracy()),
            f(b.route_accuracy()),
            "~92%".into(),
        ]);
        r.push_row(vec![
            "static_label_accuracy".into(),
            f(s.static_label_accuracy()),
            f(b.static_label_accuracy()),
            "(13 labels)".into(),
        ]);
        emit(r);
    }

    info!("[figures] done in {:.1}s", t0.elapsed().as_secs_f64());
}
