//! # irnuma-bench — benchmark harness and figure regeneration
//!
//! * `cargo run -p irnuma-bench --release --bin figures -- all` regenerates
//!   every evaluation figure of the paper (Fig. 3–12), printing the rows and
//!   writing CSVs under `results/`.
//! * The Criterion benches (`cargo bench`) measure the substrates: IR passes
//!   and flag pipelines, graph construction, the simulator sweep, GNN
//!   forward/backward, plus a per-figure wall-time bench.
//!
//! This library exposes the preset pipeline configurations shared by the
//! binary and the benches.

use irnuma_core::dataset::DatasetParams;
use irnuma_core::evaluation::PipelineConfig;
use irnuma_core::models::static_gnn::StaticParams;
use irnuma_sim::MicroArch;

/// The default experiment scale: large enough for paper-shaped results,
/// small enough to run all figures in minutes on a laptop.
pub fn standard_config(arch: MicroArch) -> PipelineConfig {
    PipelineConfig {
        arch,
        dataset: DatasetParams { num_sequences: 48, calls: 6, ..Default::default() },
        folds: 10,
        static_params: StaticParams {
            hidden: 32,
            epochs: 20,
            train_sequences: 10,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Paper-scale settings (1000 sequences, 256-wide embeddings). Hours, not
/// minutes; exposed for completeness via `figures --paper-scale`.
pub fn paper_scale_config(arch: MicroArch) -> PipelineConfig {
    PipelineConfig {
        arch,
        dataset: DatasetParams { num_sequences: 1000, calls: 10, ..Default::default() },
        folds: 10,
        static_params: StaticParams {
            hidden: 256,
            epochs: 30,
            train_sequences: 24,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Tiny settings for smoke tests and the figures bench.
pub fn smoke_config(arch: MicroArch) -> PipelineConfig {
    PipelineConfig {
        arch,
        dataset: DatasetParams { num_sequences: 6, calls: 3, ..Default::default() },
        folds: 4,
        static_params: StaticParams {
            hidden: 16,
            epochs: 6,
            train_sequences: 3,
            ..Default::default()
        },
        ..Default::default()
    }
}
