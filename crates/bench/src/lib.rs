//! # irnuma-bench — benchmark harness and figure regeneration
//!
//! * `cargo run -p irnuma-bench --release --bin figures -- all` regenerates
//!   every evaluation figure of the paper (Fig. 3–12), printing the rows and
//!   writing CSVs under `results/`.
//! * The Criterion benches (`cargo bench`) measure the substrates: IR passes
//!   and flag pipelines, graph construction, the simulator sweep, GNN
//!   forward/backward, plus a per-figure wall-time bench.
//!
//! This library exposes the preset pipeline configurations shared by the
//! binary and the benches.

use irnuma_core::dataset::DatasetParams;
use irnuma_core::evaluation::PipelineConfig;
use irnuma_core::models::static_gnn::StaticParams;
use irnuma_sim::MicroArch;
use std::path::{Path, PathBuf};

/// Write benchmark medians as `BENCH_<name>.json` at the repository root —
/// a flat `{"id": median_ns}` object, written by bench binaries with a
/// hand-written `main` from `Criterion::medians()` (plus any derived
/// metrics, e.g. speedups). Also appends one timestamped line per run to
/// `results/bench_history.jsonl` so trends survive the overwrite of the
/// snapshot file. Returns the snapshot path written.
pub fn write_bench_json(name: &str, entries: &[(String, f64)]) -> std::io::Result<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join(format!("BENCH_{name}.json"));
    let mut body = String::from("{\n");
    for (i, (id, v)) in entries.iter().enumerate() {
        let sep = if i + 1 == entries.len() { "" } else { "," };
        body.push_str(&format!("  \"{id}\": {v:.3}{sep}\n"));
    }
    body.push_str("}\n");
    irnuma_store::atomic_write(&path, body.as_bytes())?;
    append_bench_history(&root, name, entries)?;
    Ok(path)
}

/// Append one `{"ts_ns":…,"bench":name,"entries":{…}}` line to
/// `results/bench_history.jsonl`. The file is append-only on purpose:
/// `BENCH_*.json` holds only the latest run, while the history accumulates
/// every run for trend plots and regression forensics.
fn append_bench_history(root: &Path, name: &str, entries: &[(String, f64)]) -> std::io::Result<()> {
    use std::io::Write;
    let ts_ns = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let mut line = format!("{{\"ts_ns\":{ts_ns},\"bench\":\"{name}\",\"entries\":{{");
    for (i, (id, v)) in entries.iter().enumerate() {
        let sep = if i + 1 == entries.len() { "" } else { "," };
        line.push_str(&format!("\"{id}\":{v:.3}{sep}"));
    }
    line.push_str("}}\n");
    let dir = root.join("results");
    std::fs::create_dir_all(&dir)?;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(dir.join("bench_history.jsonl"))?;
    f.write_all(line.as_bytes())
}

/// The default experiment scale: large enough for paper-shaped results,
/// small enough to run all figures in minutes on a laptop.
pub fn standard_config(arch: MicroArch) -> PipelineConfig {
    PipelineConfig {
        arch,
        dataset: DatasetParams { num_sequences: 48, calls: 6, ..Default::default() },
        folds: 10,
        static_params: StaticParams {
            hidden: 32,
            epochs: 20,
            train_sequences: 10,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Paper-scale settings (1000 sequences, 256-wide embeddings). Hours, not
/// minutes; exposed for completeness via `figures --paper-scale`.
pub fn paper_scale_config(arch: MicroArch) -> PipelineConfig {
    PipelineConfig {
        arch,
        dataset: DatasetParams { num_sequences: 1000, calls: 10, ..Default::default() },
        folds: 10,
        static_params: StaticParams {
            hidden: 256,
            epochs: 30,
            train_sequences: 24,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Tiny settings for smoke tests and the figures bench.
pub fn smoke_config(arch: MicroArch) -> PipelineConfig {
    PipelineConfig {
        arch,
        dataset: DatasetParams { num_sequences: 6, calls: 3, ..Default::default() },
        folds: 4,
        static_params: StaticParams {
            hidden: 16,
            epochs: 6,
            train_sequences: 3,
            ..Default::default()
        },
        ..Default::default()
    }
}
