//! Diagnostic: how stable is the "static model needs profiling" set across
//! model seeds? If it is mostly model noise, no router can learn it.

use irnuma_core::dataset::{build_dataset, DatasetParams};
use irnuma_core::models::hybrid::static_needs_profiling;
use irnuma_core::models::static_gnn::{StaticModel, StaticParams};
use irnuma_ml::kfold;
use irnuma_sim::MicroArch;

fn main() {
    let ds = build_dataset(
        MicroArch::Skylake,
        &DatasetParams { num_sequences: 48, calls: 6, ..Default::default() },
    );
    let folds = kfold(ds.regions.len(), 10, 0xF01D).expect("10 folds fit the region suite");
    let mut sets: Vec<Vec<bool>> = Vec::new();
    for seed in [1u64, 2, 3] {
        let mut needs = vec![false; ds.regions.len()];
        let mut errs = vec![0.0; ds.regions.len()];
        let mut correct = 0usize;
        for (fi, val) in folds.iter().enumerate() {
            let train: Vec<usize> = irnuma_ml::cv::train_indices(&folds, fi);
            let sm = StaticModel::train(
                &ds,
                &train,
                StaticParams { epochs: 14, hidden: 32, seed, ..Default::default() },
            );
            for &r in val {
                needs[r] = static_needs_profiling(&ds, &sm, r, 0.2);
                let pred = sm.predict(&ds, r);
                errs[r] = irnuma_ml::relative_difference(
                    ds.regions[r].full_best_time(),
                    ds.label_time(r, pred),
                );
                if pred == ds.labels[r] {
                    correct += 1;
                }
            }
        }
        let count = needs.iter().filter(|&&n| n).count();
        println!("seed {seed}: needs={count}/56, label acc={:.2}", correct as f64 / 56.0);
        sets.push(needs);
    }
    // Pairwise overlap.
    for a in 0..sets.len() {
        for b in a + 1..sets.len() {
            let agree = sets[a].iter().zip(&sets[b]).filter(|(x, y)| x == y).count();
            println!("seeds {a}-{b}: agreement {agree}/56");
        }
    }
    // Which regions are consistently hard?
    println!("always-needs regions:");
    for r in 0..ds.regions.len() {
        if sets.iter().all(|s| s[r]) {
            println!(
                "  {} (dyn_sens={:.2}, shape={:?})",
                ds.regions[r].spec.name,
                ds.regions[r].spec.profile.dynamic_sensitivity,
                ds.regions[r].spec.shape
            );
        }
    }
    println!("sometimes-needs regions:");
    for r in 0..ds.regions.len() {
        let c = sets.iter().filter(|s| s[r]).count();
        if c > 0 && c < sets.len() {
            println!("  {} ({}/{})", ds.regions[r].spec.name, c, sets.len());
        }
    }

    // Router variants: GA-10 dims vs all dims, trained on honest labels.
    use irnuma_core::models::hybrid::inner_cv_needs_labels;
    use irnuma_ml::{DecisionTree, TreeParams};
    let sp = StaticParams { epochs: 14, hidden: 32, seed: 1, ..Default::default() };
    for use_all_dims in [true, false] {
        let mut hit = 0usize;
        let mut profiled = 0usize;
        for (fi, val) in folds.iter().enumerate() {
            let train: Vec<usize> = irnuma_ml::cv::train_indices(&folds, fi);
            let sm = StaticModel::train(&ds, &train, sp);
            let (emb, y) = inner_cv_needs_labels(&ds, &train, 0.2, 5, sp);
            let tree = if use_all_dims {
                DecisionTree::fit(&emb, &y, TreeParams { max_depth: Some(3), ..Default::default() })
            } else {
                let hp = irnuma_core::models::hybrid::HybridParams::default();
                let hm = irnuma_core::models::HybridModel::train(&ds, &sm, &train, hp, sp);
                let _ = fi;
                // route with the real hybrid model below instead
                for &r in val {
                    let truth = static_needs_profiling(&ds, &sm, r, 0.2);
                    let pred = hm.route_to_dynamic(&ds, &sm, r);
                    profiled += pred as usize;
                    hit += (pred == truth) as usize;
                }
                continue;
            };
            for &r in val {
                let truth = static_needs_profiling(&ds, &sm, r, 0.2);
                let e = sm.router_features(&ds, r);
                let pred = tree.predict(&e) == 1;
                profiled += pred as usize;
                hit += (pred == truth) as usize;
            }
        }
        println!(
            "router({}): accuracy {}/56, profiled {}",
            if use_all_dims { "all-dims" } else { "ga-10" },
            hit,
            profiled
        );
    }
}
