//! Declarative benchmark regression gating (`irnuma bench-check`).
//!
//! The committed baseline file `results/bench_baselines.json` declares a
//! set of rules over the `BENCH_<family>.json` medians the bench binaries
//! write at the repository root:
//!
//! ```json
//! {
//!   "tolerance": 0.05,
//!   "rules": [
//!     {"metric": "inference/speedup_specialized_vs_generic_h64", "min": 1.0},
//!     {"metric": "inference/tracing_overhead_ratio", "max": 1.02}
//!   ]
//! }
//! ```
//!
//! A rule's `metric` is `<family>/<id>`, looked up in `BENCH_<family>.json`.
//! `min`/`max` bound the fresh value, stretched by the noise `tolerance`
//! (file-level, overridable per rule): a `min` passes at
//! `value >= min * (1 - tolerance)`, a `max` at
//! `value <= max * (1 + tolerance)`. In `--quick` mode — CI smoke, where
//! the benches write only a subset of their metrics — rules whose metric
//! (or whole family file) is absent are skipped; in full mode absence is a
//! failure, so a renamed metric can't silently disable its gate.

use std::path::Path;

/// One declarative bound over a bench metric.
#[derive(Debug, Clone)]
pub struct Rule {
    /// `<family>/<id>`, e.g. `inference/tracing_overhead_ratio`.
    pub metric: String,
    pub min: Option<f64>,
    pub max: Option<f64>,
    /// Per-rule noise tolerance override (fraction, e.g. `0.05`).
    pub tolerance: Option<f64>,
}

/// The parsed baseline file.
#[derive(Debug, Clone)]
pub struct Baselines {
    /// Default noise tolerance applied to every rule without its own.
    pub tolerance: f64,
    pub rules: Vec<Rule>,
}

/// Outcome of checking one rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    Pass,
    Fail,
    /// Metric or family file absent in `--quick` mode.
    Skipped,
}

/// One rule's verdict, with a human-readable detail line.
#[derive(Debug, Clone)]
pub struct CheckResult {
    pub metric: String,
    pub value: Option<f64>,
    pub outcome: Outcome,
    pub detail: String,
}

/// Parse `results/bench_baselines.json`.
pub fn load_baselines(path: &Path) -> Result<Baselines, String> {
    let body = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    parse_baselines(&body).map_err(|e| format!("{}: {e}", path.display()))
}

fn parse_baselines(body: &str) -> Result<Baselines, String> {
    let v = serde_json::parse_value(body).map_err(|e| format!("malformed JSON: {e:?}"))?;
    let tolerance = v.field("tolerance").and_then(|t| t.as_f64()).unwrap_or(0.0);
    if !(0.0..1.0).contains(&tolerance) {
        return Err(format!("tolerance {tolerance} outside [0, 1)"));
    }
    let rules_v = v.field("rules").and_then(|r| r.as_array()).ok_or("missing `rules` array")?;
    let mut rules = Vec::with_capacity(rules_v.len());
    for (i, r) in rules_v.iter().enumerate() {
        let metric = r
            .field("metric")
            .and_then(|m| m.as_str())
            .ok_or_else(|| format!("rule {i}: missing `metric`"))?
            .to_string();
        if !metric.contains('/') {
            return Err(format!("rule {i}: metric `{metric}` is not <family>/<id>"));
        }
        let rule = Rule {
            metric,
            min: r.field("min").and_then(|x| x.as_f64()),
            max: r.field("max").and_then(|x| x.as_f64()),
            tolerance: r.field("tolerance").and_then(|x| x.as_f64()),
        };
        if rule.min.is_none() && rule.max.is_none() {
            return Err(format!("rule {i} ({}): needs `min` and/or `max`", rule.metric));
        }
        rules.push(rule);
    }
    Ok(Baselines { tolerance, rules })
}

/// Look `metric` (`family/id`) up in `BENCH_<family>.json` under `root`.
/// `Ok(None)` means the family file or the metric is absent; malformed JSON
/// is an error.
fn lookup(root: &Path, metric: &str) -> Result<Option<f64>, String> {
    let family = metric.split('/').next().unwrap_or_default();
    let path = root.join(format!("BENCH_{family}.json"));
    let body = match std::fs::read_to_string(&path) {
        Ok(b) => b,
        Err(_) => return Ok(None),
    };
    let v = serde_json::parse_value(&body)
        .map_err(|e| format!("{}: malformed JSON: {e:?}", path.display()))?;
    Ok(v.field(metric).and_then(|x| x.as_f64()))
}

/// Evaluate every rule against the `BENCH_*.json` files under `root`.
/// Returns the per-rule results and whether the whole check passed.
pub fn check(baselines: &Baselines, root: &Path, quick: bool) -> (Vec<CheckResult>, bool) {
    let mut results = Vec::with_capacity(baselines.rules.len());
    let mut ok = true;
    for rule in &baselines.rules {
        let tol = rule.tolerance.unwrap_or(baselines.tolerance);
        let value = match lookup(root, &rule.metric) {
            Ok(v) => v,
            Err(e) => {
                ok = false;
                results.push(CheckResult {
                    metric: rule.metric.clone(),
                    value: None,
                    outcome: Outcome::Fail,
                    detail: e,
                });
                continue;
            }
        };
        let Some(value) = value else {
            let (outcome, detail) = if quick {
                (Outcome::Skipped, "metric absent (quick mode)".to_string())
            } else {
                ok = false;
                (Outcome::Fail, "metric absent from bench output".to_string())
            };
            results.push(CheckResult { metric: rule.metric.clone(), value: None, outcome, detail });
            continue;
        };
        let mut failures = Vec::new();
        if let Some(min) = rule.min {
            let floor = min * (1.0 - tol);
            if value < floor {
                failures.push(format!("{value:.3} < min {min:.3} (floor {floor:.3})"));
            }
        }
        if let Some(max) = rule.max {
            let ceil = max * (1.0 + tol);
            if value > ceil {
                failures.push(format!("{value:.3} > max {max:.3} (ceiling {ceil:.3})"));
            }
        }
        let (outcome, detail) = if failures.is_empty() {
            let bounds = match (rule.min, rule.max) {
                (Some(a), Some(b)) => {
                    format!("within [{a:.3}, {b:.3}] ±{tol:.0}%", tol = tol * 100.0)
                }
                (Some(a), None) => format!("{value:.3} >= min {a:.3} (tol {:.0}%)", tol * 100.0),
                (None, Some(b)) => format!("{value:.3} <= max {b:.3} (tol {:.0}%)", tol * 100.0),
                (None, None) => unreachable!("validated at parse time"),
            };
            (Outcome::Pass, bounds)
        } else {
            ok = false;
            (Outcome::Fail, failures.join("; "))
        };
        results.push(CheckResult {
            metric: rule.metric.clone(),
            value: Some(value),
            outcome,
            detail,
        });
    }
    (results, ok)
}

/// Render check results as the `irnuma bench-check` table.
pub fn render(results: &[CheckResult], ok: bool) -> String {
    let mut out = String::new();
    for r in results {
        let tag = match r.outcome {
            Outcome::Pass => "PASS",
            Outcome::Fail => "FAIL",
            Outcome::Skipped => "SKIP",
        };
        out.push_str(&format!("{tag}  {:<48} {}\n", r.metric, r.detail));
    }
    let (passes, fails, skips) = results.iter().fold((0, 0, 0), |(p, f, s), r| match r.outcome {
        Outcome::Pass => (p + 1, f, s),
        Outcome::Fail => (p, f + 1, s),
        Outcome::Skipped => (p, f, s + 1),
    });
    out.push_str(&format!(
        "\nbench-check: {passes} passed, {fails} failed, {skips} skipped — {}\n",
        if ok { "OK" } else { "REGRESSION" }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(dir: &Path, name: &str, body: &str) {
        std::fs::create_dir_all(dir).unwrap();
        std::fs::write(dir.join(name), body).unwrap();
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("irnuma-bench-check-{tag}"));
        std::fs::remove_dir_all(&d).ok();
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    const BASELINES: &str = r#"{
        "tolerance": 0.10,
        "rules": [
            {"metric": "inference/speedup", "min": 2.0},
            {"metric": "inference/overhead", "max": 1.02, "tolerance": 0.0}
        ]
    }"#;

    #[test]
    fn passing_metrics_pass() {
        let d = tmpdir("pass");
        write(
            &d,
            "BENCH_inference.json",
            r#"{"inference/speedup": 2.5, "inference/overhead": 1.01}"#,
        );
        let b = parse_baselines(BASELINES).unwrap();
        let (results, ok) = check(&b, &d, false);
        assert!(ok, "{results:?}");
        assert!(results.iter().all(|r| r.outcome == Outcome::Pass));
    }

    #[test]
    fn regressions_fail_and_name_the_bound() {
        let d = tmpdir("fail");
        write(
            &d,
            "BENCH_inference.json",
            r#"{"inference/speedup": 2.5, "inference/overhead": 1.05}"#,
        );
        let b = parse_baselines(BASELINES).unwrap();
        let (results, ok) = check(&b, &d, false);
        assert!(!ok);
        let over = results.iter().find(|r| r.metric == "inference/overhead").unwrap();
        assert_eq!(over.outcome, Outcome::Fail);
        assert!(over.detail.contains("max 1.020"), "{}", over.detail);
        assert!(render(&results, ok).contains("REGRESSION"));
    }

    #[test]
    fn tolerance_stretches_the_bound() {
        let d = tmpdir("tol");
        // speedup 1.85 is under min 2.0 but above the 10%-tolerance floor 1.8.
        write(
            &d,
            "BENCH_inference.json",
            r#"{"inference/speedup": 1.85, "inference/overhead": 1.0}"#,
        );
        let b = parse_baselines(BASELINES).unwrap();
        let (results, ok) = check(&b, &d, false);
        assert!(ok, "{results:?}");
        // 1.79 is below the floor.
        write(
            &d,
            "BENCH_inference.json",
            r#"{"inference/speedup": 1.79, "inference/overhead": 1.0}"#,
        );
        let (_, ok) = check(&b, &d, false);
        assert!(!ok);
    }

    #[test]
    fn absent_metric_skips_in_quick_mode_fails_in_full() {
        let d = tmpdir("absent");
        write(&d, "BENCH_inference.json", r#"{"inference/speedup": 2.5}"#);
        let b = parse_baselines(BASELINES).unwrap();
        let (results, ok) = check(&b, &d, true);
        assert!(ok, "{results:?}");
        assert_eq!(
            results.iter().find(|r| r.metric == "inference/overhead").unwrap().outcome,
            Outcome::Skipped
        );
        let (_, ok) = check(&b, &d, false);
        assert!(!ok, "full mode treats an absent metric as a failure");
    }

    #[test]
    fn missing_family_file_skips_in_quick_mode() {
        let d = tmpdir("nofile");
        let b = parse_baselines(BASELINES).unwrap();
        let (results, ok) = check(&b, &d, true);
        assert!(ok);
        assert!(results.iter().all(|r| r.outcome == Outcome::Skipped));
        let (_, ok) = check(&b, &d, false);
        assert!(!ok);
    }

    #[test]
    fn malformed_baselines_are_rejected() {
        assert!(parse_baselines("{").is_err());
        assert!(parse_baselines(r#"{"rules": [{"metric": "noslash"}]}"#).is_err());
        assert!(parse_baselines(r#"{"rules": [{"metric": "a/b"}]}"#).is_err(), "no bounds");
        assert!(parse_baselines(r#"{"tolerance": 2.0, "rules": []}"#).is_err());
    }
}
