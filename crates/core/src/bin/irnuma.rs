//! `irnuma` — the command-line front door.
//!
//! ```text
//! irnuma list-regions                         # the 56-region suite
//! irnuma show-ir cg.spmv [--o3]               # print a region's IR
//! irnuma graph cg.spmv [--dot out.dot]        # ProGraML graph stats / DOT
//! irnuma sweep cg.spmv --arch skylake         # top/bottom configurations
//! irnuma interp cg.spmv --n 64                # run under the interpreter
//! irnuma dataset --arch skylake --seqs 12 --out ds.json
//! irnuma predict cg.spmv --arch skylake [--dataset ds.json]
//! ```

use irnuma_core::dataset::{
    build_dataset, build_dataset_report, BuildOptions, Dataset, DatasetParams,
};
use irnuma_core::models::static_gnn::{training_sequence_ids, StaticModel, StaticParams};
use irnuma_core::{bench_check, dataset_pack, top as top_view, trace_report, trace_tree};
use irnuma_graph::{build_module_graph, to_dot, Vocab};
use irnuma_ir::extract::extract_region;
use irnuma_ir::{print_module, Interp, InterpConfig, Value};
use irnuma_nn::{CheckpointConfig, GnnClassifier, GnnConfig, MemorySource, TrainParams};
use irnuma_passes::{o3_sequence, run_sequence};
use irnuma_sim::{default_config, sweep_region, Machine, MicroArch};
use irnuma_workloads::{all_regions, InputSize, RegionSpec};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

// With `--features alloc-track`, every allocation the binary makes is
// counted: mem.* gauges in snapshots, alloc_bytes deltas on spans,
// bytes-per-stage in `irnuma report`.
#[cfg(feature = "alloc-track")]
#[global_allocator]
static ALLOC: irnuma_obs::alloc::CountingAlloc = irnuma_obs::alloc::CountingAlloc::new();

fn main() -> ExitCode {
    // IRNUMA_LOG overrides the info default; IRNUMA_TRACE=<file> installs
    // the JSONL sink. The guard flushes metrics + trace on exit.
    let _obs = irnuma_obs::init(irnuma_obs::Level::Info);
    // `--no-dispatch` (any position) forces the generic fallback kernels —
    // the escape hatch mirroring IRNUMA_NO_DISPATCH, kept live by CI.
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--no-dispatch") {
        args.retain(|a| a != "--no-dispatch");
        irnuma_nn::set_dispatch(false);
    }
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "list-regions" => list_regions(),
        "show-ir" => show_ir(rest),
        "show-source" => show_source(rest),
        "graph" => graph(rest),
        "sweep" => sweep(rest),
        "interp" => interp(rest),
        "dataset" => dataset(rest),
        "train" => train(rest),
        "predict" => predict(rest),
        "report" => report(rest),
        "trace" => trace(rest),
        "top" => top(rest),
        "serve" => serve(rest),
        "serve-bench" => serve_bench(rest),
        "bench-check" => run_bench_check(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "irnuma — static NUMA/prefetcher tuning from IR graphs

USAGE:
  irnuma list-regions
  irnuma show-ir <region> [--o3]
  irnuma show-source <region>
  irnuma graph <region> [--dot <file>]
  irnuma sweep <region> [--arch skylake|sandybridge|xeongold]
  irnuma interp <region> [--n <elements>]
  irnuma dataset [--arch <a>] [--seqs <n>] [--calls <n>] --out <file|dir>
                 [--strict] [--fault <region>[:once]] [--json]
                 [--pack [--shard-regions <n>]]
  irnuma dataset pack --in <dataset.json> --out <dir> [--shard-graphs <n>]
  irnuma dataset info <dir> [--verify]
  irnuma train   [--arch <a>] [--dataset <file.json|pack-dir>] [--seqs <n>]
                 [--epochs <n>] [--hidden <n>] [--seed <n>]
                 [--ckpt-dir <dir>] [--every <n>] [--resume]
                 [--in-memory] [--out <model.json>]
  irnuma predict <region> [--arch <a>] [--dataset <file.json|pack-dir>]
                 [--seqs <n>] [--epochs <n>]
  irnuma report <trace.jsonl> [--require stage1,stage2,...] [--json]
                 [--sort total|p99|count]
  irnuma trace analyze <trace.jsonl> [--roots name1,name2,...]
                 [--require-roots name1,name2,...]
  irnuma trace export <trace.jsonl> --perfetto <out.json>
  irnuma top     [--once | --watch <secs>] [--connect <addr>]
                 [--listen <addr>]
  irnuma serve   --model <model.json> [--addr <host:port>]
                 [--max-batch <n>] [--batch-window-us <n>]
                 [--queue-cap <n>] [--reload-poll-ms <n>]
                 [--max-requests <n>]
  irnuma serve-bench [--model <model.json> | --connect <addr>]
                 [--requests <n>] [--clients <n>] [--out-json]
  irnuma bench-check [--quick] [--baselines <file.json>] [--root <dir>]

Any command also accepts --no-dispatch: run the generic GNN kernels
instead of the shape-specialized dispatch layer (same bits, no
specialization — a fallback/debugging escape hatch).

`report` is the flat per-stage profile; `trace analyze` rebuilds the
causal span forest and reports each root span's critical path,
parallelism efficiency, and queue-vs-compute split. `trace export
--perfetto` writes a Chrome trace-event file loadable in
ui.perfetto.dev, with per-thread tracks and fan-out flow arrows.
`top` renders live telemetry: point --connect at any irnuma process
started with IRNUMA_METRICS=<addr> (default: this process's own
registry; --listen additionally serves it for scrapers).
`bench-check` gates BENCH_*.json medians against the committed
baselines in results/bench_baselines.json.
`serve` runs the online prediction daemon: JSONL over TCP, one JSON
request per line in, one prediction (or typed error) per line out,
micro-batched through the planned inference engine, with atomic model
hot-reload (--reload-poll-ms or on demand). `serve-bench` load-tests
a daemon (in-process by default) and with --out-json writes
BENCH_serving.json for the bench-check gate.

ENVIRONMENT:
  IRNUMA_TRACE=<file>      write a JSONL trace of every command
  IRNUMA_LOG=<level>       error|warn|info|debug (default info)
  IRNUMA_METRICS=<addr>    serve live metrics (/json, /metrics) on <addr>
  IRNUMA_PROFILE=<file>    sampling profiler; folded stacks on exit
  IRNUMA_PROFILE_HZ=<n>    profiler sample rate (default 997)
  IRNUMA_NO_DISPATCH=1     same effect as --no-dispatch";

fn find_region(name: &str) -> Result<RegionSpec, String> {
    all_regions()
        .into_iter()
        .find(|r| r.name == name)
        .ok_or_else(|| format!("unknown region `{name}` (try `irnuma list-regions`)"))
}

fn opt_value<'a>(rest: &'a [String], flag: &str) -> Option<&'a str> {
    rest.iter().position(|a| a == flag).and_then(|i| rest.get(i + 1)).map(String::as_str)
}

fn parse_arch(rest: &[String]) -> Result<MicroArch, String> {
    match opt_value(rest, "--arch").unwrap_or("skylake") {
        "skylake" => Ok(MicroArch::Skylake),
        "sandybridge" => Ok(MicroArch::SandyBridge),
        "xeongold" => Ok(MicroArch::XeonGold),
        other => Err(format!("unknown arch `{other}`")),
    }
}

fn list_regions() -> Result<(), String> {
    println!("{:<28} {:<10} {:>8} {:>6}  shape", "region", "suite", "ws", "calls");
    for r in all_regions() {
        println!(
            "{:<28} {:<10} {:>6}MB {:>6}  {:?}",
            r.name,
            format!("{:?}", r.suite),
            r.profile.working_set_bytes >> 20,
            r.profile.calls_per_run,
            r.shape
        );
    }
    Ok(())
}

fn show_ir(rest: &[String]) -> Result<(), String> {
    let r = find_region(rest.first().ok_or("missing region name")?)?;
    let mut m = r.module();
    if rest.iter().any(|a| a == "--o3") {
        run_sequence(&mut m, &o3_sequence()).map_err(|e| e.to_string())?;
    }
    print!("{}", print_module(&m));
    Ok(())
}

fn show_source(rest: &[String]) -> Result<(), String> {
    let r = find_region(rest.first().ok_or("missing region name")?)?;
    println!("// {} ({:?}, ws {} MiB)", r.name, r.suite, r.profile.working_set_bytes >> 20);
    println!("{}", irnuma_workloads::pseudo_source(&r.shape));
    Ok(())
}

fn graph(rest: &[String]) -> Result<(), String> {
    let r = find_region(rest.first().ok_or("missing region name")?)?;
    let vocab = Vocab::full();
    let m = r.module();
    let e = extract_region(&m, &r.region_fn()).map_err(|e| e.to_string())?;
    let g = build_module_graph(&e, &vocab);
    if let Some(path) = opt_value(rest, "--dot") {
        irnuma_store::atomic_write(Path::new(path), to_dot(&g, &vocab).as_bytes())
            .map_err(|e| e.to_string())?;
        println!("wrote {path}");
    } else {
        use irnuma_graph::{EdgeKind, NodeKind};
        println!("region {}: {} nodes, {} edges", r.name, g.num_nodes(), g.num_edges());
        println!(
            "  nodes: {} instruction / {} variable / {} constant",
            g.count_nodes(NodeKind::Instruction),
            g.count_nodes(NodeKind::Variable),
            g.count_nodes(NodeKind::Constant)
        );
        println!(
            "  edges: {} control / {} data / {} call",
            g.count_edges(EdgeKind::Control),
            g.count_edges(EdgeKind::Data),
            g.count_edges(EdgeKind::Call)
        );
    }
    Ok(())
}

fn sweep(rest: &[String]) -> Result<(), String> {
    let r = find_region(rest.first().ok_or("missing region name")?)?;
    let m = Machine::new(parse_arch(rest)?);
    let results = sweep_region(&r, &m, InputSize::Size1, 6);
    let def = default_config(&m);
    let t_def = results.iter().find(|(c, _)| *c == def).unwrap().1;
    let mut ranked: Vec<_> = results.iter().collect();
    ranked.sort_by(|a, b| a.1.total_cmp(&b.1));
    println!(
        "{} on {:?}: default {} = {:.3}ms over {} configurations",
        r.name,
        m.arch,
        def.label(),
        t_def * 1e3,
        results.len()
    );
    println!("top 5:");
    for (c, t) in ranked.iter().take(5) {
        println!("  {:<28} {:>9.3}ms  x{:.2}", c.label(), t * 1e3, t_def / t);
    }
    println!("bottom 3:");
    for (c, t) in ranked.iter().rev().take(3) {
        println!("  {:<28} {:>9.3}ms  x{:.2}", c.label(), t * 1e3, t_def / t);
    }
    Ok(())
}

fn interp(rest: &[String]) -> Result<(), String> {
    let r = find_region(rest.first().ok_or("missing region name")?)?;
    let n: i64 = opt_value(rest, "--n").unwrap_or("64").parse().map_err(|_| "bad --n")?;
    // Execute a small-footprint build of the region so this stays instant.
    let m = r.shape.gen_ir(&r.name, r.variant, 1 << 18);
    let mut it = Interp::new(&m, InterpConfig::default());
    it.seed_globals(1);
    let out = it.call(&r.region_fn(), &[Value::I(n)]).map_err(|e| e.to_string())?;
    println!(
        "@{}(n={n}) executed {} interpreter steps; memory digest {:016x}",
        r.region_fn(),
        out.steps,
        it.memory_digest()
    );
    Ok(())
}

/// The `--json` build summary. `dataset.skipped`/`dataset.retried` mirror
/// the telemetry counters of the same names, read back from the registry so
/// the JSON output asserts the counters were actually recorded. Built as a
/// [`serde_json::Value`] by hand because the counter keys carry dots.
fn dataset_build_summary(
    out: &str,
    regions: usize,
    graphs: usize,
    configs: usize,
    label_coverage: f64,
    skips: &[String],
) -> serde_json::Value {
    use serde_json::Value;
    let registry = irnuma_obs::registry();
    Value::Object(vec![
        ("out".into(), Value::Str(out.to_string())),
        ("regions".into(), Value::UInt(regions as u64)),
        ("graphs".into(), Value::UInt(graphs as u64)),
        ("configs".into(), Value::UInt(configs as u64)),
        ("label_coverage".into(), Value::Float(label_coverage)),
        ("dataset.skipped".into(), Value::UInt(registry.counter("dataset.skipped").get())),
        ("dataset.retried".into(), Value::UInt(registry.counter("dataset.retried").get())),
        ("skips".into(), Value::Array(skips.iter().map(|s| Value::Str(s.clone())).collect())),
    ])
}

fn dataset(rest: &[String]) -> Result<(), String> {
    match rest.first().map(String::as_str) {
        Some("pack") => return dataset_pack_cmd(&rest[1..]),
        Some("info") => return dataset_info(&rest[1..]),
        _ => {}
    }
    let arch = parse_arch(rest)?;
    let seqs: usize =
        opt_value(rest, "--seqs").unwrap_or("12").parse().map_err(|_| "bad --seqs")?;
    let calls: u32 =
        opt_value(rest, "--calls").unwrap_or("6").parse().map_err(|_| "bad --calls")?;
    let out = opt_value(rest, "--out").ok_or("missing --out <file.json|dir>")?;
    let pack = rest.iter().any(|a| a == "--pack");
    let json = rest.iter().any(|a| a == "--json");
    let opts = BuildOptions {
        strict: rest.iter().any(|a| a == "--strict"),
        fault: opt_value(rest, "--fault").map(String::from),
    };
    let params = DatasetParams { num_sequences: seqs, calls, ..Default::default() };
    irnuma_obs::info!("building dataset for {arch:?} ({seqs} sequences)…");

    let (regions, graphs, configs, coverage, skips) = if pack {
        let shard_regions: usize = opt_value(rest, "--shard-regions")
            .unwrap_or("8")
            .parse()
            .map_err(|_| "bad --shard-regions")?;
        let built =
            dataset_pack::build_packed_dataset(arch, &params, &opts, Path::new(out), shard_regions)
                .map_err(|e| e.to_string())?;
        let configs =
            dataset_pack::read_meta(Path::new(out)).map_err(|e| e.to_string())?.configs.len();
        if !json {
            println!(
                "packed {out}: {} regions, {} graphs in {} shards",
                built.regions, built.graphs, built.shards
            );
        }
        (built.regions, built.graphs, configs, built.label_coverage, built.skips)
    } else {
        let build = build_dataset_report(arch, &params, &opts).map_err(|e| e.to_string())?;
        let ds = &build.dataset;
        ds.save_json(Path::new(out)).map_err(|e| e.to_string())?;
        let graphs = ds.regions.iter().map(|r| r.graphs.len()).sum();
        (ds.regions.len(), graphs, ds.configs.len(), ds.label_coverage(), build.skips)
    };

    if json {
        let skip_lines: Vec<String> = skips.iter().map(|s| s.to_string()).collect();
        let summary = dataset_build_summary(out, regions, graphs, configs, coverage, &skip_lines);
        println!("{}", serde_json::value_to_string(&summary));
        return Ok(());
    }
    if !pack {
        println!(
            "wrote {out}: {regions} regions × {} graphs, {configs} configs, \
             label coverage {coverage:.3}",
            graphs / regions.max(1),
        );
    }
    if skips.is_empty() {
        println!("skipped 0 regions");
    } else {
        println!("skipped {} regions:", skips.len());
        for s in &skips {
            println!("  {s}");
        }
    }
    Ok(())
}

/// `irnuma dataset pack`: re-encode an existing JSON dataset as a pack
/// directory (binary shards + meta + manifest).
fn dataset_pack_cmd(rest: &[String]) -> Result<(), String> {
    let input = opt_value(rest, "--in").ok_or("missing --in <dataset.json>")?;
    let out = opt_value(rest, "--out").ok_or("missing --out <dir>")?;
    let shard_graphs: usize = opt_value(rest, "--shard-graphs")
        .unwrap_or("64")
        .parse()
        .map_err(|_| "bad --shard-graphs")?;
    let ds = Dataset::load_json(Path::new(input)).map_err(|e| e.to_string())?;
    let summary =
        dataset_pack::pack_dataset(&ds, Path::new(out), shard_graphs).map_err(|e| e.to_string())?;
    println!(
        "packed {out}: {} graphs in {} shards ({} KiB)",
        summary.graphs,
        summary.shards,
        summary.bytes >> 10
    );
    Ok(())
}

/// `irnuma dataset info`: describe a pack directory; `--verify` reads every
/// shard back, checking manifest checksums and decoding every record.
fn dataset_info(rest: &[String]) -> Result<(), String> {
    let dir = Path::new(rest.first().ok_or("missing pack directory")?.as_str());
    let meta = dataset_pack::read_meta(dir).map_err(|e| e.to_string())?;
    let manifest = irnuma_store::shard::ShardManifest::load(dir).map_err(|e| e.to_string())?;
    println!(
        "pack {}: {} regions, {} sequences, {} configs ({} labels)",
        dir.display(),
        meta.regions.len(),
        meta.sequences.len(),
        meta.configs.len(),
        meta.chosen_configs.len()
    );
    println!(
        "{} shards, {} records, {} KiB",
        manifest.entries.len(),
        manifest.total_records(),
        manifest.total_bytes() >> 10
    );
    if rest.iter().any(|a| a == "--verify") {
        manifest.verify(dir).map_err(|e| e.to_string())?;
        let ds = dataset_pack::load_packed(dir).map_err(|e| e.to_string())?;
        let graphs: usize = ds.regions.iter().map(|r| r.graphs.len()).sum();
        println!("verify ok: {graphs} graphs decoded, all checksums match");
    }
    Ok(())
}

fn train(rest: &[String]) -> Result<(), String> {
    let arch = parse_arch(rest)?;
    let seqs: usize = opt_value(rest, "--seqs").unwrap_or("4").parse().map_err(|_| "bad --seqs")?;
    let epochs: usize =
        opt_value(rest, "--epochs").unwrap_or("10").parse().map_err(|_| "bad --epochs")?;
    let hidden: usize =
        opt_value(rest, "--hidden").unwrap_or("16").parse().map_err(|_| "bad --hidden")?;
    let seed: u64 = opt_value(rest, "--seed").unwrap_or("71").parse().map_err(|_| "bad --seed")?;
    let every: usize =
        opt_value(rest, "--every").unwrap_or("1").parse().map_err(|_| "bad --every")?;
    let resume = rest.iter().any(|a| a == "--resume");
    let ckpt = opt_value(rest, "--ckpt-dir").map(|d| CheckpointConfig {
        dir: PathBuf::from(d),
        every,
        resume,
    });
    let ds: Dataset = match opt_value(rest, "--dataset") {
        Some(path) if Path::new(path).is_dir() => {
            // A pack directory: stream shards through the prefetch loader
            // instead of materializing the corpus.
            return train_streaming(rest, Path::new(path), epochs, hidden, seed, ckpt);
        }
        Some(path) => Dataset::load_auto(Path::new(path)).map_err(|e| e.to_string())?,
        None => {
            irnuma_obs::info!("building dataset (pass --dataset file.json to reuse one)…");
            build_dataset(arch, &DatasetParams { num_sequences: seqs, ..Default::default() })
        }
    };
    // Flatten every region's training-sequence graphs into one labelled set,
    // exactly as `StaticModel::train` does over a fold.
    let seq_ids = training_sequence_ids(ds.sequences.len(), 4.min(ds.sequences.len()));
    let mut graphs = Vec::new();
    let mut labels = Vec::new();
    for (r, reg) in ds.regions.iter().enumerate() {
        for &s in &seq_ids {
            graphs.push(reg.graphs[s].clone());
            labels.push(ds.labels[r]);
        }
    }
    let mut clf = GnnClassifier::new(GnnConfig {
        vocab_size: Vocab::full().len(),
        hidden,
        classes: ds.chosen_configs.len(),
        layers: 2,
        layer_norm: true,
        seed,
    });
    let p = TrainParams { epochs, batch_size: 16, lr: 3e-3, seed };
    let t0 = std::time::Instant::now();
    let history =
        clf.fit_checkpointed(&graphs, &labels, p, ckpt.as_ref()).map_err(|e| e.to_string())?;
    let elapsed = t0.elapsed().as_secs_f64();
    let acc = clf.accuracy(&graphs, &labels);
    println!(
        "trained {} epochs on {} graphs: loss {:.4} → {:.4}, train accuracy {} \
         ({:.2} epochs/sec, fused engine)",
        history.len(),
        graphs.len(),
        history.first().copied().unwrap_or(f64::NAN),
        history.last().copied().unwrap_or(f64::NAN),
        acc.map_or_else(|| "n/a".to_string(), |a| format!("{a:.3}")),
        history.len() as f64 / elapsed.max(1e-9),
    );
    if let Some(out) = opt_value(rest, "--out") {
        clf.save_json(Path::new(out)).map_err(|e| e.to_string())?;
        println!("wrote {out}");
    }
    Ok(())
}

/// `irnuma train --dataset <pack-dir>`: the out-of-core epoch loop over a
/// pack directory. `--in-memory` decodes the pack once and trains resident
/// — same seeded trajectory, so both modes produce bit-identical models
/// (CI compares them byte for byte).
fn train_streaming(
    rest: &[String],
    dir: &Path,
    epochs: usize,
    hidden: usize,
    seed: u64,
    ckpt: Option<CheckpointConfig>,
) -> Result<(), String> {
    let meta = dataset_pack::read_meta(dir).map_err(|e| e.to_string())?;
    let seq_ids = training_sequence_ids(meta.sequences.len(), 4.min(meta.sequences.len()));
    let mut stream = dataset_pack::open_stream(dir, &meta, &seq_ids).map_err(|e| e.to_string())?;
    let mut clf = GnnClassifier::new(GnnConfig {
        vocab_size: Vocab::full().len(),
        hidden,
        classes: meta.chosen_configs.len(),
        layers: 2,
        layer_norm: true,
        seed,
    });
    let p = TrainParams { epochs, batch_size: 16, lr: 3e-3, seed };
    let in_memory = rest.iter().any(|a| a == "--in-memory");
    let stall0 = irnuma_obs::registry().counter("loader.prefetch_stall_ns").get();
    let t0 = std::time::Instant::now();
    let history = if in_memory {
        let mut mem = MemorySource::from_source(&mut stream).map_err(|e| e.to_string())?;
        drop(stream);
        clf.fit_streaming(&mut mem, p, ckpt.as_ref())
    } else {
        clf.fit_streaming(&mut stream, p, ckpt.as_ref())
    }
    .map_err(|e| e.to_string())?;
    let elapsed = t0.elapsed().as_secs_f64();
    let stall_ms =
        (irnuma_obs::registry().counter("loader.prefetch_stall_ns").get() - stall0) as f64 / 1e6;
    println!(
        "trained {} epochs streaming from {} ({} regions, {} shards, {} mode): \
         loss {:.4} → {:.4} ({:.2} epochs/sec, prefetch stall {stall_ms:.1}ms)",
        history.len(),
        dir.display(),
        meta.regions.len(),
        irnuma_store::shard::ShardManifest::load(dir).map_err(|e| e.to_string())?.entries.len(),
        if in_memory { "in-memory" } else { "streaming" },
        history.first().copied().unwrap_or(f64::NAN),
        history.last().copied().unwrap_or(f64::NAN),
        history.len() as f64 / elapsed.max(1e-9),
    );
    if let Some(out) = opt_value(rest, "--out") {
        clf.save_json(Path::new(out)).map_err(|e| e.to_string())?;
        println!("wrote {out}");
    }
    Ok(())
}

fn predict(rest: &[String]) -> Result<(), String> {
    let target = rest.first().ok_or("missing region name")?.clone();
    let arch = parse_arch(rest)?;
    let seqs: usize = opt_value(rest, "--seqs").unwrap_or("8").parse().map_err(|_| "bad --seqs")?;
    let epochs: usize =
        opt_value(rest, "--epochs").unwrap_or("10").parse().map_err(|_| "bad --epochs")?;
    let ds: Dataset = match opt_value(rest, "--dataset") {
        Some(path) => Dataset::load_auto(std::path::Path::new(path)).map_err(|e| e.to_string())?,
        None => {
            irnuma_obs::info!("building dataset (pass --dataset file.json to reuse one)…");
            build_dataset(arch, &DatasetParams { num_sequences: seqs, ..Default::default() })
        }
    };
    let ti = ds
        .regions
        .iter()
        .position(|r| r.spec.name == target)
        .ok_or_else(|| format!("region `{target}` not in dataset"))?;
    let train: Vec<usize> = (0..ds.regions.len()).filter(|&i| i != ti).collect();
    irnuma_obs::info!("training the static model on the other {} regions…", train.len());
    let sm = StaticModel::train(
        &ds,
        &train,
        StaticParams { epochs, train_sequences: 4.min(seqs), ..Default::default() },
    );
    let label = sm.predict(&ds, ti);
    let cfg = ds.configs[ds.chosen_configs[label]];
    let t = ds.label_time(ti, label);
    let reg = &ds.regions[ti];
    println!("region:        {target}");
    println!("prediction:    {}", cfg.label());
    println!("default time:  {:.3}ms", reg.default_time * 1e3);
    println!("predicted:     {:.3}ms  (x{:.2})", t * 1e3, reg.default_time / t);
    println!(
        "best possible: {:.3}ms  (x{:.2}, full exploration)",
        reg.full_best_time() * 1e3,
        reg.default_time / reg.full_best_time()
    );
    Ok(())
}

fn report(rest: &[String]) -> Result<(), String> {
    let path = rest.first().ok_or("missing trace file (irnuma report <trace.jsonl>)")?;
    let mut r = trace_report::load(std::path::Path::new(path))?;
    if let Some(key) = opt_value(rest, "--sort") {
        let key = trace_report::SortKey::parse(key)
            .ok_or_else(|| format!("bad --sort `{key}` (total|p99|count)"))?;
        r.sort_spans(key);
    }
    if r.malformed_lines > 0 {
        eprintln!("report.malformed_lines: {} (skipped)", r.malformed_lines);
    }
    if rest.iter().any(|a| a == "--json") {
        println!("{}", r.to_json());
    } else {
        print!("{}", r.render());
    }
    if let Some(required) = opt_value(rest, "--require") {
        let stages: Vec<&str> =
            required.split(',').map(str::trim).filter(|s| !s.is_empty()).collect();
        r.require(&stages)?;
        if !rest.iter().any(|a| a == "--json") {
            println!("\nall required stages present: {}", stages.join(", "));
        }
    }
    Ok(())
}

fn trace(rest: &[String]) -> Result<(), String> {
    let sub = rest.first().map(String::as_str);
    let args = rest.get(1..).unwrap_or(&[]);
    let split_names = |v: &str| -> Vec<String> {
        v.split(',').map(str::trim).filter(|s| !s.is_empty()).map(String::from).collect()
    };
    match sub {
        Some("analyze") => {
            let path = args.first().ok_or("missing trace file (irnuma trace analyze <f>)")?;
            let spans = trace_tree::load_spans(Path::new(path))?;
            let opts = trace_tree::AnalyzeOptions {
                roots: opt_value(args, "--roots").map(split_names),
                require_roots: opt_value(args, "--require-roots")
                    .map(split_names)
                    .unwrap_or_default(),
            };
            print!("{}", trace_tree::analyze(spans, &opts)?);
            Ok(())
        }
        Some("export") => {
            let path = args.first().ok_or("missing trace file (irnuma trace export <f>)")?;
            let out = opt_value(args, "--perfetto").ok_or("missing --perfetto <out.json>")?;
            let spans = trace_tree::load_spans(Path::new(path))?;
            trace_tree::export_perfetto(&spans, Path::new(out))?;
            println!(
                "wrote {out}: {} spans ({} skipped lines) — load in ui.perfetto.dev",
                spans.records.len(),
                spans.skipped_lines
            );
            Ok(())
        }
        _ => Err("usage: irnuma trace analyze|export <trace.jsonl> …".to_string()),
    }
}

fn top(rest: &[String]) -> Result<(), String> {
    let watch: Option<f64> = match opt_value(rest, "--watch") {
        Some(v) => Some(v.parse().map_err(|_| "bad --watch (seconds)")?),
        None => None,
    };
    let connect = opt_value(rest, "--connect").map(String::from);
    // `--listen` serves this process's own registry — useful for probing
    // the export endpoint end to end without a second process.
    let server = match opt_value(rest, "--listen") {
        Some(addr) => {
            let s = irnuma_obs::export::serve(addr)
                .map_err(|e| format!("cannot listen on {addr}: {e}"))?;
            println!("serving telemetry on {}", s.addr());
            Some(s)
        }
        None => None,
    };
    // One snapshot per tick: from the remote endpoint when --connect is
    // given, through our own HTTP endpoint when --listen is (so the probe
    // exercises the real wire path), from the registry otherwise.
    let grab = || -> Result<top_view::Snapshot, String> {
        let body = match (&connect, &server) {
            (Some(addr), _) => irnuma_obs::export::fetch(addr, "/json")
                .map_err(|e| format!("cannot fetch {addr}/json: {e}"))?,
            (None, Some(s)) => irnuma_obs::export::fetch(&s.addr().to_string(), "/json")
                .map_err(|e| format!("cannot self-fetch: {e}"))?,
            (None, None) => irnuma_obs::TelemetrySnapshot::capture().to_json(),
        };
        top_view::parse_snapshot(&body)
    };
    match watch {
        None => print!("{}", top_view::render(&grab()?, None)),
        Some(secs) => {
            let interval = std::time::Duration::from_secs_f64(secs.clamp(0.1, 3600.0));
            let mut prev: Option<top_view::Snapshot> = None;
            loop {
                let snap = grab()?;
                // Clear the screen, home the cursor, render one frame.
                print!("\x1b[2J\x1b[Hirnuma top — every {secs}s (ctrl-c to quit)\n\n");
                print!("{}", top_view::render(&snap, prev.as_ref()));
                prev = Some(snap);
                std::thread::sleep(interval);
            }
        }
    }
    if let Some(s) = server {
        s.stop();
    }
    Ok(())
}

fn serve(rest: &[String]) -> Result<(), String> {
    let model = opt_value(rest, "--model").ok_or("missing --model <model.json>")?;
    let mut cfg = irnuma_serve::ServeConfig::new(model);
    if let Some(addr) = opt_value(rest, "--addr") {
        cfg.addr = addr.to_string();
    }
    if let Some(v) = opt_value(rest, "--max-batch") {
        cfg.max_batch = v.parse().map_err(|_| "bad --max-batch")?;
    }
    if let Some(v) = opt_value(rest, "--batch-window-us") {
        cfg.batch_window_us = v.parse().map_err(|_| "bad --batch-window-us")?;
    }
    if let Some(v) = opt_value(rest, "--queue-cap") {
        cfg.queue_cap = v.parse().map_err(|_| "bad --queue-cap")?;
    }
    if let Some(v) = opt_value(rest, "--reload-poll-ms") {
        cfg.reload_poll_ms = v.parse().map_err(|_| "bad --reload-poll-ms")?;
    }
    // `--max-requests` exits cleanly (flushing traces/metrics) after N
    // responses — how CI smoke-tests the daemon without signals.
    let max_requests: u64 = match opt_value(rest, "--max-requests") {
        Some(v) => v.parse().map_err(|_| "bad --max-requests")?,
        None => 0,
    };
    let server = irnuma_serve::Server::start(cfg).map_err(|e| format!("serve: {e}"))?;
    println!("serving on {} (model {model})", server.addr());
    if max_requests == 0 {
        server.wait();
        return Ok(());
    }
    let responses = irnuma_obs::registry().counter("serve.responses");
    let errors = irnuma_obs::registry().counter("serve.bad_requests");
    let rejected = irnuma_obs::registry().counter("serve.rejected");
    while responses.get() + errors.get() + rejected.get() < max_requests {
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    server.shutdown();
    println!(
        "served {} responses ({} bad requests, {} rejected); exiting after --max-requests {}",
        responses.get(),
        errors.get(),
        rejected.get(),
        max_requests
    );
    Ok(())
}

fn serve_bench(rest: &[String]) -> Result<(), String> {
    let params = irnuma_core::serve_bench::ServeBenchParams {
        model: opt_value(rest, "--model").map(PathBuf::from),
        connect: opt_value(rest, "--connect").map(String::from),
        requests: opt_value(rest, "--requests")
            .unwrap_or("2000")
            .parse()
            .map_err(|_| "bad --requests")?,
        clients: opt_value(rest, "--clients")
            .unwrap_or("4")
            .parse()
            .map_err(|_| "bad --clients")?,
    };
    let report = irnuma_core::serve_bench::run(&params)?;
    println!(
        "serve-bench: {} served / {} rejected over {} clients\n\
         latency p50 {:.1}us  p99 {:.1}us  mean {:.1}us\n\
         throughput {:.0} req/s",
        report.served,
        report.rejected,
        report.clients,
        report.p50_us,
        report.p99_us,
        report.mean_us,
        report.throughput_rps
    );
    if rest.iter().any(|a| a == "--out-json") {
        let path = irnuma_core::serve_bench::write_report(&report).map_err(|e| e.to_string())?;
        println!("wrote {}", path.display());
    }
    Ok(())
}

fn run_bench_check(rest: &[String]) -> Result<(), String> {
    let quick = rest.iter().any(|a| a == "--quick");
    let baselines_path = opt_value(rest, "--baselines").unwrap_or("results/bench_baselines.json");
    let root = opt_value(rest, "--root").unwrap_or(".");
    let baselines = bench_check::load_baselines(Path::new(baselines_path))?;
    let (results, ok) = bench_check::check(&baselines, Path::new(root), quick);
    print!("{}", bench_check::render(&results, ok));
    if ok {
        Ok(())
    } else {
        Err("benchmark regression detected".to_string())
    }
}
