//! Dataset construction: steps A (flag augmentation), B (region graphs) and
//! C (configuration sweep + label reduction) of the paper's workflow.
//!
//! Construction is fault-isolated: a failing (region, sequence) pair or a
//! panicking sweep no longer aborts the whole build. Failures are retried
//! once (transient I/O), then recorded as [`SkipRecord`]s — surfaced via the
//! `dataset.skipped`/`dataset.retried` counters and the returned
//! [`DatasetBuild`] — while every other region survives. `--strict`
//! ([`BuildOptions::strict`]) restores fail-fast behavior.

use irnuma_graph::{build_module_graph, Vocab};
use irnuma_ir::extract::extract_region;
use irnuma_nn::GraphData;
use irnuma_passes::{sample_sequences, FlagSequence, PassManager, SampleParams};
use irnuma_sim::{config_space, default_config, simulate, Config, Machine, MicroArch};
use irnuma_workloads::{all_regions, InputSize, RegionSpec};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Dataset-construction knobs.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DatasetParams {
    /// Flag sequences sampled for augmentation (the paper uses 1000).
    pub num_sequences: usize,
    /// Sampled calls per configuration during the sweep (paper: 10).
    pub calls: u32,
    /// Label-set size (13 by default, as in the paper; 6 and 2 in Fig. 6).
    pub num_labels: usize,
    pub size: InputSize,
    pub seed: u64,
}

impl Default for DatasetParams {
    fn default() -> Self {
        DatasetParams {
            num_sequences: 48,
            calls: 6,
            num_labels: 13,
            size: InputSize::Size1,
            seed: 42,
        }
    }
}

/// Everything known about one region after steps A–C.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegionData {
    pub spec: RegionSpec,
    /// One graph per flag sequence (aligned with [`Dataset::sequences`]).
    pub graphs: Vec<GraphData>,
    /// Mean execution time per configuration, in [`Dataset::configs`] order.
    pub sweep: Vec<f64>,
    /// Time under the machine default (the speedup baseline).
    pub default_time: f64,
    /// Dynamic features at the default configuration: the counter vector
    /// the dynamic baseline trains on (package power, L3 miss ratio).
    pub dynamic_features: Vec<f32>,
}

impl RegionData {
    /// Best time over the full space (the "full exploration" bar).
    pub fn full_best_time(&self) -> f64 {
        self.sweep.iter().cloned().fold(f64::INFINITY, f64::min)
    }
}

/// The complete experiment dataset for one machine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    pub machine: Machine,
    pub size: InputSize,
    pub sequences: Vec<FlagSequence>,
    pub configs: Vec<Config>,
    pub regions: Vec<RegionData>,
    /// Indices (into `configs`) of the reduced label set, selection order.
    pub chosen_configs: Vec<usize>,
    /// Per-region class label: index into `chosen_configs`.
    pub labels: Vec<usize>,
}

impl Dataset {
    /// Serialize the dataset to a JSON cache (steps A–C dominate wall time
    /// at paper scale). Atomic, versioned, checksummed: a crash mid-write
    /// leaves any previous cache intact.
    pub fn save_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        irnuma_store::save_json(path, "dataset", self)
    }

    /// Load a dataset cached with [`Dataset::save_json`]. A truncated or
    /// corrupt cache fails with [`std::io::ErrorKind::InvalidData`] instead
    /// of parsing into a garbage dataset.
    pub fn load_json(path: &std::path::Path) -> std::io::Result<Dataset> {
        irnuma_store::load_json(path, "dataset")
    }

    /// Load a dataset from either storage format: a pack directory written
    /// by `irnuma dataset pack` (shard manifest + binary graph records) or
    /// the legacy single-file JSON cache. Detection is structural — a
    /// directory containing a shard manifest is a pack; anything else goes
    /// through [`Dataset::load_json`].
    pub fn load_auto(path: &std::path::Path) -> std::io::Result<Dataset> {
        if path.is_dir() && irnuma_store::shard::ShardManifest::exists(path) {
            crate::dataset_pack::load_packed(path)
        } else {
            Dataset::load_json(path)
        }
    }

    /// Time of `region` under label class `label`.
    pub fn label_time(&self, region: usize, label: usize) -> f64 {
        self.regions[region].sweep[self.chosen_configs[label]]
    }

    /// Best achievable time restricted to the label set (the "oracle" the
    /// classifiers are scored against).
    pub fn oracle_time(&self, region: usize) -> f64 {
        self.label_time(region, self.labels[region])
    }

    /// Fraction of full-space gains the label set retains (paper: ≥99% for
    /// the 13-label set).
    pub fn label_coverage(&self) -> f64 {
        let times: Vec<Vec<f64>> = self.regions.iter().map(|r| r.sweep.clone()).collect();
        let base: Vec<f64> = self.regions.iter().map(|r| r.default_time).collect();
        irnuma_ml::coverage(&times, &base, &self.chosen_configs)
    }
}

/// One recorded per-region failure from a tolerant dataset build.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SkipRecord {
    pub region: String,
    /// Flag-sequence id at the point of failure (pass/extract stages).
    pub sequence: Option<u32>,
    /// Pipeline stage that failed: `passes`, `extract`, `sweep`, `panic`,
    /// or `injected` (the `--fault` test hook).
    pub stage: String,
    pub error: String,
    /// Attempts made before giving up (2 = failed, retried once, failed).
    pub attempts: u32,
}

impl fmt::Display for SkipRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}", self.region, self.stage)?;
        if let Some(s) = self.sequence {
            write!(f, " × seq{s}")?;
        }
        write!(f, ", {} attempts]: {}", self.attempts, self.error)
    }
}

/// A tolerant build's result: the surviving dataset plus what was skipped.
#[derive(Debug, Clone)]
pub struct DatasetBuild {
    pub dataset: Dataset,
    /// One record per dropped region (empty on a fully clean build).
    pub skips: Vec<SkipRecord>,
}

/// Why a dataset build produced no dataset.
#[derive(Debug, Clone)]
pub enum DatasetError {
    /// Strict mode: the first region failure, reported fail-fast.
    RegionFailed(SkipRecord),
    /// Tolerant mode, but nothing survived to train on.
    NoRegionsSurvived { total: usize, skips: Vec<SkipRecord> },
    /// A packed build could not write its shards/manifest.
    Io(String),
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::RegionFailed(s) => write!(f, "region failed (strict mode): {s}"),
            DatasetError::NoRegionsSurvived { total, skips } => {
                write!(f, "all {total} regions failed; first: ")?;
                match skips.first() {
                    Some(s) => write!(f, "{s}"),
                    None => write!(f, "<none recorded>"),
                }
            }
            DatasetError::Io(e) => write!(f, "dataset pack I/O failed: {e}"),
        }
    }
}

impl std::error::Error for DatasetError {}

impl From<std::io::Error> for DatasetError {
    fn from(e: std::io::Error) -> DatasetError {
        DatasetError::Io(e.to_string())
    }
}

/// Build behavior orthogonal to the (persisted, `Copy`) [`DatasetParams`].
#[derive(Debug, Clone, Default)]
pub struct BuildOptions {
    /// Fail fast on the first region error instead of recording a skip.
    pub strict: bool,
    /// Fault-injection test hook: `"<region>"` makes that region fail every
    /// attempt (a persistent fault); `"<region>:once"` fails only the first
    /// attempt (a transient fault, recovered by the retry).
    pub fault: Option<String>,
}

/// A per-region build failure (internal; becomes a [`SkipRecord`]).
struct RegionError {
    stage: &'static str,
    sequence: Option<u32>,
    error: String,
}

/// Build the dataset for a machine (steps A–C). Deterministic in
/// `params.seed`. Parallelized over regions.
///
/// Convenience wrapper over [`build_dataset_report`]: tolerant of per-region
/// failures (skips are logged and counted, the dataset is built from the
/// survivors) and panics only if *no* region survives.
pub fn build_dataset(arch: MicroArch, params: &DatasetParams) -> Dataset {
    match build_dataset_report(arch, params, &BuildOptions::default()) {
        Ok(build) => {
            for s in &build.skips {
                irnuma_obs::warn!("dataset build skipped {s}");
            }
            build.dataset
        }
        Err(e) => panic!("dataset build produced nothing usable: {e}"),
    }
}

/// Build the dataset with explicit failure handling: per-region errors
/// (pass pipeline, region extraction, sweep panics) are caught, retried
/// once, and — still failing — recorded as [`SkipRecord`]s while the other
/// regions proceed. With [`BuildOptions::strict`] the first failure aborts
/// the build instead.
pub fn build_dataset_report(
    arch: MicroArch,
    params: &DatasetParams,
    opts: &BuildOptions,
) -> Result<DatasetBuild, DatasetError> {
    let machine = Machine::new(arch);
    let configs = config_space(&machine);
    let sequences = sample_sequences(params.num_sequences, params.seed, SampleParams::default());
    let vocab = Vocab::full();
    let specs = all_regions();
    let total = specs.len();

    let span = irnuma_obs::span!(
        "dataset.build",
        regions = specs.len(),
        sequences = sequences.len(),
        configs = configs.len()
    );
    let ctx = span.ctx();
    let results: Vec<Result<RegionData, SkipRecord>> = specs
        .into_par_iter()
        .map(|spec| {
            build_region_tolerant(&spec, &machine, &configs, &sequences, &vocab, params, opts, ctx)
        })
        .collect();

    let mut regions = Vec::with_capacity(total);
    let mut skips = Vec::new();
    for res in results {
        match res {
            Ok(r) => regions.push(r),
            Err(skip) => {
                if opts.strict {
                    return Err(DatasetError::RegionFailed(skip));
                }
                irnuma_obs::counter!("dataset.skipped").inc(1);
                skips.push(skip);
            }
        }
    }
    if regions.is_empty() {
        return Err(DatasetError::NoRegionsSurvived { total, skips });
    }

    // Step C: reduce the space to `num_labels` representative configs.
    let times: Vec<Vec<f64>> = regions.iter().map(|r| r.sweep.clone()).collect();
    let base: Vec<f64> = regions.iter().map(|r| r.default_time).collect();
    let chosen_configs = irnuma_ml::reduce_labels(&times, &base, params.num_labels);
    let labels = irnuma_ml::labels::label_per_region(&times, &chosen_configs);

    let dataset =
        Dataset { machine, size: params.size, sequences, configs, regions, chosen_configs, labels };
    Ok(DatasetBuild { dataset, skips })
}

/// Fault-isolated build of one region: a span under `ctx`, a
/// [`catch_unwind`] around every stage, and one retry before the failure is
/// condensed into a [`SkipRecord`]. Shared by the in-memory build above and
/// the sharded packed build ([`crate::dataset_pack::build_packed_dataset`]).
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_region_tolerant(
    spec: &RegionSpec,
    machine: &Machine,
    configs: &[Config],
    sequences: &[FlagSequence],
    vocab: &Vocab,
    params: &DatasetParams,
    opts: &BuildOptions,
    ctx: irnuma_obs::TraceContext,
) -> Result<RegionData, SkipRecord> {
    let _region_span = irnuma_obs::span_under!(ctx, "dataset.region", region = spec.name.as_str());
    let run = |attempt: u32| {
        catch_unwind(AssertUnwindSafe(|| {
            build_region(spec, machine, configs, sequences, vocab, params, {
                opts.fault.as_deref().filter(|f| fault_hits(f, &spec.name, attempt))
            })
        }))
        .unwrap_or_else(|payload| {
            Err(RegionError { stage: "panic", sequence: None, error: panic_msg(&payload) })
        })
    };
    run(0).or_else(|first| {
        // One retry covers transient failures (I/O hiccups, the `:once`
        // injected fault); a deterministic error repeats.
        irnuma_obs::counter!("dataset.retried").inc(1);
        irnuma_obs::warn!(
            "{}: attempt 1 failed at {} ({}); retrying once",
            spec.name,
            first.stage,
            first.error
        );
        run(1).map_err(|e| SkipRecord {
            region: spec.name.clone(),
            sequence: e.sequence,
            stage: e.stage.to_string(),
            error: e.error,
            attempts: 2,
        })
    })
}

/// Does the `--fault` spec hit `region` on this attempt?
fn fault_hits(spec: &str, region: &str, attempt: u32) -> bool {
    match spec.strip_suffix(":once") {
        Some(name) => name == region && attempt == 0,
        None => spec == region,
    }
}

fn panic_msg(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_else(|| "region build panicked".to_string())
}

fn build_region(
    spec: &RegionSpec,
    machine: &Machine,
    configs: &[Config],
    sequences: &[FlagSequence],
    vocab: &Vocab,
    params: &DatasetParams,
    injected_fault: Option<&str>,
) -> Result<RegionData, RegionError> {
    if injected_fault.is_some() {
        return Err(RegionError {
            stage: "injected",
            sequence: None,
            error: "injected fault (--fault test hook)".to_string(),
        });
    }

    // Step A+B: one graph per flag sequence.
    let base_module = spec.module();
    let pm = PassManager::new(false);
    let mut graphs = Vec::with_capacity(sequences.len());
    for seq in sequences {
        let mut m = base_module.clone();
        pm.run(&mut m, &seq.passes).map_err(|e| RegionError {
            stage: "passes",
            sequence: Some(seq.id),
            error: e.to_string(),
        })?;
        let extracted = extract_region(&m, &spec.region_fn()).map_err(|e| RegionError {
            stage: "extract",
            sequence: Some(seq.id),
            error: e.to_string(),
        })?;
        graphs.push(GraphData::from_graph(&build_module_graph(&extracted, vocab)));
    }

    // Step C (per-region part): the sweep with default compile flags. A
    // panicking configuration fails just this region, not the whole build.
    let sweep: Vec<f64> = configs
        .iter()
        .map(|c| {
            irnuma_sim::try_mean_time(spec, machine, c, params.size, params.calls)
                .map_err(|e| RegionError { stage: "sweep", sequence: None, error: e })
        })
        .collect::<Result<_, _>>()?;

    let def = default_config(machine);
    let def_idx = configs.iter().position(|c| *c == def).ok_or_else(|| RegionError {
        stage: "sweep",
        sequence: None,
        error: "default configuration missing from the space".to_string(),
    })?;
    let default_time = sweep[def_idx];
    let meas = simulate(&spec.name, &spec.profile, machine, &def, params.size, 0);
    let dynamic_features =
        vec![meas.counters.package_power_w as f32, meas.counters.l3_miss_ratio as f32];

    Ok(RegionData { spec: spec.clone(), graphs, sweep, default_time, dynamic_features })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> DatasetParams {
        DatasetParams { num_sequences: 3, calls: 2, num_labels: 5, ..Default::default() }
    }

    #[test]
    fn dataset_has_all_regions_and_shapes() {
        let ds = build_dataset(MicroArch::Skylake, &tiny());
        assert_eq!(ds.regions.len(), 56);
        assert_eq!(ds.configs.len(), 288);
        assert_eq!(ds.sequences.len(), 3);
        assert_eq!(ds.chosen_configs.len(), 5);
        assert_eq!(ds.labels.len(), 56);
        for r in &ds.regions {
            assert_eq!(r.graphs.len(), 3);
            assert_eq!(r.sweep.len(), 288);
            assert!(r.default_time > 0.0);
            assert_eq!(r.dynamic_features.len(), 2);
        }
    }

    #[test]
    fn labels_index_into_chosen_set_and_oracle_beats_default_mostly() {
        let ds = build_dataset(MicroArch::Skylake, &tiny());
        let mut wins = 0;
        for (i, &l) in ds.labels.iter().enumerate() {
            assert!(l < ds.chosen_configs.len());
            if ds.oracle_time(i) <= ds.regions[i].default_time {
                wins += 1;
            }
        }
        assert!(wins >= 50, "label-set oracle beats default on most regions: {wins}/56");
    }

    #[test]
    fn thirteen_labels_cover_99_percent_of_gains() {
        // The paper's property (§II-C): 13 configurations retain ~99% of
        // the gains of the full space.
        let params =
            DatasetParams { num_sequences: 2, calls: 3, num_labels: 13, ..Default::default() };
        for arch in [MicroArch::Skylake, MicroArch::SandyBridge] {
            let ds = build_dataset(arch, &params);
            let cov = ds.label_coverage();
            assert!(cov > 0.97, "{arch:?}: 13-label coverage {cov}");
        }
    }

    #[test]
    fn dataset_caches_to_json_and_back() {
        let ds = build_dataset(MicroArch::Skylake, &tiny());
        let dir = std::env::temp_dir().join("irnuma-test-cache");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.json");
        ds.save_json(&path).unwrap();
        let loaded = Dataset::load_json(&path).unwrap();
        assert_eq!(loaded.labels, ds.labels);
        assert_eq!(loaded.chosen_configs, ds.chosen_configs);
        assert_eq!(loaded.regions.len(), 56);
        assert_eq!(loaded.regions[3].sweep, ds.regions[3].sweep);
        assert_eq!(loaded.regions[3].graphs[0].node_text, ds.regions[3].graphs[0].node_text);

        // A truncated cache (torn write, partial download) must fail with
        // InvalidData — never parse into a garbage dataset.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 100]).unwrap();
        let err = Dataset::load_json(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    fn tinier() -> DatasetParams {
        DatasetParams { num_sequences: 2, calls: 2, num_labels: 3, ..Default::default() }
    }

    #[test]
    fn poisoned_region_is_skipped_and_the_rest_survive() {
        let opts = BuildOptions { fault: Some("cg.spmv".into()), ..Default::default() };
        let b = build_dataset_report(MicroArch::Skylake, &tinier(), &opts).unwrap();
        assert_eq!(b.dataset.regions.len(), 55, "exactly the poisoned region is gone");
        assert!(b.dataset.regions.iter().all(|r| r.spec.name != "cg.spmv"));
        assert_eq!(b.skips.len(), 1, "exactly one skip recorded");
        let s = &b.skips[0];
        assert_eq!((s.region.as_str(), s.stage.as_str(), s.attempts), ("cg.spmv", "injected", 2));
        assert_eq!(b.dataset.labels.len(), 55);
        assert!(b.skips[0].to_string().contains("cg.spmv"));
    }

    #[test]
    fn transient_fault_recovers_on_the_retry() {
        let opts = BuildOptions { fault: Some("cg.spmv:once".into()), ..Default::default() };
        let b = build_dataset_report(MicroArch::Skylake, &tinier(), &opts).unwrap();
        assert_eq!(b.dataset.regions.len(), 56, "transient failure retried, nothing lost");
        assert!(b.skips.is_empty());
    }

    #[test]
    fn strict_mode_fails_fast_on_a_poisoned_region() {
        let opts = BuildOptions { strict: true, fault: Some("cg.spmv".into()) };
        let err = build_dataset_report(MicroArch::Skylake, &tinier(), &opts).unwrap_err();
        assert!(err.to_string().contains("strict"), "{err}");
        match err {
            DatasetError::RegionFailed(s) => assert_eq!(s.region, "cg.spmv"),
            other => panic!("expected RegionFailed, got: {other}"),
        }
    }

    #[test]
    fn fault_spec_matching() {
        assert!(fault_hits("cg.spmv", "cg.spmv", 0));
        assert!(fault_hits("cg.spmv", "cg.spmv", 1));
        assert!(!fault_hits("cg.spmv", "cg.axpy", 0));
        assert!(fault_hits("cg.spmv:once", "cg.spmv", 0));
        assert!(!fault_hits("cg.spmv:once", "cg.spmv", 1));
    }

    #[test]
    fn dataset_is_deterministic() {
        let a = build_dataset(MicroArch::Skylake, &tiny());
        let b = build_dataset(MicroArch::Skylake, &tiny());
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.chosen_configs, b.chosen_configs);
        assert_eq!(a.regions[7].sweep, b.regions[7].sweep);
        assert_eq!(a.regions[7].graphs[0].node_text, b.regions[7].graphs[0].node_text);
    }
}
