//! Dataset construction: steps A (flag augmentation), B (region graphs) and
//! C (configuration sweep + label reduction) of the paper's workflow.

use irnuma_graph::{build_module_graph, Vocab};
use irnuma_ir::extract::extract_region;
use irnuma_nn::GraphData;
use irnuma_passes::{sample_sequences, FlagSequence, PassManager, SampleParams};
use irnuma_sim::{config_space, default_config, simulate, Config, Machine, MicroArch};
use irnuma_workloads::{all_regions, InputSize, RegionSpec};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Dataset-construction knobs.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DatasetParams {
    /// Flag sequences sampled for augmentation (the paper uses 1000).
    pub num_sequences: usize,
    /// Sampled calls per configuration during the sweep (paper: 10).
    pub calls: u32,
    /// Label-set size (13 by default, as in the paper; 6 and 2 in Fig. 6).
    pub num_labels: usize,
    pub size: InputSize,
    pub seed: u64,
}

impl Default for DatasetParams {
    fn default() -> Self {
        DatasetParams {
            num_sequences: 48,
            calls: 6,
            num_labels: 13,
            size: InputSize::Size1,
            seed: 42,
        }
    }
}

/// Everything known about one region after steps A–C.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegionData {
    pub spec: RegionSpec,
    /// One graph per flag sequence (aligned with [`Dataset::sequences`]).
    pub graphs: Vec<GraphData>,
    /// Mean execution time per configuration, in [`Dataset::configs`] order.
    pub sweep: Vec<f64>,
    /// Time under the machine default (the speedup baseline).
    pub default_time: f64,
    /// Dynamic features at the default configuration: the counter vector
    /// the dynamic baseline trains on (package power, L3 miss ratio).
    pub dynamic_features: Vec<f32>,
}

impl RegionData {
    /// Best time over the full space (the "full exploration" bar).
    pub fn full_best_time(&self) -> f64 {
        self.sweep.iter().cloned().fold(f64::INFINITY, f64::min)
    }
}

/// The complete experiment dataset for one machine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    pub machine: Machine,
    pub size: InputSize,
    pub sequences: Vec<FlagSequence>,
    pub configs: Vec<Config>,
    pub regions: Vec<RegionData>,
    /// Indices (into `configs`) of the reduced label set, selection order.
    pub chosen_configs: Vec<usize>,
    /// Per-region class label: index into `chosen_configs`.
    pub labels: Vec<usize>,
}

impl Dataset {
    /// Serialize the dataset to a JSON file (cache for repeated experiment
    /// runs: steps A–C dominate wall time at paper scale).
    pub fn save_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        let json = serde_json::to_vec(self).expect("dataset serializes");
        std::fs::write(path, json)
    }

    /// Load a dataset cached with [`Dataset::save_json`].
    pub fn load_json(path: &std::path::Path) -> std::io::Result<Dataset> {
        let bytes = std::fs::read(path)?;
        serde_json::from_slice(&bytes)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Time of `region` under label class `label`.
    pub fn label_time(&self, region: usize, label: usize) -> f64 {
        self.regions[region].sweep[self.chosen_configs[label]]
    }

    /// Best achievable time restricted to the label set (the "oracle" the
    /// classifiers are scored against).
    pub fn oracle_time(&self, region: usize) -> f64 {
        self.label_time(region, self.labels[region])
    }

    /// Fraction of full-space gains the label set retains (paper: ≥99% for
    /// the 13-label set).
    pub fn label_coverage(&self) -> f64 {
        let times: Vec<Vec<f64>> = self.regions.iter().map(|r| r.sweep.clone()).collect();
        let base: Vec<f64> = self.regions.iter().map(|r| r.default_time).collect();
        irnuma_ml::coverage(&times, &base, &self.chosen_configs)
    }
}

/// Build the dataset for a machine (steps A–C). Deterministic in
/// `params.seed`. Parallelized over regions.
pub fn build_dataset(arch: MicroArch, params: &DatasetParams) -> Dataset {
    let machine = Machine::new(arch);
    let configs = config_space(&machine);
    let sequences = sample_sequences(params.num_sequences, params.seed, SampleParams::default());
    let vocab = Vocab::full();
    let specs = all_regions();

    let span = irnuma_obs::span!(
        "dataset.build",
        regions = specs.len(),
        sequences = sequences.len(),
        configs = configs.len()
    );
    let ctx = span.ctx();
    let regions: Vec<RegionData> = specs
        .into_par_iter()
        .map(|spec| {
            let _region_span =
                irnuma_obs::span_under!(ctx, "dataset.region", region = spec.name.as_str());
            build_region(&spec, &machine, &configs, &sequences, &vocab, params)
        })
        .collect();

    // Step C: reduce the space to `num_labels` representative configs.
    let times: Vec<Vec<f64>> = regions.iter().map(|r| r.sweep.clone()).collect();
    let base: Vec<f64> = regions.iter().map(|r| r.default_time).collect();
    let chosen_configs = irnuma_ml::reduce_labels(&times, &base, params.num_labels);
    let labels = irnuma_ml::labels::label_per_region(&times, &chosen_configs);

    Dataset { machine, size: params.size, sequences, configs, regions, chosen_configs, labels }
}

fn build_region(
    spec: &RegionSpec,
    machine: &Machine,
    configs: &[Config],
    sequences: &[FlagSequence],
    vocab: &Vocab,
    params: &DatasetParams,
) -> RegionData {
    // Step A+B: one graph per flag sequence.
    let base_module = spec.module();
    let pm = PassManager::new(false);
    let graphs: Vec<GraphData> = sequences
        .iter()
        .map(|seq| {
            let mut m = base_module.clone();
            pm.run(&mut m, &seq.passes)
                .unwrap_or_else(|e| panic!("{} × seq{}: {e}", spec.name, seq.id));
            let extracted = extract_region(&m, &spec.region_fn()).expect("region survives passes");
            GraphData::from_graph(&build_module_graph(&extracted, vocab))
        })
        .collect();

    // Step C (per-region part): the sweep with default compile flags.
    let sweep: Vec<f64> = configs
        .iter()
        .map(|c| {
            let total: f64 = (0..params.calls)
                .map(|k| simulate(&spec.name, &spec.profile, machine, c, params.size, k).seconds)
                .sum();
            total / params.calls as f64
        })
        .collect();

    let def = default_config(machine);
    let def_idx = configs.iter().position(|c| *c == def).expect("default in space");
    let default_time = sweep[def_idx];
    let meas = simulate(&spec.name, &spec.profile, machine, &def, params.size, 0);
    let dynamic_features =
        vec![meas.counters.package_power_w as f32, meas.counters.l3_miss_ratio as f32];

    RegionData { spec: spec.clone(), graphs, sweep, default_time, dynamic_features }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> DatasetParams {
        DatasetParams { num_sequences: 3, calls: 2, num_labels: 5, ..Default::default() }
    }

    #[test]
    fn dataset_has_all_regions_and_shapes() {
        let ds = build_dataset(MicroArch::Skylake, &tiny());
        assert_eq!(ds.regions.len(), 56);
        assert_eq!(ds.configs.len(), 288);
        assert_eq!(ds.sequences.len(), 3);
        assert_eq!(ds.chosen_configs.len(), 5);
        assert_eq!(ds.labels.len(), 56);
        for r in &ds.regions {
            assert_eq!(r.graphs.len(), 3);
            assert_eq!(r.sweep.len(), 288);
            assert!(r.default_time > 0.0);
            assert_eq!(r.dynamic_features.len(), 2);
        }
    }

    #[test]
    fn labels_index_into_chosen_set_and_oracle_beats_default_mostly() {
        let ds = build_dataset(MicroArch::Skylake, &tiny());
        let mut wins = 0;
        for (i, &l) in ds.labels.iter().enumerate() {
            assert!(l < ds.chosen_configs.len());
            if ds.oracle_time(i) <= ds.regions[i].default_time {
                wins += 1;
            }
        }
        assert!(wins >= 50, "label-set oracle beats default on most regions: {wins}/56");
    }

    #[test]
    fn thirteen_labels_cover_99_percent_of_gains() {
        // The paper's property (§II-C): 13 configurations retain ~99% of
        // the gains of the full space.
        let params =
            DatasetParams { num_sequences: 2, calls: 3, num_labels: 13, ..Default::default() };
        for arch in [MicroArch::Skylake, MicroArch::SandyBridge] {
            let ds = build_dataset(arch, &params);
            let cov = ds.label_coverage();
            assert!(cov > 0.97, "{arch:?}: 13-label coverage {cov}");
        }
    }

    #[test]
    fn dataset_caches_to_json_and_back() {
        let ds = build_dataset(MicroArch::Skylake, &tiny());
        let dir = std::env::temp_dir().join("irnuma-test-cache");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.json");
        ds.save_json(&path).unwrap();
        let loaded = Dataset::load_json(&path).unwrap();
        assert_eq!(loaded.labels, ds.labels);
        assert_eq!(loaded.chosen_configs, ds.chosen_configs);
        assert_eq!(loaded.regions.len(), 56);
        assert_eq!(loaded.regions[3].sweep, ds.regions[3].sweep);
        assert_eq!(loaded.regions[3].graphs[0].node_text, ds.regions[3].graphs[0].node_text);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dataset_is_deterministic() {
        let a = build_dataset(MicroArch::Skylake, &tiny());
        let b = build_dataset(MicroArch::Skylake, &tiny());
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.chosen_configs, b.chosen_configs);
        assert_eq!(a.regions[7].sweep, b.regions[7].sweep);
        assert_eq!(a.regions[7].graphs[0].node_text, b.regions[7].graphs[0].node_text);
    }
}
