//! Packed (out-of-core) dataset storage: binary graph shards + JSON meta.
//!
//! A pack directory holds three kinds of files:
//!
//! - `shard-NNNN.bin` — `irnuma_store::shard` files of kind `graph-shard`;
//!   each record is `[u32 region][u32 sequence]` followed by one
//!   `irnuma_nn::binfmt` graph (CSR/CSC adjacency embedded, so streamed
//!   training never rebuilds it).
//! - `regions.bin` — one checksummed record per region with its float
//!   tables (config sweep, dynamic features, default time). These dominate
//!   the non-graph bytes of a dataset, so they live in the same binary
//!   record format as the graphs instead of bloating the JSON meta.
//! - `meta.json` — everything about the dataset *except* the graphs and
//!   the per-region float tables ([`PackedMeta`]): machine, sequences,
//!   configs, label set. Small, human-inspectable, store-framed.
//! - `manifest.json` — the shard list with whole-file checksums
//!   ([`irnuma_store::shard::ShardManifest`]). Written **last**, after every
//!   shard and the meta: an interrupted pack has no manifest and is simply
//!   not a pack, so the atomicity of the whole directory reduces to the
//!   atomicity of one `irnuma_store` write.
//!
//! Sharded builds ([`build_packed_dataset`]) reuse the PR 3 fault-isolation
//! machinery per region and keep only one region-group's graphs resident:
//! survivors are encoded into the group's shard and dropped before the next
//! group builds, so peak memory is bounded by the group size, not the
//! corpus.

use crate::dataset::{
    build_region_tolerant, BuildOptions, Dataset, DatasetError, DatasetParams, RegionData,
    SkipRecord,
};
use irnuma_graph::Vocab;
use irnuma_nn::stream::{RecordMap, ShardStream, GRAPH_SHARD_KIND, RECORD_PREFIX};
use irnuma_nn::{decode_graph, encode_graph, GraphData};
use irnuma_passes::{sample_sequences, FlagSequence, SampleParams};
use irnuma_sim::{config_space, Config, Machine, MicroArch};
use irnuma_store::shard::{parse_shard, ShardEntry, ShardManifest, ShardWriter};
use irnuma_store::{corruption, invalid};
use irnuma_workloads::{all_regions, InputSize};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;

/// File name of the dataset meta inside a pack directory.
pub const META_FILE: &str = "meta.json";

/// File name of the per-region float tables inside a pack directory.
pub const REGIONS_FILE: &str = "regions.bin";

const META_KIND: &str = "dataset-meta";
const REGION_TABLE_KIND: &str = "region-tables";

/// One region's identity in the meta; its float tables (sweep, dynamic
/// features, default time) live as the matching record of `regions.bin`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PackedRegion {
    pub spec: irnuma_workloads::RegionSpec,
    /// Graphs this region contributed (one per flag sequence).
    pub graph_count: usize,
}

/// The pack's dataset-level state: a [`Dataset`] with graphs externalized
/// to the binary shards and the per-region float tables to `regions.bin`
/// (whose [`ShardEntry`] is carried here so loads can verify it).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PackedMeta {
    pub machine: Machine,
    pub size: InputSize,
    pub sequences: Vec<FlagSequence>,
    pub configs: Vec<Config>,
    pub regions: Vec<PackedRegion>,
    pub region_tables: ShardEntry,
    pub chosen_configs: Vec<usize>,
    pub labels: Vec<usize>,
}

impl PackedMeta {
    pub fn save(&self, dir: &Path) -> io::Result<()> {
        irnuma_store::save_json(&dir.join(META_FILE), META_KIND, self)
    }

    pub fn total_graphs(&self) -> usize {
        self.regions.iter().map(|r| r.graph_count).sum()
    }
}

/// Load a pack directory's meta (no graphs touched).
pub fn read_meta(dir: &Path) -> io::Result<PackedMeta> {
    irnuma_store::load_json(&dir.join(META_FILE), META_KIND)
}

/// What [`pack_dataset`] wrote.
#[derive(Debug, Clone, Copy)]
pub struct PackSummary {
    pub shards: usize,
    pub graphs: usize,
    pub bytes: u64,
}

/// Encode one region's float tables as a `regions.bin` record:
/// `[u32 sweep_len][f64 sweep…][u32 dyn_len][f32 dyn…][f64 default_time]`,
/// all little-endian.
fn encode_region_tables(sweep: &[f64], dynamic: &[f32], default_time: f64, out: &mut Vec<u8>) {
    out.clear();
    out.extend_from_slice(&(sweep.len() as u32).to_le_bytes());
    for v in sweep {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out.extend_from_slice(&(dynamic.len() as u32).to_le_bytes());
    for v in dynamic {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out.extend_from_slice(&default_time.to_le_bytes());
}

/// One region's decoded float tables: `(sweep, dynamic_features,
/// default_time)`.
type RegionTables = (Vec<f64>, Vec<f32>, f64);

fn decode_region_tables(rec: &[u8]) -> io::Result<RegionTables> {
    fn take<'a>(rec: &'a [u8], at: &mut usize, n: usize) -> io::Result<&'a [u8]> {
        let end = at
            .checked_add(n)
            .filter(|&e| e <= rec.len())
            .ok_or_else(|| corruption("regions.bin record truncated".to_string()))?;
        let s = &rec[*at..end];
        *at = end;
        Ok(s)
    }
    let overflow = || corruption("regions.bin record length overflow".to_string());
    let mut at = 0usize;
    let sweep_len = u32::from_le_bytes(take(rec, &mut at, 4)?.try_into().unwrap()) as usize;
    let sweep = take(rec, &mut at, sweep_len.checked_mul(8).ok_or_else(overflow)?)?
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    let dyn_len = u32::from_le_bytes(take(rec, &mut at, 4)?.try_into().unwrap()) as usize;
    let dynamic = take(rec, &mut at, dyn_len.checked_mul(4).ok_or_else(overflow)?)?
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
        .collect();
    let default_time = f64::from_le_bytes(take(rec, &mut at, 8)?.try_into().unwrap());
    if at != rec.len() {
        return Err(invalid(format!("regions.bin record has {} trailing bytes", rec.len() - at)));
    }
    Ok((sweep, dynamic, default_time))
}

/// Write `regions.bin` from per-region `(sweep, dynamic_features,
/// default_time)` rows, returning its manifest-style entry for the meta.
fn write_region_tables<'a, I>(dir: &Path, rows: I) -> io::Result<ShardEntry>
where
    I: Iterator<Item = (&'a [f64], &'a [f32], f64)>,
{
    let mut writer = ShardWriter::new(REGION_TABLE_KIND);
    let mut rec = Vec::new();
    for (sweep, dynamic, default_time) in rows {
        encode_region_tables(sweep, dynamic, default_time, &mut rec);
        writer.push(&rec);
    }
    writer.finish(dir, REGIONS_FILE)
}

/// Read and verify `regions.bin` against its meta entry: structural length
/// gate, per-record checksums via [`parse_shard`], and an exact region
/// count match.
fn read_region_tables(
    dir: &Path,
    entry: &ShardEntry,
    expected: usize,
) -> io::Result<Vec<RegionTables>> {
    let bytes = std::fs::read(dir.join(&entry.file))
        .map_err(|e| io::Error::new(e.kind(), format!("reading `{}`: {e}", entry.file)))?;
    if bytes.len() as u64 != entry.bytes {
        return Err(corruption(format!(
            "`{}` is {} bytes, meta says {}",
            entry.file,
            bytes.len(),
            entry.bytes
        )));
    }
    entry.checksum()?; // reject malformed meta checksums up front
    let ranges = parse_shard(REGION_TABLE_KIND, &bytes)?;
    if ranges.len() != expected {
        return Err(invalid(format!(
            "`{}` holds {} region records, meta lists {expected} regions",
            entry.file,
            ranges.len()
        )));
    }
    ranges.into_iter().map(|r| decode_region_tables(&bytes[r])).collect()
}

/// Pack an in-memory [`Dataset`] into `dir`: binary graph shards of
/// `shard_graphs` records each, the meta, and — last — the manifest.
pub fn pack_dataset(ds: &Dataset, dir: &Path, shard_graphs: usize) -> io::Result<PackSummary> {
    let span = irnuma_obs::span!("dataset.pack", regions = ds.regions.len());
    let _ = &span;
    let mut manifest = ShardManifest::default();
    let mut writer = ShardWriter::new(GRAPH_SHARD_KIND);
    let mut rec = Vec::new();
    let mut graphs = 0usize;
    for (ri, region) in ds.regions.iter().enumerate() {
        for (si, g) in region.graphs.iter().enumerate() {
            rec.clear();
            rec.extend_from_slice(&(ri as u32).to_le_bytes());
            rec.extend_from_slice(&(si as u32).to_le_bytes());
            encode_graph(g, &mut rec);
            writer.push(&rec);
            graphs += 1;
            if writer.records() >= shard_graphs.max(1) {
                let full = std::mem::replace(&mut writer, ShardWriter::new(GRAPH_SHARD_KIND));
                let file = format!("shard-{:04}.bin", manifest.entries.len());
                manifest.entries.push(full.finish(dir, &file)?);
            }
        }
    }
    if !writer.is_empty() {
        let file = format!("shard-{:04}.bin", manifest.entries.len());
        manifest.entries.push(writer.finish(dir, &file)?);
    }

    let region_tables = write_region_tables(
        dir,
        ds.regions
            .iter()
            .map(|r| (r.sweep.as_slice(), r.dynamic_features.as_slice(), r.default_time)),
    )?;
    let meta = PackedMeta {
        machine: ds.machine.clone(),
        size: ds.size,
        sequences: ds.sequences.clone(),
        configs: ds.configs.clone(),
        regions: ds
            .regions
            .iter()
            .map(|r| PackedRegion { spec: r.spec.clone(), graph_count: r.graphs.len() })
            .collect(),
        region_tables,
        chosen_configs: ds.chosen_configs.clone(),
        labels: ds.labels.clone(),
    };
    meta.save(dir)?;
    let bytes = manifest.total_bytes();
    manifest.save(dir)?; // the commit point: no manifest, no pack
    Ok(PackSummary { shards: manifest.entries.len(), graphs, bytes })
}

/// Load a whole pack back into an in-memory [`Dataset`] (the legacy-path
/// bridge: `predict`, evaluation, and small-corpus training all take a
/// resident dataset). Every shard is checksum-verified; a record for an
/// unknown `(region, sequence)`, a duplicate, or a missing graph is
/// [`io::ErrorKind::InvalidData`].
pub fn load_packed(dir: &Path) -> io::Result<Dataset> {
    let meta = read_meta(dir)?;
    let manifest = ShardManifest::load(dir)?;
    let tables = read_region_tables(dir, &meta.region_tables, meta.regions.len())?;
    let mut regions: Vec<RegionData> = meta
        .regions
        .iter()
        .zip(tables)
        .map(|(p, (sweep, dynamic_features, default_time))| RegionData {
            spec: p.spec.clone(),
            graphs: (0..p.graph_count)
                .map(|_| GraphData::from_parts(Vec::new(), Default::default(), Default::default()))
                .collect(),
            sweep,
            default_time,
            dynamic_features,
        })
        .collect();
    let mut filled: Vec<Vec<bool>> =
        meta.regions.iter().map(|p| vec![false; p.graph_count]).collect();

    for entry in &manifest.entries {
        let bytes = std::fs::read(dir.join(&entry.file)).map_err(|e| {
            io::Error::new(e.kind(), format!("reading shard `{}`: {e}", entry.file))
        })?;
        // Cheap structural gate against the manifest; byte integrity is
        // covered by the per-record checksums `parse_shard` verifies, so
        // the payload is hashed exactly once on this hot path. The
        // whole-file checksum is re-derivable via [`ShardManifest::verify`]
        // (`irnuma dataset info --verify`).
        if bytes.len() as u64 != entry.bytes {
            return Err(corruption(format!(
                "shard `{}` is {} bytes, manifest says {}",
                entry.file,
                bytes.len(),
                entry.bytes
            )));
        }
        entry.checksum()?; // reject malformed manifest checksums up front
        for range in parse_shard(GRAPH_SHARD_KIND, &bytes)? {
            let rec = &bytes[range];
            if rec.len() < RECORD_PREFIX {
                return Err(corruption(format!(
                    "shard `{}`: record too short for its (region, sequence) prefix",
                    entry.file
                )));
            }
            let r = u32::from_le_bytes(rec[..4].try_into().unwrap()) as usize;
            let s = u32::from_le_bytes(rec[4..8].try_into().unwrap()) as usize;
            let slot = filled.get_mut(r).and_then(|f| f.get_mut(s)).ok_or_else(|| {
                invalid(format!(
                    "shard `{}`: record for unknown (region {r}, sequence {s})",
                    entry.file
                ))
            })?;
            if *slot {
                return Err(invalid(format!(
                    "shard `{}`: duplicate record for (region {r}, sequence {s})",
                    entry.file
                )));
            }
            regions[r].graphs[s] = decode_graph(&rec[RECORD_PREFIX..])?;
            *slot = true;
        }
    }
    for (r, region_filled) in filled.iter().enumerate() {
        if let Some(s) = region_filled.iter().position(|&f| !f) {
            return Err(invalid(format!(
                "pack is missing the graph for (region {r}, sequence {s})"
            )));
        }
    }

    Ok(Dataset {
        machine: meta.machine,
        size: meta.size,
        sequences: meta.sequences,
        configs: meta.configs,
        regions,
        chosen_configs: meta.chosen_configs,
        labels: meta.labels,
    })
}

/// Open a streaming source over a pack: records of sequences in
/// `train_seqs` (indices into `meta.sequences`) are labeled with their
/// region's class; everything else is filtered out at decode time.
pub fn open_stream(dir: &Path, meta: &PackedMeta, train_seqs: &[usize]) -> io::Result<ShardStream> {
    let mut allow = vec![false; meta.sequences.len()];
    for &s in train_seqs {
        if let Some(a) = allow.get_mut(s) {
            *a = true;
        }
    }
    let labels = meta.labels.clone();
    let map: RecordMap = Box::new(move |region, seq| {
        if !allow.get(seq as usize).copied().unwrap_or(false) {
            return None;
        }
        labels.get(region as usize).copied()
    });
    ShardStream::open(dir, map)
}

/// A sharded build's outcome summary.
#[derive(Debug, Clone)]
pub struct PackedBuild {
    pub regions: usize,
    pub graphs: usize,
    pub shards: usize,
    pub label_coverage: f64,
    pub skips: Vec<SkipRecord>,
}

/// Build the dataset straight into a pack directory, one shard per group
/// of `shard_regions` regions. Groups build in sequence; regions within a
/// group build in parallel with the same fault isolation as
/// [`crate::dataset::build_dataset_report`] (catch_unwind, one retry,
/// [`SkipRecord`]s, `dataset.skipped`/`dataset.retried` counters). Each
/// group's surviving graphs are encoded into its shard and dropped before
/// the next group starts, so peak memory is one group, not the corpus. The
/// manifest is written last — a crashed build leaves no loadable pack.
pub fn build_packed_dataset(
    arch: MicroArch,
    params: &DatasetParams,
    opts: &BuildOptions,
    dir: &Path,
    shard_regions: usize,
) -> Result<PackedBuild, DatasetError> {
    let machine = Machine::new(arch);
    let configs = config_space(&machine);
    let sequences = sample_sequences(params.num_sequences, params.seed, SampleParams::default());
    let vocab = Vocab::full();
    let specs = all_regions();
    let total = specs.len();

    let span = irnuma_obs::span!(
        "dataset.build",
        regions = total,
        sequences = sequences.len(),
        configs = configs.len()
    );
    let ctx = span.ctx();

    let mut manifest = ShardManifest::default();
    let mut packed_regions: Vec<PackedRegion> = Vec::with_capacity(total);
    let mut times: Vec<Vec<f64>> = Vec::with_capacity(total);
    let mut base: Vec<f64> = Vec::with_capacity(total);
    let mut dyns: Vec<Vec<f32>> = Vec::with_capacity(total);
    let mut skips = Vec::new();
    let mut graphs_total = 0usize;
    let mut rec = Vec::new();

    for group in specs.chunks(shard_regions.max(1)) {
        let results: Vec<Result<RegionData, SkipRecord>> = group
            .par_iter()
            .map(|spec| {
                build_region_tolerant(
                    spec, &machine, &configs, &sequences, &vocab, params, opts, ctx,
                )
            })
            .collect();
        let mut writer = ShardWriter::new(GRAPH_SHARD_KIND);
        for res in results {
            match res {
                Ok(r) => {
                    let region_idx = packed_regions.len() as u32;
                    for (seq, g) in r.graphs.iter().enumerate() {
                        rec.clear();
                        rec.extend_from_slice(&region_idx.to_le_bytes());
                        rec.extend_from_slice(&(seq as u32).to_le_bytes());
                        encode_graph(g, &mut rec);
                        writer.push(&rec);
                    }
                    graphs_total += r.graphs.len();
                    times.push(r.sweep);
                    base.push(r.default_time);
                    dyns.push(r.dynamic_features);
                    packed_regions
                        .push(PackedRegion { spec: r.spec, graph_count: sequences.len() });
                    // r.graphs drop here — the group is this build's
                    // high-water mark, not the whole corpus.
                }
                Err(skip) => {
                    if opts.strict {
                        return Err(DatasetError::RegionFailed(skip));
                    }
                    irnuma_obs::counter!("dataset.skipped").inc(1);
                    skips.push(skip);
                }
            }
        }
        if !writer.is_empty() {
            let file = format!("shard-{:04}.bin", manifest.entries.len());
            manifest.entries.push(writer.finish(dir, &file)?);
        }
    }
    if packed_regions.is_empty() {
        return Err(DatasetError::NoRegionsSurvived { total, skips });
    }

    // Step C over the retained sweeps (the graphs are already on disk).
    let chosen_configs = irnuma_ml::reduce_labels(&times, &base, params.num_labels);
    let labels = irnuma_ml::labels::label_per_region(&times, &chosen_configs);
    let label_coverage = irnuma_ml::coverage(&times, &base, &chosen_configs);

    let region_tables = write_region_tables(
        dir,
        times.iter().zip(&dyns).zip(&base).map(|((sweep, dynamic), &default_time)| {
            (sweep.as_slice(), dynamic.as_slice(), default_time)
        }),
    )?;
    let meta = PackedMeta {
        machine,
        size: params.size,
        sequences,
        configs,
        regions: packed_regions,
        region_tables,
        chosen_configs,
        labels,
    };
    meta.save(dir)?;
    let shards = manifest.entries.len();
    manifest.save(dir)?; // the commit point
    Ok(PackedBuild {
        regions: meta.regions.len(),
        graphs: graphs_total,
        shards,
        label_coverage,
        skips,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{build_dataset_report, BuildOptions};
    use std::fs;
    use std::path::PathBuf;

    fn tdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join("irnuma-pack-test").join(name);
        fs::remove_dir_all(&d).ok();
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn tiny() -> DatasetParams {
        DatasetParams { num_sequences: 2, calls: 2, num_labels: 3, ..Default::default() }
    }

    fn assert_datasets_identical(a: &Dataset, b: &Dataset) {
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.chosen_configs, b.chosen_configs);
        assert_eq!(a.sequences.len(), b.sequences.len());
        assert_eq!(a.configs.len(), b.configs.len());
        assert_eq!(a.regions.len(), b.regions.len());
        for (x, y) in a.regions.iter().zip(&b.regions) {
            assert_eq!(x.spec.name, y.spec.name);
            assert_eq!(x.sweep, y.sweep);
            assert_eq!(x.default_time, y.default_time);
            assert_eq!(x.dynamic_features, y.dynamic_features);
            assert_eq!(x.graphs.len(), y.graphs.len());
            for (g, h) in x.graphs.iter().zip(&y.graphs) {
                assert_eq!(g.node_text, h.node_text);
                assert_eq!(g.edges, h.edges);
                assert_eq!(g.norm, h.norm);
            }
        }
    }

    #[test]
    fn pack_then_load_round_trips_bit_identically() {
        let ds = crate::dataset::build_dataset(MicroArch::Skylake, &tiny());
        let d = tdir("roundtrip");
        let summary = pack_dataset(&ds, &d, 16).unwrap();
        assert_eq!(summary.graphs, 56 * 2);
        assert_eq!(summary.shards, summary.graphs.div_ceil(16));
        ShardManifest::load(&d).unwrap().verify(&d).unwrap();

        let back = load_packed(&d).unwrap();
        assert_datasets_identical(&ds, &back);
        // And via the auto-detecting loader.
        let auto = Dataset::load_auto(&d).unwrap();
        assert_eq!(auto.labels, ds.labels);
    }

    #[test]
    fn sharded_build_matches_the_in_memory_build() {
        let d = tdir("build");
        let opts = BuildOptions::default();
        let built = build_packed_dataset(MicroArch::Skylake, &tiny(), &opts, &d, 10).unwrap();
        assert_eq!(built.regions, 56);
        assert_eq!(built.graphs, 56 * 2);
        assert_eq!(built.shards, 56usize.div_ceil(10));
        assert!(built.skips.is_empty());
        assert!(built.label_coverage > 0.9, "coverage {}", built.label_coverage);

        let from_pack = load_packed(&d).unwrap();
        let in_memory = build_dataset_report(MicroArch::Skylake, &tiny(), &opts).unwrap().dataset;
        assert_datasets_identical(&in_memory, &from_pack);
    }

    #[test]
    fn poisoned_region_is_skipped_in_a_sharded_build() {
        let d = tdir("poisoned");
        let opts = BuildOptions { fault: Some("cg.spmv".into()), ..Default::default() };
        let built = build_packed_dataset(MicroArch::Skylake, &tiny(), &opts, &d, 10).unwrap();
        assert_eq!(built.regions, 55);
        assert_eq!(built.skips.len(), 1);
        assert_eq!(built.skips[0].region, "cg.spmv");
        let back = load_packed(&d).unwrap();
        assert_eq!(back.regions.len(), 55);
        assert!(back.regions.iter().all(|r| r.spec.name != "cg.spmv"));
        assert_eq!(back.labels.len(), 55);
    }

    #[test]
    fn strict_sharded_build_fails_fast_and_leaves_no_manifest() {
        let d = tdir("strict");
        let opts = BuildOptions { strict: true, fault: Some("cg.spmv".into()) };
        let err = build_packed_dataset(MicroArch::Skylake, &tiny(), &opts, &d, 10).unwrap_err();
        assert!(matches!(err, DatasetError::RegionFailed(_)), "{err}");
        assert!(!ShardManifest::exists(&d), "aborted build must not look like a pack");
    }

    #[test]
    fn corrupt_or_missing_shards_fail_load_with_typed_errors() {
        let ds = crate::dataset::build_dataset(MicroArch::Skylake, &tiny());
        let d = tdir("corrupt");
        pack_dataset(&ds, &d, 16).unwrap();

        // Truncated shard.
        let shard = d.join("shard-0000.bin");
        let bytes = fs::read(&shard).unwrap();
        fs::write(&shard, &bytes[..bytes.len() / 2]).unwrap();
        let err = load_packed(&d).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // Bit-flipped record.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 9;
        flipped[last] ^= 0x08;
        fs::write(&shard, &flipped).unwrap();
        let err = load_packed(&d).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"), "{err}");

        // Missing shard still listed in the manifest.
        fs::remove_file(&shard).unwrap();
        let err = load_packed(&d).unwrap_err();
        assert!(err.to_string().contains("shard-0000.bin"), "{err}");
        // The streaming opener rejects it up front too.
        let meta = read_meta(&d).unwrap();
        let err = open_stream(&d, &meta, &[0, 1]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // Damaged region-tables sidecar: truncation trips the length gate,
        // a bit flip trips the per-record checksum.
        let d2 = tdir("corrupt-tables");
        pack_dataset(&ds, &d2, 16).unwrap();
        let tables = d2.join(REGIONS_FILE);
        let tbytes = fs::read(&tables).unwrap();
        fs::write(&tables, &tbytes[..tbytes.len() - 3]).unwrap();
        let err = load_packed(&d2).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("regions.bin"), "{err}");
        let mut tflipped = tbytes.clone();
        let mid = tflipped.len() / 2;
        tflipped[mid] ^= 0x01;
        fs::write(&tables, &tflipped).unwrap();
        let err = load_packed(&d2).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn stream_labels_come_from_the_region_label_table() {
        let ds = crate::dataset::build_dataset(MicroArch::Skylake, &tiny());
        let d = tdir("stream-labels");
        pack_dataset(&ds, &d, 32).unwrap();
        let meta = read_meta(&d).unwrap();
        let mut stream = open_stream(&d, &meta, &[0]).unwrap(); // sequence 0 only
        let n = irnuma_nn::stream::ShardSource::num_shards(&stream);
        let order: Vec<usize> = (0..n).collect();
        irnuma_nn::stream::ShardSource::begin_epoch(&mut stream, &order);
        let mut labels_seen = Vec::new();
        for _ in 0..n {
            let b = irnuma_nn::stream::ShardSource::next_shard(&mut stream).unwrap();
            labels_seen.extend_from_slice(&b.labels);
            irnuma_nn::stream::ShardSource::recycle(&mut stream, b);
        }
        // One record per region survives the sequence filter, in region
        // order (records were packed region-major).
        assert_eq!(labels_seen, meta.labels);
    }
}
