//! Cross-validated evaluation of all models (the machinery behind every
//! figure): 10 folds, each training the static model, dynamic baseline,
//! hybrid router, and flag model on 9 folds and scoring the held-out fold.

use crate::dataset::{build_dataset, Dataset, DatasetParams};
use crate::models::flags::FlagParams;
use crate::models::hybrid::{static_needs_profiling, HybridParams};
use crate::models::{DynamicModel, FlagModel, HybridModel, StaticModel, StaticParams};
use irnuma_ml::{kfold, relative_difference, CvError};
use irnuma_sim::MicroArch;
use serde::{Deserialize, Serialize};

/// Everything configurable about a full pipeline run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PipelineConfig {
    pub arch: MicroArch,
    pub dataset: DatasetParams,
    pub folds: usize,
    pub static_params: StaticParams,
    pub hybrid: HybridParams,
    pub flags: FlagParams,
    /// Skip the hybrid router and flag model (figures that only need the
    /// static/dynamic models, e.g. the Fig. 6 label sweep).
    pub light: bool,
    pub seed: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            arch: MicroArch::Skylake,
            dataset: DatasetParams::default(),
            folds: 10,
            static_params: StaticParams::default(),
            hybrid: HybridParams::default(),
            flags: FlagParams::default(),
            light: false,
            seed: 0xF01D,
        }
    }
}

impl PipelineConfig {
    /// A configuration small enough for unit/integration tests — including
    /// debug builds, where GNN training is an order of magnitude slower.
    pub fn fast(arch: MicroArch) -> PipelineConfig {
        PipelineConfig {
            arch,
            dataset: DatasetParams { num_sequences: 4, calls: 3, ..Default::default() },
            folds: 3,
            static_params: StaticParams {
                hidden: 16,
                epochs: 5,
                train_sequences: 2,
                ..Default::default()
            },
            hybrid: HybridParams {
                inner_folds: 2,
                ga: irnuma_ml::GaParams { population: 16, generations: 4, ..Default::default() },
                ..Default::default()
            },
            flags: FlagParams {
                ga: irnuma_ml::GaParams { population: 16, generations: 4, ..Default::default() },
                ..Default::default()
            },
            ..Default::default()
        }
    }
}

/// What happened to one region in its validation fold.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegionOutcome {
    pub region: usize,
    pub name: String,
    pub fold: usize,
    pub default_time: f64,
    pub full_best_time: f64,
    /// Best time within the reduced label set (per-region oracle).
    pub oracle_time: f64,
    pub oracle_label: usize,
    pub static_label: usize,
    pub static_time: f64,
    pub dynamic_label: usize,
    pub dynamic_time: f64,
    /// Whether the hybrid router sent this region to profiling.
    pub hybrid_used_dynamic: bool,
    pub hybrid_time: f64,
    /// Ground truth: the static prediction misses full exploration by >20%.
    pub needs_profiling: bool,
    /// Prediction error vs full exploration (relative difference).
    pub static_error: f64,
    pub dynamic_error: f64,
    /// Flag-model deployment: per-region predicted sequence and its time.
    pub predicted_seq: usize,
    pub predicted_seq_time: f64,
}

impl RegionOutcome {
    pub fn route_correct(&self) -> bool {
        self.hybrid_used_dynamic == self.needs_profiling
    }
}

/// The per-fold models, kept for the figure drivers that need embeddings or
/// extra predictions (e.g. per-sequence matrices).
pub struct FoldModels {
    pub fold: usize,
    pub validation: Vec<usize>,
    pub train: Vec<usize>,
    pub static_model: StaticModel,
    pub dynamic_model: DynamicModel,
    /// Absent in light mode.
    pub hybrid_model: Option<HybridModel>,
    /// Absent in light mode.
    pub flag_model: Option<FlagModel>,
}

/// The full evaluation result.
pub struct Evaluation {
    pub cfg: PipelineConfig,
    pub dataset: Dataset,
    /// One outcome per region (from the fold where it was validation).
    pub outcomes: Vec<RegionOutcome>,
    pub folds: Vec<FoldModels>,
    /// `pred_time[region][sequence]`: validation-time predicted-config time
    /// had the model used that sequence (Figs. 5 and 11).
    pub pred_time_by_seq: Vec<Vec<f64>>,
}

impl Evaluation {
    pub fn mean_speedup(&self, pick: impl Fn(&RegionOutcome) -> f64) -> f64 {
        self.outcomes.iter().map(|o| o.default_time / pick(o)).sum::<f64>()
            / self.outcomes.len() as f64
    }

    pub fn static_speedup(&self) -> f64 {
        self.mean_speedup(|o| o.static_time)
    }

    pub fn dynamic_speedup(&self) -> f64 {
        self.mean_speedup(|o| o.dynamic_time)
    }

    pub fn hybrid_speedup(&self) -> f64 {
        self.mean_speedup(|o| o.hybrid_time)
    }

    pub fn full_exploration_speedup(&self) -> f64 {
        self.mean_speedup(|o| o.full_best_time)
    }

    /// Fraction of regions the hybrid model actually profiled.
    pub fn profiled_fraction(&self) -> f64 {
        self.outcomes.iter().filter(|o| o.hybrid_used_dynamic).count() as f64
            / self.outcomes.len() as f64
    }

    /// Router accuracy (paper: ~92%).
    pub fn route_accuracy(&self) -> f64 {
        self.outcomes.iter().filter(|o| o.route_correct()).count() as f64
            / self.outcomes.len() as f64
    }

    /// Static-model label accuracy over validation regions.
    pub fn static_label_accuracy(&self) -> f64 {
        self.outcomes.iter().filter(|o| o.static_label == o.oracle_label).count() as f64
            / self.outcomes.len() as f64
    }
}

/// Run the full cross-validated pipeline on one machine. Errors (rather
/// than asserting) when the fold configuration is impossible for the
/// dataset — e.g. more folds than surviving regions after skips.
pub fn evaluate(cfg: &PipelineConfig) -> Result<Evaluation, CvError> {
    let dataset = build_dataset(cfg.arch, &cfg.dataset);
    evaluate_on(cfg, dataset)
}

/// Run the pipeline on an already-built dataset (used by Fig. 6's label
/// sweep, which re-labels the same dataset).
pub fn evaluate_on(cfg: &PipelineConfig, dataset: Dataset) -> Result<Evaluation, CvError> {
    let n = dataset.regions.len();
    let _span = irnuma_obs::span!("eval.run", regions = n, folds = cfg.folds, light = cfg.light);
    let folds_idx = kfold(n, cfg.folds, cfg.seed)?;

    let mut outcomes: Vec<Option<RegionOutcome>> = (0..n).map(|_| None).collect();
    let mut pred_time_by_seq: Vec<Vec<f64>> = vec![Vec::new(); n];
    let mut folds = Vec::with_capacity(cfg.folds);

    for (fi, validation) in folds_idx.iter().enumerate() {
        let _fold_span = irnuma_obs::span!("eval.fold", fold = fi, validation = validation.len());
        let train: Vec<usize> = irnuma_ml::cv::train_indices(&folds_idx, fi);
        let sm = StaticModel::train(&dataset, &train, cfg.static_params);
        let dm = DynamicModel::train(&dataset, &train);
        let hm = (!cfg.light)
            .then(|| HybridModel::train(&dataset, &sm, &train, cfg.hybrid, cfg.static_params));
        let fm = (!cfg.light).then(|| FlagModel::train(&dataset, &sm, &train, cfg.flags));

        for &r in validation {
            let static_label = sm.predict(&dataset, r);
            let static_time = dataset.label_time(r, static_label);
            let dynamic_label = dm.predict(&dataset, r);
            let dynamic_time = dataset.label_time(r, dynamic_label);
            let route_dyn =
                hm.as_ref().map(|h| h.route_to_dynamic(&dataset, &sm, r)).unwrap_or(false);
            let hybrid_time = if route_dyn { dynamic_time } else { static_time };
            let needs = static_needs_profiling(&dataset, &sm, r, cfg.hybrid.error_threshold);
            let full = dataset.regions[r].full_best_time();
            let pseq =
                fm.as_ref().map(|f| f.predict_seq(&dataset, &sm, r)).unwrap_or(sm.explored_seq);
            let plabel = sm.predict_with_seq(&dataset, r, pseq);

            outcomes[r] = Some(RegionOutcome {
                region: r,
                name: dataset.regions[r].spec.name.clone(),
                fold: fi,
                default_time: dataset.regions[r].default_time,
                full_best_time: full,
                oracle_time: dataset.oracle_time(r),
                oracle_label: dataset.labels[r],
                static_label,
                static_time,
                dynamic_label,
                dynamic_time,
                hybrid_used_dynamic: route_dyn,
                hybrid_time,
                needs_profiling: needs,
                static_error: relative_difference(full, static_time),
                dynamic_error: relative_difference(full, dynamic_time),
                predicted_seq: pseq,
                predicted_seq_time: dataset.label_time(r, plabel),
            });

            // Per-sequence prediction times (validation view): the region's
            // graphs are sequence-ordered, so one batched inference pass
            // covers every sequence.
            pred_time_by_seq[r] = sm
                .clf
                .model
                .infer_batch(&dataset.regions[r].graphs)
                .iter()
                .map(|o| dataset.label_time(r, o.label()))
                .collect();
        }

        folds.push(FoldModels {
            fold: fi,
            validation: validation.clone(),
            train,
            static_model: sm,
            dynamic_model: dm,
            hybrid_model: hm,
            flag_model: fm,
        });
    }

    Ok(Evaluation {
        cfg: *cfg,
        dataset,
        outcomes: outcomes.into_iter().map(|o| o.expect("every region validated once")).collect(),
        folds,
        pred_time_by_seq,
    })
}
