//! Ablation studies over the design choices the paper takes as given:
//!
//! * **edge relations** — ProGraML's three flows (control/data/call) vs
//!   dropping each one (does the RGCN actually use the typed structure?);
//! * **augmentation** — training with 1 vs k flag sequences per region (the
//!   paper's step A in isolation);
//! * **hidden width** — the embedding size (paper: 256; our default: 32).
//!
//! Each ablation trains the static model under 3-fold CV at reduced scale
//! and reports validation label accuracy and mean speedup.

use crate::dataset::Dataset;
use crate::experiments::{f3, FigureReport};
use crate::models::static_gnn::{training_sequence_ids, StaticParams};
use irnuma_graph::Vocab;
use irnuma_ml::kfold;
use irnuma_nn::{GnnClassifier, GnnConfig, GraphData, TrainParams};
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationPoint {
    pub name: String,
    pub label_accuracy: f64,
    pub mean_speedup: f64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ablations {
    pub points: Vec<AblationPoint>,
}

/// Which edge relations the model may see.
#[derive(Debug, Clone, Copy)]
struct RelationMask {
    control: bool,
    data: bool,
    call: bool,
}

fn mask_graph(g: &GraphData, m: RelationMask) -> GraphData {
    // Rebuilt via `from_parts` (not clone-and-mutate) so the masked graph
    // starts with a fresh CSR adjacency cache.
    let keep = [m.control, m.data, m.call];
    let mut edges = g.edges.clone();
    let mut norm = g.norm.clone();
    for (r, k) in keep.iter().enumerate() {
        if !k {
            edges[r].clear();
            norm[r].clear();
        }
    }
    GraphData::from_parts(g.node_text.clone(), edges, norm)
}

/// Train/evaluate the static classifier under 3-fold CV with a graph
/// transformer and a sequence-subsample size; returns (accuracy, speedup).
fn run_variant(
    ds: &Dataset,
    p: StaticParams,
    train_seqs: usize,
    transform: &dyn Fn(&GraphData) -> GraphData,
) -> (f64, f64) {
    let vocab = Vocab::full();
    let folds = kfold(ds.regions.len(), 3, 0xAB1A).expect("3 folds fit the region suite");
    let mut correct = 0usize;
    let mut gain = 0.0;
    for (fi, validation) in folds.iter().enumerate() {
        let train: Vec<usize> = irnuma_ml::cv::train_indices(&folds, fi);
        let seq_ids = training_sequence_ids(ds.sequences.len(), train_seqs);
        let mut graphs = Vec::new();
        let mut labels = Vec::new();
        for &r in &train {
            for &s in &seq_ids {
                graphs.push(transform(&ds.regions[r].graphs[s]));
                labels.push(ds.labels[r]);
            }
        }
        let mut clf = GnnClassifier::new(GnnConfig {
            vocab_size: vocab.len(),
            hidden: p.hidden,
            classes: ds.chosen_configs.len(),
            layers: 2,
            layer_norm: true,
            seed: p.seed,
        });
        clf.fit(
            &graphs,
            &labels,
            TrainParams { epochs: p.epochs, batch_size: p.batch, lr: p.lr, seed: p.seed },
        );
        for &r in validation {
            let g = transform(&ds.regions[r].graphs[0]);
            let pred = clf.predict(&g);
            if pred == ds.labels[r] {
                correct += 1;
            }
            gain += ds.regions[r].default_time / ds.label_time(r, pred);
        }
    }
    let n = ds.regions.len() as f64;
    (correct as f64 / n, gain / n)
}

/// Run all three ablation families on a pre-built dataset.
pub fn run(ds: &Dataset, base: StaticParams) -> Ablations {
    let _span = irnuma_obs::span!("exp.ablations");
    let mut points = Vec::new();
    let id = |g: &GraphData| g.clone();

    // Relation ablations.
    let full = RelationMask { control: true, data: true, call: true };
    let variants: [(&str, RelationMask); 4] = [
        ("all-relations", full),
        ("no-control", RelationMask { control: false, ..full }),
        ("no-data", RelationMask { data: false, ..full }),
        ("no-call", RelationMask { call: false, ..full }),
    ];
    for (name, m) in variants {
        let t = move |g: &GraphData| mask_graph(g, m);
        let (acc, gain) = run_variant(ds, base, base.train_sequences, &t);
        points.push(AblationPoint {
            name: format!("relations/{name}"),
            label_accuracy: acc,
            mean_speedup: gain,
        });
    }

    // Augmentation ablation: 1 sequence vs the configured count.
    for k in [1usize, base.train_sequences] {
        let (acc, gain) = run_variant(ds, base, k, &id);
        points.push(AblationPoint {
            name: format!("augmentation/{k}-seqs"),
            label_accuracy: acc,
            mean_speedup: gain,
        });
    }

    // Width ablation.
    for h in [8usize, base.hidden] {
        let p = StaticParams { hidden: h, ..base };
        let (acc, gain) = run_variant(ds, p, base.train_sequences, &id);
        points.push(AblationPoint {
            name: format!("hidden/{h}"),
            label_accuracy: acc,
            mean_speedup: gain,
        });
    }

    Ablations { points }
}

impl Ablations {
    pub fn report(&self) -> FigureReport {
        let mut r = FigureReport::new(
            "ablations",
            "Design-choice ablations: relations, augmentation, width",
            &["variant", "label_accuracy", "mean_speedup"],
        );
        for p in &self.points {
            r.push_row(vec![p.name.clone(), f3(p.label_accuracy), f3(p.mean_speedup)]);
        }
        let get = |n: &str| self.points.iter().find(|p| p.name == n);
        if let (Some(all), Some(nd)) = (get("relations/all-relations"), get("relations/no-data")) {
            r.note(format!(
                "dropping data-flow edges: accuracy {:.2} → {:.2} (typed structure matters)",
                all.label_accuracy, nd.label_accuracy
            ));
        }
        if let (Some(one), Some(many)) = (
            self.points.iter().find(|p| p.name == "augmentation/1-seqs"),
            self.points
                .iter()
                .find(|p| p.name.starts_with("augmentation/") && p.name != "augmentation/1-seqs"),
        ) {
            r.note(format!(
                "augmentation {} → {}: accuracy {:.2} → {:.2} (the paper's step A in isolation)",
                one.name, many.name, one.label_accuracy, many.label_accuracy
            ));
        }
        r
    }
}
