//! §IV-F cost comparison: *"we compared the collection cost of static
//! versus dynamic features by measuring the compilation times versus the
//! execution times of some regions. For small programs (CG), the
//! compilation time is similar to the execution time. However, as expected
//! medium/large programs (SP) take order of magnitude longer to execute
//! than to compile."*
//!
//! Here "compilation" is a real wall-clock measurement (flag-sequence
//! pipeline + extraction + graph construction on this machine), while
//! "execution" is the simulated region runtime × the benchmark's calls —
//! the same comparison at the same granularity.

use crate::experiments::FigureReport;
use irnuma_graph::{build_module_graph, Vocab};
use irnuma_ir::extract::extract_region;
use irnuma_passes::{o3_sequence, PassManager};
use irnuma_sim::{default_config, simulate, Machine, MicroArch};
use irnuma_workloads::{all_regions, InputSize};
use serde::{Deserialize, Serialize};
use std::time::Instant;

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostRow {
    pub region: String,
    /// Wall-clock of one static characterization (seconds).
    pub compile_seconds: f64,
    /// Simulated execution of one profiling run (all calls, seconds).
    pub execute_seconds: f64,
    pub execute_over_compile: f64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostComparison {
    pub rows: Vec<CostRow>,
}

pub fn run() -> CostComparison {
    let vocab = Vocab::full();
    let pm = PassManager::new(false);
    let m = Machine::new(MicroArch::Skylake);
    let cfg = default_config(&m);
    let seq: Vec<String> = o3_sequence().iter().map(|s| s.to_string()).collect();

    let rows = all_regions()
        .into_iter()
        .map(|r| {
            let t0 = Instant::now();
            let mut module = r.module();
            pm.run(&mut module, &seq).expect("O3 runs");
            let extracted = extract_region(&module, &r.region_fn()).expect("extracts");
            let _g = build_module_graph(&extracted, &vocab);
            let compile_seconds = t0.elapsed().as_secs_f64();

            let per_call = simulate(&r.name, &r.profile, &m, &cfg, InputSize::Size1, 0).seconds;
            let execute_seconds = per_call * r.profile.calls_per_run as f64;
            CostRow {
                region: r.name,
                compile_seconds,
                execute_seconds,
                execute_over_compile: execute_seconds / compile_seconds.max(1e-9),
            }
        })
        .collect();
    CostComparison { rows }
}

impl CostComparison {
    pub fn report(&self) -> FigureReport {
        let mut r = FigureReport::new(
            "cost_comparison",
            "Static characterization cost vs profiled execution cost (§IV-F)",
            &["region", "compile_s", "execute_s", "execute/compile"],
        );
        for row in &self.rows {
            r.push_row(vec![
                row.region.clone(),
                format!("{:.4}", row.compile_seconds),
                format!("{:.4}", row.execute_seconds),
                format!("{:.1}", row.execute_over_compile),
            ]);
        }
        let small = self.rows.iter().find(|x| x.region == "cg.axpy");
        let large = self.rows.iter().find(|x| x.region == "sp.compute_rhs");
        if let (Some(s), Some(l)) = (small, large) {
            r.note(format!(
                "cg: execute/compile {:.1}; sp: {:.1} (paper: CG similar, SP an order of magnitude larger)",
                s.execute_over_compile, l.execute_over_compile
            ));
        }
        r
    }
}
