//! §IV-F cost comparison: *"we compared the collection cost of static
//! versus dynamic features by measuring the compilation times versus the
//! execution times of some regions. For small programs (CG), the
//! compilation time is similar to the execution time. However, as expected
//! medium/large programs (SP) take order of magnitude longer to execute
//! than to compile."*
//!
//! Here "compilation" is a real wall-clock measurement (flag-sequence
//! pipeline + extraction + graph construction on this machine), while
//! "execution" is the simulated region runtime × the benchmark's calls —
//! the same comparison at the same granularity. Each compile stage is
//! timed through an [`irnuma_obs`] span, so a trace shows the breakdown
//! and the per-stage seconds land in the results JSON.

use crate::experiments::FigureReport;
use irnuma_graph::{build_module_graph, Vocab};
use irnuma_ir::extract::extract_region;
use irnuma_passes::{o3_sequence, PassManager};
use irnuma_sim::{default_config, simulate, Machine, MicroArch};
use irnuma_workloads::{all_regions, InputSize};
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostRow {
    pub region: String,
    /// Wall-clock of one static characterization (seconds): the sum of the
    /// three per-stage measurements below.
    pub compile_seconds: f64,
    /// Flag-sequence pipeline (the O3 pass pipeline) wall time.
    pub pass_seconds: f64,
    /// Region call-graph extraction wall time.
    pub extract_seconds: f64,
    /// ProGraML graph construction wall time.
    pub graph_seconds: f64,
    /// Simulated execution of one profiling run (all calls, seconds).
    pub execute_seconds: f64,
    pub execute_over_compile: f64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostComparison {
    pub rows: Vec<CostRow>,
}

pub fn run() -> CostComparison {
    let _span = irnuma_obs::span!("exp.cost_comparison");
    let vocab = Vocab::full();
    let pm = PassManager::new(false);
    let m = Machine::new(MicroArch::Skylake);
    let cfg = default_config(&m);
    let seq: Vec<String> = o3_sequence().iter().map(|s| s.to_string()).collect();

    let rows = all_regions()
        .into_iter()
        .map(|r| {
            let mut module = r.module();
            let (_, pass_seconds) =
                irnuma_obs::timed("cost.passes", || pm.run(&mut module, &seq).expect("O3 runs"));
            let (extracted, extract_seconds) = irnuma_obs::timed("cost.extract", || {
                extract_region(&module, &r.region_fn()).expect("extracts")
            });
            let (_g, graph_seconds) =
                irnuma_obs::timed("cost.graph", || build_module_graph(&extracted, &vocab));
            let compile_seconds = pass_seconds + extract_seconds + graph_seconds;

            let per_call = simulate(&r.name, &r.profile, &m, &cfg, InputSize::Size1, 0).seconds;
            let execute_seconds = per_call * r.profile.calls_per_run as f64;
            CostRow {
                region: r.name,
                compile_seconds,
                pass_seconds,
                extract_seconds,
                graph_seconds,
                execute_seconds,
                execute_over_compile: execute_seconds / compile_seconds.max(1e-9),
            }
        })
        .collect();
    CostComparison { rows }
}

impl CostComparison {
    pub fn report(&self) -> FigureReport {
        let mut r = FigureReport::new(
            "cost_comparison",
            "Static characterization cost vs profiled execution cost (§IV-F)",
            &[
                "region",
                "compile_s",
                "passes_s",
                "extract_s",
                "graph_s",
                "execute_s",
                "execute/compile",
            ],
        );
        for row in &self.rows {
            r.push_row(vec![
                row.region.clone(),
                format!("{:.4}", row.compile_seconds),
                format!("{:.4}", row.pass_seconds),
                format!("{:.4}", row.extract_seconds),
                format!("{:.4}", row.graph_seconds),
                format!("{:.4}", row.execute_seconds),
                format!("{:.1}", row.execute_over_compile),
            ]);
        }
        let small = self.rows.iter().find(|x| x.region == "cg.axpy");
        let large = self.rows.iter().find(|x| x.region == "sp.compute_rhs");
        if let (Some(s), Some(l)) = (small, large) {
            r.note(format!(
                "cg: execute/compile {:.1}; sp: {:.1} (paper: CG similar, SP an order of magnitude larger)",
                s.execute_over_compile, l.execute_over_compile
            ));
        }
        let (p, e, g) = self.rows.iter().fold((0.0, 0.0, 0.0), |acc, row| {
            (acc.0 + row.pass_seconds, acc.1 + row.extract_seconds, acc.2 + row.graph_seconds)
        });
        let total = (p + e + g).max(1e-9);
        r.note(format!(
            "compile breakdown: passes {:.0}%, extract {:.0}%, graph {:.0}%",
            100.0 * p / total,
            100.0 * e / total,
            100.0 * g / total
        ));
        r
    }

    /// Write the per-region stage breakdown as JSON into
    /// `dir/cost_comparison.json` (atomic write; no torn files).
    pub fn write_json(&self, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        let path = dir.join("cost_comparison.json");
        let json = serde_json::to_vec(self)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        irnuma_store::atomic_write(&path, &json)?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_seconds_sum_to_compile_seconds() {
        let cc = run();
        assert_eq!(cc.rows.len(), 56);
        for row in &cc.rows {
            let sum = row.pass_seconds + row.extract_seconds + row.graph_seconds;
            assert!(
                (sum - row.compile_seconds).abs() <= 1e-9 + row.compile_seconds * 1e-6,
                "{}: {} vs {}",
                row.region,
                sum,
                row.compile_seconds
            );
            assert!(row.pass_seconds >= 0.0 && row.extract_seconds >= 0.0);
        }
    }

    #[test]
    fn json_breakdown_round_trips() {
        let cc = CostComparison {
            rows: vec![CostRow {
                region: "cg.axpy".into(),
                compile_seconds: 0.3,
                pass_seconds: 0.2,
                extract_seconds: 0.06,
                graph_seconds: 0.04,
                execute_seconds: 1.5,
                execute_over_compile: 5.0,
            }],
        };
        let dir = std::env::temp_dir().join("irnuma-cost-test");
        let path = cc.write_json(&dir).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        let back: CostComparison = serde_json::from_str(&body).unwrap();
        assert_eq!(back.rows[0].pass_seconds, 0.2);
        assert_eq!(back.rows[0].graph_seconds, 0.04);
        std::fs::remove_file(&path).ok();
    }
}
