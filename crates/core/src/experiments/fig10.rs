//! Figure 10: input-size sensitivity (§IV-E, Xeon Gold 6130). Every region
//! is tuned on size-2, the resulting configuration is re-applied on size-1,
//! and the loss against a native size-1 tuning is reported:
//! `L = S(size-1, best-conf(size-1)) − S(size-1, best-conf(size-2))`.
//! The paper measures a 1.51× native vs 1.46× transferred average (≈0.05
//! loss), strongly region-dependent.

use crate::experiments::{f3, FigureReport};
use irnuma_sim::{config_space, default_config, Machine, MicroArch};
use irnuma_workloads::{all_regions, InputSize};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig10Row {
    pub region: String,
    pub native_gain: f64,
    pub transferred_gain: f64,
    pub loss: f64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig10 {
    pub rows: Vec<Fig10Row>,
    pub mean_native: f64,
    pub mean_transferred: f64,
    pub mean_loss: f64,
}

/// `calls` mirrors the paper's sampled execution (10 calls per region).
pub fn run(calls: u32) -> Fig10 {
    let span = irnuma_obs::span!("exp.fig10", calls = calls);
    let m = Machine::new(MicroArch::XeonGold);
    let configs = config_space(&m);
    let def = default_config(&m);
    let def_idx = configs.iter().position(|c| *c == def).expect("default in space");

    // Attach-style propagation: workers install the experiment's context on
    // their thread, so the per-region spans (and anything the simulator
    // opens beneath them) nest under `exp.fig10` in the trace forest.
    let ctx = span.ctx();
    let rows: Vec<Fig10Row> = all_regions()
        .into_par_iter()
        .map(|r| {
            let _scope = ctx.attach();
            let _rs = irnuma_obs::span!("exp.fig10_region", region = r.name.as_str());
            let sweep = |size: InputSize| -> Vec<f64> {
                configs
                    .iter()
                    .map(|c| {
                        (0..calls)
                            .map(|k| {
                                irnuma_sim::simulate(&r.name, &r.profile, &m, c, size, k).seconds
                            })
                            .sum::<f64>()
                            / calls as f64
                    })
                    .collect()
            };
            let s1 = sweep(InputSize::Size1);
            let s2 = sweep(InputSize::Size2);
            let best_idx = |v: &[f64]| {
                v.iter().enumerate().min_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i).unwrap()
            };
            let b1 = best_idx(&s1);
            let b2 = best_idx(&s2);
            let native_gain = s1[def_idx] / s1[b1];
            let transferred_gain = s1[def_idx] / s1[b2];
            Fig10Row {
                region: r.name,
                native_gain,
                transferred_gain,
                loss: native_gain - transferred_gain,
            }
        })
        .collect();

    let n = rows.len() as f64;
    Fig10 {
        mean_native: rows.iter().map(|r| r.native_gain).sum::<f64>() / n,
        mean_transferred: rows.iter().map(|r| r.transferred_gain).sum::<f64>() / n,
        mean_loss: rows.iter().map(|r| r.loss).sum::<f64>() / n,
        rows,
    }
}

impl Fig10 {
    pub fn report(&self) -> FigureReport {
        let mut r = FigureReport::new(
            "fig10",
            "Speedup losses on size-1 when tuned on size-2 (Xeon Gold; lower is better)",
            &["region", "native_gain", "transferred_gain", "loss"],
        );
        for row in &self.rows {
            r.push_row(vec![
                row.region.clone(),
                f3(row.native_gain),
                f3(row.transferred_gain),
                f3(row.loss),
            ]);
        }
        r.note(format!(
            "native {:.2}x vs transferred {:.2}x, mean loss {:.3} (paper: 1.51x vs 1.46x, 0.05 loss)",
            self.mean_native, self.mean_transferred, self.mean_loss
        ));
        r
    }
}
