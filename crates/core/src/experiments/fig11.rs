//! Figure 11: average speedup per flag-selection strategy — *explored*
//! (single best sequence from training regions), *overall* (single best
//! sequence including validation regions), *predicted* (the per-program
//! flag model), and the per-region *oracle* sequence. The paper measures
//! the flag model improving gains by 3.4% (Skylake) and 4.2% (Sandy
//! Bridge).

use crate::evaluation::Evaluation;
use crate::experiments::{f3, fig5, FigureReport};
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig11Arch {
    pub arch: String,
    pub explored: f64,
    pub overall: f64,
    pub predicted: f64,
    pub oracle: f64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig11 {
    pub arches: Vec<Fig11Arch>,
}

fn arch_row(eval: &Evaluation) -> Fig11Arch {
    let per_seq = fig5::per_seq_gains(eval);
    let overall = per_seq.iter().cloned().fold(f64::MIN, f64::max);
    // Per-region oracle over sequences.
    let oracle = eval
        .outcomes
        .iter()
        .map(|o| {
            eval.pred_time_by_seq[o.region]
                .iter()
                .map(|&t| o.default_time / t)
                .fold(f64::MIN, f64::max)
        })
        .sum::<f64>()
        / eval.outcomes.len() as f64;
    Fig11Arch {
        arch: format!("{:?}", eval.cfg.arch),
        explored: eval.static_speedup(),
        overall,
        predicted: eval.mean_speedup(|o| o.predicted_seq_time),
        oracle,
    }
}

pub fn run(evals: &[&Evaluation]) -> Fig11 {
    let _span = irnuma_obs::span!("exp.fig11", arches = evals.len());
    Fig11 { arches: evals.iter().map(|e| arch_row(e)).collect() }
}

impl Fig11 {
    pub fn report(&self) -> FigureReport {
        let mut r = FigureReport::new(
            "fig11",
            "Average speedup per flag-selection strategy (higher is better)",
            &["arch", "explored_seq", "overall_seq", "predicted_seq", "oracle_seq"],
        );
        for a in &self.arches {
            r.push_row(vec![
                a.arch.clone(),
                f3(a.explored),
                f3(a.overall),
                f3(a.predicted),
                f3(a.oracle),
            ]);
        }
        for a in &self.arches {
            let improvement = (a.predicted / a.explored - 1.0) * 100.0;
            r.note(format!(
                "{}: predicted vs explored {:+.1}% (paper: +3.4% Skylake, +4.2% Sandy Bridge)",
                a.arch, improvement
            ));
        }
        r
    }
}
