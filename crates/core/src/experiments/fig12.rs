//! Figure 12: execution time per call (in cycles) of the four worst
//! statically-mispredicted regions plus SP as a stable reference (§V).
//! Dynamically-sensitive regions show phase changes across calls; stable
//! regions are flat — the behaviour static information cannot capture.

use crate::evaluation::Evaluation;
use crate::experiments::FigureReport;
use irnuma_sim::{default_config, per_call_trace, Machine, MicroArch};
use irnuma_workloads::{all_regions, InputSize};
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig12Trace {
    pub region: String,
    pub mispredicted: bool,
    /// Execution time per call, in cycles.
    pub cycles_per_call: Vec<f64>,
    /// max/min across calls — the phase-change magnitude.
    pub variation: f64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig12 {
    pub traces: Vec<Fig12Trace>,
    pub calls: u32,
}

/// Trace `worst` statically-mispredicted regions of an evaluation plus a
/// stable SP region (the paper uses a Xeon Gold with clang 6). Mispredicted
/// regions (error > 20%) are ranked by their cross-call variation, which is
/// what the figure exists to display: the dynamic behaviour static
/// information cannot see.
pub fn run(eval: &Evaluation, worst: usize, calls: u32) -> Fig12 {
    let _span = irnuma_obs::span!("exp.fig12", worst = worst, calls = calls);
    let m = Machine::new(MicroArch::XeonGold);
    let cfg = default_config(&m);
    let regions_all = all_regions();
    let variation_of = |name: &str| -> f64 {
        let spec = regions_all.iter().find(|r| r.name == name).expect("region");
        let t = per_call_trace(spec, &m, &cfg, InputSize::Size1, calls);
        let max = t.iter().cloned().fold(f64::MIN, f64::max);
        let min = t.iter().cloned().fold(f64::MAX, f64::min);
        max / min
    };
    let mut ranked: Vec<(&crate::evaluation::RegionOutcome, f64)> = eval
        .outcomes
        .iter()
        .filter(|o| o.static_error > 0.2)
        .map(|o| (o, variation_of(&o.name)))
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(b.0.static_error.total_cmp(&a.0.static_error)));
    let mut names: Vec<(String, bool)> =
        ranked.iter().take(worst).map(|(o, _)| (o.name.clone(), true)).collect();
    // SP reference (stable region), as in the paper.
    let sp = "sp.compute_rhs";
    if !names.iter().any(|(n, _)| n == sp) {
        names.push((sp.to_string(), false));
    }

    let regions = regions_all;
    let traces = names
        .into_iter()
        .map(|(name, mispredicted)| {
            let spec = regions.iter().find(|r| r.name == name).expect("region exists");
            let cycles = per_call_trace(spec, &m, &cfg, InputSize::Size1, calls);
            let max = cycles.iter().cloned().fold(f64::MIN, f64::max);
            let min = cycles.iter().cloned().fold(f64::MAX, f64::min);
            Fig12Trace { region: name, mispredicted, variation: max / min, cycles_per_call: cycles }
        })
        .collect();
    Fig12 { traces, calls }
}

impl Fig12 {
    pub fn report(&self) -> FigureReport {
        let mut cols: Vec<String> =
            vec!["region".into(), "mispredicted".into(), "variation".into()];
        for c in 0..self.calls {
            cols.push(format!("call{c}"));
        }
        let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
        let mut r = FigureReport::new(
            "fig12",
            "Execution time per call (cycles) of mispredicted regions + SP",
            &col_refs,
        );
        for t in &self.traces {
            let mut row =
                vec![t.region.clone(), t.mispredicted.to_string(), format!("{:.2}", t.variation)];
            row.extend(t.cycles_per_call.iter().map(|c| format!("{c:.0}")));
            r.push_row(row);
        }
        let avg_mis: f64 = mean(self.traces.iter().filter(|t| t.mispredicted).map(|t| t.variation));
        let avg_stable: f64 =
            mean(self.traces.iter().filter(|t| !t.mispredicted).map(|t| t.variation));
        r.note(format!(
            "mispredicted regions vary {avg_mis:.2}x across calls vs {avg_stable:.2}x for the stable reference (paper: phase changes only in mispredicted regions)"
        ));
        r
    }
}

fn mean(it: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = it.collect();
    if v.is_empty() {
        return 0.0;
    }
    v.iter().sum::<f64>() / v.len() as f64
}
