//! Figure 3: per-region prediction errors of the static model (explored
//! flag sequence) vs the dynamic performance-counter model, both measured
//! as the relative difference to full exploration. Lower is better; the
//! paper observes half the regions perfectly optimized statically and a
//! small tail where only the dynamic model works.

use crate::evaluation::Evaluation;
use crate::experiments::{f3, FigureReport};
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3Row {
    pub region: String,
    pub static_error: f64,
    pub dynamic_error: f64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3 {
    pub rows: Vec<Fig3Row>,
    pub perfect_static_fraction: f64,
    pub static_beats_dynamic: usize,
}

/// Build Figure 3 from a finished evaluation.
pub fn run(eval: &Evaluation) -> Fig3 {
    let _span = irnuma_obs::span!("exp.fig3");
    let mut rows: Vec<Fig3Row> = eval
        .outcomes
        .iter()
        .map(|o| Fig3Row {
            region: o.name.clone(),
            static_error: o.static_error,
            dynamic_error: o.dynamic_error,
        })
        .collect();
    // Paper layout: worst static errors on the left, perfect on the right.
    rows.sort_by(|a, b| b.static_error.total_cmp(&a.static_error));
    let perfect = rows.iter().filter(|r| r.static_error < 0.02).count();
    let beats = rows.iter().filter(|r| r.static_error + 1e-9 < r.dynamic_error).count();
    Fig3 {
        perfect_static_fraction: perfect as f64 / rows.len() as f64,
        static_beats_dynamic: beats,
        rows,
    }
}

impl Fig3 {
    pub fn report(&self) -> FigureReport {
        let mut r = FigureReport::new(
            "fig3",
            "Per-region prediction errors: static vs dynamic (lower is better)",
            &["region", "static_error", "dynamic_error"],
        );
        for row in &self.rows {
            r.push_row(vec![row.region.clone(), f3(row.static_error), f3(row.dynamic_error)]);
        }
        r.note(format!(
            "{:.0}% of regions are (near-)perfectly optimized statically (paper: ~50%)",
            self.perfect_static_fraction * 100.0
        ));
        r.note(format!(
            "static beats dynamic on {} of {} regions (paper: right side of Fig. 3)",
            self.static_beats_dynamic,
            self.rows.len()
        ));
        r
    }
}
