//! Figure 4: mean static prediction error per validation fold (relative
//! differences). The paper observes the errors spread evenly across folds —
//! i.e. no fold's training set is systematically uninformative.

use crate::evaluation::Evaluation;
use crate::experiments::{f3, FigureReport};
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4 {
    /// Mean static error per fold.
    pub fold_errors: Vec<f64>,
    pub max_over_min_spread: f64,
}

pub fn run(eval: &Evaluation) -> Fig4 {
    let _span = irnuma_obs::span!("exp.fig4");
    let folds = eval.cfg.folds;
    let mut sums = vec![0.0f64; folds];
    let mut counts = vec![0usize; folds];
    for o in &eval.outcomes {
        sums[o.fold] += o.static_error;
        counts[o.fold] += 1;
    }
    let fold_errors: Vec<f64> =
        sums.iter().zip(&counts).map(|(s, &c)| if c == 0 { 0.0 } else { s / c as f64 }).collect();
    let max = fold_errors.iter().cloned().fold(0.0, f64::max);
    let min_nonzero =
        fold_errors.iter().cloned().filter(|&v| v > 0.0).fold(f64::INFINITY, f64::min);
    Fig4 {
        max_over_min_spread: if min_nonzero.is_finite() { max / min_nonzero } else { 1.0 },
        fold_errors,
    }
}

impl Fig4 {
    pub fn report(&self) -> FigureReport {
        let mut r = FigureReport::new(
            "fig4",
            "Mean prediction error per validation fold (lower is better)",
            &["fold", "mean_static_error"],
        );
        for (i, e) in self.fold_errors.iter().enumerate() {
            r.push_row(vec![format!("fold{i}"), f3(*e)]);
        }
        r.note(format!(
            "max/min fold-error spread {:.2} (paper: errors mostly even across folds)",
            self.max_over_min_spread
        ));
        r
    }
}
