//! Figure 5: arithmetic-mean speedup achieved per flag sequence, on both
//! machines. The paper observes a 1.6×–1.9× swing on Sandy Bridge and that
//! the two micro-architectures prefer different sequences.

use crate::evaluation::Evaluation;
use crate::experiments::{f3, FigureReport};
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5 {
    /// `(sequence id, mean speedup)` per machine, sequence order preserved.
    pub skylake: Vec<f64>,
    pub sandy_bridge: Vec<f64>,
    pub best_seq_differs: bool,
}

/// Mean speedup per sequence over all regions' validation predictions.
pub fn per_seq_gains(eval: &Evaluation) -> Vec<f64> {
    let n_seq = eval.dataset.sequences.len();
    (0..n_seq)
        .map(|s| {
            eval.outcomes
                .iter()
                .map(|o| o.default_time / eval.pred_time_by_seq[o.region][s])
                .sum::<f64>()
                / eval.outcomes.len() as f64
        })
        .collect()
}

pub fn run(skylake: &Evaluation, sandy_bridge: &Evaluation) -> Fig5 {
    let _span = irnuma_obs::span!("exp.fig5");
    let skl = per_seq_gains(skylake);
    let snb = per_seq_gains(sandy_bridge);
    let best =
        |v: &[f64]| v.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i).unwrap();
    Fig5 { best_seq_differs: best(&skl) != best(&snb), skylake: skl, sandy_bridge: snb }
}

impl Fig5 {
    pub fn report(&self) -> FigureReport {
        let mut r = FigureReport::new(
            "fig5",
            "Mean speedup per flag sequence (higher is better)",
            &["sequence", "skylake", "sandy_bridge"],
        );
        for (i, (a, b)) in self.skylake.iter().zip(&self.sandy_bridge).enumerate() {
            r.push_row(vec![format!("seq{i}"), f3(*a), f3(*b)]);
        }
        let span = |v: &[f64]| {
            let max = v.iter().cloned().fold(f64::MIN, f64::max);
            let min = v.iter().cloned().fold(f64::MAX, f64::min);
            (min, max)
        };
        let (lo, hi) = span(&self.sandy_bridge);
        r.note(format!(
            "Sandy Bridge gains swing {:.2}x..{:.2}x across sequences (paper: 1.6x..1.9x)",
            lo, hi
        ));
        r.note(format!(
            "best sequence differs across micro-architectures: {} (paper: yes)",
            self.best_seq_differs
        ));
        r
    }
}
