//! Figure 6: impact of the number of labels (2 / 6 / 13) on gains and
//! accuracy, per machine. Fewer labels → easier classification (higher
//! accuracy) but a lower ceiling on the attainable gains.

use crate::dataset::Dataset;
use crate::evaluation::{evaluate_on, Evaluation, PipelineConfig};
use crate::experiments::{f3, fig5, FigureReport};
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6Point {
    pub labels: usize,
    /// Static model with the explored flag sequence.
    pub explored_gain: f64,
    /// Static model if it used the overall best single sequence (training +
    /// validation regions).
    pub overall_gain: f64,
    /// Best of the label set per region (ceiling).
    pub label_oracle_gain: f64,
    /// Full space exploration (absolute ceiling).
    pub full_gain: f64,
    /// Label-prediction accuracy of the static model.
    pub accuracy: f64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6 {
    pub arch: String,
    pub points: Vec<Fig6Point>,
}

/// Re-label a dataset with a different number of label configurations.
pub fn relabel(ds: &Dataset, k: usize) -> Dataset {
    let times: Vec<Vec<f64>> = ds.regions.iter().map(|r| r.sweep.clone()).collect();
    let base: Vec<f64> = ds.regions.iter().map(|r| r.default_time).collect();
    let chosen = irnuma_ml::reduce_labels(&times, &base, k);
    let labels = irnuma_ml::labels::label_per_region(&times, &chosen);
    Dataset { chosen_configs: chosen, labels, ..ds.clone() }
}

fn point(eval: &Evaluation, k: usize) -> Fig6Point {
    // Overall flag sequence: the single sequence with the best mean gain
    // over *all* regions (training and validation), as defined in §IV-C.
    let gains = fig5::per_seq_gains(eval);
    let overall_gain = gains.iter().cloned().fold(f64::MIN, f64::max);
    Fig6Point {
        labels: k,
        explored_gain: eval.static_speedup(),
        overall_gain,
        label_oracle_gain: eval.mean_speedup(|o| o.oracle_time),
        full_gain: eval.full_exploration_speedup(),
        accuracy: eval.static_label_accuracy(),
    }
}

/// Run the label sweep on one machine (dataset built once, re-labeled).
pub fn run(cfg: &PipelineConfig, ds: &Dataset, label_counts: &[usize]) -> (Fig6, Vec<Evaluation>) {
    let _span = irnuma_obs::span!("exp.fig6", label_counts = label_counts.len());
    let mut points = Vec::new();
    let mut evals = Vec::new();
    for &k in label_counts {
        let eval =
            evaluate_on(cfg, relabel(ds, k)).expect("label sweep keeps the fold count valid");
        points.push(point(&eval, k));
        evals.push(eval);
    }
    (Fig6 { arch: format!("{:?}", cfg.arch), points }, evals)
}

impl Fig6 {
    pub fn report(&self) -> FigureReport {
        let mut r = FigureReport::new(
            "fig6",
            &format!("Gains and accuracy vs number of labels ({})", self.arch),
            &[
                "labels",
                "explored_gain",
                "overall_gain",
                "label_oracle",
                "full_exploration",
                "accuracy",
            ],
        );
        for p in &self.points {
            r.push_row(vec![
                p.labels.to_string(),
                f3(p.explored_gain),
                f3(p.overall_gain),
                f3(p.label_oracle_gain),
                f3(p.full_gain),
                f3(p.accuracy),
            ]);
        }
        if let (Some(first), Some(last)) = (self.points.first(), self.points.last()) {
            r.note(format!(
                "accuracy {:.2} with {} labels vs {:.2} with {} (paper: fewer labels → higher accuracy)",
                first.accuracy, first.labels, last.accuracy, last.labels
            ));
            r.note(format!(
                "label-oracle ceiling {:.2}x with {} labels vs {:.2}x with {} (paper: fewer labels → lower ceiling)",
                first.label_oracle_gain, first.labels, last.label_oracle_gain, last.labels
            ));
        }
        r
    }
}
