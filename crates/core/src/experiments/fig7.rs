//! Figure 7: per-label prediction counts on Skylake with 6 labels —
//! how often each label is the oracle, how often the model predicted it,
//! and how many predictions were correct. Rare labels are hard.

use crate::evaluation::Evaluation;
use crate::experiments::FigureReport;
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7Row {
    pub label: usize,
    pub oracle: usize,
    pub predicted: usize,
    pub correct: usize,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7 {
    pub rows: Vec<Fig7Row>,
}

pub fn run(eval: &Evaluation) -> Fig7 {
    let _span = irnuma_obs::span!("exp.fig7");
    let k = eval.dataset.chosen_configs.len();
    let mut rows: Vec<Fig7Row> =
        (0..k).map(|l| Fig7Row { label: l, oracle: 0, predicted: 0, correct: 0 }).collect();
    for o in &eval.outcomes {
        rows[o.oracle_label].oracle += 1;
        rows[o.static_label].predicted += 1;
        if o.static_label == o.oracle_label {
            rows[o.static_label].correct += 1;
        }
    }
    Fig7 { rows }
}

impl Fig7 {
    pub fn report(&self) -> FigureReport {
        let mut r = FigureReport::new(
            "fig7",
            "Predictions per label (Skylake, 6 labels)",
            &["label", "oracle", "predicted", "correct"],
        );
        for row in &self.rows {
            r.push_row(vec![
                format!("L{}", row.label),
                row.oracle.to_string(),
                row.predicted.to_string(),
                row.correct.to_string(),
            ]);
        }
        let rare: Vec<usize> =
            self.rows.iter().filter(|x| x.oracle <= 2 && x.oracle > 0).map(|x| x.label).collect();
        r.note(format!(
            "rare labels {rare:?} have ≤2 oracle instances (paper: rare labels are hard to learn)"
        ));
        r
    }
}
