//! Figure 8: cross-architecture prediction. A model trained on one machine
//! is applied to the other by translating the predicted configuration
//! (threads/nodes scaled, mappings and prefetch kept). The paper reports
//! cross gains around 1.7× and that the native static model is on par with
//! the cross dynamic one.

use crate::evaluation::Evaluation;
use crate::experiments::{f3, FigureReport};
use irnuma_sim::translate_config;
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig8Arch {
    pub arch: String,
    pub native_static: f64,
    pub cross_static: f64,
    pub native_dynamic: f64,
    pub cross_dynamic: f64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig8 {
    pub arches: Vec<Fig8Arch>,
}

/// Mean speedup on `target` when using `source`'s per-region *static*
/// predictions, translated.
fn cross_static_gain(source: &Evaluation, target: &Evaluation) -> f64 {
    cross_gain(source, target, |o| o.static_label)
}

/// Same, using the dynamic model's label predictions from the source. The
/// paper collects the source-selected counters on the target machine; here
/// the counters are the target's own (the dynamic tree was fit on source
/// data, which is the cross part).
fn cross_dynamic_gain(source: &Evaluation, target: &Evaluation) -> f64 {
    // Re-predict with the source fold models using the *target* counters.
    let mut total = 0.0;
    for o in &target.outcomes {
        let r = o.region;
        let fold = &source.folds[source.outcomes[r].fold];
        let label =
            fold.dynamic_model.predict_features(&target.dataset.regions[r].dynamic_features);
        total += gain_of_translated(source, target, r, label);
    }
    total / target.outcomes.len() as f64
}

fn cross_gain(
    source: &Evaluation,
    target: &Evaluation,
    label_of: impl Fn(&crate::evaluation::RegionOutcome) -> usize,
) -> f64 {
    let mut total = 0.0;
    for o in &target.outcomes {
        let r = o.region;
        let label = label_of(&source.outcomes[r]);
        total += gain_of_translated(source, target, r, label);
    }
    total / target.outcomes.len() as f64
}

/// Speedup on the target for region `r` when the source model chose source
/// label `label`.
fn gain_of_translated(source: &Evaluation, target: &Evaluation, r: usize, label: usize) -> f64 {
    let src_cfg = source.dataset.configs[source.dataset.chosen_configs[label]];
    let tgt_cfg = translate_config(&src_cfg, &source.dataset.machine, &target.dataset.machine);
    let idx = target
        .dataset
        .configs
        .iter()
        .position(|c| *c == tgt_cfg)
        .expect("translation lands in the target space");
    let t = target.dataset.regions[r].sweep[idx];
    target.dataset.regions[r].default_time / t
}

/// `a` and `b` are full evaluations of the two machines over the same
/// region set.
pub fn run(a: &Evaluation, b: &Evaluation) -> Fig8 {
    let _span = irnuma_obs::span!("exp.fig8");
    let arch_entry = |native: &Evaluation, other: &Evaluation| Fig8Arch {
        arch: format!("{:?}", native.cfg.arch),
        native_static: native.static_speedup(),
        cross_static: cross_static_gain(other, native),
        native_dynamic: native.dynamic_speedup(),
        cross_dynamic: cross_dynamic_gain(other, native),
    };
    Fig8 { arches: vec![arch_entry(a, b), arch_entry(b, a)] }
}

impl Fig8 {
    pub fn report(&self) -> FigureReport {
        let mut r = FigureReport::new(
            "fig8",
            "Cross-architecture prediction (higher is better)",
            &["arch", "native_static", "cross_static", "native_dynamic", "cross_dynamic"],
        );
        for a in &self.arches {
            r.push_row(vec![
                a.arch.clone(),
                f3(a.native_static),
                f3(a.cross_static),
                f3(a.native_dynamic),
                f3(a.cross_dynamic),
            ]);
        }
        let mean_cross =
            self.arches.iter().map(|a| a.cross_static).sum::<f64>() / self.arches.len() as f64;
        r.note(format!("mean cross static gain {mean_cross:.2}x (paper: ~1.7x)"));
        for a in &self.arches {
            r.note(format!(
                "{}: native static {:.2}x vs cross dynamic {:.2}x (paper: on par)",
                a.arch, a.native_static, a.cross_dynamic
            ));
        }
        r
    }
}
