//! Figure 9: per-region gains of the hybrid model vs the dynamic model vs
//! full exploration, with the regions that were profiled (bold in the
//! paper) and the regions where the router was wrong (red in the paper).

use crate::evaluation::Evaluation;
use crate::experiments::{f3, FigureReport};
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig9Row {
    pub region: String,
    pub dynamic_gain: f64,
    pub hybrid_gain: f64,
    pub full_gain: f64,
    /// "Bold": the hybrid model profiled this region.
    pub profiled: bool,
    /// "Red": the router picked the wrong side.
    pub route_wrong: bool,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig9 {
    pub rows: Vec<Fig9Row>,
    pub hybrid_speedup: f64,
    pub dynamic_speedup: f64,
    pub profiled_count: usize,
    pub route_accuracy: f64,
}

pub fn run(eval: &Evaluation) -> Fig9 {
    let _span = irnuma_obs::span!("exp.fig9");
    let rows: Vec<Fig9Row> = eval
        .outcomes
        .iter()
        .map(|o| Fig9Row {
            region: o.name.clone(),
            dynamic_gain: o.default_time / o.dynamic_time,
            hybrid_gain: o.default_time / o.hybrid_time,
            full_gain: o.default_time / o.full_best_time,
            profiled: o.hybrid_used_dynamic,
            route_wrong: !o.route_correct(),
        })
        .collect();
    Fig9 {
        hybrid_speedup: eval.hybrid_speedup(),
        dynamic_speedup: eval.dynamic_speedup(),
        profiled_count: rows.iter().filter(|r| r.profiled).count(),
        route_accuracy: eval.route_accuracy(),
        rows,
    }
}

impl Fig9 {
    pub fn report(&self) -> FigureReport {
        let mut r = FigureReport::new(
            "fig9",
            "Per-region gains: hybrid vs dynamic vs full exploration",
            &[
                "region",
                "dynamic_gain",
                "hybrid_gain",
                "full_exploration",
                "profiled",
                "route_wrong",
            ],
        );
        for row in &self.rows {
            r.push_row(vec![
                row.region.clone(),
                f3(row.dynamic_gain),
                f3(row.hybrid_gain),
                f3(row.full_gain),
                row.profiled.to_string(),
                row.route_wrong.to_string(),
            ]);
        }
        r.note(format!(
            "hybrid {:.2}x vs dynamic {:.2}x while profiling only {} of {} regions ({:.0}%; paper: ~30%, 16 programs)",
            self.hybrid_speedup,
            self.dynamic_speedup,
            self.profiled_count,
            self.rows.len(),
            100.0 * self.profiled_count as f64 / self.rows.len() as f64
        ));
        r.note(format!("router accuracy {:.0}% (paper: 92%)", self.route_accuracy * 100.0));
        r
    }
}
