//! Extension (paper §V, future work): *"predict if there is a behavior
//! change across inputs but not actually predict the change itself"*.
//!
//! We implement exactly that proposal: a decision tree over the static
//! embeddings that predicts whether re-using a region's size-2-optimal
//! configuration on size-1 loses more than a threshold — i.e. whether the
//! region's best configuration is input-sensitive. Regions flagged
//! sensitive would be re-tuned per input in deployment; the rest keep one
//! configuration for all inputs.

use crate::dataset::Dataset;
use crate::experiments::{f3, FigureReport};
use crate::models::static_gnn::StaticModel;
use irnuma_ml::{kfold, DecisionTree, TreeParams};
use irnuma_sim::{config_space, simulate, Machine, MicroArch};
use irnuma_workloads::InputSize;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InputSensitivity {
    /// Per region: true if transferring the size-2 config to size-1 loses
    /// more than the threshold (ground truth, oracle-level).
    pub sensitive: Vec<(String, bool, f64)>,
    /// Cross-validated accuracy of the static predictor.
    pub predictor_accuracy: f64,
    pub sensitive_count: usize,
    pub threshold: f64,
}

/// Ground truth: relative loss of transferring size-2 tuning to size-1 on
/// the Xeon Gold (the paper's input-size machine).
fn transfer_losses(ds: &Dataset, calls: u32) -> Vec<f64> {
    let m = Machine::new(MicroArch::XeonGold);
    let configs = config_space(&m);
    // Capture the caller's open span (`exp.input_sensitivity`) and attach
    // it on each worker so the per-region sweeps nest under it causally.
    let ctx = irnuma_obs::TraceContext::capture();
    ds.regions
        .par_iter()
        .map(|r| {
            let _scope = ctx.attach();
            let _rs = irnuma_obs::span!("exp.transfer_loss", region = r.spec.name.as_str());
            let sweep = |size: InputSize| -> Vec<f64> {
                configs
                    .iter()
                    .map(|c| {
                        (0..calls)
                            .map(|k| {
                                simulate(&r.spec.name, &r.spec.profile, &m, c, size, k).seconds
                            })
                            .sum::<f64>()
                            / calls as f64
                    })
                    .collect()
            };
            let s1 = sweep(InputSize::Size1);
            let s2 = sweep(InputSize::Size2);
            let best = |v: &[f64]| {
                v.iter().enumerate().min_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i).unwrap()
            };
            let b1 = best(&s1);
            let b2 = best(&s2);
            (s1[b2] - s1[b1]) / s1[b1] // fractional slowdown from transferring
        })
        .collect()
}

/// Train and evaluate the input-sensitivity predictor with k-fold CV over
/// the regions, using the static model of each fold for embeddings.
pub fn run(
    ds: &Dataset,
    sm_params: crate::models::static_gnn::StaticParams,
    threshold: f64,
    calls: u32,
) -> InputSensitivity {
    let _span = irnuma_obs::span!("exp.input_sensitivity", calls = calls);
    let losses = transfer_losses(ds, calls);
    let truth: Vec<bool> = losses.iter().map(|&l| l > threshold).collect();

    let folds = kfold(ds.regions.len(), 4, 0x1717).expect("4 folds fit the region suite");
    let mut correct = 0usize;
    for (fi, validation) in folds.iter().enumerate() {
        let train: Vec<usize> = irnuma_ml::cv::train_indices(&folds, fi);
        let sm = StaticModel::train(ds, &train, sm_params);
        let x: Vec<Vec<f32>> = train.iter().map(|&r| sm.embedding(ds, r)).collect();
        let y: Vec<usize> = train.iter().map(|&r| truth[r] as usize).collect();
        let tree =
            DecisionTree::fit(&x, &y, TreeParams { max_depth: Some(3), ..Default::default() });
        for &r in validation {
            let pred = tree.predict(&sm.embedding(ds, r)) == 1;
            if pred == truth[r] {
                correct += 1;
            }
        }
    }

    InputSensitivity {
        sensitive: ds
            .regions
            .iter()
            .zip(&truth)
            .zip(&losses)
            .map(|((r, &t), &l)| (r.spec.name.clone(), t, l))
            .collect(),
        predictor_accuracy: correct as f64 / ds.regions.len() as f64,
        sensitive_count: truth.iter().filter(|&&t| t).count(),
        threshold,
    }
}

impl InputSensitivity {
    pub fn report(&self) -> FigureReport {
        let mut r = FigureReport::new(
            "input_sensitivity",
            "Extension (§V): predicting behavior change across input sizes",
            &["region", "sensitive", "transfer_loss"],
        );
        for (name, s, l) in &self.sensitive {
            r.push_row(vec![name.clone(), s.to_string(), f3(*l)]);
        }
        r.note(format!(
            "{} of {} regions are input-sensitive (>{:.0}% transfer loss)",
            self.sensitive_count,
            self.sensitive.len(),
            self.threshold * 100.0
        ));
        r.note(format!(
            "static predictor identifies them with {:.0}% accuracy (paper §V proposes exactly this)",
            self.predictor_accuracy * 100.0
        ));
        r
    }
}
