//! Per-figure experiment drivers. Each `figN` module reproduces the data of
//! the paper's Figure N as a typed struct plus a uniform [`FigureReport`]
//! (console rows + CSV) that the `irnuma-bench` `figures` binary renders.

pub mod ablations;
pub mod cost_comparison;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod input_sensitivity;

use serde::{Deserialize, Serialize};
use std::fmt;

/// A rendered figure: column names and stringified rows.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FigureReport {
    pub id: String,
    pub title: String,
    pub columns: Vec<String>,
    pub rows: Vec<Vec<String>>,
    /// Headline observations (paper-vs-measured notes).
    pub notes: Vec<String>,
}

impl FigureReport {
    pub fn new(id: &str, title: &str, columns: &[&str]) -> FigureReport {
        FigureReport {
            id: id.into(),
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    pub fn to_csv(&self) -> String {
        let mut out = self.columns.join(",");
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.join(","));
            out.push('\n');
        }
        out
    }

    /// Write the CSV into `dir/<id>.csv` (atomic: a crash mid-write leaves
    /// any previous figure CSV intact, never a torn one).
    pub fn write_csv(&self, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        let path = dir.join(format!("{}.csv", self.id));
        irnuma_store::atomic_write(&path, self.to_csv().as_bytes())?;
        Ok(path)
    }
}

impl fmt::Display for FigureReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        writeln!(f, "{}", self.columns.join(" | "))?;
        for r in &self.rows {
            writeln!(f, "{}", r.join(" | "))?;
        }
        for n in &self.notes {
            writeln!(f, "note: {n}")?;
        }
        Ok(())
    }
}

/// Format a float with 3 decimals (uniform across reports).
pub(crate) fn f3(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips_to_csv() {
        let mut r = FigureReport::new("figX", "demo", &["a", "b"]);
        r.push_row(vec!["1".into(), "2".into()]);
        r.push_row(vec!["3".into(), "4".into()]);
        r.note("hello");
        let csv = r.to_csv();
        assert_eq!(csv, "a,b\n1,2\n3,4\n");
        let shown = format!("{r}");
        assert!(shown.contains("figX"));
        assert!(shown.contains("note: hello"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_is_enforced() {
        let mut r = FigureReport::new("f", "t", &["a", "b"]);
        r.push_row(vec!["1".into()]);
    }
}
