//! # irnuma-core — the paper's pipeline, end to end
//!
//! This crate wires the substrates into the workflow of Fig. 1:
//!
//! * **Step A** ([`dataset`]): compile every region under many sampled flag
//!   sequences (`irnuma-passes`), producing augmented IR forms.
//! * **Step B** ([`dataset`]): extract each outlined region
//!   (`irnuma-ir::extract`) and build its ProGraML graph (`irnuma-graph`).
//! * **Step C** ([`dataset`]): sweep the NUMA × prefetch space
//!   (`irnuma-sim`) once per region with default flags, reduce the space to
//!   13/6/2 label configurations (`irnuma-ml::labels`), and label each
//!   region with its best.
//! * **Step D** ([`models`]): train the RGCN **static model**
//!   (`irnuma-nn`) on the augmented graphs; train the **dynamic baseline**
//!   (decision tree on package power + L3 miss ratio); build the **hybrid
//!   model** (decision tree over GA-selected embedding dimensions that
//!   routes hard regions to the dynamic model).
//! * **Step E** ([`models::flags`]): choose the deployment flag sequence —
//!   *explored* (best average on training regions) or *predicted* (a
//!   decision-tree flag model).
//!
//! [`evaluation`] runs the whole thing under 10-fold cross-validation and
//! produces the per-region outcomes that [`experiments`] turns into every
//! figure of the paper (Fig. 3–12).

pub mod bench_check;
pub mod dataset;
pub mod dataset_pack;
pub mod evaluation;
pub mod experiments;
pub mod models;
pub mod serve_bench;
pub mod top;
pub mod trace_report;
pub mod trace_tree;

pub use dataset::{
    build_dataset, build_dataset_report, BuildOptions, Dataset, DatasetBuild, DatasetError,
    DatasetParams, RegionData, SkipRecord,
};
pub use dataset_pack::{
    build_packed_dataset, load_packed, open_stream, pack_dataset, read_meta, PackSummary,
    PackedBuild, PackedMeta, PackedRegion,
};
pub use evaluation::{evaluate, Evaluation, FoldModels, PipelineConfig, RegionOutcome};
