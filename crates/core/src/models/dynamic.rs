//! The dynamic baseline (paper §IV-A): the most efficient reaction-based
//! model of Sánchez Barrera et al. — a classification tree over two
//! performance counters, package power and L3 miss ratio, collected at the
//! default configuration.

use crate::dataset::Dataset;
use irnuma_ml::{DecisionTree, TreeParams};

/// The profiling-based configuration predictor.
pub struct DynamicModel {
    tree: DecisionTree,
}

impl DynamicModel {
    /// Train on the counters of the given training regions.
    pub fn train(ds: &Dataset, train_idx: &[usize]) -> DynamicModel {
        let _span = irnuma_obs::span!("model.dynamic.train", regions = train_idx.len());
        let x: Vec<Vec<f32>> =
            train_idx.iter().map(|&r| ds.regions[r].dynamic_features.clone()).collect();
        let y: Vec<usize> = train_idx.iter().map(|&r| ds.labels[r]).collect();
        DynamicModel { tree: DecisionTree::fit(&x, &y, TreeParams::default()) }
    }

    /// Predict the label class of a region from its counters.
    pub fn predict(&self, ds: &Dataset, region: usize) -> usize {
        self.tree.predict(&ds.regions[region].dynamic_features)
    }

    /// Predict from raw counter features (cross-architecture evaluation
    /// feeds counters collected on the *other* machine).
    pub fn predict_features(&self, features: &[f32]) -> usize {
        self.tree.predict(features)
    }
}
