//! The flag-prediction model (paper §III-E, second method / §IV-G): instead
//! of one explored flag sequence for every program, a decision tree over
//! the static embeddings picks a per-program sequence from a small list of
//! candidate sequences. Candidates are selected with the same greedy
//! reduction used for the 13 configuration labels; the paper needed 2
//! (Skylake) and 4 (Sandy Bridge) sequences to reach 99% of the oracle.

use crate::dataset::Dataset;
use crate::models::static_gnn::StaticModel;
use irnuma_ml::{DecisionTree, Ga, GaParams, TreeParams};
use irnuma_nn::GraphData;
use serde::{Deserialize, Serialize};

/// Flag-model hyper-parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FlagParams {
    /// Oracle-gain fraction the candidate list must reach (paper: 99%).
    pub target_coverage: f64,
    /// Hard cap on the candidate list length.
    pub max_candidates: usize,
    pub feature_subset: usize,
    pub ga: GaParams,
}

impl Default for FlagParams {
    fn default() -> Self {
        FlagParams {
            target_coverage: 0.99,
            max_candidates: 4,
            feature_subset: 10,
            ga: GaParams { population: 64, generations: 12, seed: 77, ..Default::default() },
        }
    }
}

/// Per-program flag-sequence predictor.
pub struct FlagModel {
    tree: DecisionTree,
    pub selected_dims: Vec<usize>,
    /// Candidate sequence indices (into `Dataset::sequences`).
    pub candidates: Vec<usize>,
}

/// Predicted-speedup matrix: `gains[i][s]` = speedup of training region
/// `train_idx[i]` when the static model predicts with sequence `s`.
pub fn gains_matrix(ds: &Dataset, sm: &StaticModel, idx: &[usize]) -> Vec<Vec<f64>> {
    let n_seq = ds.sequences.len();
    // One batched inference pass over every (region × sequence) graph.
    let refs: Vec<&GraphData> =
        idx.iter().flat_map(|&r| (0..n_seq).map(move |s| &ds.regions[r].graphs[s])).collect();
    let outputs = sm.clf.model.infer_batch_refs(&refs);
    idx.iter()
        .enumerate()
        .map(|(i, &r)| {
            (0..n_seq)
                .map(|s| {
                    let label = outputs[i * n_seq + s].label();
                    ds.regions[r].default_time / ds.label_time(r, label)
                })
                .collect()
        })
        .collect()
}

/// Greedy candidate-sequence selection until `target` of the oracle mean
/// gain is reached (or the cap).
fn select_candidates(gains: &[Vec<f64>], target: f64, cap: usize) -> Vec<usize> {
    let n_seq = gains[0].len();
    let oracle_mean: f64 =
        gains.iter().map(|g| g.iter().cloned().fold(f64::MIN, f64::max)).sum::<f64>()
            / gains.len() as f64;
    let mut chosen: Vec<usize> = Vec::new();
    let mut best_per_region = vec![f64::MIN; gains.len()];
    while chosen.len() < cap.min(n_seq) {
        let mut best = None;
        let mut best_score = f64::MIN;
        for s in 0..n_seq {
            if chosen.contains(&s) {
                continue;
            }
            let score: f64 = gains.iter().zip(&best_per_region).map(|(g, &b)| b.max(g[s])).sum();
            if score > best_score {
                best_score = score;
                best = Some(s);
            }
        }
        let s = best.expect("unchosen sequences remain");
        chosen.push(s);
        for (r, g) in gains.iter().enumerate() {
            best_per_region[r] = best_per_region[r].max(g[s]);
        }
        let mean = best_per_region.iter().sum::<f64>() / gains.len() as f64;
        if mean >= target * oracle_mean {
            break;
        }
    }
    chosen
}

impl FlagModel {
    /// Train on the training regions: build the gains matrix, select
    /// candidate sequences, label each region with its best candidate, and
    /// fit the GA-subset decision tree over the embeddings.
    pub fn train(ds: &Dataset, sm: &StaticModel, train_idx: &[usize], p: FlagParams) -> FlagModel {
        let _span = irnuma_obs::span!("model.flags.train", regions = train_idx.len());
        let gains = gains_matrix(ds, sm, train_idx);
        let candidates = select_candidates(&gains, p.target_coverage, p.max_candidates);

        let y: Vec<usize> = gains
            .iter()
            .map(|g| {
                candidates
                    .iter()
                    .enumerate()
                    .max_by(|a, b| g[*a.1].total_cmp(&g[*b.1]).then(b.0.cmp(&a.0)))
                    .map(|(i, _)| i)
                    .expect("non-empty candidates")
            })
            .collect();
        let embeddings: Vec<Vec<f32>> = train_idx.iter().map(|&r| sm.embedding(ds, r)).collect();
        let dim = embeddings[0].len();
        let k = p.feature_subset.min(dim);

        let fitness = |sel: &[usize]| -> f64 {
            let xs: Vec<Vec<f32>> =
                embeddings.iter().map(|e| sel.iter().map(|&d| e[d]).collect()).collect();
            let mut correct = 0usize;
            for hold in 0..xs.len() {
                let tx: Vec<Vec<f32>> = xs
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != hold)
                    .map(|(_, v)| v.clone())
                    .collect();
                let ty: Vec<usize> =
                    y.iter().enumerate().filter(|&(i, _)| i != hold).map(|(_, &v)| v).collect();
                let t = DecisionTree::fit(&tx, &ty, TreeParams::default());
                if t.predict(&xs[hold]) == y[hold] {
                    correct += 1;
                }
            }
            correct as f64 / xs.len() as f64
        };
        let (selected_dims, _) = Ga::new(p.ga).select_features(dim, k, fitness);

        let xs: Vec<Vec<f32>> =
            embeddings.iter().map(|e| selected_dims.iter().map(|&d| e[d]).collect()).collect();
        let tree = DecisionTree::fit(&xs, &y, TreeParams::default());
        FlagModel { tree, selected_dims, candidates }
    }

    /// The flag sequence (index into `Dataset::sequences`) predicted for a
    /// region.
    pub fn predict_seq(&self, ds: &Dataset, sm: &StaticModel, region: usize) -> usize {
        let e = sm.embedding(ds, region);
        let x: Vec<f32> = self.selected_dims.iter().map(|&d| e[d]).collect();
        self.candidates[self.tree.predict(&x).min(self.candidates.len() - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_selection_reaches_target_or_cap() {
        // 3 regions × 4 sequences; region r peaks at sequence r.
        let gains =
            vec![vec![2.0, 1.0, 1.0, 1.5], vec![1.0, 2.0, 1.0, 1.5], vec![1.0, 1.0, 2.0, 1.5]];
        // Greedy starts with the best-average seq (3), then needs all three
        // peak sequences to reach the oracle.
        let full = select_candidates(&gains, 0.999, 4);
        assert_eq!(full, vec![3, 0, 1, 2]);

        let capped = select_candidates(&gains, 0.999, 1);
        assert_eq!(capped, vec![3], "single best-average sequence");

        let loose = select_candidates(&gains, 0.74, 4);
        assert_eq!(loose.len(), 1, "1.5 mean ≥ 74% of 2.0 oracle");
    }
}
