//! The hybrid model (paper §III-D.2): a decision tree over a GA-selected
//! subset of the static embedding that predicts whether the static model's
//! error exceeds the 20% threshold; if so, the region is profiled and the
//! dynamic model decides.

use crate::dataset::Dataset;
use crate::models::static_gnn::StaticModel;
use irnuma_ml::{relative_difference, DecisionTree, Ga, GaParams, TreeParams};
use serde::{Deserialize, Serialize};

/// Hybrid-model hyper-parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HybridParams {
    /// Error threshold above which a region "needs profiling" (paper: 20%).
    pub error_threshold: f64,
    /// Embedding dimensions kept by the GA (paper: 10 of 256).
    pub feature_subset: usize,
    /// Inner-CV folds used to produce honest routing labels.
    pub inner_folds: usize,
    pub ga: GaParams,
}

impl Default for HybridParams {
    fn default() -> Self {
        HybridParams {
            error_threshold: 0.20,
            feature_subset: 10,
            inner_folds: 5,
            ga: GaParams { population: 100, generations: 20, ..Default::default() },
        }
    }
}

/// The router: static-is-enough vs needs-profiling.
pub struct HybridModel {
    tree: DecisionTree,
    pub selected_dims: Vec<usize>,
    pub params: HybridParams,
}

/// Whether the static model's prediction for `region` misses the full
/// exploration by more than `threshold` (the routing ground truth).
pub fn static_needs_profiling(
    ds: &Dataset,
    sm: &StaticModel,
    region: usize,
    threshold: f64,
) -> bool {
    let pred = sm.predict(ds, region);
    let t_pred = ds.label_time(region, pred);
    let t_full = ds.regions[region].full_best_time();
    relative_difference(t_full, t_pred) > threshold
}

/// Honest routing training data: inner cross-validation over the training
/// regions. Each held-out region is scored *and featurized* by a static
/// model that has not seen it — the same condition the deployed router
/// faces on a validation region. Training-set errors would underestimate
/// failures and teach the router to never profile; final-model features
/// with sub-model labels would be misaligned.
pub fn inner_cv_needs_labels(
    ds: &Dataset,
    train_idx: &[usize],
    threshold: f64,
    inner_folds: usize,
    static_params: crate::models::static_gnn::StaticParams,
) -> (Vec<Vec<f32>>, Vec<usize>) {
    let inner_folds = inner_folds.clamp(2, train_idx.len());
    let mut needs = vec![0usize; train_idx.len()];
    let mut feats: Vec<Vec<f32>> = vec![Vec::new(); train_idx.len()];
    for f in 0..inner_folds {
        let holdout: Vec<usize> = (f..train_idx.len()).step_by(inner_folds).collect();
        let sub_train: Vec<usize> = train_idx
            .iter()
            .enumerate()
            .filter(|(i, _)| !holdout.contains(i))
            .map(|(_, &r)| r)
            .collect();
        let sub_model = StaticModel::train(ds, &sub_train, static_params);
        for &i in &holdout {
            let r = train_idx[i];
            needs[i] = static_needs_profiling(ds, &sub_model, r, threshold) as usize;
            feats[i] = sub_model.router_features(ds, r);
        }
    }
    (feats, needs)
}

impl HybridModel {
    /// Train the router on the training regions' embeddings and honest
    /// (inner-CV) static-error labels.
    pub fn train(
        ds: &Dataset,
        sm: &StaticModel,
        train_idx: &[usize],
        p: HybridParams,
        static_params: crate::models::static_gnn::StaticParams,
    ) -> HybridModel {
        let _span = irnuma_obs::span!(
            "model.hybrid.train",
            regions = train_idx.len(),
            inner_folds = p.inner_folds
        );
        let _ = sm; // features come from the inner models, see below
                    // Inner sub-models use two-thirds of the epochs: enough fidelity
                    // for honest labels at 40% less cost.
        let inner = crate::models::static_gnn::StaticParams {
            epochs: (static_params.epochs * 2 / 3).max(3),
            ..static_params
        };
        let (embeddings, y) =
            inner_cv_needs_labels(ds, train_idx, p.error_threshold, p.inner_folds, inner);
        let dim = embeddings[0].len();
        let k = p.feature_subset.min(dim);

        // The router tree is depth-limited: the training set is ~50 regions
        // and the full-depth CART memorizes it without transferring.
        let tree_params = TreeParams { max_depth: Some(2), ..Default::default() };

        // GA fitness: leave-one-out *balanced* accuracy of the tree on the
        // selected dims (the paper optimizes the same objective with
        // pyeasyga; balancing matters because "needs profiling" is the
        // minority class).
        let fitness = |sel: &[usize]| -> f64 {
            let xs: Vec<Vec<f32>> =
                embeddings.iter().map(|e| sel.iter().map(|&d| e[d]).collect()).collect();
            let mut hit = [0usize; 2];
            let mut tot = [0usize; 2];
            for hold in 0..xs.len() {
                let tx: Vec<Vec<f32>> = xs
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != hold)
                    .map(|(_, v)| v.clone())
                    .collect();
                let ty: Vec<usize> =
                    y.iter().enumerate().filter(|&(i, _)| i != hold).map(|(_, &v)| v).collect();
                let t = DecisionTree::fit(&tx, &ty, tree_params);
                tot[y[hold]] += 1;
                if t.predict(&xs[hold]) == y[hold] {
                    hit[y[hold]] += 1;
                }
            }
            let recall = |c: usize| {
                if tot[c] == 0 {
                    1.0
                } else {
                    hit[c] as f64 / tot[c] as f64
                }
            };
            0.5 * (recall(0) + recall(1))
        };
        let (selected_dims, _) = Ga::new(p.ga).select_features(dim, k, fitness);

        let xs: Vec<Vec<f32>> =
            embeddings.iter().map(|e| selected_dims.iter().map(|&d| e[d]).collect()).collect();
        let tree = DecisionTree::fit(&xs, &y, tree_params);
        HybridModel { tree, selected_dims, params: p }
    }

    /// Should this region be profiled (routed to the dynamic model)?
    pub fn route_to_dynamic(&self, ds: &Dataset, sm: &StaticModel, region: usize) -> bool {
        let e = sm.router_features(ds, region);
        let x: Vec<f32> = self.selected_dims.iter().map(|&d| e[d]).collect();
        self.tree.predict(&x) == 1
    }
}
