//! The four models of the paper (Fig. 2 plus baselines):
//!
//! * [`static_gnn::StaticModel`] — the RGCN classifier over region graphs,
//!   plus the *explored flag sequence* selection of step E;
//! * [`dynamic::DynamicModel`] — the profiling baseline: a decision tree on
//!   performance counters (package power, L3 miss ratio), the paper's
//!   reference point from Sánchez Barrera et al.;
//! * [`hybrid::HybridModel`] — a decision tree over GA-selected embedding
//!   dimensions that predicts *whether the static model will fail* (>20%
//!   error) and routes those regions to the dynamic model;
//! * [`flags::FlagModel`] — the flag-prediction model: picks a per-program
//!   flag sequence instead of a single explored one.

pub mod dynamic;
pub mod flags;
pub mod hybrid;
pub mod static_gnn;

pub use dynamic::DynamicModel;
pub use flags::FlagModel;
pub use hybrid::HybridModel;
pub use static_gnn::{StaticModel, StaticParams};
