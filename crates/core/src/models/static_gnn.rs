//! The static prediction model (paper §III-D.1) and the explored-flag-seq
//! selection (§III-E, first method).

use crate::dataset::Dataset;
use irnuma_graph::Vocab;
use irnuma_nn::{GnnClassifier, GnnConfig, GraphData, TrainParams};
use serde::{Deserialize, Serialize};

/// Static-model hyper-parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StaticParams {
    /// GNN hidden width (the paper uses 256; the default favors runtime).
    pub hidden: usize,
    pub epochs: usize,
    pub lr: f32,
    pub batch: usize,
    /// How many of the dataset's flag sequences are used as training
    /// augmentation (evenly subsampled).
    pub train_sequences: usize,
    pub seed: u64,
}

impl Default for StaticParams {
    fn default() -> Self {
        StaticParams { hidden: 32, epochs: 14, lr: 4e-3, batch: 24, train_sequences: 8, seed: 71 }
    }
}

/// A trained static model for one fold.
pub struct StaticModel {
    pub clf: GnnClassifier,
    /// The deployment flag sequence chosen by exploration over the training
    /// regions (index into `Dataset::sequences`).
    pub explored_seq: usize,
    pub params: StaticParams,
}

/// Indices of the augmentation subsample.
pub fn training_sequence_ids(total: usize, wanted: usize) -> Vec<usize> {
    let k = wanted.clamp(1, total);
    (0..k).map(|i| i * total / k).collect()
}

impl StaticModel {
    /// Train on the given region indices (step D), then run the explored
    /// flag-sequence selection (step E) over the same training regions.
    pub fn train(ds: &Dataset, train_idx: &[usize], p: StaticParams) -> StaticModel {
        let _span = irnuma_obs::span!(
            "model.static.train",
            regions = train_idx.len(),
            epochs = p.epochs,
            hidden = p.hidden
        );
        let vocab = Vocab::full();
        let classes = ds.chosen_configs.len();
        let seq_ids = training_sequence_ids(ds.sequences.len(), p.train_sequences);

        let mut graphs = Vec::with_capacity(train_idx.len() * seq_ids.len());
        let mut labels = Vec::with_capacity(graphs.capacity());
        for &r in train_idx {
            for &s in &seq_ids {
                graphs.push(ds.regions[r].graphs[s].clone());
                labels.push(ds.labels[r]);
            }
        }

        let cfg = GnnConfig {
            vocab_size: vocab.len(),
            hidden: p.hidden,
            classes,
            layers: 2,
            layer_norm: true,
            seed: p.seed,
        };
        let mut clf = GnnClassifier::new(cfg);
        clf.fit(
            &graphs,
            &labels,
            TrainParams { epochs: p.epochs, batch_size: p.batch, lr: p.lr, seed: p.seed ^ 0x9e37 },
        );

        // Step E (explored): the sequence with the best average predicted
        // speedup across the training regions. One batched inference pass
        // covers every (sequence × training region) graph.
        let graph_refs: Vec<&GraphData> = (0..ds.sequences.len())
            .flat_map(|s| train_idx.iter().map(move |&r| &ds.regions[r].graphs[s]))
            .collect();
        let outputs = clf.model.infer_batch_refs(&graph_refs);
        let explored_seq = (0..ds.sequences.len())
            .map(|s| {
                let base = s * train_idx.len();
                let mean: f64 = train_idx
                    .iter()
                    .enumerate()
                    .map(|(i, &r)| {
                        let label = outputs[base + i].label();
                        ds.regions[r].default_time / ds.label_time(r, label)
                    })
                    .sum::<f64>()
                    / train_idx.len().max(1) as f64;
                (s, mean)
            })
            .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)))
            .map(|(s, _)| s)
            .expect("non-empty sequence pool");

        StaticModel { clf, explored_seq, params: p }
    }

    /// Predict the label class of a region using flag sequence `seq`.
    pub fn predict_with_seq(&self, ds: &Dataset, region: usize, seq: usize) -> usize {
        self.clf.predict(&ds.regions[region].graphs[seq])
    }

    /// Predict with the explored deployment sequence.
    pub fn predict(&self, ds: &Dataset, region: usize) -> usize {
        self.predict_with_seq(ds, region, self.explored_seq)
    }

    /// The pooled embedding of a region under the explored sequence — the
    /// feature vector of the flag model.
    pub fn embedding(&self, ds: &Dataset, region: usize) -> Vec<f32> {
        self.clf.embedding(&ds.regions[region].graphs[self.explored_seq])
    }

    /// Embedding augmented with the classifier's softmax distribution and
    /// top-1 margin — the hybrid router's features. The paper routes on the
    /// normalization-layer vector alone; adding the model's own confidence
    /// is a documented extension (DESIGN.md) that recovers the router
    /// accuracy real benchmark diversity gives the original.
    pub fn router_features(&self, ds: &Dataset, region: usize) -> Vec<f32> {
        self.clf.embedding_with_confidence(&ds.regions[region].graphs[self.explored_seq])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subsample_is_even_and_in_range() {
        assert_eq!(training_sequence_ids(10, 5), vec![0, 2, 4, 6, 8]);
        assert_eq!(training_sequence_ids(3, 8), vec![0, 1, 2]);
        assert_eq!(training_sequence_ids(100, 1), vec![0]);
    }
}
