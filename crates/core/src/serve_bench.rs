//! `irnuma serve-bench` — closed-loop load generator for the serving
//! daemon.
//!
//! Spawns an in-process [`irnuma_serve::Server`] (or connects to a running
//! one), drives it from N closed-loop client threads over deterministic
//! synthetic region graphs, and reports per-request latency percentiles
//! plus sustained throughput. The medians land in `BENCH_serving.json`
//! (keys `serving/p50_latency_us`, `serving/p99_latency_us`,
//! `serving/throughput_rps`) so `irnuma bench-check` gates serving
//! regressions exactly like the kernel benches.

use irnuma_nn::graphdata::NUM_RELATIONS;
use irnuma_nn::{GnnClassifier, GnnConfig, GraphData};
use irnuma_serve::{Client, Reply, Request, ServeConfig, Server};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Load-generator knobs (CLI flags map onto these 1:1).
#[derive(Debug, Clone)]
pub struct ServeBenchParams {
    /// Existing model artifact; `None` builds a fresh synthetic model.
    pub model: Option<PathBuf>,
    /// Address of a running daemon; `None` starts one in-process.
    pub connect: Option<String>,
    /// Total requests to issue across all clients.
    pub requests: usize,
    /// Concurrent closed-loop client connections.
    pub clients: usize,
}

impl Default for ServeBenchParams {
    fn default() -> ServeBenchParams {
        ServeBenchParams { model: None, connect: None, requests: 2000, clients: 4 }
    }
}

/// Aggregated load-test result.
#[derive(Debug, Clone)]
pub struct ServeBenchReport {
    pub served: u64,
    pub rejected: u64,
    pub p50_us: f64,
    pub p99_us: f64,
    pub mean_us: f64,
    pub throughput_rps: f64,
    pub clients: usize,
}

/// Deterministic synthetic region graph (chain backbone + cross edges per
/// relation) sized like the paper's region graphs.
fn synthetic_graph(idx: u64, vocab: usize) -> GraphData {
    let n = 24 + (idx % 5) * 12; // 24..72 nodes
    let node_text: Vec<u32> = (0..n as u32)
        .map(|i| (i.wrapping_mul(31).wrapping_add(idx as u32 * 7)) % vocab as u32)
        .collect();
    let mut edges: [Vec<(u32, u32)>; NUM_RELATIONS] = Default::default();
    for i in 1..n as u32 {
        edges[0].push((i - 1, i));
        if i % 3 == 0 {
            edges[1].push((i, i / 2));
        }
        if i % 5 == 0 {
            edges[2].push((i, 0));
        }
    }
    GraphData::from_edge_lists(node_text, edges)
}

fn synthetic_model_path() -> Result<PathBuf, String> {
    let dir = std::env::temp_dir().join("irnuma-serve-bench");
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    let path = dir.join(format!("model-{}.json", std::process::id()));
    let clf = GnnClassifier::new(GnnConfig {
        vocab_size: 64,
        hidden: 32,
        classes: 13,
        layers: 2,
        layer_norm: true,
        seed: 417,
    });
    clf.save_json(&path).map_err(|e| e.to_string())?;
    Ok(path)
}

/// Run the load test. Fairness note: clients are closed-loop (each waits
/// for its reply before sending the next request), so reported latency is
/// not subject to coordinated omission.
pub fn run(params: &ServeBenchParams) -> Result<ServeBenchReport, String> {
    // Resolve the target: an external daemon, or an in-process one over a
    // fresh (or given) model artifact.
    let mut local: Option<Server> = None;
    let addr: SocketAddr = match &params.connect {
        Some(addr) => addr.parse().map_err(|e| format!("bad --connect {addr}: {e}"))?,
        None => {
            let path = match &params.model {
                Some(p) => p.clone(),
                None => synthetic_model_path()?,
            };
            let server = Server::start(ServeConfig::new(&path))
                .map_err(|e| format!("start daemon over {}: {e}", path.display()))?;
            let addr = server.addr();
            local = Some(server);
            addr
        }
    };

    // The model's vocabulary bounds the synthetic tokens. An external
    // daemon's vocabulary is unknown; 64 matches the synthetic model and
    // any real artifact is larger.
    let vocab = 64usize;
    let clients = params.clients.max(1);
    let total = params.requests.max(clients) as u64;
    let issued = Arc::new(AtomicU64::new(0));
    let rejected = Arc::new(AtomicU64::new(0));

    let span = irnuma_obs::span!("serve.bench", requests = total, clients = clients as u64);
    let t0 = Instant::now();
    let mut workers = Vec::new();
    for c in 0..clients {
        let issued = issued.clone();
        let rejected = rejected.clone();
        workers.push(std::thread::spawn(move || -> Result<Vec<u64>, String> {
            let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
            let mut lat_ns: Vec<u64> = Vec::new();
            loop {
                let id = issued.fetch_add(1, Ordering::Relaxed);
                if id >= total {
                    return Ok(lat_ns);
                }
                let g = synthetic_graph(id.wrapping_add(c as u64 * 131), vocab);
                let req = Request { id, node_text: g.node_text.clone(), edges: g.edges.to_vec() };
                let sent = Instant::now();
                match client.call(&req).map_err(|e| format!("client {c}: {e}"))? {
                    Reply::Ok(_) => {
                        lat_ns.push(u64::try_from(sent.elapsed().as_nanos()).unwrap_or(u64::MAX));
                    }
                    Reply::Err(e) if e.code == irnuma_serve::CODE_OVERLOADED => {
                        rejected.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(std::time::Duration::from_millis(
                            e.retry_after_ms.clamp(1, 50),
                        ));
                    }
                    Reply::Err(e) => return Err(format!("client {c}: server error {e:?}")),
                }
            }
        }));
    }
    let mut lat_ns: Vec<u64> = Vec::new();
    for w in workers {
        lat_ns.extend(w.join().map_err(|_| "bench client panicked")??);
    }
    let elapsed = t0.elapsed().as_secs_f64();
    drop(span);
    if let Some(server) = local {
        server.shutdown();
    }

    if lat_ns.is_empty() {
        return Err("no requests served".to_string());
    }
    lat_ns.sort_unstable();
    let q = |p: f64| lat_ns[((lat_ns.len() - 1) as f64 * p) as usize] as f64 / 1e3;
    let mean_us = lat_ns.iter().map(|&v| v as f64).sum::<f64>() / lat_ns.len() as f64 / 1e3;
    Ok(ServeBenchReport {
        served: lat_ns.len() as u64,
        rejected: rejected.load(Ordering::Relaxed),
        p50_us: q(0.50),
        p99_us: q(0.99),
        mean_us,
        throughput_rps: lat_ns.len() as f64 / elapsed.max(1e-9),
        clients,
    })
}

/// Write `BENCH_serving.json` at the repository root plus one history line
/// in `results/bench_history.jsonl` (same format as the criterion bench
/// binaries; duplicated here because `irnuma-bench` depends on this crate).
pub fn write_report(report: &ServeBenchReport) -> std::io::Result<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let entries = [
        ("serving/p50_latency_us", report.p50_us),
        ("serving/p99_latency_us", report.p99_us),
        ("serving/mean_latency_us", report.mean_us),
        ("serving/throughput_rps", report.throughput_rps),
    ];
    let mut body = String::from("{\n");
    for (i, (id, v)) in entries.iter().enumerate() {
        let sep = if i + 1 == entries.len() { "" } else { "," };
        body.push_str(&format!("  \"{id}\": {v:.3}{sep}\n"));
    }
    body.push_str("}\n");
    let path = root.join("BENCH_serving.json");
    irnuma_store::atomic_write(&path, body.as_bytes())?;

    let ts_ns = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let mut line = format!("{{\"ts_ns\":{ts_ns},\"bench\":\"serving\",\"entries\":{{");
    for (i, (id, v)) in entries.iter().enumerate() {
        let sep = if i + 1 == entries.len() { "" } else { "," };
        line.push_str(&format!("\"{id}\":{v:.3}{sep}"));
    }
    line.push_str("}}\n");
    let dir = root.join("results");
    std::fs::create_dir_all(&dir)?;
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(dir.join("bench_history.jsonl"))?;
    f.write_all(line.as_bytes())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_closed_loop_run_reports_sane_numbers() {
        let report =
            run(&ServeBenchParams { requests: 40, clients: 2, ..Default::default() }).unwrap();
        assert_eq!(report.served, 40);
        assert!(report.p50_us > 0.0 && report.p50_us <= report.p99_us);
        assert!(report.throughput_rps > 0.0);
    }
}
