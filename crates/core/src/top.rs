//! Live telemetry viewer (`irnuma top`).
//!
//! Consumes the `/json` wire format served by `irnuma-obs`'s export
//! endpoint (any irnuma process started with `IRNUMA_METRICS=<addr>`) and
//! renders a terminal dashboard: counters (with per-second rates in watch
//! mode), gauges, histogram quantiles, and per-span-name latency
//! percentiles. Parsing and rendering are pure functions over the JSON
//! body so they test without sockets; the fetch/watch loop lives in the
//! CLI binary.

/// One histogram's frozen aggregates from the wire format.
#[derive(Debug, Clone, PartialEq)]
pub struct HistView {
    pub name: String,
    pub count: u64,
    pub mean: f64,
    pub p50: f64,
    pub p90: f64,
    pub p99: f64,
    pub max: u64,
}

/// A parsed `/json` telemetry snapshot.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    pub ts_ns: u64,
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub hists: Vec<HistView>,
    pub spans: Vec<HistView>,
}

fn parse_hist_group(v: &serde_json::Value, key: &str) -> Vec<HistView> {
    let Some(serde_json::Value::Object(pairs)) = v.field(key) else {
        return Vec::new();
    };
    pairs
        .iter()
        .filter_map(|(name, h)| {
            Some(HistView {
                name: name.clone(),
                count: h.field("count")?.as_u64()?,
                mean: h.field("mean")?.as_f64()?,
                p50: h.field("p50")?.as_f64()?,
                p90: h.field("p90")?.as_f64()?,
                p99: h.field("p99")?.as_f64()?,
                max: h.field("max").and_then(|x| x.as_u64()).unwrap_or(0),
            })
        })
        .collect()
}

/// Parse a `/json` snapshot body. Unknown keys are ignored; a body that is
/// not a JSON object is an error.
pub fn parse_snapshot(body: &str) -> Result<Snapshot, String> {
    let v = serde_json::parse_value(body).map_err(|e| format!("malformed snapshot: {e:?}"))?;
    let serde_json::Value::Object(_) = &v else {
        return Err("snapshot is not a JSON object".to_string());
    };
    let mut snap = Snapshot {
        ts_ns: v.field("ts_ns").and_then(|t| t.as_u64()).unwrap_or(0),
        ..Default::default()
    };
    if let Some(serde_json::Value::Object(pairs)) = v.field("counters") {
        for (name, val) in pairs {
            if let Some(c) = val.as_u64() {
                snap.counters.push((name.clone(), c));
            }
        }
    }
    if let Some(serde_json::Value::Object(pairs)) = v.field("gauges") {
        for (name, val) in pairs {
            snap.gauges.push((name.clone(), val.as_f64().unwrap_or(f64::NAN)));
        }
    }
    snap.hists = parse_hist_group(&v, "hists");
    snap.spans = parse_hist_group(&v, "spans");
    Ok(snap)
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.1}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

fn fmt_count(v: u64) -> String {
    if v >= 10_000_000 {
        format!("{:.1}M", v as f64 / 1e6)
    } else if v >= 10_000 {
        format!("{:.1}k", v as f64 / 1e3)
    } else {
        v.to_string()
    }
}

/// Render a snapshot as the `irnuma top` dashboard. When `prev` holds the
/// previous snapshot, counters gain a per-second rate column computed from
/// the two capture timestamps.
pub fn render(snap: &Snapshot, prev: Option<&Snapshot>) -> String {
    let mut out = String::new();
    let dt_s = prev.filter(|p| snap.ts_ns > p.ts_ns).map(|p| (snap.ts_ns - p.ts_ns) as f64 / 1e9);

    if !snap.spans.is_empty() {
        out.push_str(&format!(
            "{:<28} {:>9} {:>10} {:>10} {:>10} {:>10}\n",
            "span", "count", "mean", "p50", "p90", "p99"
        ));
        for s in &snap.spans {
            out.push_str(&format!(
                "{:<28} {:>9} {:>10} {:>10} {:>10} {:>10}\n",
                s.name,
                fmt_count(s.count),
                fmt_ns(s.mean),
                fmt_ns(s.p50),
                fmt_ns(s.p90),
                fmt_ns(s.p99)
            ));
        }
        out.push('\n');
    }
    if !snap.counters.is_empty() {
        match dt_s {
            Some(_) => out.push_str(&format!("{:<34} {:>12} {:>12}\n", "counter", "total", "/s")),
            None => out.push_str(&format!("{:<34} {:>12}\n", "counter", "total")),
        }
        for (name, v) in &snap.counters {
            match dt_s {
                Some(dt) => {
                    let before = prev
                        .and_then(|p| p.counters.iter().find(|(n, _)| n == name))
                        .map_or(0, |&(_, b)| b);
                    // Counters are monotonic within one process; a value
                    // below the previous sample means the exporting process
                    // restarted. The delta is meaningless then — mark the
                    // sample instead of printing a garbage (or silently
                    // clamped) rate.
                    if *v < before {
                        out.push_str(&format!(
                            "{:<34} {:>12} {:>12}\n",
                            name,
                            fmt_count(*v),
                            "reset"
                        ));
                    } else {
                        let rate = (v - before) as f64 / dt;
                        out.push_str(&format!(
                            "{:<34} {:>12} {:>12.1}\n",
                            name,
                            fmt_count(*v),
                            rate
                        ));
                    }
                }
                None => out.push_str(&format!("{:<34} {:>12}\n", name, fmt_count(*v))),
            }
        }
        out.push('\n');
    }
    if !snap.gauges.is_empty() {
        out.push_str(&format!("{:<34} {:>14}\n", "gauge", "value"));
        for (name, v) in &snap.gauges {
            let rendered = if name.starts_with("mem.") && v.is_finite() {
                format!("{:.1} MiB", v / (1u64 << 20) as f64)
            } else {
                format!("{v:.3}")
            };
            out.push_str(&format!("{name:<34} {rendered:>14}\n"));
        }
        out.push('\n');
    }
    if !snap.hists.is_empty() {
        out.push_str(&format!(
            "{:<34} {:>9} {:>10} {:>10} {:>10}\n",
            "histogram", "count", "mean", "p50", "p99"
        ));
        for h in &snap.hists {
            out.push_str(&format!(
                "{:<34} {:>9} {:>10} {:>10} {:>10}\n",
                h.name,
                fmt_count(h.count),
                fmt_ns(h.mean),
                fmt_ns(h.p50),
                fmt_ns(h.p99)
            ));
        }
    }
    if out.is_empty() {
        out.push_str("(no metrics registered yet)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const BODY: &str = r#"{"ts_ns":1000000000,"counters":{"infer.graphs":128,"export.requests":2},
        "gauges":{"mem.peak_bytes":3145728.0,"train.loss":0.42},
        "hists":{"infer.batch_ns":{"count":4,"sum":4000,"min":900,"max":1200,"mean":1000.0,"p50":950.0,"p90":1100.0,"p99":1190.0}},
        "spans":{"train.epoch":{"count":10,"sum":50000,"min":4000,"max":6000,"mean":5000.0,"p50":5000.0,"p90":5800.0,"p99":5950.0}}}"#;

    #[test]
    fn parses_the_wire_format() {
        let s = parse_snapshot(BODY).unwrap();
        assert_eq!(s.ts_ns, 1_000_000_000);
        assert_eq!(s.counters, vec![("infer.graphs".into(), 128), ("export.requests".into(), 2)]);
        assert_eq!(s.spans[0].name, "train.epoch");
        assert_eq!(s.spans[0].count, 10);
        assert_eq!(s.hists[0].max, 1200);
        assert!(parse_snapshot("[]").is_err());
        assert!(parse_snapshot("{nope").is_err());
    }

    #[test]
    fn renders_spans_counters_gauges() {
        let s = parse_snapshot(BODY).unwrap();
        let txt = render(&s, None);
        assert!(txt.contains("train.epoch"), "{txt}");
        assert!(txt.contains("infer.graphs"), "{txt}");
        assert!(txt.contains("3.0 MiB"), "mem gauges render as MiB: {txt}");
        assert!(txt.contains("0.420"), "{txt}");
        assert!(txt.contains("5.0us"), "span mean formats as us: {txt}");
    }

    #[test]
    fn watch_mode_computes_counter_rates() {
        let prev = parse_snapshot(BODY).unwrap();
        let mut cur = prev.clone();
        cur.ts_ns += 2_000_000_000; // 2 seconds later
        cur.counters[0].1 += 64; // infer.graphs 128 -> 192
        let txt = render(&cur, Some(&prev));
        assert!(txt.contains("/s"), "{txt}");
        assert!(txt.contains("32.0"), "64 graphs over 2s = 32/s: {txt}");
    }

    #[test]
    fn watch_mode_marks_counter_resets_instead_of_fake_rates() {
        let prev = parse_snapshot(BODY).unwrap();
        let mut cur = prev.clone();
        cur.ts_ns += 2_000_000_000;
        cur.counters[0].1 = 5; // infer.graphs 128 -> 5: exporter restarted
        let txt = render(&cur, Some(&prev));
        let line = txt.lines().find(|l| l.contains("infer.graphs")).expect("counter row present");
        assert!(line.contains("reset"), "reset must be marked, got: {line}");
        // The other counter (unchanged) still gets a normal numeric rate.
        let other = txt.lines().find(|l| l.contains("export.requests")).unwrap();
        assert!(other.contains("0.0"), "{other}");
    }

    #[test]
    fn round_trips_a_real_obs_snapshot() {
        irnuma_obs::registry().counter("top.test.counter").inc(9);
        let body = irnuma_obs::TelemetrySnapshot::capture().to_json();
        let s = parse_snapshot(&body).unwrap();
        assert!(s.counters.iter().any(|(n, v)| n == "top.test.counter" && *v >= 9));
        assert!(render(&s, None).contains("top.test.counter"));
    }
}
