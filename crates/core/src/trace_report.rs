//! Aggregate an `IRNUMA_TRACE` JSONL file into a per-stage profile.
//!
//! The trace schema is one event per line with exactly four top-level keys
//! (`ts_ns`, `kind`, `name`, `fields` — see `irnuma-obs`). This module
//! groups `span` events by name and computes wall-time totals plus exact
//! p50/p90/p99 over the recorded durations (exact, unlike the log-bucket
//! approximation inside `irnuma-obs`, because the full sample set is on
//! disk). Metric flush events (`counter`/`gauge`/`hist`) are carried
//! through verbatim, and per-span `alloc_bytes` deltas (present when the
//! binary runs with allocation tracking) are summed per stage.
//!
//! Malformed lines — bad JSON, a missing required key, a mistyped value —
//! are skipped and counted in [`TraceReport::malformed_lines`] rather than
//! failing the whole report: a trace truncated by a crash or interleaved by
//! a concurrent writer should still aggregate, and the malformed count
//! itself is the signal that something was off. Backs the `irnuma report`
//! CLI subcommand.

use std::path::Path;

/// Aggregated statistics of one span name.
#[derive(Debug, Clone)]
pub struct SpanStat {
    pub name: String,
    pub count: usize,
    pub total_ns: u64,
    pub p50_ns: u64,
    pub p90_ns: u64,
    pub p99_ns: u64,
    pub max_ns: u64,
    /// Total bytes allocated across this stage's spans (0 when the trace
    /// was produced without allocation tracking).
    pub alloc_bytes: u64,
}

/// One `hist` flush event from the trace.
#[derive(Debug, Clone)]
pub struct HistStat {
    pub name: String,
    pub count: u64,
    pub mean: f64,
    pub p50: f64,
    pub p99: f64,
}

/// Everything extracted from one trace file.
#[derive(Debug, Clone, Default)]
pub struct TraceReport {
    pub total_events: usize,
    /// Lines that failed to parse as schema-conforming events (skipped).
    pub malformed_lines: usize,
    /// Per-name span statistics, sorted by total wall time, descending.
    pub spans: Vec<SpanStat>,
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub hists: Vec<HistStat>,
    pub log_lines: usize,
    /// Σ duration over root spans (`parent_id == 0`) — the wall-clock
    /// denominator for the `%wall` column. 0 when the trace has no roots
    /// (e.g. produced by a pre-causal binary emitting only nested spans).
    pub root_wall_ns: u64,
}

/// Sort order for the per-stage table (`irnuma report --sort`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SortKey {
    /// Total wall time, descending (the default).
    #[default]
    Total,
    /// p99 latency, descending — surfaces rare-but-slow stages.
    P99,
    /// Invocation count, descending — surfaces the hottest call sites.
    Count,
}

impl SortKey {
    pub fn parse(s: &str) -> Option<SortKey> {
        match s {
            "total" => Some(SortKey::Total),
            "p99" => Some(SortKey::P99),
            "count" => Some(SortKey::Count),
            _ => None,
        }
    }
}

/// Nearest-rank quantile over an ascending-sorted slice.
fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn get_u64(v: &serde_json::Value, key: &str) -> Option<u64> {
    v.field(key).and_then(|f| f.as_u64())
}

fn get_f64(v: &serde_json::Value, key: &str) -> Option<f64> {
    v.field(key).and_then(|f| f.as_f64())
}

struct SpanAccum {
    durations: Vec<u64>,
    alloc_bytes: u64,
}

/// Parse one line into the report. `Err(())` means the line is malformed
/// (the caller counts it); the error carries no detail because skipped
/// lines are a tally, not a diagnosis.
fn load_line(
    line: &str,
    report: &mut TraceReport,
    spans: &mut Vec<(String, SpanAccum)>,
) -> Result<(), ()> {
    let v = serde_json::parse_value(line).map_err(|_| ())?;
    let serde_json::Value::Object(_) = &v else {
        return Err(());
    };
    get_u64(&v, "ts_ns").ok_or(())?;
    let kind = v.field("kind").and_then(|f| f.as_str()).ok_or(())?.to_string();
    let name = v.field("name").and_then(|f| f.as_str()).ok_or(())?.to_string();
    let fields = v.field("fields").ok_or(())?;
    if !matches!(fields, serde_json::Value::Object(_)) {
        return Err(());
    }

    match kind.as_str() {
        "span" => {
            let dur = get_u64(fields, "dur_ns").ok_or(())?;
            let alloc = get_u64(fields, "alloc_bytes").unwrap_or(0);
            // Root spans (no parent) partition the run's wall-clock; their
            // summed duration is the `%wall` denominator.
            let parent = get_u64(fields, "parent_id").or_else(|| get_u64(fields, "parent"));
            if parent == Some(0) {
                report.root_wall_ns += dur;
            }
            match spans.iter_mut().find(|(n, _)| *n == name) {
                Some((_, acc)) => {
                    acc.durations.push(dur);
                    acc.alloc_bytes += alloc;
                }
                None => spans.push((name, SpanAccum { durations: vec![dur], alloc_bytes: alloc })),
            }
        }
        "counter" => {
            let value = get_u64(fields, "value").ok_or(())?;
            report.counters.push((name, value));
        }
        "gauge" => {
            let value = get_f64(fields, "value").ok_or(())?;
            report.gauges.push((name, value));
        }
        "hist" => {
            report.hists.push(HistStat {
                count: get_u64(fields, "count").ok_or(())?,
                mean: get_f64(fields, "mean").ok_or(())?,
                p50: get_f64(fields, "p50").ok_or(())?,
                p99: get_f64(fields, "p99").ok_or(())?,
                name,
            });
        }
        "log" => report.log_lines += 1,
        _ => return Err(()),
    }
    report.total_events += 1;
    Ok(())
}

/// Parse and aggregate a JSONL trace. Malformed or truncated lines are
/// skipped and tallied in [`TraceReport::malformed_lines`]; only an
/// unreadable file is an error.
pub fn load(path: &Path) -> Result<TraceReport, String> {
    let body = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut report = TraceReport::default();
    let mut spans: Vec<(String, SpanAccum)> = Vec::new();

    for line in body.lines() {
        if line.trim().is_empty() {
            report.malformed_lines += 1;
            continue;
        }
        if load_line(line, &mut report, &mut spans).is_err() {
            report.malformed_lines += 1;
        }
    }

    for (name, mut acc) in spans {
        acc.durations.sort_unstable();
        let ds = &acc.durations;
        report.spans.push(SpanStat {
            name,
            count: ds.len(),
            total_ns: ds.iter().sum(),
            p50_ns: quantile(ds, 0.50),
            p90_ns: quantile(ds, 0.90),
            p99_ns: quantile(ds, 0.99),
            max_ns: *ds.last().expect("non-empty duration group"),
            alloc_bytes: acc.alloc_bytes,
        });
    }
    report.sort_spans(SortKey::Total);
    report.counters.sort();
    report.gauges.sort_by(|a, b| a.0.cmp(&b.0));
    report.hists.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(report)
}

/// Minimal JSON string escaping for metric/span names (ASCII control
/// characters, quotes, backslashes).
fn json_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl TraceReport {
    /// Re-sort the per-stage table (descending by `key`, name-tiebroken so
    /// output stays deterministic).
    pub fn sort_spans(&mut self, key: SortKey) {
        self.spans.sort_by(|a, b| {
            let ord = match key {
                SortKey::Total => b.total_ns.cmp(&a.total_ns),
                SortKey::P99 => b.p99_ns.cmp(&a.p99_ns),
                SortKey::Count => b.count.cmp(&a.count),
            };
            ord.then_with(|| a.name.cmp(&b.name))
        });
    }

    /// Check that every named stage appears at least once as a span.
    pub fn require(&self, stages: &[&str]) -> Result<(), String> {
        let missing: Vec<&str> = stages
            .iter()
            .filter(|s| !self.spans.iter().any(|sp| sp.name == **s))
            .copied()
            .collect();
        if missing.is_empty() {
            Ok(())
        } else {
            Err(format!("trace is missing required stage(s): {}", missing.join(", ")))
        }
    }

    /// Derived kernel-dispatch rates from the `dispatch.*` counters (plan
    /// cache hit rate, specialized-vs-generic matmul mix, SpMM strategy
    /// mix). `None` when the trace carries no dispatch counters. Counters
    /// are cumulative per flush, so the largest flushed value per name is
    /// the lifetime total.
    fn dispatch_summary(&self) -> Option<String> {
        let total = |key: &str| {
            self.counters.iter().filter(|(n, _)| n == key).map(|&(_, v)| v).max().unwrap_or(0)
        };
        if !self.counters.iter().any(|(n, _)| n.starts_with("dispatch.")) {
            return None;
        }
        let mut out = String::from("\nkernel dispatch:\n");
        let ratio_line = |label: &str, a_name: &str, a: u64, b_name: &str, b: u64| -> String {
            let pct = if a + b > 0 { 100.0 * a as f64 / (a + b) as f64 } else { 0.0 };
            format!("  {label:<34} {pct:5.1}%  ({a_name} {a}, {b_name} {b})\n")
        };
        let (hits, misses) = (total("dispatch.plan_hits"), total("dispatch.plan_misses"));
        if hits + misses > 0 {
            out.push_str(&ratio_line("plan-cache hit rate", "hits", hits, "misses", misses));
        }
        let (spec, generic) = (total("dispatch.matmul_spec"), total("dispatch.matmul_generic"));
        let packed = total("dispatch.matmul_packed");
        if spec + packed + generic > 0 {
            out.push_str(&ratio_line(
                "specialized matmul share",
                "spec",
                spec + packed,
                "generic",
                generic,
            ));
        }
        let (csr, edge) = (total("dispatch.spmm_csr"), total("dispatch.spmm_edge"));
        if csr + edge > 0 {
            out.push_str(&ratio_line("spmm csr-gather share", "csr", csr, "edge-major", edge));
        }
        Some(out)
    }

    /// Render the per-stage wall-time/percentile table (plus metric
    /// flushes). An `alloc_mb` column appears when any stage carried
    /// allocation deltas; a `%wall` column (stage total as a share of the
    /// summed root-span wall-clock) appears when the trace has root spans.
    pub fn render(&self) -> String {
        let ms = |ns: u64| ns as f64 / 1e6;
        let with_alloc = self.spans.iter().any(|s| s.alloc_bytes > 0);
        let with_wall = self.root_wall_ns > 0;
        let mut out = String::new();
        out.push_str(&format!(
            "{} events: {} span groups, {} counters, {} gauges, {} histograms, {} logs\n\n",
            self.total_events,
            self.spans.len(),
            self.counters.len(),
            self.gauges.len(),
            self.hists.len(),
            self.log_lines
        ));
        out.push_str(&format!(
            "{:<28} {:>7} {:>12} {:>11} {:>11} {:>11} {:>11}",
            "stage", "count", "total_ms", "p50_ms", "p90_ms", "p99_ms", "max_ms"
        ));
        if with_wall {
            out.push_str(&format!(" {:>7}", "%wall"));
        }
        if with_alloc {
            out.push_str(&format!(" {:>10}", "alloc_mb"));
        }
        out.push('\n');
        for s in &self.spans {
            out.push_str(&format!(
                "{:<28} {:>7} {:>12.3} {:>11.3} {:>11.3} {:>11.3} {:>11.3}",
                s.name,
                s.count,
                ms(s.total_ns),
                ms(s.p50_ns),
                ms(s.p90_ns),
                ms(s.p99_ns),
                ms(s.max_ns)
            ));
            if with_wall {
                // A nested stage running across N workers can exceed 100%
                // of the root wall — that is the parallelism, not a bug.
                let pct = 100.0 * s.total_ns as f64 / self.root_wall_ns as f64;
                out.push_str(&format!(" {pct:>6.1}%"));
            }
            if with_alloc {
                out.push_str(&format!(" {:>10.2}", s.alloc_bytes as f64 / (1 << 20) as f64));
            }
            out.push('\n');
        }
        if !self.counters.is_empty() {
            out.push_str("\ncounters:\n");
            for (name, v) in &self.counters {
                out.push_str(&format!("  {name:<34} {v}\n"));
            }
        }
        if let Some(d) = self.dispatch_summary() {
            out.push_str(&d);
        }
        if !self.gauges.is_empty() {
            out.push_str("\ngauges:\n");
            for (name, v) in &self.gauges {
                out.push_str(&format!("  {name:<34} {v:.6}\n"));
            }
        }
        if !self.hists.is_empty() {
            out.push_str("\nhistograms:\n");
            out.push_str(&format!(
                "  {:<34} {:>9} {:>12} {:>12} {:>12}\n",
                "name", "count", "mean", "p50", "p99"
            ));
            for h in &self.hists {
                out.push_str(&format!(
                    "  {:<34} {:>9} {:>12.1} {:>12.1} {:>12.1}\n",
                    h.name, h.count, h.mean, h.p50, h.p99
                ));
            }
        }
        out
    }

    /// Serialize the full report as one JSON object (the `--json` output
    /// mode, for scripting against `irnuma report`).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(512);
        let _ = write!(
            out,
            "{{\"total_events\":{},\"malformed_lines\":{},\"log_lines\":{},\"root_wall_ns\":{},\
             \"spans\":[",
            self.total_events, self.malformed_lines, self.log_lines, self.root_wall_ns
        );
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            json_str(&s.name, &mut out);
            let _ = write!(
                out,
                ",\"count\":{},\"total_ns\":{},\"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{},\
                 \"max_ns\":{},\"alloc_bytes\":{}}}",
                s.count, s.total_ns, s.p50_ns, s.p90_ns, s.p99_ns, s.max_ns, s.alloc_bytes
            );
        }
        out.push_str("],\"counters\":[");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            json_str(name, &mut out);
            let _ = write!(out, ",\"value\":{v}}}");
        }
        out.push_str("],\"gauges\":[");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            json_str(name, &mut out);
            if v.is_finite() {
                let _ = write!(out, ",\"value\":{v}}}");
            } else {
                out.push_str(",\"value\":null}");
            }
        }
        out.push_str("],\"hists\":[");
        for (i, h) in self.hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            json_str(&h.name, &mut out);
            let _ = write!(
                out,
                ",\"count\":{},\"mean\":{:.3},\"p50\":{:.1},\"p99\":{:.1}}}",
                h.count, h.mean, h.p50, h.p99
            );
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn write_trace(name: &str, lines: &[&str]) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("irnuma-trace-report-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let mut f = std::fs::File::create(&path).unwrap();
        for l in lines {
            writeln!(f, "{l}").unwrap();
        }
        path
    }

    fn span_line(name: &str, dur: u64) -> String {
        format!(
            r#"{{"ts_ns":1,"kind":"span","name":"{name}","fields":{{"span":1,"parent":0,"thread":1,"dur_ns":{dur}}}}}"#
        )
    }

    #[test]
    fn aggregates_spans_with_exact_percentiles() {
        let lines: Vec<String> = (1..=100u64).map(|d| span_line("train.epoch", d * 1000)).collect();
        let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
        let path = write_trace("percentiles.jsonl", &refs);
        let r = load(&path).unwrap();
        assert_eq!(r.total_events, 100);
        assert_eq!(r.malformed_lines, 0);
        let s = &r.spans[0];
        assert_eq!(
            (s.count, s.p50_ns, s.p90_ns, s.p99_ns, s.max_ns),
            (100, 50_000, 90_000, 99_000, 100_000)
        );
        assert_eq!(s.total_ns, 5050 * 1000);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn spans_sort_by_total_time() {
        let path = write_trace(
            "sorted.jsonl",
            &[
                &span_line("fast", 10),
                &span_line("slow", 5000),
                &span_line("fast", 20),
                r#"{"ts_ns":2,"kind":"counter","name":"graph.builds","fields":{"value":3}}"#,
            ],
        );
        let r = load(&path).unwrap();
        assert_eq!(r.spans[0].name, "slow");
        assert_eq!(r.spans[1].name, "fast");
        assert_eq!(r.counters, vec![("graph.builds".to_string(), 3)]);
        let table = r.render();
        assert!(table.contains("slow"));
        assert!(table.contains("graph.builds"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dispatch_counters_render_a_derived_rates_section() {
        let counter = |name: &str, v: u64| {
            format!(r#"{{"ts_ns":3,"kind":"counter","name":"{name}","fields":{{"value":{v}}}}}"#)
        };
        let path = write_trace(
            "dispatch.jsonl",
            &[
                // Two flushes of a cumulative counter: the larger value is
                // the lifetime total, not the sum.
                &counter("dispatch.plan_hits", 10),
                &counter("dispatch.plan_hits", 15),
                &counter("dispatch.plan_misses", 1),
                &counter("dispatch.matmul_spec", 70),
                &counter("dispatch.matmul_packed", 20),
                &counter("dispatch.matmul_generic", 10),
                &counter("dispatch.spmm_csr", 3),
                &counter("dispatch.spmm_edge", 1),
            ],
        );
        let r = load(&path).unwrap();
        let table = r.render();
        assert!(table.contains("kernel dispatch:"), "{table}");
        assert!(table.contains("plan-cache hit rate"), "{table}");
        assert!(table.contains("(hits 15, misses 1)"), "{table}");
        assert!(table.contains("(spec 90, generic 10)"), "{table}");
        assert!(table.contains("(csr 3, edge-major 1)"), "{table}");
        std::fs::remove_file(&path).ok();

        // A trace without dispatch counters renders no dispatch section.
        let path = write_trace("nodispatch.jsonl", &[&span_line("a", 5)]);
        let r = load(&path).unwrap();
        assert!(!r.render().contains("kernel dispatch"), "{}", r.render());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sort_keys_reorder_the_table() {
        let path = write_trace(
            "sortkeys.jsonl",
            &[
                &span_line("many_fast", 10),
                &span_line("many_fast", 10),
                &span_line("many_fast", 10),
                &span_line("one_slow", 2_000),
                &span_line("mid", 500),
                &span_line("mid", 600),
            ],
        );
        let mut r = load(&path).unwrap();
        assert_eq!(r.spans[0].name, "one_slow", "default sort is by total");
        r.sort_spans(SortKey::Count);
        assert_eq!(r.spans[0].name, "many_fast");
        r.sort_spans(SortKey::P99);
        assert_eq!(r.spans[0].name, "one_slow");
        assert_eq!(SortKey::parse("count"), Some(SortKey::Count));
        assert_eq!(SortKey::parse("nope"), None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn root_spans_drive_the_wall_percentage_column() {
        let nested = |name: &str, parent: u64, dur: u64| {
            format!(
                r#"{{"ts_ns":1,"kind":"span","name":"{name}","fields":{{"span":9,"parent":{parent},"parent_id":{parent},"thread":1,"dur_ns":{dur}}}}}"#
            )
        };
        let path = write_trace(
            "wall.jsonl",
            &[
                &nested("train.fit", 0, 10_000_000), // root: the denominator
                &nested("train.epoch", 9, 8_000_000),
                &nested("train.epoch", 9, 1_000_000),
            ],
        );
        let r = load(&path).unwrap();
        assert_eq!(r.root_wall_ns, 10_000_000);
        let table = r.render();
        assert!(table.contains("%wall"), "{table}");
        assert!(table.contains("100.0%"), "{table}");
        assert!(table.contains("90.0%"), "{table}");
        assert!(r.to_json().contains("\"root_wall_ns\":10000000"));
        std::fs::remove_file(&path).ok();

        // A trace with no root spans hides the column.
        let path2 = write_trace("nowall.jsonl", &[&nested("x", 5, 100)]);
        let r2 = load(&path2).unwrap();
        assert_eq!(r2.root_wall_ns, 0);
        assert!(!r2.render().contains("%wall"));
        std::fs::remove_file(&path2).ok();
    }

    #[test]
    fn malformed_lines_are_skipped_and_counted() {
        let path = write_trace(
            "bad.jsonl",
            &[
                &span_line("a", 1),
                "{not json",                                                   // bad JSON
                r#"{"ts_ns":1,"name":"x","fields":{},"extra":0}"#,             // missing kind
                r#"{"ts_ns":1,"kind":"span","name":"x","fields":{"span":1}}"#, // no dur_ns
                r#"{"ts_ns":1,"kind":"wat","name":"x","fields":{}}"#,          // unknown kind
                "",                                                            // blank line
                &span_line("a", 3),
            ],
        );
        let r = load(&path).unwrap();
        assert_eq!(r.malformed_lines, 5);
        assert_eq!(r.total_events, 2);
        assert_eq!(r.spans[0].count, 2, "good lines around the bad ones still aggregate");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_final_line_still_reports_the_rest() {
        // Simulate a crash mid-write: the last line stops in the middle of
        // a JSON object.
        let full = span_line("train.epoch", 1000);
        let cut = &full[..full.len() / 2];
        let path = write_trace("truncated.jsonl", &[&full, &full, cut]);
        let r = load(&path).unwrap();
        assert_eq!(r.total_events, 2);
        assert_eq!(r.malformed_lines, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn span_alloc_deltas_sum_per_stage_and_render() {
        let with_alloc = |name: &str, dur: u64, alloc: u64| {
            format!(
                r#"{{"ts_ns":1,"kind":"span","name":"{name}","fields":{{"span":1,"parent":0,"thread":1,"dur_ns":{dur},"alloc_bytes":{alloc}}}}}"#
            )
        };
        let path = write_trace(
            "alloc.jsonl",
            &[
                &with_alloc("train.epoch", 1000, 1 << 20),
                &with_alloc("train.epoch", 1200, 1 << 20),
                &span_line("graph.build", 10), // no alloc field: counts as 0
            ],
        );
        let r = load(&path).unwrap();
        let epoch = r.spans.iter().find(|s| s.name == "train.epoch").unwrap();
        assert_eq!(epoch.alloc_bytes, 2 << 20);
        let table = r.render();
        assert!(table.contains("alloc_mb"), "{table}");
        assert!(table.contains("2.00"), "{table}");

        // Without any alloc deltas the column stays hidden.
        let path2 = write_trace("noalloc.jsonl", &[&span_line("a", 5)]);
        let r2 = load(&path2).unwrap();
        assert!(!r2.render().contains("alloc_mb"));
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&path2).ok();
    }

    #[test]
    fn json_output_round_trips_through_serde_json() {
        let path = write_trace(
            "json.jsonl",
            &[
                &span_line("train.epoch", 1000),
                r#"{"ts_ns":2,"kind":"counter","name":"graph.builds","fields":{"value":3}}"#,
                r#"{"ts_ns":2,"kind":"gauge","name":"train.loss","fields":{"value":0.25}}"#,
                "{broken",
            ],
        );
        let r = load(&path).unwrap();
        let json = r.to_json();
        let v = serde_json::parse_value(&json).expect("valid JSON");
        assert_eq!(v.field("total_events").and_then(|f| f.as_u64()), Some(3));
        assert_eq!(v.field("malformed_lines").and_then(|f| f.as_u64()), Some(1));
        let spans = v.field("spans").unwrap();
        let serde_json::Value::Array(spans) = spans else { panic!("spans not an array") };
        assert_eq!(spans[0].field("name").and_then(|f| f.as_str()), Some("train.epoch"));
        assert_eq!(spans[0].field("total_ns").and_then(|f| f.as_u64()), Some(1000));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn require_flags_missing_stages() {
        let path = write_trace("req.jsonl", &[&span_line("graph.build", 5)]);
        let r = load(&path).unwrap();
        assert!(r.require(&["graph.build"]).is_ok());
        let err = r.require(&["graph.build", "train.epoch"]).unwrap_err();
        assert!(err.contains("train.epoch"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn loads_a_real_obs_trace_end_to_end() {
        // Drive the actual pipeline (tiny) with a JsonlSink installed and
        // verify the report sees the instrumented stages.
        let dir = std::env::temp_dir().join("irnuma-trace-report-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("real.jsonl");
        irnuma_obs::set_sink(std::sync::Arc::new(irnuma_obs::JsonlSink::create(&path).unwrap()));
        let params = crate::dataset::DatasetParams {
            num_sequences: 2,
            calls: 2,
            num_labels: 3,
            ..Default::default()
        };
        let _ds = crate::dataset::build_dataset(irnuma_sim::MicroArch::Skylake, &params);
        irnuma_obs::flush_metrics();
        irnuma_obs::clear_sink();

        let r = load(&path).unwrap();
        r.require(&["dataset.build", "dataset.region", "graph.build", "passes.run"]).unwrap();
        assert_eq!(r.malformed_lines, 0);
        // Other tests in this binary may trace concurrently into the same
        // global sink, so counts are lower bounds.
        let regions = r.spans.iter().find(|s| s.name == "dataset.region").unwrap();
        assert!(regions.count >= 56, "got {}", regions.count);
        assert!(r.counters.iter().any(|(n, v)| n == "graph.builds" && *v >= 112));
        std::fs::remove_file(&path).ok();
    }
}
