//! Causal trace analysis: JSONL → span forest → critical paths.
//!
//! Where [`crate::trace_report`] aggregates spans by *name* (a flat
//! profile), this module rebuilds the *hierarchy* from the causal fields
//! (`trace_id`/`span_id`/`parent_id`) every span event carries and answers
//! structural questions: what bounded an epoch's wall-clock, how well did
//! the fan-out parallelize, how much time went to queueing versus compute.
//! Backs `irnuma trace analyze` and `irnuma trace export --perfetto`; the
//! forest algorithms live in `irnuma-obs` ([`SpanForest`]), this module
//! owns the JSON parsing and rendering.

use irnuma_obs::{SpanForest, SpanRecord};
use std::collections::BTreeMap;
use std::path::Path;

/// Span names treated as analysis roots even when they nest under a larger
/// umbrella span (`train.epoch` sits under `train.fit`, but the per-epoch
/// breakdown is what the acceptance questions ask about).
pub const WELL_KNOWN_ROOTS: [&str; 4] = ["train.epoch", "infer.batch", "dataset.build", "ml.ga"];

/// The span events of one JSONL trace file.
#[derive(Debug, Clone, Default)]
pub struct TraceSpans {
    pub records: Vec<SpanRecord>,
    /// Non-span events (logs, metric flushes) — not an error, just not ours.
    pub other_events: usize,
    /// Lines that failed to parse or lacked the span schema (tallied, like
    /// `trace_report`, so a truncated trace still analyzes).
    pub skipped_lines: usize,
}

/// Keys consumed into [`SpanRecord`] structure; everything else lands in
/// `args` (and from there in Perfetto `args`).
const CAUSAL_KEYS: [&str; 7] =
    ["span", "parent", "trace_id", "span_id", "parent_id", "thread", "dur_ns"];

fn span_from_json(v: &serde_json::Value) -> Option<SpanRecord> {
    if v.field("kind")?.as_str()? != "span" {
        return None;
    }
    let ts_ns = v.field("ts_ns")?.as_u64()?;
    let name = v.field("name")?.as_str()?.to_string();
    let fields = v.field("fields")?;
    let serde_json::Value::Object(pairs) = fields else { return None };
    let get = |key: &str| fields.field(key).and_then(|f| f.as_u64());
    let dur_ns = get("dur_ns")?;
    let span_id = get("span_id").or_else(|| get("span"))?;
    let parent_id = get("parent_id").or_else(|| get("parent")).unwrap_or(0);
    let args = pairs
        .iter()
        .filter(|(k, _)| !CAUSAL_KEYS.contains(&k.as_str()))
        .map(|(k, val)| {
            let s = match val {
                serde_json::Value::Str(s) => s.clone(),
                other => serde_json::value_to_string(other),
            };
            (k.clone(), s)
        })
        .collect();
    Some(SpanRecord {
        trace_id: get("trace_id").unwrap_or(0),
        span_id,
        parent_id,
        thread: get("thread").unwrap_or(0),
        name,
        // Span events are emitted at close; recover the start.
        start_ns: ts_ns.saturating_sub(dur_ns),
        dur_ns,
        args,
    })
}

/// Parse the span events out of a JSONL trace file.
pub fn load_spans(path: &Path) -> Result<TraceSpans, String> {
    let body = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut out = TraceSpans::default();
    for line in body.lines() {
        if line.trim().is_empty() {
            out.skipped_lines += 1;
            continue;
        }
        match serde_json::parse_value(line) {
            Ok(v) => match v.field("kind").and_then(|k| k.as_str()) {
                Some("span") => match span_from_json(&v) {
                    Some(r) => out.records.push(r),
                    None => out.skipped_lines += 1,
                },
                Some(_) => out.other_events += 1,
                None => out.skipped_lines += 1,
            },
            Err(_) => out.skipped_lines += 1,
        }
    }
    Ok(out)
}

/// Options for [`analyze`].
#[derive(Debug, Clone, Default)]
pub struct AnalyzeOptions {
    /// Analyze exactly the spans with these names as roots (overriding the
    /// default: forest roots plus [`WELL_KNOWN_ROOTS`]).
    pub roots: Option<Vec<String>>,
    /// Fail (Err) unless every one of these names appears among the
    /// analyzed roots — the CI assertion mode.
    pub require_roots: Vec<String>,
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Indices of the spans to analyze as roots, sorted by start time.
fn analysis_roots(forest: &SpanForest, opts: &AnalyzeOptions) -> Vec<usize> {
    let mut idx: Vec<usize> = match &opts.roots {
        Some(names) => (0..forest.spans.len())
            .filter(|&i| names.iter().any(|n| n == &forest.spans[i].name))
            .collect(),
        None => {
            let mut v: Vec<usize> = forest.roots.clone();
            v.extend(
                (0..forest.spans.len())
                    .filter(|&i| WELL_KNOWN_ROOTS.contains(&forest.spans[i].name.as_str())),
            );
            v.sort_unstable();
            v.dedup();
            v
        }
    };
    idx.sort_by_key(|&i| (forest.spans[i].start_ns, forest.spans[i].span_id));
    idx
}

/// Analyze a trace: rebuild the forest, pick the root spans, and render a
/// per-root-name report with wall-clock, parallelism efficiency,
/// queue-vs-compute split, and the critical-path decomposition of the
/// largest instance. Errors only when a `require_roots` name is missing.
pub fn analyze(spans: TraceSpans, opts: &AnalyzeOptions) -> Result<String, String> {
    let TraceSpans { records, other_events, skipped_lines } = spans;
    let forest = SpanForest::build(records);
    let roots = analysis_roots(&forest, opts);

    for need in &opts.require_roots {
        if !roots.iter().any(|&i| &forest.spans[i].name == need) {
            return Err(format!(
                "trace has no root span named `{need}` (roots seen: {})",
                if roots.is_empty() {
                    "none".to_string()
                } else {
                    let mut names: Vec<&str> =
                        roots.iter().map(|&i| forest.spans[i].name.as_str()).collect();
                    names.sort_unstable();
                    names.dedup();
                    names.join(", ")
                }
            ));
        }
    }

    let traces: std::collections::HashSet<u64> = forest.spans.iter().map(|s| s.trace_id).collect();
    let threads: std::collections::HashSet<u64> = forest.spans.iter().map(|s| s.thread).collect();
    let mut out = String::new();
    out.push_str(&format!(
        "{} spans across {} trace(s), {} thread(s); {} true root(s), {} orphan(s)\n",
        forest.spans.len(),
        traces.len(),
        threads.len(),
        forest.roots.len(),
        forest.orphans.len()
    ));
    if other_events > 0 || skipped_lines > 0 {
        out.push_str(&format!("({other_events} non-span events, {skipped_lines} skipped lines)\n"));
    }
    if !forest.orphans.is_empty() {
        // Orphans mean a worker span whose parent never closed into the
        // trace — truncation, or a fan-out site missing ctx propagation.
        let mut names: Vec<&str> =
            forest.orphans.iter().map(|&i| forest.spans[i].name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        out.push_str(&format!("warning: orphaned spans (missing parents): {}\n", names.join(", ")));
    }

    // Group analyzed roots by name so 50 epochs render as one block.
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for &i in &roots {
        by_name.entry(forest.spans[i].name.as_str()).or_default().push(i);
    }

    for (name, instances) in by_name {
        let total_wall: u64 = instances.iter().map(|&i| forest.spans[i].dur_ns).sum();
        out.push_str(&format!(
            "\nroot {name}: {} instance(s), total wall {:.3} ms\n",
            instances.len(),
            ms(total_wall)
        ));
        // The largest instance carries the representative breakdown.
        let &big = instances
            .iter()
            .max_by_key(|&&i| (forest.spans[i].dur_ns, forest.spans[i].span_id))
            .expect("non-empty instance group");
        let st = forest.subtree_stats(big);
        out.push_str(&format!(
            "  largest: wall {:.3} ms, {} span(s), {} worker(s), busy {:.3} ms, \
             efficiency {:.2}\n",
            ms(st.wall_ns),
            st.spans,
            st.workers,
            ms(st.work_ns),
            st.efficiency
        ));
        let busy = st.queue_ns + st.compute_ns;
        if busy > 0 {
            out.push_str(&format!(
                "  queue/orchestration {:.3} ms ({:.1}%) vs leaf compute {:.3} ms\n",
                ms(st.queue_ns),
                100.0 * st.queue_ns as f64 / busy as f64,
                ms(st.compute_ns)
            ));
        }
        // Critical path, folded per span name (chronological segments of
        // one name merge into a single line with its share of the wall).
        let path = forest.critical_path(big);
        let path_total: u64 = path.iter().map(|p| p.self_ns).sum();
        let mut per_name: Vec<(&str, u64)> = Vec::new();
        for seg in &path {
            let seg_name = forest.spans[seg.index].name.as_str();
            match per_name.iter_mut().find(|(n, _)| *n == seg_name) {
                Some((_, acc)) => *acc += seg.self_ns,
                None => per_name.push((seg_name, seg.self_ns)),
            }
        }
        per_name.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        out.push_str(&format!(
            "  critical path ({} segment(s), sums to {:.3} ms{}):\n",
            path.len(),
            ms(path_total),
            if path_total == st.wall_ns { "" } else { " — MISMATCH vs wall" }
        ));
        for (seg_name, self_ns) in per_name {
            let pct = if st.wall_ns > 0 { 100.0 * self_ns as f64 / st.wall_ns as f64 } else { 0.0 };
            let marker = if seg_name == name { " (self)" } else { "" };
            out.push_str(&format!(
                "    {:<30} {:>10.3} ms {:>5.1}%\n",
                format!("{seg_name}{marker}"),
                ms(self_ns),
                pct
            ));
        }
    }
    if roots.is_empty() {
        out.push_str("\nno root spans to analyze\n");
    }
    Ok(out)
}

/// Export the trace's spans as a Chrome/Perfetto trace-event JSON file.
pub fn export_perfetto(spans: &TraceSpans, out_path: &Path) -> Result<(), String> {
    let json = irnuma_obs::perfetto::to_chrome_trace(&spans.records);
    std::fs::write(out_path, json).map_err(|e| format!("cannot write {}: {e}", out_path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    fn write_trace(name: &str, lines: &[String]) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("irnuma-trace-tree-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let mut f = std::fs::File::create(&path).unwrap();
        for l in lines {
            writeln!(f, "{l}").unwrap();
        }
        path
    }

    fn span_line(
        name: &str,
        trace: u64,
        span: u64,
        parent: u64,
        thread: u64,
        end: u64,
        dur: u64,
    ) -> String {
        format!(
            r#"{{"ts_ns":{end},"kind":"span","name":"{name}","fields":{{"span":{span},"parent":{parent},"trace_id":{trace},"span_id":{span},"parent_id":{parent},"thread":{thread},"dur_ns":{dur},"epoch":7}}}}"#
        )
    }

    /// train.fit [0,100] on thread 1; train.epoch [5,95] with two worker
    /// graphs on threads 2 and 3.
    fn sample_lines() -> Vec<String> {
        vec![
            span_line("train.graph", 42, 3, 2, 2, 50, 40),
            span_line("train.graph", 42, 4, 2, 3, 90, 80),
            span_line("train.epoch", 42, 2, 1, 1, 95, 90),
            span_line("train.fit", 42, 1, 0, 1, 100, 100),
            format!(r#"{{"ts_ns":1,"kind":"log","name":"hello","fields":{{}}}}"#),
        ]
    }

    #[test]
    fn loads_spans_and_recovers_starts_and_args() {
        let path = write_trace("load.jsonl", &sample_lines());
        let t = load_spans(&path).unwrap();
        assert_eq!(t.records.len(), 4);
        assert_eq!(t.other_events, 1);
        assert_eq!(t.skipped_lines, 0);
        let fit = t.records.iter().find(|r| r.name == "train.fit").unwrap();
        assert_eq!((fit.start_ns, fit.dur_ns, fit.trace_id), (0, 100, 42));
        assert_eq!(fit.args, vec![("epoch".to_string(), "7".to_string())]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn analyze_reports_epoch_roots_and_critical_path() {
        let path = write_trace("analyze.jsonl", &sample_lines());
        let t = load_spans(&path).unwrap();
        let report = analyze(t, &AnalyzeOptions::default()).unwrap();
        // train.fit is a true root; train.epoch is a well-known root even
        // though it nests under fit.
        assert!(report.contains("root train.fit"), "{report}");
        assert!(report.contains("root train.epoch"), "{report}");
        assert!(report.contains("0 orphan(s)"), "{report}");
        assert!(report.contains("3 thread(s)"), "{report}");
        // The epoch's critical path must account for its full 90ns wall
        // (rendered in ms) without a mismatch marker.
        assert!(report.contains("sums to 0.000090 ms") || report.contains("sums to 0.000"));
        assert!(!report.contains("MISMATCH"), "{report}");
        assert!(report.contains("train.graph"), "{report}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn require_roots_errors_on_missing_names() {
        let path = write_trace("require.jsonl", &sample_lines());
        let t = load_spans(&path).unwrap();
        let opts = AnalyzeOptions {
            require_roots: vec!["train.epoch".into(), "infer.batch".into()],
            ..Default::default()
        };
        let err = analyze(t, &opts).unwrap_err();
        assert!(err.contains("infer.batch"), "{err}");
        assert!(err.contains("train.epoch"), "lists the roots it did see: {err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn roots_override_narrows_the_analysis() {
        let path = write_trace("override.jsonl", &sample_lines());
        let t = load_spans(&path).unwrap();
        let opts = AnalyzeOptions { roots: Some(vec!["train.epoch".into()]), ..Default::default() };
        let report = analyze(t, &opts).unwrap();
        assert!(report.contains("root train.epoch"), "{report}");
        assert!(!report.contains("root train.fit"), "{report}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn orphans_are_flagged() {
        let lines = vec![span_line("lost.worker", 9, 5, 999, 2, 50, 10)];
        let path = write_trace("orphan.jsonl", &lines);
        let t = load_spans(&path).unwrap();
        let report = analyze(t, &AnalyzeOptions::default()).unwrap();
        assert!(report.contains("1 orphan(s)"), "{report}");
        assert!(report.contains("lost.worker"), "{report}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pre_causal_traces_fall_back_to_span_parent_fields() {
        let lines = vec![
            r#"{"ts_ns":100,"kind":"span","name":"old.child","fields":{"span":2,"parent":1,"thread":1,"dur_ns":40}}"#.to_string(),
            r#"{"ts_ns":120,"kind":"span","name":"old.root","fields":{"span":1,"parent":0,"thread":1,"dur_ns":100}}"#.to_string(),
        ];
        let path = write_trace("legacy.jsonl", &lines);
        let t = load_spans(&path).unwrap();
        assert_eq!(t.records.len(), 2);
        let report = analyze(t, &AnalyzeOptions::default()).unwrap();
        assert!(report.contains("root old.root"), "{report}");
        assert!(report.contains("0 orphan(s)"), "{report}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn perfetto_export_writes_loadable_json() {
        let path = write_trace("perfetto.jsonl", &sample_lines());
        let t = load_spans(&path).unwrap();
        let out = path.with_extension("perfetto.json");
        export_perfetto(&t, &out).unwrap();
        let body = std::fs::read_to_string(&out).unwrap();
        let v = serde_json::parse_value(&body).expect("valid JSON");
        let events = v.field("traceEvents").and_then(|e| e.as_array()).unwrap();
        assert!(events.len() >= 4, "{body}");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&out).ok();
    }
}
