//! Integration tests for the `irnuma` CLI binary.

use std::process::Command;

fn irnuma(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_irnuma")).args(args).output().expect("binary runs")
}

#[test]
fn help_and_unknown_commands() {
    let out = irnuma(&["--help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));

    let out = irnuma(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = irnuma(&[]);
    assert!(!out.status.success());
}

#[test]
fn list_regions_prints_all_56() {
    let out = irnuma(&["list-regions"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert_eq!(text.lines().count(), 57, "header + 56 regions");
    assert!(text.contains("cg.spmv"));
    assert!(text.contains("lulesh.calc_fb"));
}

#[test]
fn show_ir_prints_a_module() {
    let out = irnuma(&["show-ir", "cg.axpy"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("module \"cg.axpy\""));
    assert!(text.contains(".omp_outlined.cg.axpy"));

    // --o3 changes the IR.
    let opt = irnuma(&["show-ir", "cg.axpy", "--o3"]);
    assert!(opt.status.success());
    assert_ne!(out.stdout, opt.stdout);
}

#[test]
fn show_source_prints_pseudo_c() {
    let out = irnuma(&["show-source", "cg.spmv"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("#pragma omp"));
    assert!(text.contains("rowptr"));
}

#[test]
fn graph_stats_and_dot_export() {
    let out = irnuma(&["graph", "hotspot.temp"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("nodes"));
    assert!(text.contains("control"));

    let dir = std::env::temp_dir().join("irnuma-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let dot = dir.join("g.dot");
    let out = irnuma(&["graph", "hotspot.temp", "--dot", dot.to_str().unwrap()]);
    assert!(out.status.success());
    let content = std::fs::read_to_string(&dot).unwrap();
    assert!(content.starts_with("digraph"));
    std::fs::remove_file(&dot).ok();
}

#[test]
fn sweep_reports_top_configs() {
    let out = irnuma(&["sweep", "clomp.calc_zones", "--arch", "sandybridge"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("320 configurations"));
    assert!(text.contains("top 5:"));
}

#[test]
fn interp_executes_a_region() {
    let out = irnuma(&["interp", "cg.axpy", "--n", "32"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("interpreter steps"));
}

#[test]
fn unknown_region_is_a_clean_error() {
    let out = irnuma(&["sweep", "no.such.region"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown region"));
}

#[test]
fn dataset_fault_injection_skips_one_region() {
    let dir = std::env::temp_dir().join("irnuma-cli-fault");
    std::fs::create_dir_all(&dir).unwrap();
    let out_file = dir.join("ds.json");
    let out = irnuma(&[
        "dataset",
        "--seqs",
        "2",
        "--calls",
        "2",
        "--fault",
        "cg.spmv",
        "--out",
        out_file.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("55 regions"), "one region skipped: {text}");
    assert!(text.contains("skipped 1 regions"), "{text}");
    assert!(text.contains("cg.spmv"), "{text}");

    // --strict restores fail-fast: the same fault aborts the build.
    let strict = irnuma(&[
        "dataset",
        "--seqs",
        "2",
        "--calls",
        "2",
        "--strict",
        "--fault",
        "cg.spmv",
        "--out",
        dir.join("ds-strict.json").to_str().unwrap(),
    ]);
    assert!(!strict.status.success());
    assert!(String::from_utf8_lossy(&strict.stderr).contains("strict"));
    assert!(!dir.join("ds-strict.json").exists(), "no partial artifact on failure");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn train_resume_is_bit_identical_to_an_uninterrupted_run() {
    let dir = std::env::temp_dir().join("irnuma-cli-train");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let ds = dir.join("ds.json");
    let out = irnuma(&["dataset", "--seqs", "2", "--calls", "2", "--out", ds.to_str().unwrap()]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // Reference: 4 uninterrupted epochs.
    let full = dir.join("model-full.json");
    let out = irnuma(&[
        "train",
        "--dataset",
        ds.to_str().unwrap(),
        "--epochs",
        "4",
        "--out",
        full.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // Interrupted run: 2 epochs with checkpoints, then resume to 4.
    let ckpt = dir.join("ckpt");
    let out = irnuma(&[
        "train",
        "--dataset",
        ds.to_str().unwrap(),
        "--epochs",
        "2",
        "--ckpt-dir",
        ckpt.to_str().unwrap(),
        "--every",
        "1",
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(ckpt.join("latest").exists());

    let resumed = dir.join("model-resumed.json");
    let out = irnuma(&[
        "train",
        "--dataset",
        ds.to_str().unwrap(),
        "--epochs",
        "4",
        "--ckpt-dir",
        ckpt.to_str().unwrap(),
        "--every",
        "1",
        "--resume",
        "--out",
        resumed.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let a = std::fs::read(&full).unwrap();
    let b = std::fs::read(&resumed).unwrap();
    assert_eq!(a, b, "resumed model differs from the uninterrupted run");

    // The atomic writer leaves no temp residue behind.
    for entry in std::fs::read_dir(&ckpt).unwrap() {
        let name = entry.unwrap().file_name().to_string_lossy().into_owned();
        assert!(!name.ends_with(".tmp"), "stale temp file {name}");
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dataset_json_build_reports_skip_and_retry_counters() {
    let dir = std::env::temp_dir().join("irnuma-cli-fault-json");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let out_file = dir.join("ds.json");
    let out = irnuma(&[
        "dataset",
        "--seqs",
        "2",
        "--calls",
        "2",
        "--fault",
        "cg.spmv",
        "--json",
        "--out",
        out_file.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    // The fault panics on every attempt: one retry, then the region is
    // dropped — and the build's --json summary must carry both counters.
    assert!(text.contains("\"dataset.skipped\":1"), "{text}");
    assert!(text.contains("\"dataset.retried\":1"), "{text}");
    assert!(text.contains("\"regions\":55"), "{text}");
    assert!(text.contains("cg.spmv"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn packed_streaming_train_matches_in_memory_and_resumes_bit_for_bit() {
    let dir = std::env::temp_dir().join("irnuma-cli-pack-train");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let ds = dir.join("ds.json");
    let out = irnuma(&["dataset", "--seqs", "2", "--calls", "2", "--out", ds.to_str().unwrap()]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // JSON cache -> binary pack, then verify every checksum.
    let pack = dir.join("pack");
    let out = irnuma(&[
        "dataset",
        "pack",
        "--in",
        ds.to_str().unwrap(),
        "--out",
        pack.to_str().unwrap(),
        "--shard-graphs",
        "16",
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let info = irnuma(&["dataset", "info", pack.to_str().unwrap(), "--verify"]);
    assert!(info.status.success(), "{}", String::from_utf8_lossy(&info.stderr));
    assert!(String::from_utf8_lossy(&info.stdout).contains("verify ok"));

    // Streaming vs the in-memory source over the same pack: byte-identical
    // models (the determinism contract of the double-buffered loader).
    let m_stream = dir.join("m-stream.json");
    let out = irnuma(&[
        "train",
        "--dataset",
        pack.to_str().unwrap(),
        "--epochs",
        "2",
        "--out",
        m_stream.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let m_mem = dir.join("m-mem.json");
    let out = irnuma(&[
        "train",
        "--dataset",
        pack.to_str().unwrap(),
        "--epochs",
        "2",
        "--in-memory",
        "--out",
        m_mem.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let a = std::fs::read(&m_stream).unwrap();
    let b = std::fs::read(&m_mem).unwrap();
    assert_eq!(a, b, "streaming model differs from the in-memory source");

    // Interrupt at epoch 1, resume to 2: bit-for-bit the uninterrupted run.
    let ckpt = dir.join("ckpt");
    let out = irnuma(&[
        "train",
        "--dataset",
        pack.to_str().unwrap(),
        "--epochs",
        "1",
        "--ckpt-dir",
        ckpt.to_str().unwrap(),
        "--every",
        "1",
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let m_resumed = dir.join("m-resumed.json");
    let out = irnuma(&[
        "train",
        "--dataset",
        pack.to_str().unwrap(),
        "--epochs",
        "2",
        "--ckpt-dir",
        ckpt.to_str().unwrap(),
        "--every",
        "1",
        "--resume",
        "--out",
        m_resumed.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let c = std::fs::read(&m_resumed).unwrap();
    assert_eq!(a, c, "resumed streaming model differs from the uninterrupted run");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_then_report_covers_the_pipeline() {
    let dir = std::env::temp_dir().join("irnuma-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("sweep-trace.jsonl");

    // A traced sweep exercises workloads + sim; every line must parse and
    // the sweep stage must appear in the report.
    let out = Command::new(env!("CARGO_BIN_EXE_irnuma"))
        .args(["sweep", "cg.axpy"])
        .env("IRNUMA_TRACE", trace.to_str().unwrap())
        .env("IRNUMA_LOG", "warn")
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(trace.exists(), "trace file written");

    let report = irnuma(&["report", trace.to_str().unwrap(), "--require", "sim.sweep"]);
    assert!(report.status.success(), "{}", String::from_utf8_lossy(&report.stderr));
    let text = String::from_utf8_lossy(&report.stdout);
    assert!(text.contains("stage"), "table header: {text}");
    assert!(text.contains("sim.sweep"));
    assert!(text.contains("all required stages present"));

    // Requiring a stage the command never ran fails loudly.
    let missing = irnuma(&["report", trace.to_str().unwrap(), "--require", "train.epoch"]);
    assert!(!missing.status.success());
    assert!(String::from_utf8_lossy(&missing.stderr).contains("train.epoch"));

    // Corrupt lines are skipped (a live trace may end mid-write) but the
    // report says how many it dropped.
    let bad = dir.join("bad-trace.jsonl");
    std::fs::write(
        &bad,
        "{\"ts_ns\":1,\"kind\":\"span\"\nnot json\n{\"ts_ns\":2,\"kind\":\"counter\",\"name\":\"c\",\"fields\":{\"value\":3}}\n",
    )
    .unwrap();
    let out = irnuma(&["report", bad.to_str().unwrap()]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stderr).contains("report.malformed_lines: 2"));

    // --json emits a machine-readable report with the same information.
    let js = irnuma(&["report", bad.to_str().unwrap(), "--json"]);
    assert!(js.status.success());
    let body = String::from_utf8_lossy(&js.stdout);
    assert!(body.contains("\"malformed_lines\":2"), "{body}");
    assert!(body.contains("\"counters\""), "{body}");

    std::fs::remove_file(&trace).ok();
    std::fs::remove_file(&bad).ok();
}

#[test]
fn trace_analyze_and_perfetto_export_on_a_traced_sweep() {
    let dir = std::env::temp_dir().join("irnuma-cli-causal");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("trace.jsonl");

    let out = Command::new(env!("CARGO_BIN_EXE_irnuma"))
        .args(["sweep", "cg.axpy"])
        .env("IRNUMA_TRACE", trace.to_str().unwrap())
        .env("IRNUMA_LOG", "warn")
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // The forest must be complete: a sim.sweep root with its per-config
    // fan-out spans attached, zero orphans, and a critical path that the
    // analyzer confirms sums to the root's wall-clock (it appends a
    // MISMATCH marker otherwise).
    let an = irnuma(&["trace", "analyze", trace.to_str().unwrap(), "--require-roots", "sim.sweep"]);
    assert!(an.status.success(), "{}", String::from_utf8_lossy(&an.stderr));
    let text = String::from_utf8_lossy(&an.stdout);
    assert!(text.contains("root sim.sweep"), "{text}");
    assert!(text.contains("0 orphan(s)"), "{text}");
    assert!(text.contains("critical path"), "{text}");
    assert!(!text.contains("MISMATCH"), "{text}");

    // Requiring a root this command never opened fails and names it.
    let missing =
        irnuma(&["trace", "analyze", trace.to_str().unwrap(), "--require-roots", "train.epoch"]);
    assert!(!missing.status.success());
    assert!(String::from_utf8_lossy(&missing.stderr).contains("train.epoch"));

    // Perfetto export: loadable Chrome trace-event JSON with complete
    // events and thread-name metadata.
    let perfetto = dir.join("trace.perfetto.json");
    let ex = irnuma(&[
        "trace",
        "export",
        trace.to_str().unwrap(),
        "--perfetto",
        perfetto.to_str().unwrap(),
    ]);
    assert!(ex.status.success(), "{}", String::from_utf8_lossy(&ex.stderr));
    let body = std::fs::read_to_string(&perfetto).unwrap();
    assert!(body.contains("\"traceEvents\""), "{body}");
    assert!(body.contains("\"ph\":\"X\""), "{body}");
    assert!(body.contains("thread_name"), "{body}");

    // The flat report over a causal trace gains the %-of-wall column and
    // honors --sort; a bad sort key is a clean error.
    let rep = irnuma(&["report", trace.to_str().unwrap(), "--sort", "count"]);
    assert!(rep.status.success(), "{}", String::from_utf8_lossy(&rep.stderr));
    assert!(String::from_utf8_lossy(&rep.stdout).contains("%wall"));
    let bad = irnuma(&["report", trace.to_str().unwrap(), "--sort", "nope"]);
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("nope"));

    std::fs::remove_dir_all(&dir).ok();
}
