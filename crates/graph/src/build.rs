//! Graph construction from a module (paper step B, ProGraML construction):
//!
//! * one **instruction node** per attached instruction;
//! * **control edges**: consecutive instructions within a block, and
//!   terminator → first instruction of each successor block (`pos` =
//!   successor index);
//! * one **variable node** per value-producing instruction (def edge
//!   instruction → variable, use edges variable → user with `pos` = operand
//!   index), per function argument, and per referenced global;
//! * one **constant node** per distinct constant *value* per function, with
//!   use edges;
//! * **call edges**: call site → callee entry instruction and callee `ret`s
//!   → call site, for callees defined in the module.

use crate::graph::{EdgeKind, Graph, NodeKind};
use crate::vocab::{const_text, global_text, instr_text, var_text, Vocab};
use irnuma_ir::{InstrId, Module, Opcode, Operand, Ty};
use std::collections::HashMap;

/// Build the ProGraML-style graph of every function with a body in `m`.
///
/// ```
/// use irnuma_graph::{build_module_graph, EdgeKind, NodeKind, Vocab};
/// use irnuma_ir::builder::{iconst, FunctionBuilder};
/// use irnuma_ir::{FunctionKind, Module, Operand, Ty};
///
/// let mut m = Module::new("demo");
/// let g = m.add_global("data", Ty::F64, 1024);
/// let mut b = FunctionBuilder::new(".omp_outlined.k", vec![Ty::I64], Ty::Void, FunctionKind::OmpOutlined);
/// b.counted_loop(iconst(0), b.arg(0), iconst(1), |b, i| {
///     let p = b.gep(Ty::F64, Operand::Global(g), i);
///     let v = b.load(Ty::F64, p);
///     b.store(v, p);
/// });
/// b.ret(None);
/// m.add_function(b.finish());
///
/// let graph = build_module_graph(&m, &Vocab::full());
/// graph.validate().unwrap();
/// assert!(graph.count_nodes(NodeKind::Instruction) > 5);
/// assert!(graph.count_edges(EdgeKind::Data) > 0);
/// ```
pub fn build_module_graph(m: &Module, vocab: &Vocab) -> Graph {
    let mut span = irnuma_obs::span!("graph.build", module = m.name.as_str());
    let mut g = Graph { name: m.name.clone(), ..Default::default() };

    // Global variable nodes are shared across functions.
    let mut global_nodes: HashMap<u32, u32> = HashMap::new();
    for (gi, glob) in m.globals.iter().enumerate() {
        let id =
            g.add_node(NodeKind::Variable, vocab.id(&global_text(glob.elem, glob.size_bytes())));
        global_nodes.insert(gi as u32, id);
    }

    // First pass: create instruction + variable nodes per function and
    // remember (function, instr) → node ids for the call-edge pass.
    struct FnNodes {
        instr_node: HashMap<InstrId, u32>,
        entry_instr: Option<u32>,
        ret_instrs: Vec<u32>,
    }
    let mut per_fn: HashMap<String, FnNodes> = HashMap::new();

    for f in &m.functions {
        if f.is_declaration() {
            continue;
        }
        let mut instr_node: HashMap<InstrId, u32> = HashMap::new();
        let mut value_node: HashMap<InstrId, u32> = HashMap::new();
        let mut arg_node: HashMap<u32, u32> = HashMap::new();
        let mut const_node: HashMap<(u8, i64, u64), u32> = HashMap::new();
        let mut ret_instrs = Vec::new();

        // Argument variable nodes.
        for (i, &ty) in f.params.iter().enumerate() {
            let id = g.add_node(NodeKind::Variable, vocab.id(&var_text(ty)));
            arg_node.insert(i as u32, id);
        }

        // Instruction nodes + def variable nodes.
        for (_, _, iid) in f.iter_attached() {
            let instr = f.instr(iid);
            let n = g.add_node(NodeKind::Instruction, vocab.id(&instr_text(instr)));
            instr_node.insert(iid, n);
            if instr.ty.is_first_class() {
                let vn = g.add_node(NodeKind::Variable, vocab.id(&var_text(instr.ty)));
                value_node.insert(iid, vn);
                g.add_edge(n, vn, EdgeKind::Data, 0); // def
            }
            if matches!(instr.op, Opcode::Ret) {
                ret_instrs.push(n);
            }
        }

        // Control edges.
        for (bid, block) in f.iter_blocks() {
            for w in block.instrs.windows(2) {
                g.add_edge(instr_node[&w[0]], instr_node[&w[1]], EdgeKind::Control, 0);
            }
            if let Some(t) = f.terminator(bid) {
                for (si, succ) in f.instr(t).successors().into_iter().enumerate() {
                    if let Some(&first) = f.blocks[succ.index()].instrs.first() {
                        g.add_edge(
                            instr_node[&t],
                            instr_node[&first],
                            EdgeKind::Control,
                            si as u32,
                        );
                    }
                }
            }
        }

        // Data use edges.
        for (_, _, iid) in f.iter_attached() {
            let user = instr_node[&iid];
            let instr = f.instr(iid);
            for (pos, op) in instr.operands.iter().enumerate() {
                let src = match *op {
                    Operand::Instr(d) => match value_node.get(&d) {
                        Some(&v) => v,
                        None => continue, // void results are never operands (verified)
                    },
                    Operand::Arg(a) => arg_node[&a],
                    Operand::Global(gid) => global_nodes[&gid.0],
                    Operand::ConstInt(v) => *const_node.entry((0, v, 0)).or_insert_with(|| {
                        let ty = const_use_ty(instr, pos);
                        g.add_node(NodeKind::Constant, vocab.id(&const_text(ty)))
                    }),
                    Operand::ConstFloat(bits) => {
                        *const_node.entry((1, 0, bits)).or_insert_with(|| {
                            let ty = const_use_ty(instr, pos);
                            g.add_node(NodeKind::Constant, vocab.id(&const_text(ty)))
                        })
                    }
                    Operand::Block(_) => continue, // labels are structure, not data
                };
                g.add_edge(src, user, EdgeKind::Data, pos as u32);
            }
        }

        let entry_instr = f.blocks[f.entry().index()].instrs.first().map(|i| instr_node[i]);
        per_fn.insert(f.name.clone(), FnNodes { instr_node, entry_instr, ret_instrs });
    }

    // Call edges.
    for f in &m.functions {
        if f.is_declaration() {
            continue;
        }
        let own = &per_fn[&f.name];
        for (_, _, iid) in f.iter_attached() {
            let Opcode::Call { callee } = &f.instr(iid).op else { continue };
            let Some(target) = per_fn.get(callee) else { continue };
            let call_node = own.instr_node[&iid];
            if let Some(entry) = target.entry_instr {
                g.add_edge(call_node, entry, EdgeKind::Call, 0);
            }
            for (ri, &r) in target.ret_instrs.iter().enumerate() {
                g.add_edge(r, call_node, EdgeKind::Call, ri as u32);
            }
        }
    }

    debug_assert!(g.validate().is_ok());
    if irnuma_obs::trace_enabled() {
        span.field("instr_nodes", g.count_nodes(NodeKind::Instruction));
        span.field("var_nodes", g.count_nodes(NodeKind::Variable));
        span.field("const_nodes", g.count_nodes(NodeKind::Constant));
        span.field("control_edges", g.count_edges(EdgeKind::Control));
        span.field("data_edges", g.count_edges(EdgeKind::Data));
        span.field("call_edges", g.count_edges(EdgeKind::Call));
        irnuma_obs::counter!("graph.nodes").inc(g.num_nodes() as u64);
        irnuma_obs::counter!("graph.edges").inc(g.num_edges() as u64);
        irnuma_obs::counter!("graph.builds").inc(1);
    }
    g
}

/// Best-effort type of a constant used at operand `pos` of `instr` —
/// inferred from the instruction since immediates are untyped in the IR.
fn const_use_ty(instr: &irnuma_ir::Instr, pos: usize) -> Ty {
    match &instr.op {
        Opcode::Store => {
            if pos == 0 {
                // value operand: type unknown; integers default to i64
                Ty::I64
            } else {
                Ty::Ptr
            }
        }
        Opcode::Gep { .. } => Ty::I64,
        Opcode::Icmp(_) => Ty::I64,
        Opcode::Fcmp(_) => Ty::F64,
        Opcode::CondBr | Opcode::Select if pos == 0 => Ty::I1,
        op if op.is_binary() => instr.ty,
        Opcode::Phi | Opcode::Ret | Opcode::Select => instr.ty,
        Opcode::FMulAdd => Ty::F64,
        _ => Ty::I64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irnuma_ir::builder::{fconst, iconst, FunctionBuilder};
    use irnuma_ir::FunctionKind;

    fn sample_module() -> Module {
        let mut m = Module::new("g");
        let gd = m.add_global("data", Ty::F64, 1024);
        let mut h = FunctionBuilder::new("helper", vec![Ty::I64], Ty::F64, FunctionKind::Normal);
        let p = h.gep(Ty::F64, Operand::Global(gd), h.arg(0));
        let v = h.load(Ty::F64, p);
        h.ret(Some(v));
        m.add_function(h.finish());
        let mut b = FunctionBuilder::new(
            ".omp_outlined.k",
            vec![Ty::I64],
            Ty::Void,
            FunctionKind::OmpOutlined,
        );
        b.counted_loop(iconst(0), b.arg(0), iconst(1), |b, i| {
            let x = b.call("helper", Ty::F64, vec![i]);
            let y = b.fmul(Ty::F64, x, fconst(2.0));
            let p = b.gep(Ty::F64, Operand::Global(gd), i);
            b.store(y, p);
        });
        b.ret(None);
        m.add_function(b.finish());
        m
    }

    #[test]
    fn graph_has_all_three_relations() {
        let m = sample_module();
        let g = build_module_graph(&m, &Vocab::full());
        g.validate().unwrap();
        assert!(g.count_edges(EdgeKind::Control) > 0);
        assert!(g.count_edges(EdgeKind::Data) > 0);
        assert_eq!(g.count_edges(EdgeKind::Call), 2, "call→entry and ret→call");
    }

    #[test]
    fn node_counts_match_structure() {
        let m = sample_module();
        let g = build_module_graph(&m, &Vocab::full());
        let total_instrs: usize = m.functions.iter().map(|f| f.num_attached()).sum();
        assert_eq!(g.count_nodes(NodeKind::Instruction), total_instrs);
        // Variables: 1 global + 2 args + one per value-producing instr.
        let value_producing: usize = m
            .functions
            .iter()
            .flat_map(|f| f.iter_attached().map(move |(_, _, i)| f.instr(i)))
            .filter(|i| i.ty.is_first_class())
            .count();
        assert_eq!(g.count_nodes(NodeKind::Variable), 1 + 2 + value_producing);
        assert!(g.count_nodes(NodeKind::Constant) >= 2, "0, 1, 2.0 used");
    }

    #[test]
    fn constants_are_deduplicated_per_function() {
        let mut m = Module::new("c");
        let mut b = FunctionBuilder::new("f", vec![], Ty::I64, FunctionKind::Normal);
        let x = b.add(Ty::I64, iconst(7), iconst(7));
        let y = b.mul(Ty::I64, x, iconst(7));
        b.ret(Some(y));
        m.add_function(b.finish());
        let g = build_module_graph(&m, &Vocab::full());
        assert_eq!(g.count_nodes(NodeKind::Constant), 1, "all three 7s share a node");
        // ...but with three use edges.
        let const_uses =
            g.edges.iter().filter(|e| g.nodes[e.src as usize].kind == NodeKind::Constant).count();
        assert_eq!(const_uses, 3);
    }

    #[test]
    fn control_edges_follow_branch_positions() {
        let m = sample_module();
        let g = build_module_graph(&m, &Vocab::full());
        // The loop's condbr contributes two control edges with pos 0 and 1.
        let max_pos =
            g.edges.iter().filter(|e| e.kind == EdgeKind::Control).map(|e| e.pos).max().unwrap();
        assert_eq!(max_pos, 1);
    }

    #[test]
    fn different_flag_forms_give_different_graphs() {
        let m = sample_module();
        let g1 = build_module_graph(&m, &Vocab::full());
        let mut m2 = m.clone();
        irnuma_passes::run_sequence(
            &mut m2,
            &["inline", "instcombine", "gvn", "dce", "simplifycfg"],
        )
        .unwrap();
        let g2 = build_module_graph(&m2, &Vocab::full());
        assert_ne!(g1, g2, "optimization visibly changes the graph");
    }

    #[test]
    fn empty_module_yields_empty_graph() {
        let m = Module::new("empty");
        let g = build_module_graph(&m, &Vocab::full());
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert!(g.validate().is_ok());
    }
}
