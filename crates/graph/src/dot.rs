//! Graphviz DOT export for program graphs — the rendering ProGraML papers
//! use to illustrate the representation. `dot -Tsvg out.dot` visualizes a
//! region: instruction nodes as boxes, variables as ellipses, constants as
//! diamonds; control edges solid, data edges dashed, call edges bold.

use crate::graph::{EdgeKind, Graph, NodeKind};
use crate::vocab::Vocab;
use std::fmt::Write;

/// Render `g` as a DOT digraph. Node labels come from the vocabulary.
pub fn to_dot(g: &Graph, vocab: &Vocab) -> String {
    let mut out = String::new();
    writeln!(out, "digraph \"{}\" {{", g.name).unwrap();
    writeln!(out, "  rankdir=TB; node [fontsize=10];").unwrap();
    for (i, n) in g.nodes.iter().enumerate() {
        let (shape, color) = match n.kind {
            NodeKind::Instruction => ("box", "#2563eb"),
            NodeKind::Variable => ("ellipse", "#059669"),
            NodeKind::Constant => ("diamond", "#d97706"),
        };
        writeln!(
            out,
            "  n{} [label=\"{}\", shape={}, color=\"{}\"];",
            i,
            vocab.text(n.text_id),
            shape,
            color
        )
        .unwrap();
    }
    for e in &g.edges {
        let style = match e.kind {
            EdgeKind::Control => "solid",
            EdgeKind::Data => "dashed",
            EdgeKind::Call => "bold",
        };
        writeln!(out, "  n{} -> n{} [style={}, label=\"{}\"];", e.src, e.dst, style, e.pos)
            .unwrap();
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    #[test]
    fn dot_output_is_well_formed() {
        let vocab = Vocab::full();
        let mut g = Graph { name: "demo".into(), ..Default::default() };
        let a = g.add_node(NodeKind::Instruction, vocab.id("load.f64"));
        let v = g.add_node(NodeKind::Variable, vocab.id("var.f64"));
        let c = g.add_node(NodeKind::Constant, vocab.id("const.i64"));
        let b = g.add_node(NodeKind::Instruction, vocab.id("store.void"));
        g.add_edge(a, v, EdgeKind::Data, 0);
        g.add_edge(v, b, EdgeKind::Data, 0);
        g.add_edge(c, b, EdgeKind::Data, 1);
        g.add_edge(a, b, EdgeKind::Control, 0);

        let dot = to_dot(&g, &vocab);
        assert!(dot.starts_with("digraph \"demo\""));
        assert!(dot.trim_end().ends_with('}'));
        assert_eq!(dot.matches(" -> ").count(), 4);
        assert!(dot.contains("load.f64"));
        assert!(dot.contains("shape=diamond"), "constants are diamonds");
        assert!(dot.contains("style=dashed"), "data edges dashed");
        // Every node id referenced by an edge is declared.
        for i in 0..4 {
            assert!(dot.contains(&format!("n{i} [")));
        }
    }
}
