//! Graph data structures.

use serde::{Deserialize, Serialize};

/// Node kinds, mirroring ProGraML.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// An executed instruction.
    Instruction,
    /// An SSA value: instruction result, function argument, or global.
    Variable,
    /// An immediate constant.
    Constant,
}

/// Edge relations (the RGCN's relation types, paper Eq. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeKind {
    /// Instruction → instruction, program order / branch targets.
    Control,
    /// Variable/constant → instruction (use, positioned) and
    /// instruction → variable (def).
    Data,
    /// Call site → callee entry and callee exit → call site.
    Call,
}

pub const ALL_EDGE_KINDS: [EdgeKind; 3] = [EdgeKind::Control, EdgeKind::Data, EdgeKind::Call];

impl EdgeKind {
    /// Dense index used by the RGCN weight tables.
    pub fn index(self) -> usize {
        match self {
            EdgeKind::Control => 0,
            EdgeKind::Data => 1,
            EdgeKind::Call => 2,
        }
    }
}

/// A node: its kind plus the vocabulary index of its text (see
/// [`crate::vocab::Vocab`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    pub kind: NodeKind,
    pub text_id: u32,
}

/// A directed, typed, positioned edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    pub src: u32,
    pub dst: u32,
    pub kind: EdgeKind,
    /// Operand index (data uses), successor index (control branches), or 0.
    pub pos: u32,
}

/// A program graph for one region module.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Graph {
    /// Human-readable provenance (module name).
    pub name: String,
    pub nodes: Vec<Node>,
    pub edges: Vec<Edge>,
}

impl Graph {
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Add a node; returns its index.
    pub fn add_node(&mut self, kind: NodeKind, text_id: u32) -> u32 {
        self.nodes.push(Node { kind, text_id });
        (self.nodes.len() - 1) as u32
    }

    pub fn add_edge(&mut self, src: u32, dst: u32, kind: EdgeKind, pos: u32) {
        debug_assert!((src as usize) < self.nodes.len() && (dst as usize) < self.nodes.len());
        self.edges.push(Edge { src, dst, kind, pos });
    }

    /// Count nodes of a kind.
    pub fn count_nodes(&self, kind: NodeKind) -> usize {
        self.nodes.iter().filter(|n| n.kind == kind).count()
    }

    /// Count edges of a kind.
    pub fn count_edges(&self, kind: EdgeKind) -> usize {
        self.edges.iter().filter(|e| e.kind == kind).count()
    }

    /// Edges grouped per relation, as `(src, dst)` lists — the layout the
    /// RGCN layer consumes. Index by [`EdgeKind::index`].
    pub fn edges_by_relation(&self) -> [Vec<(u32, u32)>; 3] {
        let mut out: [Vec<(u32, u32)>; 3] = Default::default();
        for e in &self.edges {
            out[e.kind.index()].push((e.src, e.dst));
        }
        out
    }

    /// Structural sanity: all endpoints in range, no self-loop control
    /// edges, node list non-empty for non-trivial modules.
    pub fn validate(&self) -> Result<(), String> {
        for e in &self.edges {
            if e.src as usize >= self.nodes.len() || e.dst as usize >= self.nodes.len() {
                return Err(format!("edge ({}, {}) out of range", e.src, e.dst));
            }
            if e.kind == EdgeKind::Control && e.src == e.dst {
                return Err(format!("control self-loop at node {}", e.src));
            }
            // Control edges connect instructions only.
            if e.kind == EdgeKind::Control {
                let (s, d) = (&self.nodes[e.src as usize], &self.nodes[e.dst as usize]);
                if s.kind != NodeKind::Instruction || d.kind != NodeKind::Instruction {
                    return Err("control edge touching a non-instruction".into());
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_count() {
        let mut g = Graph { name: "t".into(), ..Default::default() };
        let a = g.add_node(NodeKind::Instruction, 0);
        let b = g.add_node(NodeKind::Instruction, 1);
        let v = g.add_node(NodeKind::Variable, 2);
        g.add_edge(a, b, EdgeKind::Control, 0);
        g.add_edge(a, v, EdgeKind::Data, 0);
        g.add_edge(v, b, EdgeKind::Data, 1);
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.count_nodes(NodeKind::Instruction), 2);
        assert_eq!(g.count_edges(EdgeKind::Data), 2);
        assert!(g.validate().is_ok());
        let rel = g.edges_by_relation();
        assert_eq!(rel[EdgeKind::Control.index()], vec![(a, b)]);
        assert_eq!(rel[EdgeKind::Data.index()].len(), 2);
        assert!(rel[EdgeKind::Call.index()].is_empty());
    }

    #[test]
    fn validate_rejects_bad_graphs() {
        let mut g = Graph::default();
        let a = g.add_node(NodeKind::Instruction, 0);
        g.edges.push(Edge { src: a, dst: 99, kind: EdgeKind::Data, pos: 0 });
        assert!(g.validate().is_err());

        let mut g = Graph::default();
        let a = g.add_node(NodeKind::Instruction, 0);
        g.edges.push(Edge { src: a, dst: a, kind: EdgeKind::Control, pos: 0 });
        assert!(g.validate().is_err(), "control self-loop");

        let mut g = Graph::default();
        let a = g.add_node(NodeKind::Instruction, 0);
        let v = g.add_node(NodeKind::Variable, 0);
        g.edges.push(Edge { src: a, dst: v, kind: EdgeKind::Control, pos: 0 });
        assert!(g.validate().is_err(), "control edge to variable");
    }

    #[test]
    fn serde_round_trip() {
        let mut g = Graph { name: "rt".into(), ..Default::default() };
        let a = g.add_node(NodeKind::Constant, 7);
        let b = g.add_node(NodeKind::Instruction, 3);
        g.add_edge(a, b, EdgeKind::Data, 2);
        let s = serde_json::to_string(&g).unwrap();
        let g2: Graph = serde_json::from_str(&s).unwrap();
        assert_eq!(g, g2);
    }
}
