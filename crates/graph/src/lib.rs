//! # irnuma-graph — ProGraML-style program graphs
//!
//! Implements the program representation the paper feeds to its GNN
//! (Cummins et al., *ProGraML*): a typed multigraph over the IR with three
//! edge *relations* — control flow, data flow, and call flow — and three
//! node kinds — instructions, variables (SSA values, arguments, globals),
//! and constants. Edges carry a *position* (operand index or successor
//! index), which the RGCN can exploit.
//!
//! The graph is built from an extracted region module
//! ([`irnuma_ir::extract::extract_region`], paper step B). Node features are
//! vocabulary indices over a closed, deterministic vocabulary
//! ([`Vocab::full`]), so models trained on one dataset apply to any other
//! module without re-fitting the vocabulary (a property the paper relies on
//! for cross-architecture transfer).

pub mod build;
pub mod dot;
pub mod graph;
pub mod vocab;

pub use build::build_module_graph;
pub use dot::to_dot;
pub use graph::{Edge, EdgeKind, Graph, Node, NodeKind};
pub use vocab::Vocab;
