//! The closed node-text vocabulary.
//!
//! Every node is labeled with a short text — `"add.i64"`, `"var.f64"`,
//! `"const.i32"`, … — and models consume the *index* of that text in a fixed
//! vocabulary. The vocabulary is enumerated statically from the finite
//! opcode × type product, so any module ever built maps onto it and two
//! datasets built independently share indices (needed for cross-architecture
//! evaluation, paper §IV-D).

use irnuma_ir::{Instr, Opcode, Ty};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// All result types a node can advertise (Void appears for stores/branches).
const TYPES: [Ty; 7] = [Ty::I1, Ty::I32, Ty::I64, Ty::F32, Ty::F64, Ty::Ptr, Ty::Void];

/// Base mnemonics, *excluding* open payloads (callee names, GEP sizes,
/// alloca shapes) so the vocabulary stays closed.
const BASE_MNEMONICS: [&str; 40] = [
    "add",
    "sub",
    "mul",
    "sdiv",
    "srem",
    "fadd",
    "fsub",
    "fmul",
    "fdiv",
    "and",
    "or",
    "xor",
    "shl",
    "lshr",
    "ashr",
    "fmuladd",
    "icmp.eq",
    "icmp.ne",
    "icmp.slt",
    "icmp.sle",
    "icmp.sgt",
    "icmp.sge",
    "fcmp.oeq",
    "fcmp.one",
    "fcmp.olt",
    "fcmp.ole",
    "fcmp.ogt",
    "fcmp.oge",
    "alloca",
    "load",
    "store",
    "gep",
    "atomicrmw.add",
    "atomicrmw.min",
    "atomicrmw.max",
    "atomicrmw.xchg",
    "br",
    "condbr",
    "ret",
    "phi",
];

/// Mnemonics with open payloads are flattened to these.
const EXTRA_MNEMONICS: [&str; 9] =
    ["call", "select", "trunc", "zext", "sext", "fptosi", "sitofp", "fpcast", "bitcast"];

/// The canonical node text of an instruction: closed mnemonic + result type.
pub fn instr_text(instr: &Instr) -> String {
    let base = match &instr.op {
        Opcode::Gep { .. } => "gep".to_string(),
        Opcode::Alloca { .. } => "alloca".to_string(),
        Opcode::Call { .. } => "call".to_string(),
        other => other.mnemonic(),
    };
    format!("{}.{}", base, instr.ty.keyword())
}

/// Node text of a variable node holding a value of type `ty`.
pub fn var_text(ty: Ty) -> String {
    format!("var.{}", ty.keyword())
}

/// Node text of a constant node of type `ty`.
pub fn const_text(ty: Ty) -> String {
    format!("const.{}", ty.keyword())
}

/// Node text of a *global* variable node: element type plus a log2 bucket
/// of the array's byte footprint. ProGraML keeps the full LLVM type text
/// (e.g. `[1048576 x double]`) in its vocabulary; bucketing the size keeps
/// ours closed while preserving the footprint signal that statically-sized
/// benchmark arrays expose.
pub fn global_text(ty: Ty, size_bytes: u64) -> String {
    let bucket = size_bytes.max(1).ilog2().min(40);
    format!("gvar.{}.{}", ty.keyword(), bucket)
}

/// A fixed text → index mapping.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Vocab {
    texts: Vec<String>,
    #[serde(skip)]
    index: HashMap<String, u32>,
}

impl Vocab {
    /// The full static vocabulary: every (mnemonic, type) pair plus
    /// variable/constant texts per type. Deterministic order.
    pub fn full() -> Vocab {
        let mut texts = Vec::new();
        for m in BASE_MNEMONICS.iter().chain(EXTRA_MNEMONICS.iter()) {
            for ty in TYPES {
                texts.push(format!("{}.{}", m, ty.keyword()));
            }
        }
        for ty in TYPES {
            texts.push(var_text(ty));
            texts.push(const_text(ty));
            for bucket in 0..=40u32 {
                texts.push(format!("gvar.{}.{}", ty.keyword(), bucket));
            }
        }
        Vocab::from_texts(texts)
    }

    fn from_texts(texts: Vec<String>) -> Vocab {
        let index = texts.iter().enumerate().map(|(i, t)| (t.clone(), i as u32)).collect();
        Vocab { texts, index }
    }

    /// Rebuild the lookup map (after deserialization).
    pub fn rebuild_index(&mut self) {
        self.index = self.texts.iter().enumerate().map(|(i, t)| (t.clone(), i as u32)).collect();
    }

    pub fn len(&self) -> usize {
        self.texts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.texts.is_empty()
    }

    /// Index of a text; panics on unknown text (the vocabulary is closed, so
    /// an unknown text is a construction bug, not data).
    pub fn id(&self, text: &str) -> u32 {
        *self
            .index
            .get(text)
            .unwrap_or_else(|| panic!("text `{text}` missing from closed vocabulary"))
    }

    pub fn text(&self, id: u32) -> &str {
        &self.texts[id as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irnuma_ir::Operand;

    #[test]
    fn full_vocab_size_is_closed_product() {
        let v = Vocab::full();
        assert_eq!(v.len(), (40 + 9) * 7 + 7 * 2 + 7 * 41);
    }

    #[test]
    fn global_texts_bucket_by_log2_footprint() {
        assert_eq!(global_text(Ty::F64, 1 << 20), "gvar.f64.20");
        assert_eq!(global_text(Ty::F64, (1 << 20) + 7000), "gvar.f64.20");
        assert_eq!(global_text(Ty::F64, 1 << 21), "gvar.f64.21");
        assert_eq!(global_text(Ty::I64, 0), "gvar.i64.0", "zero-size clamps");
        assert_eq!(global_text(Ty::I64, u64::MAX), "gvar.i64.40", "huge clamps to 40");
        let v = Vocab::full();
        let _ = v.id(&global_text(Ty::F64, 123456));
    }

    #[test]
    fn ids_round_trip() {
        let v = Vocab::full();
        for id in 0..v.len() as u32 {
            assert_eq!(v.id(v.text(id)), id);
        }
    }

    #[test]
    fn instruction_texts_are_in_vocab() {
        let v = Vocab::full();
        let samples = vec![
            Instr::new(Opcode::Add, Ty::I64, vec![Operand::ConstInt(1), Operand::ConstInt(2)]),
            Instr::new(Opcode::Gep { elem_size: 8 }, Ty::Ptr, vec![]),
            Instr::new(Opcode::Alloca { elem: Ty::F32, count: 4 }, Ty::Ptr, vec![]),
            Instr::new(Opcode::Call { callee: "anything".into() }, Ty::I32, vec![]),
            Instr::new(Opcode::Icmp(irnuma_ir::IntPred::Sge), Ty::I1, vec![]),
            Instr::new(Opcode::Cast(irnuma_ir::CastKind::SiToFp), Ty::F64, vec![]),
            Instr::new(Opcode::Store, Ty::Void, vec![]),
            Instr::new(Opcode::Phi, Ty::F64, vec![]),
        ];
        for i in samples {
            let t = instr_text(&i);
            let _ = v.id(&t); // must not panic
        }
    }

    #[test]
    fn gep_sizes_and_callees_collapse() {
        let a = Instr::new(Opcode::Gep { elem_size: 4 }, Ty::Ptr, vec![]);
        let b = Instr::new(Opcode::Gep { elem_size: 8 }, Ty::Ptr, vec![]);
        assert_eq!(instr_text(&a), instr_text(&b), "payload does not leak into vocab");
        let c = Instr::new(Opcode::Call { callee: "f".into() }, Ty::Void, vec![]);
        let d = Instr::new(Opcode::Call { callee: "g".into() }, Ty::Void, vec![]);
        assert_eq!(instr_text(&c), instr_text(&d));
    }

    #[test]
    fn deserialized_vocab_can_rebuild_index() {
        let v = Vocab::full();
        let s = serde_json::to_string(&v).unwrap();
        let mut v2: Vocab = serde_json::from_str(&s).unwrap();
        v2.rebuild_index();
        assert_eq!(v2.id("add.i64"), v.id("add.i64"));
    }
}
