//! Control-flow analyses shared by the verifier and the optimization passes:
//! predecessor maps, reachability, reverse postorder, dominator trees
//! (Cooper–Harvey–Kennedy), and natural-loop detection.

use crate::function::{BlockId, Function};
use std::collections::HashMap;

/// Predecessors of every block (indexed by block id).
pub fn predecessors(f: &Function) -> Vec<Vec<BlockId>> {
    let mut preds = vec![Vec::new(); f.blocks.len()];
    for (bid, _) in f.iter_blocks() {
        for succ in f.successors(bid) {
            preds[succ.index()].push(bid);
        }
    }
    preds
}

/// Blocks reachable from the entry, as a bitset indexed by block id.
pub fn reachable(f: &Function) -> Vec<bool> {
    let mut seen = vec![false; f.blocks.len()];
    if f.blocks.is_empty() {
        return seen;
    }
    let mut stack = vec![f.entry()];
    seen[f.entry().index()] = true;
    while let Some(b) = stack.pop() {
        for s in f.successors(b) {
            if !seen[s.index()] {
                seen[s.index()] = true;
                stack.push(s);
            }
        }
    }
    seen
}

/// Reverse postorder over reachable blocks, starting at the entry.
pub fn reverse_postorder(f: &Function) -> Vec<BlockId> {
    let mut visited = vec![false; f.blocks.len()];
    let mut post = Vec::with_capacity(f.blocks.len());
    if f.blocks.is_empty() {
        return post;
    }
    // Iterative DFS with an explicit phase marker to produce postorder.
    enum Phase {
        Enter(BlockId),
        Exit(BlockId),
    }
    let mut stack = vec![Phase::Enter(f.entry())];
    while let Some(ph) = stack.pop() {
        match ph {
            Phase::Enter(b) => {
                if visited[b.index()] {
                    continue;
                }
                visited[b.index()] = true;
                stack.push(Phase::Exit(b));
                // Push successors in reverse so the first successor is
                // visited first (stable, LLVM-like ordering).
                for s in f.successors(b).into_iter().rev() {
                    if !visited[s.index()] {
                        stack.push(Phase::Enter(s));
                    }
                }
            }
            Phase::Exit(b) => post.push(b),
        }
    }
    post.reverse();
    post
}

/// Dominator tree computed with the Cooper–Harvey–Kennedy iterative
/// algorithm. Unreachable blocks have no dominator entry.
#[derive(Debug, Clone)]
pub struct DomTree {
    /// Immediate dominator per block (`idom[entry] == entry`); `None` for
    /// unreachable blocks.
    pub idom: Vec<Option<BlockId>>,
    rpo_index: Vec<usize>,
}

impl DomTree {
    pub fn compute(f: &Function) -> DomTree {
        let rpo = reverse_postorder(f);
        let mut rpo_index = vec![usize::MAX; f.blocks.len()];
        for (i, b) in rpo.iter().enumerate() {
            rpo_index[b.index()] = i;
        }
        let preds = predecessors(f);
        let mut idom: Vec<Option<BlockId>> = vec![None; f.blocks.len()];
        if f.blocks.is_empty() {
            return DomTree { idom, rpo_index };
        }
        let entry = f.entry();
        idom[entry.index()] = Some(entry);

        let intersect =
            |idom: &[Option<BlockId>], rpo_index: &[usize], mut a: BlockId, mut b: BlockId| {
                while a != b {
                    while rpo_index[a.index()] > rpo_index[b.index()] {
                        a = idom[a.index()].expect("processed block has idom");
                    }
                    while rpo_index[b.index()] > rpo_index[a.index()] {
                        b = idom[b.index()].expect("processed block has idom");
                    }
                }
                a
            };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[b.index()] {
                    if idom[p.index()].is_none() {
                        continue; // unprocessed or unreachable
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_index, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        DomTree { idom, rpo_index }
    }

    /// Does block `a` dominate block `b`? (Reflexive; false if either is
    /// unreachable.)
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.idom[a.index()].is_none() || self.idom[b.index()].is_none() {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            let id = self.idom[cur.index()].expect("reachable");
            if id == cur {
                return false; // reached entry
            }
            cur = id;
        }
    }

    /// RPO index of a block (`usize::MAX` if unreachable).
    pub fn rpo_index(&self, b: BlockId) -> usize {
        self.rpo_index[b.index()]
    }

    /// Children lists of the dominator tree (entry is the root; unreachable
    /// blocks have no parent and appear in no list).
    pub fn children(&self) -> Vec<Vec<BlockId>> {
        let mut out = vec![Vec::new(); self.idom.len()];
        for (i, id) in self.idom.iter().enumerate() {
            if let Some(p) = id {
                if p.index() != i {
                    out[p.index()].push(BlockId(i as u32));
                }
            }
        }
        out
    }
}

/// Dominance frontiers (Cytron et al.): `df[b]` is the set of blocks where
/// `b`'s dominance ends — exactly where SSA construction places phis.
pub fn dominance_frontiers(f: &Function, dom: &DomTree) -> Vec<Vec<BlockId>> {
    let preds = predecessors(f);
    let mut df: Vec<Vec<BlockId>> = vec![Vec::new(); f.blocks.len()];
    for (b, _) in f.iter_blocks() {
        if preds[b.index()].len() < 2 || dom.idom[b.index()].is_none() {
            continue;
        }
        let idom_b = dom.idom[b.index()].expect("reachable join");
        for &p in &preds[b.index()] {
            if dom.idom[p.index()].is_none() {
                continue; // unreachable predecessor
            }
            let mut runner = p;
            while runner != idom_b {
                if !df[runner.index()].contains(&b) {
                    df[runner.index()].push(b);
                }
                let next = dom.idom[runner.index()].expect("reachable");
                if next == runner {
                    break; // reached entry
                }
                runner = next;
            }
        }
    }
    df
}

/// A natural loop: header + member blocks (including the header).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaturalLoop {
    pub header: BlockId,
    /// All blocks in the loop body, sorted by id (header included).
    pub blocks: Vec<BlockId>,
    /// Latch blocks (sources of back edges into the header).
    pub latches: Vec<BlockId>,
}

impl NaturalLoop {
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.binary_search(&b).is_ok()
    }
}

/// Find all natural loops: for each back edge `latch -> header` (where the
/// header dominates the latch), collect the set of blocks that can reach the
/// latch without passing through the header. Back edges sharing a header are
/// merged into one loop (LLVM semantics).
pub fn natural_loops(f: &Function) -> Vec<NaturalLoop> {
    let dom = DomTree::compute(f);
    let preds = predecessors(f);
    let mut by_header: HashMap<BlockId, (Vec<BlockId>, Vec<bool>)> = HashMap::new();

    for (bid, _) in f.iter_blocks() {
        for succ in f.successors(bid) {
            if dom.dominates(succ, bid) {
                // back edge bid -> succ
                let entry = by_header
                    .entry(succ)
                    .or_insert_with(|| (Vec::new(), vec![false; f.blocks.len()]));
                entry.0.push(bid);
                let in_loop = &mut entry.1;
                in_loop[succ.index()] = true;
                let mut stack = vec![bid];
                while let Some(b) = stack.pop() {
                    if in_loop[b.index()] {
                        continue;
                    }
                    in_loop[b.index()] = true;
                    for &p in &preds[b.index()] {
                        stack.push(p);
                    }
                }
            }
        }
    }

    let mut loops: Vec<NaturalLoop> = by_header
        .into_iter()
        .map(|(header, (latches, in_loop))| {
            let blocks: Vec<BlockId> = in_loop
                .iter()
                .enumerate()
                .filter(|&(_, &x)| x)
                .map(|(i, _)| BlockId(i as u32))
                .collect();
            NaturalLoop { header, blocks, latches }
        })
        .collect();
    loops.sort_by_key(|l| l.header);
    loops
}

/// Loop nesting depth of every block (0 = not in any loop).
pub fn loop_depths(f: &Function) -> Vec<u32> {
    let loops = natural_loops(f);
    let mut depth = vec![0u32; f.blocks.len()];
    for l in &loops {
        for &b in &l.blocks {
            depth[b.index()] += 1;
        }
    }
    depth
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{iconst, FunctionBuilder};
    use crate::function::FunctionKind;
    use crate::instr::IntPred;
    use crate::types::Ty;

    /// Diamond: entry -> {a, b} -> join -> ret
    fn diamond() -> Function {
        let mut b = FunctionBuilder::new("d", vec![Ty::I64], Ty::Void, FunctionKind::Normal);
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        let c = b.icmp(IntPred::Slt, b.arg(0), iconst(10));
        b.cond_br(c, t, e);
        b.switch_to(t);
        b.br(j);
        b.switch_to(e);
        b.br(j);
        b.switch_to(j);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn diamond_dominators() {
        let f = diamond();
        let dom = DomTree::compute(&f);
        let (entry, t, e, j) = (BlockId(0), BlockId(1), BlockId(2), BlockId(3));
        assert_eq!(dom.idom[t.index()], Some(entry));
        assert_eq!(dom.idom[e.index()], Some(entry));
        assert_eq!(dom.idom[j.index()], Some(entry), "join's idom skips the arms");
        assert!(dom.dominates(entry, j));
        assert!(!dom.dominates(t, j));
        assert!(dom.dominates(j, j), "dominance is reflexive");
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable() {
        let f = diamond();
        let rpo = reverse_postorder(&f);
        assert_eq!(rpo[0], f.entry());
        assert_eq!(rpo.len(), 4);
        // every block before its successors-only-reachable-through-it: join last
        assert_eq!(*rpo.last().unwrap(), BlockId(3));
    }

    #[test]
    fn unreachable_blocks_are_excluded() {
        let mut f = diamond();
        let dead = f.add_block();
        f.push_instr(dead, crate::instr::Instr::new(crate::instr::Opcode::Ret, Ty::Void, vec![]));
        let r = reachable(&f);
        assert!(!r[dead.index()]);
        let dom = DomTree::compute(&f);
        assert_eq!(dom.idom[dead.index()], None);
        assert!(!dom.dominates(f.entry(), dead));
    }

    #[test]
    fn single_loop_detected() {
        let mut b = FunctionBuilder::new("l", vec![Ty::I64], Ty::Void, FunctionKind::Normal);
        b.counted_loop(iconst(0), b.arg(0), iconst(1), |_, _| {});
        b.ret(None);
        let f = b.finish();
        let loops = natural_loops(&f);
        assert_eq!(loops.len(), 1);
        let l = &loops[0];
        assert_eq!(l.header, BlockId(1));
        assert!(l.contains(BlockId(1)) && l.contains(BlockId(2)));
        assert!(!l.contains(BlockId(0)) && !l.contains(BlockId(3)));
        assert_eq!(l.latches, vec![BlockId(2)]);
    }

    #[test]
    fn nested_loop_depths() {
        let mut b = FunctionBuilder::new("n", vec![], Ty::Void, FunctionKind::Normal);
        b.counted_loop(iconst(0), iconst(8), iconst(1), |b, _| {
            b.counted_loop(iconst(0), iconst(8), iconst(1), |_, _| {});
        });
        b.ret(None);
        let f = b.finish();
        let loops = natural_loops(&f);
        assert_eq!(loops.len(), 2);
        let depths = loop_depths(&f);
        assert_eq!(*depths.iter().max().unwrap(), 2, "inner body has depth 2");
        assert_eq!(depths[f.entry().index()], 0);
    }

    #[test]
    fn dominance_frontier_of_diamond_arms_is_the_join() {
        let f = diamond();
        let dom = DomTree::compute(&f);
        let df = dominance_frontiers(&f, &dom);
        // Arms t (bb1) and e (bb2) stop dominating at the join (bb3).
        assert_eq!(df[1], vec![BlockId(3)]);
        assert_eq!(df[2], vec![BlockId(3)]);
        // Entry dominates everything: empty frontier.
        assert!(df[0].is_empty());
        assert!(df[3].is_empty());
    }

    #[test]
    fn loop_header_is_in_its_own_frontier() {
        let mut b = FunctionBuilder::new("l", vec![Ty::I64], Ty::Void, FunctionKind::Normal);
        b.counted_loop(iconst(0), b.arg(0), iconst(1), |_, _| {});
        b.ret(None);
        let f = b.finish();
        let dom = DomTree::compute(&f);
        let df = dominance_frontiers(&f, &dom);
        let header = BlockId(1);
        assert!(df[header.index()].contains(&header), "back edge puts the header in its own DF");
    }

    #[test]
    fn dom_tree_children_cover_reachable_blocks() {
        let f = diamond();
        let dom = DomTree::compute(&f);
        let ch = dom.children();
        assert_eq!(ch[0].len(), 3, "entry immediately dominates t, e, join");
        let total: usize = ch.iter().map(Vec::len).sum();
        assert_eq!(total, 3, "every non-entry reachable block appears once");
    }

    #[test]
    fn predecessors_are_exact() {
        let f = diamond();
        let p = predecessors(&f);
        assert_eq!(p[3], vec![BlockId(1), BlockId(2)]);
        assert!(p[0].is_empty());
    }
}
