//! Ergonomic construction of functions.
//!
//! The workload suite (`irnuma-workloads`) emits dozens of OpenMP-region
//! bodies; [`FunctionBuilder`] keeps that code readable: it tracks a current
//! insertion block, offers one helper per opcode, and provides a
//! [`FunctionBuilder::counted_loop`] combinator that builds the canonical
//! `for (i = lo; i < hi; i += step)` CFG with its induction phi — the same
//! shape Clang emits for OpenMP worksharing loops.

use crate::function::{BlockId, Function, FunctionKind};
use crate::instr::{CastKind, FloatPred, Instr, InstrId, IntPred, Opcode, Operand, RmwOp};
use crate::module::GlobalId;
use crate::types::Ty;

/// Builder for a single [`Function`].
///
/// ```
/// use irnuma_ir::builder::{iconst, FunctionBuilder};
/// use irnuma_ir::{verify_function, FunctionKind, Ty};
///
/// let mut b = FunctionBuilder::new("double_sum", vec![Ty::I64], Ty::I64, FunctionKind::Normal);
/// let acc = b.alloca(Ty::I64, 1);
/// b.store(iconst(0), acc);
/// b.counted_loop(iconst(0), b.arg(0), iconst(1), |b, i| {
///     let cur = b.load(Ty::I64, acc);
///     let next = b.add(Ty::I64, cur, i);
///     b.store(next, acc);
/// });
/// let total = b.load(Ty::I64, acc);
/// let doubled = b.mul(Ty::I64, total, iconst(2));
/// b.ret(Some(doubled));
/// let f = b.finish();
/// verify_function(&f).unwrap();
/// ```
pub struct FunctionBuilder {
    func: Function,
    cur: BlockId,
}

impl FunctionBuilder {
    /// Start building a function of the given kind. The insertion point is
    /// the entry block.
    pub fn new(name: impl Into<String>, params: Vec<Ty>, ret: Ty, kind: FunctionKind) -> Self {
        assert_ne!(kind, FunctionKind::Declaration, "declarations have no body to build");
        let func = Function::new(name, params, ret, kind);
        let cur = func.entry();
        FunctionBuilder { func, cur }
    }

    /// The `i`-th parameter as an operand.
    pub fn arg(&self, i: usize) -> Operand {
        assert!(i < self.func.params.len(), "argument index out of range");
        Operand::Arg(i as u32)
    }

    /// Create a new block (does not move the insertion point).
    pub fn new_block(&mut self) -> BlockId {
        self.func.add_block()
    }

    /// Move the insertion point.
    pub fn switch_to(&mut self, b: BlockId) {
        self.cur = b;
    }

    /// Current insertion block.
    pub fn current(&self) -> BlockId {
        self.cur
    }

    /// Append a raw instruction at the insertion point.
    pub fn push(&mut self, instr: Instr) -> InstrId {
        self.func.push_instr(self.cur, instr)
    }

    fn value(&mut self, op: Opcode, ty: Ty, operands: Vec<Operand>) -> Operand {
        Operand::Instr(self.push(Instr::new(op, ty, operands)))
    }

    // ---- arithmetic -----------------------------------------------------

    pub fn binop(&mut self, op: Opcode, ty: Ty, a: Operand, b: Operand) -> Operand {
        assert!(op.is_binary(), "binop requires a binary opcode, got {op}");
        self.value(op, ty, vec![a, b])
    }

    pub fn add(&mut self, ty: Ty, a: Operand, b: Operand) -> Operand {
        self.binop(Opcode::Add, ty, a, b)
    }

    pub fn sub(&mut self, ty: Ty, a: Operand, b: Operand) -> Operand {
        self.binop(Opcode::Sub, ty, a, b)
    }

    pub fn mul(&mut self, ty: Ty, a: Operand, b: Operand) -> Operand {
        self.binop(Opcode::Mul, ty, a, b)
    }

    pub fn sdiv(&mut self, ty: Ty, a: Operand, b: Operand) -> Operand {
        self.binop(Opcode::SDiv, ty, a, b)
    }

    pub fn srem(&mut self, ty: Ty, a: Operand, b: Operand) -> Operand {
        self.binop(Opcode::SRem, ty, a, b)
    }

    pub fn fadd(&mut self, ty: Ty, a: Operand, b: Operand) -> Operand {
        self.binop(Opcode::FAdd, ty, a, b)
    }

    pub fn fsub(&mut self, ty: Ty, a: Operand, b: Operand) -> Operand {
        self.binop(Opcode::FSub, ty, a, b)
    }

    pub fn fmul(&mut self, ty: Ty, a: Operand, b: Operand) -> Operand {
        self.binop(Opcode::FMul, ty, a, b)
    }

    pub fn fdiv(&mut self, ty: Ty, a: Operand, b: Operand) -> Operand {
        self.binop(Opcode::FDiv, ty, a, b)
    }

    pub fn and(&mut self, ty: Ty, a: Operand, b: Operand) -> Operand {
        self.binop(Opcode::And, ty, a, b)
    }

    pub fn xor(&mut self, ty: Ty, a: Operand, b: Operand) -> Operand {
        self.binop(Opcode::Xor, ty, a, b)
    }

    pub fn shl(&mut self, ty: Ty, a: Operand, b: Operand) -> Operand {
        self.binop(Opcode::Shl, ty, a, b)
    }

    pub fn lshr(&mut self, ty: Ty, a: Operand, b: Operand) -> Operand {
        self.binop(Opcode::LShr, ty, a, b)
    }

    /// Fused multiply-add `a*b + c`.
    pub fn fmuladd(&mut self, ty: Ty, a: Operand, b: Operand, c: Operand) -> Operand {
        self.value(Opcode::FMulAdd, ty, vec![a, b, c])
    }

    pub fn icmp(&mut self, pred: IntPred, a: Operand, b: Operand) -> Operand {
        self.value(Opcode::Icmp(pred), Ty::I1, vec![a, b])
    }

    pub fn fcmp(&mut self, pred: FloatPred, a: Operand, b: Operand) -> Operand {
        self.value(Opcode::Fcmp(pred), Ty::I1, vec![a, b])
    }

    pub fn select(&mut self, ty: Ty, cond: Operand, a: Operand, b: Operand) -> Operand {
        self.value(Opcode::Select, ty, vec![cond, a, b])
    }

    pub fn cast(&mut self, kind: CastKind, to: Ty, v: Operand) -> Operand {
        self.value(Opcode::Cast(kind), to, vec![v])
    }

    // ---- memory ---------------------------------------------------------

    pub fn alloca(&mut self, elem: Ty, count: u64) -> Operand {
        self.value(Opcode::Alloca { elem, count }, Ty::Ptr, vec![])
    }

    /// Address of a global.
    pub fn global(&self, id: GlobalId) -> Operand {
        Operand::Global(id)
    }

    /// `base + index * size_of(elem)`.
    pub fn gep(&mut self, elem: Ty, base: Operand, index: Operand) -> Operand {
        self.value(Opcode::Gep { elem_size: elem.size_bytes() }, Ty::Ptr, vec![base, index])
    }

    pub fn load(&mut self, ty: Ty, ptr: Operand) -> Operand {
        self.value(Opcode::Load, ty, vec![ptr])
    }

    pub fn store(&mut self, val: Operand, ptr: Operand) {
        self.push(Instr::new(Opcode::Store, Ty::Void, vec![val, ptr]));
    }

    pub fn atomic_rmw(&mut self, op: RmwOp, ty: Ty, ptr: Operand, val: Operand) -> Operand {
        self.value(Opcode::AtomicRmw(op), ty, vec![ptr, val])
    }

    // ---- calls & control flow -------------------------------------------

    pub fn call(&mut self, callee: impl Into<String>, ret: Ty, args: Vec<Operand>) -> Operand {
        self.value(Opcode::Call { callee: callee.into() }, ret, args)
    }

    /// Void call (no usable result).
    pub fn call_void(&mut self, callee: impl Into<String>, args: Vec<Operand>) {
        self.push(Instr::new(Opcode::Call { callee: callee.into() }, Ty::Void, args));
    }

    pub fn br(&mut self, target: BlockId) {
        self.push(Instr::new(Opcode::Br, Ty::Void, vec![Operand::Block(target)]));
    }

    pub fn cond_br(&mut self, cond: Operand, then_b: BlockId, else_b: BlockId) {
        self.push(Instr::new(
            Opcode::CondBr,
            Ty::Void,
            vec![cond, Operand::Block(then_b), Operand::Block(else_b)],
        ));
    }

    pub fn ret(&mut self, v: Option<Operand>) {
        let ops = v.into_iter().collect();
        self.push(Instr::new(Opcode::Ret, Ty::Void, ops));
    }

    /// Insert a phi at the *front* of the current block (phis must precede
    /// non-phi instructions). `incomings` are `(pred_block, value)` pairs.
    pub fn phi(&mut self, ty: Ty, incomings: &[(BlockId, Operand)]) -> Operand {
        let mut ops = Vec::with_capacity(incomings.len() * 2);
        for &(b, v) in incomings {
            ops.push(Operand::Block(b));
            ops.push(v);
        }
        let id = self.func.alloc_instr(Instr::new(Opcode::Phi, ty, ops));
        // Place after any existing phis but before the first non-phi.
        let pos = {
            let blk = &self.func.blocks[self.cur.index()];
            blk.instrs
                .iter()
                .position(|&i| !matches!(self.func.instrs[i.index()].op, Opcode::Phi))
                .unwrap_or(blk.instrs.len())
        };
        self.func.blocks[self.cur.index()].instrs.insert(pos, id);
        Operand::Instr(id)
    }

    /// Add an incoming `(block, value)` pair to an existing phi.
    pub fn phi_add_incoming(&mut self, phi: Operand, block: BlockId, v: Operand) {
        let id = phi.as_instr().expect("phi operand must be an instruction");
        let instr = self.func.instr_mut(id);
        assert!(matches!(instr.op, Opcode::Phi), "not a phi");
        instr.operands.push(Operand::Block(block));
        instr.operands.push(v);
    }

    /// Build a canonical counted loop:
    ///
    /// ```text
    ///   <current>: br header
    ///   header:   i = phi [lo, <current>], [i.next, latch*]
    ///             c = icmp slt i, hi
    ///             condbr c, body, exit
    ///   body:     ... emitted by `body(b, i)`; must NOT terminate ...
    ///   (latch)   i.next = add i, step
    ///             br header
    ///   exit:     <- insertion point on return
    /// ```
    ///
    /// `body` may create extra blocks; whichever block is current when it
    /// returns becomes the latch. Returns the induction variable.
    pub fn counted_loop(
        &mut self,
        lo: Operand,
        hi: Operand,
        step: Operand,
        body: impl FnOnce(&mut Self, Operand),
    ) -> Operand {
        let preheader = self.cur;
        let header = self.new_block();
        let body_b = self.new_block();
        let exit = self.new_block();

        self.br(header);
        self.switch_to(header);
        let iv = self.phi(Ty::I64, &[(preheader, lo)]);
        let cond = self.icmp(IntPred::Slt, iv, hi);
        self.cond_br(cond, body_b, exit);

        self.switch_to(body_b);
        body(self, iv);
        let latch = self.cur;
        let next = self.add(Ty::I64, iv, step);
        self.br(header);
        self.phi_add_incoming(iv, latch, next);

        self.switch_to(exit);
        iv
    }

    /// Finish and return the function.
    pub fn finish(self) -> Function {
        self.func
    }
}

/// Shorthand for an integer immediate operand.
pub fn iconst(v: i64) -> Operand {
    Operand::ConstInt(v)
}

/// Shorthand for a float immediate operand.
pub fn fconst(v: f64) -> Operand {
    Operand::float(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_function;

    #[test]
    fn straight_line_function_verifies() {
        let mut b =
            FunctionBuilder::new("f", vec![Ty::I64, Ty::I64], Ty::I64, FunctionKind::Normal);
        let s = b.add(Ty::I64, b.arg(0), b.arg(1));
        let m = b.mul(Ty::I64, s, iconst(3));
        b.ret(Some(m));
        let f = b.finish();
        verify_function(&f).expect("verifies");
        assert_eq!(f.num_attached(), 3);
    }

    #[test]
    fn counted_loop_shape() {
        let mut b = FunctionBuilder::new(
            "loop",
            vec![Ty::Ptr, Ty::I64],
            Ty::Void,
            FunctionKind::OmpOutlined,
        );
        let base = b.arg(0);
        let n = b.arg(1);
        b.counted_loop(iconst(0), n, iconst(1), |b, i| {
            let p = b.gep(Ty::F64, base, i);
            let v = b.load(Ty::F64, p);
            let v2 = b.fmul(Ty::F64, v, fconst(2.0));
            b.store(v2, p);
        });
        b.ret(None);
        let f = b.finish();
        verify_function(&f).expect("loop verifies");
        // entry + header + body + exit
        assert_eq!(f.blocks.len(), 4);
        // header has a phi with two incomings
        let header = BlockId(1);
        let phi_id = f.blocks[header.index()].instrs[0];
        assert!(matches!(f.instr(phi_id).op, Opcode::Phi));
        assert_eq!(f.instr(phi_id).phi_incomings().count(), 2);
    }

    #[test]
    fn nested_loops_verify() {
        let mut b =
            FunctionBuilder::new("nest", vec![Ty::Ptr], Ty::Void, FunctionKind::OmpOutlined);
        let base = b.arg(0);
        b.counted_loop(iconst(0), iconst(16), iconst(1), |b, i| {
            b.counted_loop(iconst(0), iconst(16), iconst(1), |b, j| {
                let idx = b.mul(Ty::I64, i, iconst(16));
                let idx = b.add(Ty::I64, idx, j);
                let p = b.gep(Ty::F64, base, idx);
                let v = b.load(Ty::F64, p);
                let v = b.fadd(Ty::F64, v, fconst(1.0));
                b.store(v, p);
            });
        });
        b.ret(None);
        let f = b.finish();
        verify_function(&f).expect("nested loops verify");
        assert_eq!(f.blocks.len(), 7);
    }

    #[test]
    #[should_panic(expected = "binop requires a binary opcode")]
    fn binop_rejects_non_binary() {
        let mut b = FunctionBuilder::new("f", vec![], Ty::Void, FunctionKind::Normal);
        b.binop(Opcode::Select, Ty::I64, iconst(0), iconst(1));
    }

    #[test]
    fn phi_is_inserted_before_non_phis() {
        let mut b = FunctionBuilder::new("f", vec![], Ty::I64, FunctionKind::Normal);
        let e = b.current();
        let x = b.add(Ty::I64, iconst(1), iconst(2));
        let p = b.phi(Ty::I64, &[(e, x)]);
        let f_ref = &b.func;
        // The phi must sit at index 0 even though it was added after `x`...
        // wait: a phi after an add in the same block is malformed SSA, but
        // the builder's placement rule is what we test here.
        let first = f_ref.blocks[e.index()].instrs[0];
        assert!(matches!(f_ref.instr(first).op, Opcode::Phi));
        let _ = p;
    }
}
