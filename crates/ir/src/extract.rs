//! Region extraction — the `llvm-extract` equivalent (paper step B).
//!
//! The paper extracts each OpenMP outlined function into a small standalone
//! IR file before graph construction, so that "analyzing unrelated
//! instructions" does not add noise. [`extract_region`] does the same: it
//! clones the named function, every function it (transitively) calls that is
//! defined in the module, declarations for the rest, and every global any of
//! them references — renumbering global ids for the new, smaller module.

use crate::function::Function;
use crate::instr::{Opcode, Operand};
use crate::module::{GlobalId, Module};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// Error returned when the requested region does not exist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownRegion(pub String);

impl std::fmt::Display for UnknownRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "no function named @{} in module", self.0)
    }
}

impl std::error::Error for UnknownRegion {}

/// Extract `region` (plus transitive callees and referenced globals) into a
/// fresh standalone module named `<module>.<region>`.
pub fn extract_region(m: &Module, region: &str) -> Result<Module, UnknownRegion> {
    let _span = irnuma_obs::span!("ir.extract", region = region);
    if m.function(region).is_none() {
        return Err(UnknownRegion(region.to_string()));
    }

    // BFS over the call graph starting from the region.
    let mut keep: BTreeSet<String> = BTreeSet::new();
    let mut queue: VecDeque<String> = VecDeque::new();
    keep.insert(region.to_string());
    queue.push_back(region.to_string());
    while let Some(name) = queue.pop_front() {
        let Some(f) = m.function(&name) else { continue };
        for (_, _, id) in f.iter_attached() {
            if let Opcode::Call { callee } = &f.instr(id).op {
                if keep.insert(callee.clone()) {
                    queue.push_back(callee.clone());
                }
            }
        }
    }

    // Collect referenced globals (in deterministic id order).
    let mut used_globals: BTreeSet<GlobalId> = BTreeSet::new();
    for name in &keep {
        let Some(f) = m.function(name) else { continue };
        for (_, _, id) in f.iter_attached() {
            for op in &f.instr(id).operands {
                if let Operand::Global(g) = *op {
                    used_globals.insert(g);
                }
            }
        }
    }

    let mut out = Module::new(format!("{}.{}", m.name, region));
    let mut gmap: HashMap<GlobalId, GlobalId> = HashMap::new();
    for g in &used_globals {
        let old = m.global(*g);
        let new = out.add_global(old.name.clone(), old.elem, old.count);
        gmap.insert(*g, new);
    }

    // Clone kept functions in original module order (region first is not
    // required; order follows the source module for determinism). Callees
    // that exist in the source module are cloned; calls to runtime
    // intrinsics need no definition.
    for f in &m.functions {
        if !keep.contains(&f.name) {
            continue;
        }
        let mut nf: Function = f.clone();
        for instr in &mut nf.instrs {
            for op in &mut instr.operands {
                if let Operand::Global(g) = *op {
                    *op = Operand::Global(gmap[&g]);
                }
            }
        }
        out.add_function(nf);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{iconst, FunctionBuilder};
    use crate::function::FunctionKind;
    use crate::types::Ty;
    use crate::verify::verify_module;

    fn two_region_module() -> Module {
        let mut m = Module::new("app");
        let a = m.add_global("a", Ty::F64, 100);
        let bglob = m.add_global("b", Ty::F64, 200);
        let c = m.add_global("c", Ty::I32, 50);

        // helper called by region 1 only
        let mut h = FunctionBuilder::new("helper", vec![Ty::I64], Ty::F64, FunctionKind::Normal);
        let p = h.gep(Ty::F64, Operand::Global(bglob), h.arg(0));
        let v = h.load(Ty::F64, p);
        h.ret(Some(v));
        m.add_function(h.finish());

        let mut r1 = FunctionBuilder::new(
            ".omp_outlined.r1",
            vec![Ty::I64],
            Ty::Void,
            FunctionKind::OmpOutlined,
        );
        let x = r1.call("helper", Ty::F64, vec![r1.arg(0)]);
        let pa = r1.gep(Ty::F64, Operand::Global(a), r1.arg(0));
        r1.store(x, pa);
        r1.ret(None);
        m.add_function(r1.finish());

        let mut r2 = FunctionBuilder::new(
            ".omp_outlined.r2",
            vec![Ty::I64],
            Ty::Void,
            FunctionKind::OmpOutlined,
        );
        let pc = r2.gep(Ty::I32, Operand::Global(c), r2.arg(0));
        let v = r2.load(Ty::I32, pc);
        let v2 = r2.add(Ty::I32, v, iconst(1));
        r2.store(v2, pc);
        r2.ret(None);
        m.add_function(r2.finish());
        m
    }

    #[test]
    fn extraction_pulls_transitive_callees_and_globals() {
        let m = two_region_module();
        let e = extract_region(&m, ".omp_outlined.r1").expect("exists");
        verify_module(&e).expect("extracted module verifies");
        assert!(e.function(".omp_outlined.r1").is_some());
        assert!(e.function("helper").is_some(), "transitive callee kept");
        assert!(e.function(".omp_outlined.r2").is_none(), "unrelated region dropped");
        assert!(e.global_by_name("a").is_some());
        assert!(e.global_by_name("b").is_some(), "global used by callee kept");
        assert!(e.global_by_name("c").is_none(), "unused global dropped");
        assert_eq!(e.name, "app..omp_outlined.r1");
    }

    #[test]
    fn global_ids_are_remapped() {
        let m = two_region_module();
        let e = extract_region(&m, ".omp_outlined.r2").expect("exists");
        verify_module(&e).expect("verifies");
        // r2 only uses `c`, which was GlobalId(2) in the source and must be
        // GlobalId(0) here; the gep must point at it.
        assert_eq!(e.globals.len(), 1);
        assert_eq!(e.globals[0].name, "c");
        let f = e.function(".omp_outlined.r2").unwrap();
        let uses_g0 = f
            .iter_attached()
            .any(|(_, _, id)| f.instr(id).operands.contains(&Operand::Global(GlobalId(0))));
        assert!(uses_g0);
    }

    #[test]
    fn unknown_region_errors() {
        let m = two_region_module();
        let err = extract_region(&m, "nope").unwrap_err();
        assert_eq!(err.0, "nope");
    }

    #[test]
    fn extraction_is_idempotent() {
        let m = two_region_module();
        let e1 = extract_region(&m, ".omp_outlined.r1").unwrap();
        let e2 = extract_region(&e1, ".omp_outlined.r1").unwrap();
        assert_eq!(e1.globals, e2.globals);
        assert_eq!(e1.functions.len(), e2.functions.len());
    }
}
