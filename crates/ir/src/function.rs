//! Functions and basic blocks.

use crate::instr::{Instr, InstrId, Operand};
use crate::types::Ty;
use serde::{Deserialize, Serialize};

/// Index of a basic block within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockId(pub u32);

impl BlockId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A basic block: an ordered list of instruction ids. The verifier enforces
/// that the list ends with exactly one terminator and contains none earlier.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Block {
    pub instrs: Vec<InstrId>,
}

/// What role a function plays in the module; mirrors how the paper treats
/// LLVM functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FunctionKind {
    /// Ordinary function with a body.
    Normal,
    /// OpenMP outlined parallel region (`.omp_outlined.` in LLVM); the unit
    /// the paper extracts, graphs, and optimizes.
    OmpOutlined,
    /// Body-less declaration (e.g. OpenMP runtime entry points); calls to
    /// these are opaque to the optimizer.
    Declaration,
}

/// A function: signature + instruction arena + basic blocks.
///
/// Block 0 is always the entry block. Instructions are arena-allocated and
/// never physically removed; detaching an id from every block's list erases
/// it logically (the printer, verifier and analyses only look at attached
/// instructions).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Function {
    pub name: String,
    pub params: Vec<Ty>,
    pub ret: Ty,
    pub kind: FunctionKind,
    pub blocks: Vec<Block>,
    pub instrs: Vec<Instr>,
}

impl Function {
    /// Create an empty function with one (empty) entry block.
    pub fn new(name: impl Into<String>, params: Vec<Ty>, ret: Ty, kind: FunctionKind) -> Self {
        let blocks =
            if kind == FunctionKind::Declaration { Vec::new() } else { vec![Block::default()] };
        Function { name: name.into(), params, ret, kind, blocks, instrs: Vec::new() }
    }

    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    pub fn is_declaration(&self) -> bool {
        self.kind == FunctionKind::Declaration
    }

    /// Append a new empty block, returning its id.
    pub fn add_block(&mut self) -> BlockId {
        self.blocks.push(Block::default());
        BlockId((self.blocks.len() - 1) as u32)
    }

    /// Allocate an instruction in the arena *without* attaching it to a block.
    pub fn alloc_instr(&mut self, instr: Instr) -> InstrId {
        self.instrs.push(instr);
        InstrId((self.instrs.len() - 1) as u32)
    }

    /// Allocate and append an instruction to the end of `block`.
    pub fn push_instr(&mut self, block: BlockId, instr: Instr) -> InstrId {
        let id = self.alloc_instr(instr);
        self.blocks[block.index()].instrs.push(id);
        id
    }

    pub fn instr(&self, id: InstrId) -> &Instr {
        &self.instrs[id.index()]
    }

    pub fn instr_mut(&mut self, id: InstrId) -> &mut Instr {
        &mut self.instrs[id.index()]
    }

    /// The terminator of `block`, if the block is non-empty and properly
    /// terminated.
    pub fn terminator(&self, block: BlockId) -> Option<InstrId> {
        let last = *self.blocks[block.index()].instrs.last()?;
        self.instr(last).op.is_terminator().then_some(last)
    }

    /// Successor blocks of `block` (empty for `ret`-terminated blocks).
    pub fn successors(&self, block: BlockId) -> Vec<BlockId> {
        match self.terminator(block) {
            Some(t) => self.instr(t).successors(),
            None => Vec::new(),
        }
    }

    /// Iterate `(BlockId, &Block)` in layout order.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks.iter().enumerate().map(|(i, b)| (BlockId(i as u32), b))
    }

    /// Iterate over all attached instructions as `(block, position, id)`.
    pub fn iter_attached(&self) -> impl Iterator<Item = (BlockId, usize, InstrId)> + '_ {
        self.iter_blocks()
            .flat_map(|(bid, b)| b.instrs.iter().enumerate().map(move |(pos, &id)| (bid, pos, id)))
    }

    /// Number of attached instructions.
    pub fn num_attached(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len()).sum()
    }

    /// The block containing `id`, if attached.
    pub fn block_of(&self, id: InstrId) -> Option<BlockId> {
        self.iter_attached().find(|&(_, _, i)| i == id).map(|(b, _, _)| b)
    }

    /// Replace every use of instruction `from` (as an operand) with `to`.
    pub fn replace_all_uses(&mut self, from: InstrId, to: Operand) {
        for instr in &mut self.instrs {
            for op in &mut instr.operands {
                if *op == Operand::Instr(from) {
                    *op = to;
                }
            }
        }
    }

    /// Detach `id` from whichever block holds it. Returns true if it was
    /// attached. The arena slot survives (ids stay stable).
    pub fn detach(&mut self, id: InstrId) -> bool {
        for b in &mut self.blocks {
            if let Some(pos) = b.instrs.iter().position(|&i| i == id) {
                b.instrs.remove(pos);
                return true;
            }
        }
        false
    }

    /// Count the uses of `id` among attached instructions.
    pub fn count_uses(&self, id: InstrId) -> usize {
        self.iter_attached()
            .map(|(_, _, i)| {
                self.instr(i).operands.iter().filter(|o| **o == Operand::Instr(id)).count()
            })
            .sum()
    }

    /// Rewrite all block-label operands `from` → `to` (used by CFG
    /// simplification when redirecting edges).
    pub fn replace_block_refs(&mut self, from: BlockId, to: BlockId) {
        for instr in &mut self.instrs {
            for op in &mut instr.operands {
                if *op == Operand::Block(from) {
                    *op = Operand::Block(to);
                }
            }
        }
    }

    /// Compact the instruction arena: drop detached instructions and renumber
    /// the attached ones in layout order. Also drops unreachable blocks'
    /// instructions if `reachable_only` lists the blocks to keep (in the new
    /// order). Returns nothing; ids are rewritten in place.
    ///
    /// Passes call this at pipeline end so serialized modules stay small.
    pub fn compact(&mut self) {
        let mut new_instrs = Vec::with_capacity(self.num_attached());
        let mut remap = vec![None::<InstrId>; self.instrs.len()];
        // First pass: assign new ids in layout order.
        for (_, _, id) in self.iter_attached() {
            if remap[id.index()].is_none() {
                remap[id.index()] = Some(InstrId(new_instrs.len() as u32));
                new_instrs.push(self.instrs[id.index()].clone());
            }
        }
        // Second pass: rewrite operand references and block lists.
        for instr in &mut new_instrs {
            for op in &mut instr.operands {
                if let Operand::Instr(old) = *op {
                    *op = Operand::Instr(
                        remap[old.index()].expect("operand refers to detached instruction"),
                    );
                }
            }
        }
        for b in &mut self.blocks {
            for id in &mut b.instrs {
                *id = remap[id.index()].expect("attached instruction must be remapped");
            }
        }
        self.instrs = new_instrs;
    }

    /// Drop empty non-entry blocks and renumber the rest, rewriting all
    /// block-label operands. Callers must ensure no attached instruction
    /// still references a dropped block (true once unreachable blocks have
    /// been cleared and their phi incomings removed).
    pub fn compact_blocks(&mut self) {
        let keep: Vec<bool> =
            self.blocks.iter().enumerate().map(|(i, b)| i == 0 || !b.instrs.is_empty()).collect();
        if keep.iter().all(|&k| k) {
            return;
        }
        let mut remap = vec![None::<BlockId>; self.blocks.len()];
        let mut new_blocks = Vec::with_capacity(self.blocks.len());
        for (i, b) in self.blocks.iter().enumerate() {
            if keep[i] {
                remap[i] = Some(BlockId(new_blocks.len() as u32));
                new_blocks.push(b.clone());
            }
        }
        for instr in &mut self.instrs {
            for op in &mut instr.operands {
                if let Operand::Block(b) = *op {
                    *op = Operand::Block(
                        remap[b.index()].expect("reference to dropped (empty) block"),
                    );
                }
            }
        }
        self.blocks = new_blocks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{Opcode, Operand};

    fn add_const(f: &mut Function, b: BlockId, a: i64, c: i64) -> InstrId {
        f.push_instr(
            b,
            Instr::new(Opcode::Add, Ty::I64, vec![Operand::ConstInt(a), Operand::ConstInt(c)]),
        )
    }

    #[test]
    fn entry_block_exists() {
        let f = Function::new("f", vec![Ty::I64], Ty::Void, FunctionKind::Normal);
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.entry(), BlockId(0));
    }

    #[test]
    fn declarations_have_no_blocks() {
        let f = Function::new("ext", vec![], Ty::Void, FunctionKind::Declaration);
        assert!(f.is_declaration());
        assert!(f.blocks.is_empty());
    }

    #[test]
    fn push_attach_detach() {
        let mut f = Function::new("f", vec![], Ty::Void, FunctionKind::Normal);
        let e = f.entry();
        let i = add_const(&mut f, e, 1, 2);
        assert_eq!(f.num_attached(), 1);
        assert_eq!(f.block_of(i), Some(e));
        assert!(f.detach(i));
        assert_eq!(f.num_attached(), 0);
        assert!(!f.detach(i), "double detach is a no-op");
        assert_eq!(f.block_of(i), None);
    }

    #[test]
    fn replace_all_uses_rewrites_operands() {
        let mut f = Function::new("f", vec![], Ty::Void, FunctionKind::Normal);
        let e = f.entry();
        let a = add_const(&mut f, e, 1, 2);
        let b = f.push_instr(
            e,
            Instr::new(Opcode::Mul, Ty::I64, vec![Operand::Instr(a), Operand::Instr(a)]),
        );
        assert_eq!(f.count_uses(a), 2);
        f.replace_all_uses(a, Operand::ConstInt(3));
        assert_eq!(f.count_uses(a), 0);
        assert_eq!(f.instr(b).operands, vec![Operand::ConstInt(3), Operand::ConstInt(3)]);
    }

    #[test]
    fn successors_follow_terminators() {
        let mut f = Function::new("f", vec![], Ty::Void, FunctionKind::Normal);
        let e = f.entry();
        let b1 = f.add_block();
        let b2 = f.add_block();
        let cond = f.push_instr(
            e,
            Instr::new(
                Opcode::Icmp(crate::instr::IntPred::Eq),
                Ty::I1,
                vec![Operand::ConstInt(0), Operand::ConstInt(0)],
            ),
        );
        f.push_instr(
            e,
            Instr::new(
                Opcode::CondBr,
                Ty::Void,
                vec![Operand::Instr(cond), Operand::Block(b1), Operand::Block(b2)],
            ),
        );
        f.push_instr(b1, Instr::new(Opcode::Ret, Ty::Void, vec![]));
        f.push_instr(b2, Instr::new(Opcode::Ret, Ty::Void, vec![]));
        assert_eq!(f.successors(e), vec![b1, b2]);
        assert!(f.successors(b1).is_empty());
        assert!(f.terminator(e).is_some());
    }

    #[test]
    fn compact_renumbers_and_drops_detached() {
        let mut f = Function::new("f", vec![], Ty::Void, FunctionKind::Normal);
        let e = f.entry();
        let a = add_const(&mut f, e, 1, 2);
        let dead = add_const(&mut f, e, 9, 9);
        let m = f.push_instr(
            e,
            Instr::new(Opcode::Mul, Ty::I64, vec![Operand::Instr(a), Operand::ConstInt(4)]),
        );
        f.push_instr(e, Instr::new(Opcode::Ret, Ty::Void, vec![]));
        f.detach(dead);
        assert_eq!(f.instrs.len(), 4);
        f.compact();
        assert_eq!(f.instrs.len(), 3, "detached instr dropped");
        // `m` was arena slot 2; after compaction the mul is slot 1 and its
        // operand refers to the re-numbered add at slot 0.
        let _ = m;
        assert_eq!(f.instr(InstrId(1)).op, Opcode::Mul);
        assert_eq!(f.instr(InstrId(1)).operands[0], Operand::Instr(InstrId(0)));
    }

    #[test]
    fn replace_block_refs_redirects_branches() {
        let mut f = Function::new("f", vec![], Ty::Void, FunctionKind::Normal);
        let e = f.entry();
        let b1 = f.add_block();
        let b2 = f.add_block();
        f.push_instr(e, Instr::new(Opcode::Br, Ty::Void, vec![Operand::Block(b1)]));
        f.push_instr(b1, Instr::new(Opcode::Ret, Ty::Void, vec![]));
        f.push_instr(b2, Instr::new(Opcode::Ret, Ty::Void, vec![]));
        f.replace_block_refs(b1, b2);
        assert_eq!(f.successors(e), vec![b2]);
    }
}
