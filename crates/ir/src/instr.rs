//! Instructions, opcodes, and operands.
//!
//! Instructions live in a per-function arena ([`crate::Function::instrs`])
//! and are referenced by [`InstrId`]. Basic blocks hold ordered lists of
//! `InstrId`s; an instruction not referenced by any block is *detached*
//! (the moral equivalent of an erased LLVM instruction) and is skipped by
//! the printer and the verifier.

use crate::types::Ty;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of an instruction in its function's arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct InstrId(pub u32);

impl InstrId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Integer comparison predicate (subset of LLVM `icmp`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IntPred {
    Eq,
    Ne,
    Slt,
    Sle,
    Sgt,
    Sge,
}

impl IntPred {
    pub fn keyword(self) -> &'static str {
        match self {
            IntPred::Eq => "eq",
            IntPred::Ne => "ne",
            IntPred::Slt => "slt",
            IntPred::Sle => "sle",
            IntPred::Sgt => "sgt",
            IntPred::Sge => "sge",
        }
    }

    pub fn from_keyword(s: &str) -> Option<Self> {
        Some(match s {
            "eq" => IntPred::Eq,
            "ne" => IntPred::Ne,
            "slt" => IntPred::Slt,
            "sle" => IntPred::Sle,
            "sgt" => IntPred::Sgt,
            "sge" => IntPred::Sge,
            _ => return None,
        })
    }

    /// Evaluate the predicate on two signed integers.
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            IntPred::Eq => a == b,
            IntPred::Ne => a != b,
            IntPred::Slt => a < b,
            IntPred::Sle => a <= b,
            IntPred::Sgt => a > b,
            IntPred::Sge => a >= b,
        }
    }

    /// The predicate with swapped operand order (`a P b == b P.swapped() a`).
    pub fn swapped(self) -> Self {
        match self {
            IntPred::Eq => IntPred::Eq,
            IntPred::Ne => IntPred::Ne,
            IntPred::Slt => IntPred::Sgt,
            IntPred::Sle => IntPred::Sge,
            IntPred::Sgt => IntPred::Slt,
            IntPred::Sge => IntPred::Sle,
        }
    }
}

/// Floating-point comparison predicate (ordered subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FloatPred {
    Oeq,
    One,
    Olt,
    Ole,
    Ogt,
    Oge,
}

impl FloatPred {
    pub fn keyword(self) -> &'static str {
        match self {
            FloatPred::Oeq => "oeq",
            FloatPred::One => "one",
            FloatPred::Olt => "olt",
            FloatPred::Ole => "ole",
            FloatPred::Ogt => "ogt",
            FloatPred::Oge => "oge",
        }
    }

    pub fn from_keyword(s: &str) -> Option<Self> {
        Some(match s {
            "oeq" => FloatPred::Oeq,
            "one" => FloatPred::One,
            "olt" => FloatPred::Olt,
            "ole" => FloatPred::Ole,
            "ogt" => FloatPred::Ogt,
            "oge" => FloatPred::Oge,
            _ => return None,
        })
    }

    /// Evaluate the ordered predicate (false if either operand is NaN).
    pub fn eval(self, a: f64, b: f64) -> bool {
        if a.is_nan() || b.is_nan() {
            return false;
        }
        match self {
            FloatPred::Oeq => a == b,
            FloatPred::One => a != b,
            FloatPred::Olt => a < b,
            FloatPred::Ole => a <= b,
            FloatPred::Ogt => a > b,
            FloatPred::Oge => a >= b,
        }
    }
}

/// Cast kinds (subset of LLVM cast instructions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CastKind {
    /// Integer truncation to a narrower integer type.
    Trunc,
    /// Zero extension to a wider integer type.
    Zext,
    /// Sign extension to a wider integer type.
    Sext,
    /// Float → signed integer.
    FpToSi,
    /// Signed integer → float.
    SiToFp,
    /// Float precision change (f32 ⇄ f64).
    FpCast,
    /// Reinterpret bits (same size).
    Bitcast,
}

impl CastKind {
    pub fn keyword(self) -> &'static str {
        match self {
            CastKind::Trunc => "trunc",
            CastKind::Zext => "zext",
            CastKind::Sext => "sext",
            CastKind::FpToSi => "fptosi",
            CastKind::SiToFp => "sitofp",
            CastKind::FpCast => "fpcast",
            CastKind::Bitcast => "bitcast",
        }
    }

    pub fn from_keyword(s: &str) -> Option<Self> {
        Some(match s {
            "trunc" => CastKind::Trunc,
            "zext" => CastKind::Zext,
            "sext" => CastKind::Sext,
            "fptosi" => CastKind::FpToSi,
            "sitofp" => CastKind::SiToFp,
            "fpcast" => CastKind::FpCast,
            "bitcast" => CastKind::Bitcast,
            _ => return None,
        })
    }
}

/// Atomic read-modify-write operation kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RmwOp {
    Add,
    Min,
    Max,
    Xchg,
}

impl RmwOp {
    pub fn keyword(self) -> &'static str {
        match self {
            RmwOp::Add => "add",
            RmwOp::Min => "min",
            RmwOp::Max => "max",
            RmwOp::Xchg => "xchg",
        }
    }

    pub fn from_keyword(s: &str) -> Option<Self> {
        Some(match s {
            "add" => RmwOp::Add,
            "min" => RmwOp::Min,
            "max" => RmwOp::Max,
            "xchg" => RmwOp::Xchg,
            _ => return None,
        })
    }
}

/// An operand of an instruction.
///
/// Constants are immediate operands (as in LLVM) rather than instructions;
/// the graph builder in `irnuma-graph` materializes them as constant nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// Result of another instruction in the same function.
    Instr(InstrId),
    /// Function parameter, by index.
    Arg(u32),
    /// Integer immediate (type inferred from the using instruction).
    ConstInt(i64),
    /// Float immediate, stored as IEEE-754 bits so operands are `Eq + Hash`.
    ConstFloat(u64),
    /// Address of a module global.
    Global(crate::module::GlobalId),
    /// Basic-block label (branch targets, phi incoming blocks).
    Block(crate::function::BlockId),
}

impl Operand {
    /// Build a float immediate from an `f64`.
    pub fn float(v: f64) -> Operand {
        Operand::ConstFloat(v.to_bits())
    }

    /// The float value of a `ConstFloat` operand.
    pub fn as_float(self) -> Option<f64> {
        match self {
            Operand::ConstFloat(bits) => Some(f64::from_bits(bits)),
            _ => None,
        }
    }

    pub fn as_int(self) -> Option<i64> {
        match self {
            Operand::ConstInt(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_instr(self) -> Option<InstrId> {
        match self {
            Operand::Instr(id) => Some(id),
            _ => None,
        }
    }

    pub fn as_block(self) -> Option<crate::function::BlockId> {
        match self {
            Operand::Block(b) => Some(b),
            _ => None,
        }
    }

    /// Whether the operand is a compile-time constant.
    pub fn is_const(self) -> bool {
        matches!(self, Operand::ConstInt(_) | Operand::ConstFloat(_))
    }
}

/// Instruction opcode. Payload-free data (operands) lives in
/// [`Instr::operands`]; structural payloads (callee name, predicates, cast
/// kinds, alloca shape) live here because they are part of the operation's
/// identity, which keeps CSE and the printer simple.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Opcode {
    // Integer arithmetic (operands: lhs, rhs).
    Add,
    Sub,
    Mul,
    SDiv,
    SRem,
    // Float arithmetic.
    FAdd,
    FSub,
    FMul,
    FDiv,
    // Bitwise / shifts.
    And,
    Or,
    Xor,
    Shl,
    LShr,
    AShr,
    /// Fused multiply-add `a*b + c` (models `llvm.fma`); 3 operands.
    FMulAdd,
    /// Integer compare; result `i1`.
    Icmp(IntPred),
    /// Ordered float compare; result `i1`.
    Fcmp(FloatPred),
    /// Stack allocation of `count` elements of type `elem`; result `ptr`.
    Alloca {
        elem: Ty,
        count: u64,
    },
    /// Load through operand 0 (a pointer); result type is the instr type.
    Load,
    /// Store operand 0 to pointer operand 1; no result.
    Store,
    /// Address arithmetic: `base + index * elem_size` (operands: base, index).
    Gep {
        elem_size: u64,
    },
    /// Atomic read-modify-write on pointer operand 0 with operand 1.
    AtomicRmw(RmwOp),
    /// Unconditional branch to block operand 0.
    Br,
    /// Conditional branch: cond, then-block, else-block.
    CondBr,
    /// Return; zero or one value operand.
    Ret,
    /// SSA phi: operands alternate (block, value) pairs.
    Phi,
    /// Direct call to a named function; operands are arguments.
    Call {
        callee: String,
    },
    /// `cond ? a : b` (operands: cond, a, b).
    Select,
    /// Type cast of operand 0.
    Cast(CastKind),
}

impl Opcode {
    /// Whether this opcode terminates a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(self, Opcode::Br | Opcode::CondBr | Opcode::Ret)
    }

    /// Whether the instruction reads or writes memory (or otherwise has side
    /// effects), i.e. must not be removed by DCE when its value is unused
    /// and must not be CSE'd / hoisted freely.
    pub fn has_side_effects(&self) -> bool {
        matches!(self, Opcode::Store | Opcode::AtomicRmw(_) | Opcode::Call { .. })
            || self.is_terminator()
    }

    /// Whether the instruction reads memory (loads are pure but
    /// order-sensitive with respect to stores).
    pub fn reads_memory(&self) -> bool {
        matches!(self, Opcode::Load | Opcode::AtomicRmw(_) | Opcode::Call { .. })
    }

    /// Whether two instructions with this opcode and identical operands
    /// compute identical values (candidates for CSE / GVN).
    pub fn is_pure(&self) -> bool {
        !self.has_side_effects()
            && !self.reads_memory()
            && !matches!(self, Opcode::Phi | Opcode::Alloca { .. })
    }

    /// Whether the binary operation is commutative.
    pub fn is_commutative(&self) -> bool {
        matches!(
            self,
            Opcode::Add
                | Opcode::Mul
                | Opcode::FAdd
                | Opcode::FMul
                | Opcode::And
                | Opcode::Or
                | Opcode::Xor
        )
    }

    /// Whether this is a binary arithmetic/bitwise operation.
    pub fn is_binary(&self) -> bool {
        matches!(
            self,
            Opcode::Add
                | Opcode::Sub
                | Opcode::Mul
                | Opcode::SDiv
                | Opcode::SRem
                | Opcode::FAdd
                | Opcode::FSub
                | Opcode::FMul
                | Opcode::FDiv
                | Opcode::And
                | Opcode::Or
                | Opcode::Xor
                | Opcode::Shl
                | Opcode::LShr
                | Opcode::AShr
        )
    }

    /// Mnemonic used by the printer and the graph node vocabulary.
    pub fn mnemonic(&self) -> String {
        match self {
            Opcode::Add => "add".into(),
            Opcode::Sub => "sub".into(),
            Opcode::Mul => "mul".into(),
            Opcode::SDiv => "sdiv".into(),
            Opcode::SRem => "srem".into(),
            Opcode::FAdd => "fadd".into(),
            Opcode::FSub => "fsub".into(),
            Opcode::FMul => "fmul".into(),
            Opcode::FDiv => "fdiv".into(),
            Opcode::And => "and".into(),
            Opcode::Or => "or".into(),
            Opcode::Xor => "xor".into(),
            Opcode::Shl => "shl".into(),
            Opcode::LShr => "lshr".into(),
            Opcode::AShr => "ashr".into(),
            Opcode::FMulAdd => "fmuladd".into(),
            Opcode::Icmp(p) => format!("icmp.{}", p.keyword()),
            Opcode::Fcmp(p) => format!("fcmp.{}", p.keyword()),
            Opcode::Alloca { .. } => "alloca".into(),
            Opcode::Load => "load".into(),
            Opcode::Store => "store".into(),
            Opcode::Gep { .. } => "gep".into(),
            Opcode::AtomicRmw(op) => format!("atomicrmw.{}", op.keyword()),
            Opcode::Br => "br".into(),
            Opcode::CondBr => "condbr".into(),
            Opcode::Ret => "ret".into(),
            Opcode::Phi => "phi".into(),
            Opcode::Call { .. } => "call".into(),
            Opcode::Select => "select".into(),
            Opcode::Cast(k) => k.keyword().into(),
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.mnemonic())
    }
}

/// A single instruction: opcode + result type + operand list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instr {
    pub op: Opcode,
    /// Result type (`Void` for stores/branches).
    pub ty: Ty,
    pub operands: Vec<Operand>,
}

impl Instr {
    pub fn new(op: Opcode, ty: Ty, operands: Vec<Operand>) -> Self {
        Instr { op, ty, operands }
    }

    /// Iterate over operands that are instruction results.
    pub fn instr_operands(&self) -> impl Iterator<Item = InstrId> + '_ {
        self.operands.iter().filter_map(|o| o.as_instr())
    }

    /// Iterate over phi incomings as `(block, value)` pairs.
    /// Panics if called on a non-phi.
    pub fn phi_incomings(&self) -> impl Iterator<Item = (crate::function::BlockId, Operand)> + '_ {
        assert!(matches!(self.op, Opcode::Phi), "phi_incomings on non-phi");
        self.operands.chunks(2).map(|c| {
            let b = c[0].as_block().expect("phi incoming block");
            (b, c[1])
        })
    }

    /// Successor blocks if this is a terminator.
    pub fn successors(&self) -> Vec<crate::function::BlockId> {
        match self.op {
            Opcode::Br => vec![self.operands[0].as_block().expect("br target")],
            Opcode::CondBr => vec![
                self.operands[1].as_block().expect("condbr then"),
                self.operands[2].as_block().expect("condbr else"),
            ],
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates_evaluate() {
        assert!(IntPred::Slt.eval(-3, 2));
        assert!(!IntPred::Sgt.eval(-3, 2));
        assert!(IntPred::Eq.eval(7, 7));
        assert!(FloatPred::Olt.eval(1.0, 2.0));
        assert!(!FloatPred::Oeq.eval(f64::NAN, f64::NAN));
        assert!(!FloatPred::One.eval(f64::NAN, 1.0), "ordered preds are false on NaN");
    }

    #[test]
    fn swapped_predicate_is_consistent() {
        let pairs = [(3i64, 5i64), (5, 3), (4, 4), (-1, 1)];
        for p in [IntPred::Eq, IntPred::Ne, IntPred::Slt, IntPred::Sle, IntPred::Sgt, IntPred::Sge]
        {
            for (a, b) in pairs {
                assert_eq!(p.eval(a, b), p.swapped().eval(b, a), "{p:?} {a} {b}");
            }
        }
    }

    #[test]
    fn opcode_classification() {
        assert!(Opcode::Br.is_terminator());
        assert!(Opcode::Ret.is_terminator());
        assert!(!Opcode::Add.is_terminator());
        assert!(Opcode::Store.has_side_effects());
        assert!(!Opcode::Load.has_side_effects());
        assert!(Opcode::Load.reads_memory());
        assert!(Opcode::Add.is_pure());
        assert!(!Opcode::Load.is_pure());
        assert!(!Opcode::Phi.is_pure());
        assert!(!Opcode::Alloca { elem: Ty::I32, count: 1 }.is_pure());
        assert!(Opcode::Add.is_commutative());
        assert!(!Opcode::Sub.is_commutative());
        assert!(Opcode::Shl.is_binary());
        assert!(!Opcode::Select.is_binary());
    }

    #[test]
    fn float_operand_round_trips_bits() {
        let v = -1234.5678e-9;
        assert_eq!(Operand::float(v).as_float(), Some(v));
        // NaN payloads are preserved because we store raw bits.
        let nan = f64::from_bits(0x7ff8_0000_0000_1234);
        assert_eq!(Operand::float(nan).as_float().map(f64::to_bits), Some(nan.to_bits()));
    }

    #[test]
    fn successors_of_terminators() {
        use crate::function::BlockId;
        let br = Instr::new(Opcode::Br, Ty::Void, vec![Operand::Block(BlockId(3))]);
        assert_eq!(br.successors(), vec![BlockId(3)]);
        let cbr = Instr::new(
            Opcode::CondBr,
            Ty::Void,
            vec![Operand::ConstInt(1), Operand::Block(BlockId(1)), Operand::Block(BlockId(2))],
        );
        assert_eq!(cbr.successors(), vec![BlockId(1), BlockId(2)]);
        let add =
            Instr::new(Opcode::Add, Ty::I64, vec![Operand::ConstInt(1), Operand::ConstInt(2)]);
        assert!(add.successors().is_empty());
    }

    #[test]
    fn keyword_round_trips() {
        for p in [IntPred::Eq, IntPred::Ne, IntPred::Slt, IntPred::Sle, IntPred::Sgt, IntPred::Sge]
        {
            assert_eq!(IntPred::from_keyword(p.keyword()), Some(p));
        }
        for p in [
            FloatPred::Oeq,
            FloatPred::One,
            FloatPred::Olt,
            FloatPred::Ole,
            FloatPred::Ogt,
            FloatPred::Oge,
        ] {
            assert_eq!(FloatPred::from_keyword(p.keyword()), Some(p));
        }
        for c in [
            CastKind::Trunc,
            CastKind::Zext,
            CastKind::Sext,
            CastKind::FpToSi,
            CastKind::SiToFp,
            CastKind::FpCast,
            CastKind::Bitcast,
        ] {
            assert_eq!(CastKind::from_keyword(c.keyword()), Some(c));
        }
        for r in [RmwOp::Add, RmwOp::Min, RmwOp::Max, RmwOp::Xchg] {
            assert_eq!(RmwOp::from_keyword(r.keyword()), Some(r));
        }
    }
}
