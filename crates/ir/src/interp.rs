//! A reference interpreter for the IR.
//!
//! Its purpose is *differential testing of the optimizer*: an IR module and
//! its optimized form must produce identical observable behaviour (final
//! global memory, return value) when executed under the same inputs. The
//! pass pipeline is exercised this way in
//! `crates/passes/tests/differential.rs`, the same technique compiler
//! projects use against miscompilation.
//!
//! Semantics:
//! * integers are two's-complement with wrapping arithmetic (as the folder
//!   assumes); division by zero is a trap ([`TrapKind::DivByZero`]);
//! * floats are IEEE-754 `f64`/`f32` with the host's operations —
//!   identical to what constant folding computes, so optimized and
//!   unoptimized runs agree bit-for-bit;
//! * memory is byte-addressed per object (globals zero-initialized or
//!   caller-seeded, allocas per activation); out-of-bounds accesses trap;
//! * the OpenMP runtime surface is modeled for a single logical thread:
//!   `omp_get_thread_num`/`omp_get_num_threads` return configured values,
//!   barriers are no-ops, atomics execute non-atomically (one thread);
//! * a configurable step limit bounds runaway loops ([`TrapKind::StepLimit`]).

use crate::function::{BlockId, Function};
use crate::instr::{CastKind, Opcode, Operand, RmwOp};
use crate::module::{GlobalId, Module};
use crate::types::Ty;
use std::fmt;

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    I(i64),
    F(f64),
    /// Pointer: object handle + byte offset.
    P(MemRef),
}

/// A pointer target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    pub object: ObjectId,
    pub offset: i64,
}

/// Handle of a memory object (global or alloca).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjectId {
    Global(u32),
    Alloca(u32),
}

impl Value {
    fn as_i(self) -> Result<i64, TrapKind> {
        match self {
            Value::I(v) => Ok(v),
            _ => Err(TrapKind::TypeConfusion),
        }
    }

    fn as_f(self) -> Result<f64, TrapKind> {
        match self {
            Value::F(v) => Ok(v),
            _ => Err(TrapKind::TypeConfusion),
        }
    }

    fn as_p(self) -> Result<MemRef, TrapKind> {
        match self {
            Value::P(p) => Ok(p),
            _ => Err(TrapKind::TypeConfusion),
        }
    }

    fn truthy(self) -> Result<bool, TrapKind> {
        Ok(self.as_i()? != 0)
    }
}

/// Why execution stopped abnormally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrapKind {
    DivByZero,
    OutOfBounds,
    StepLimit,
    UnknownFunction(String),
    TypeConfusion,
    ShiftOutOfRange,
}

/// A trap with context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trap {
    pub kind: TrapKind,
    pub function: String,
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trap in @{}: {:?}", self.function, self.kind)
    }
}

impl std::error::Error for Trap {}

/// Interpreter configuration.
#[derive(Debug, Clone, Copy)]
pub struct InterpConfig {
    /// Value returned by `omp_get_thread_num`.
    pub thread_num: i64,
    /// Value returned by `omp_get_num_threads`.
    pub num_threads: i64,
    /// Maximum executed instructions before [`TrapKind::StepLimit`].
    pub step_limit: u64,
}

impl Default for InterpConfig {
    fn default() -> Self {
        InterpConfig { thread_num: 1, num_threads: 4, step_limit: 2_000_000 }
    }
}

/// Result of a completed execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecOutcome {
    pub ret: Option<Value>,
    pub steps: u64,
}

/// The machine: module + memory.
///
/// ```
/// use irnuma_ir::{parse_module, Interp, InterpConfig, Value};
///
/// let m = parse_module(
///     "module \"demo\"\nfunc @inc(i64) -> i64 {\nbb0:\n  %0 = add i64 %a0, 1\n  ret %0\n}\n",
/// ).unwrap();
/// let mut interp = Interp::new(&m, InterpConfig::default());
/// let out = interp.call("inc", &[Value::I(41)]).unwrap();
/// assert_eq!(out.ret, Some(Value::I(42)));
/// ```
pub struct Interp<'m> {
    module: &'m Module,
    cfg: InterpConfig,
    globals: Vec<Vec<u8>>,
    allocas: Vec<Vec<u8>>,
    steps: u64,
}

impl<'m> Interp<'m> {
    /// Create an interpreter with zero-initialized globals.
    pub fn new(module: &'m Module, cfg: InterpConfig) -> Interp<'m> {
        let globals = module.globals.iter().map(|g| vec![0u8; g.size_bytes() as usize]).collect();
        Interp { module, cfg, globals, allocas: Vec::new(), steps: 0 }
    }

    /// Deterministically seed every global with a pattern derived from
    /// `seed` (so loads observe non-trivial data). Integer-element globals
    /// receive small non-negative values — safe as indices after masking.
    pub fn seed_globals(&mut self, seed: u64) {
        for (gi, g) in self.module.globals.iter().enumerate() {
            let elem = g.elem;
            let esz = elem.size_bytes() as usize;
            if esz == 0 {
                continue;
            }
            let n = self.globals[gi].len() / esz;
            for e in 0..n {
                let h = splitmix(seed ^ (gi as u64) << 32 ^ e as u64);
                let bytes: Vec<u8> = match elem {
                    Ty::F64 => {
                        let v = (h % 1000) as f64 / 250.0 - 2.0;
                        v.to_le_bytes().to_vec()
                    }
                    Ty::F32 => {
                        let v = ((h % 1000) as f32 / 250.0) - 2.0;
                        v.to_le_bytes().to_vec()
                    }
                    Ty::I64 | Ty::Ptr => ((h % 251) as i64).to_le_bytes().to_vec(),
                    Ty::I32 => ((h % 251) as i32).to_le_bytes().to_vec(),
                    Ty::I1 => vec![(h & 1) as u8],
                    Ty::Void => unreachable!(),
                };
                let off = e * esz;
                self.globals[gi][off..off + esz].copy_from_slice(&bytes);
            }
        }
    }

    /// A stable digest of all global memory (for differential comparison).
    pub fn memory_digest(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for g in &self.globals {
            for &b in g {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        }
        h
    }

    /// Execute `function` with `args`. Consumes interpreter steps; memory
    /// persists across calls (run a region twice to model two invocations).
    pub fn call(&mut self, function: &str, args: &[Value]) -> Result<ExecOutcome, Trap> {
        let start_steps = self.steps;
        let ret = self
            .exec_function(function, args)
            .map_err(|kind| Trap { kind, function: function.to_string() })?;
        Ok(ExecOutcome { ret, steps: self.steps - start_steps })
    }

    fn exec_function(&mut self, name: &str, args: &[Value]) -> Result<Option<Value>, TrapKind> {
        if let Some(v) = self.try_intrinsic(name, args)? {
            return Ok(v);
        }
        let f = self
            .module
            .function(name)
            .ok_or_else(|| TrapKind::UnknownFunction(name.to_string()))?;
        if f.is_declaration() {
            return Err(TrapKind::UnknownFunction(name.to_string()));
        }
        // SSA register file for this activation (dense: InstrId-indexed).
        let mut regs: Vec<Option<Value>> = vec![None; f.instrs.len()];
        let mut block = f.entry();
        let mut prev: Option<BlockId> = None;

        'blocks: loop {
            // Phis read their incoming values as a parallel copy.
            let phi_ids: Vec<_> = f.blocks[block.index()]
                .instrs
                .iter()
                .copied()
                .take_while(|&i| matches!(f.instr(i).op, Opcode::Phi))
                .collect();
            if !phi_ids.is_empty() {
                let pred = prev.ok_or(TrapKind::TypeConfusion)?;
                let mut staged = Vec::with_capacity(phi_ids.len());
                for &id in &phi_ids {
                    let instr = f.instr(id);
                    let mut found = None;
                    for (b, v) in instr.phi_incomings() {
                        if b == pred {
                            found = Some(self.operand(f, &regs, v, args)?);
                        }
                    }
                    staged.push((id.0, found.ok_or(TrapKind::TypeConfusion)?));
                }
                for (id, v) in staged {
                    regs[id as usize] = Some(v);
                }
            }

            for (pos, &id) in f.blocks[block.index()].instrs.iter().enumerate() {
                let instr = f.instr(id);
                if matches!(instr.op, Opcode::Phi) {
                    continue; // handled above
                }
                self.steps += 1;
                if self.steps > self.cfg.step_limit {
                    return Err(TrapKind::StepLimit);
                }
                let _ = pos;
                match &instr.op {
                    Opcode::Br => {
                        prev = Some(block);
                        block = instr.operands[0].as_block().unwrap();
                        continue 'blocks;
                    }
                    Opcode::CondBr => {
                        let c = self.operand(f, &regs, instr.operands[0], args)?.truthy()?;
                        prev = Some(block);
                        block = instr.operands[1 + usize::from(!c)].as_block().unwrap();
                        continue 'blocks;
                    }
                    Opcode::Ret => {
                        return Ok(match instr.operands.first() {
                            Some(&op) => Some(self.operand(f, &regs, op, args)?),
                            None => None,
                        });
                    }
                    _ => {
                        let v = self.exec_instr(f, &regs, id.0, instr, args)?;
                        if let Some(v) = v {
                            regs[id.0 as usize] = Some(v);
                        }
                    }
                }
            }
            // Verified functions always end blocks with terminators.
            return Err(TrapKind::TypeConfusion);
        }
    }

    fn operand(
        &self,
        _f: &Function,
        regs: &[Option<Value>],
        op: Operand,
        args: &[Value],
    ) -> Result<Value, TrapKind> {
        Ok(match op {
            Operand::Instr(id) => {
                regs.get(id.0 as usize).copied().flatten().ok_or(TrapKind::TypeConfusion)?
            }
            Operand::Arg(i) => *args.get(i as usize).ok_or(TrapKind::TypeConfusion)?,
            Operand::ConstInt(v) => Value::I(v),
            Operand::ConstFloat(bits) => Value::F(f64::from_bits(bits)),
            Operand::Global(g) => Value::P(MemRef { object: ObjectId::Global(g.0), offset: 0 }),
            Operand::Block(_) => return Err(TrapKind::TypeConfusion),
        })
    }

    fn exec_instr(
        &mut self,
        f: &Function,
        regs: &[Option<Value>],
        _id: u32,
        instr: &crate::instr::Instr,
        args: &[Value],
    ) -> Result<Option<Value>, TrapKind> {
        let op = |i: usize| self.operand(f, regs, instr.operands[i], args);
        let v = match &instr.op {
            Opcode::Add
            | Opcode::Sub
            | Opcode::Mul
            | Opcode::SDiv
            | Opcode::SRem
            | Opcode::And
            | Opcode::Or
            | Opcode::Xor
            | Opcode::Shl
            | Opcode::LShr
            | Opcode::AShr => {
                let a = op(0)?.as_i()?;
                let b = op(1)?.as_i()?;
                Value::I(int_binop(&instr.op, a, b, instr.ty)?)
            }
            Opcode::FAdd | Opcode::FSub | Opcode::FMul | Opcode::FDiv => {
                let a = op(0)?.as_f()?;
                let b = op(1)?.as_f()?;
                let r = match instr.op {
                    Opcode::FAdd => a + b,
                    Opcode::FSub => a - b,
                    Opcode::FMul => a * b,
                    _ => a / b,
                };
                Value::F(round_to(instr.ty, r))
            }
            Opcode::FMulAdd => {
                let (a, b, c) = (op(0)?.as_f()?, op(1)?.as_f()?, op(2)?.as_f()?);
                Value::F(round_to(instr.ty, a * b + c))
            }
            Opcode::Icmp(p) => Value::I(p.eval(op(0)?.as_i()?, op(1)?.as_i()?) as i64),
            Opcode::Fcmp(p) => Value::I(p.eval(op(0)?.as_f()?, op(1)?.as_f()?) as i64),
            Opcode::Select => {
                if op(0)?.truthy()? {
                    op(1)?
                } else {
                    op(2)?
                }
            }
            Opcode::Cast(kind) => cast(*kind, instr.ty, op(0)?)?,
            Opcode::Alloca { elem, count } => {
                self.allocas.push(vec![0u8; (elem.size_bytes() * count) as usize]);
                Value::P(MemRef {
                    object: ObjectId::Alloca((self.allocas.len() - 1) as u32),
                    offset: 0,
                })
            }
            Opcode::Gep { elem_size } => {
                let base = op(0)?.as_p()?;
                let idx = op(1)?.as_i()?;
                Value::P(MemRef {
                    object: base.object,
                    offset: base.offset + idx * *elem_size as i64,
                })
            }
            Opcode::Load => {
                let p = op(0)?.as_p()?;
                self.load(p, instr.ty)?
            }
            Opcode::Store => {
                let val = op(0)?;
                let p = op(1)?.as_p()?;
                self.store(p, val)?;
                return Ok(None);
            }
            Opcode::AtomicRmw(rmw) => {
                // Single-threaded semantics: read, modify, write; yields old.
                let p = op(0)?.as_p()?; // operand 0 = ptr
                let arg = op(1)?;
                let old = self.load(p, instr.ty)?;
                let new = match (rmw, old, arg) {
                    (RmwOp::Add, Value::I(a), Value::I(b)) => {
                        Value::I(instr.ty.wrap_int(a as i128 + b as i128))
                    }
                    (RmwOp::Min, Value::I(a), Value::I(b)) => Value::I(a.min(b)),
                    (RmwOp::Max, Value::I(a), Value::I(b)) => Value::I(a.max(b)),
                    (RmwOp::Xchg, _, b) => b,
                    _ => return Err(TrapKind::TypeConfusion),
                };
                self.store(p, new)?;
                old
            }
            Opcode::Call { callee } => {
                let mut vals = Vec::with_capacity(instr.operands.len());
                for i in 0..instr.operands.len() {
                    vals.push(op(i)?);
                }
                match self.exec_function(callee, &vals)? {
                    Some(v) => v,
                    None => return Ok(None),
                }
            }
            Opcode::Phi | Opcode::Br | Opcode::CondBr | Opcode::Ret => {
                unreachable!("handled by driver")
            }
        };
        Ok(Some(v))
    }

    fn try_intrinsic(
        &mut self,
        name: &str,
        args: &[Value],
    ) -> Result<Option<Option<Value>>, TrapKind> {
        // Only handle as intrinsic when the module does not define a body.
        if self.module.function(name).is_some_and(|f| !f.is_declaration()) {
            return Ok(None);
        }
        let one_f = |args: &[Value]| -> Result<f64, TrapKind> {
            args.first().copied().ok_or(TrapKind::TypeConfusion)?.as_f()
        };
        let v: Option<Value> = match name {
            "omp_get_thread_num" => Some(Value::I(self.cfg.thread_num)),
            "omp_get_num_threads" => Some(Value::I(self.cfg.num_threads)),
            "kmpc_barrier"
            | "kmpc_critical"
            | "kmpc_end_critical"
            | "kmpc_for_static_init"
            | "kmpc_reduce" => None,
            "sqrt" => Some(Value::F(one_f(args)?.sqrt())),
            "fabs" => Some(Value::F(one_f(args)?.abs())),
            "exp" => Some(Value::F(one_f(args)?.exp())),
            "log" => Some(Value::F(one_f(args)?.ln())),
            "pow" => {
                let a = args.first().copied().ok_or(TrapKind::TypeConfusion)?.as_f()?;
                let b = args.get(1).copied().ok_or(TrapKind::TypeConfusion)?.as_f()?;
                Some(Value::F(a.powf(b)))
            }
            _ => return Ok(None),
        };
        self.steps += 1;
        Ok(Some(v))
    }

    fn object(&self, id: ObjectId) -> Result<&Vec<u8>, TrapKind> {
        match id {
            ObjectId::Global(g) => self.globals.get(g as usize).ok_or(TrapKind::OutOfBounds),
            ObjectId::Alloca(a) => self.allocas.get(a as usize).ok_or(TrapKind::OutOfBounds),
        }
    }

    fn object_mut(&mut self, id: ObjectId) -> Result<&mut Vec<u8>, TrapKind> {
        match id {
            ObjectId::Global(g) => self.globals.get_mut(g as usize).ok_or(TrapKind::OutOfBounds),
            ObjectId::Alloca(a) => self.allocas.get_mut(a as usize).ok_or(TrapKind::OutOfBounds),
        }
    }

    fn load(&self, p: MemRef, ty: Ty) -> Result<Value, TrapKind> {
        let buf = self.object(p.object)?;
        let sz = ty.size_bytes() as usize;
        let off = usize::try_from(p.offset).map_err(|_| TrapKind::OutOfBounds)?;
        if off + sz > buf.len() {
            return Err(TrapKind::OutOfBounds);
        }
        let b = &buf[off..off + sz];
        Ok(match ty {
            Ty::I1 => Value::I((b[0] & 1) as i64),
            Ty::I32 => Value::I(i32::from_le_bytes(b.try_into().unwrap()) as i64),
            Ty::I64 => Value::I(i64::from_le_bytes(b.try_into().unwrap())),
            Ty::F32 => Value::F(f32::from_le_bytes(b.try_into().unwrap()) as f64),
            Ty::F64 => Value::F(f64::from_le_bytes(b.try_into().unwrap())),
            Ty::Ptr | Ty::Void => return Err(TrapKind::TypeConfusion),
        })
    }

    fn store(&mut self, p: MemRef, v: Value) -> Result<(), TrapKind> {
        let off = usize::try_from(p.offset).map_err(|_| TrapKind::OutOfBounds)?;
        let bytes: Vec<u8> = match v {
            Value::I(x) => x.to_le_bytes().to_vec(),
            Value::F(x) => x.to_le_bytes().to_vec(),
            Value::P(_) => return Err(TrapKind::TypeConfusion),
        };
        let buf = self.object_mut(p.object)?;
        if off + bytes.len() > buf.len() {
            // Allow narrower element stores (i32 array cells receive i64
            // register values truncated to the element width).
            let avail = buf.len().saturating_sub(off);
            if avail >= 4 && matches!(v, Value::I(_)) {
                buf[off..off + 4].copy_from_slice(&bytes[..4]);
                return Ok(());
            }
            return Err(TrapKind::OutOfBounds);
        }
        buf[off..off + bytes.len()].copy_from_slice(&bytes);
        Ok(())
    }
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

fn round_to(ty: Ty, v: f64) -> f64 {
    match ty {
        Ty::F32 => v as f32 as f64,
        _ => v,
    }
}

fn int_binop(op: &Opcode, a: i64, b: i64, ty: Ty) -> Result<i64, TrapKind> {
    let r: i128 = match op {
        Opcode::Add => a as i128 + b as i128,
        Opcode::Sub => a as i128 - b as i128,
        Opcode::Mul => (a as i128).wrapping_mul(b as i128),
        Opcode::SDiv => {
            if b == 0 {
                return Err(TrapKind::DivByZero);
            }
            (a as i128) / (b as i128)
        }
        Opcode::SRem => {
            if b == 0 {
                return Err(TrapKind::DivByZero);
            }
            (a as i128) % (b as i128)
        }
        Opcode::And => (a & b) as i128,
        Opcode::Or => (a | b) as i128,
        Opcode::Xor => (a ^ b) as i128,
        Opcode::Shl => {
            if !(0..64).contains(&b) {
                return Err(TrapKind::ShiftOutOfRange);
            }
            (a as i128) << b
        }
        Opcode::LShr => {
            if !(0..64).contains(&b) {
                return Err(TrapKind::ShiftOutOfRange);
            }
            ((a as u64) >> b) as i128
        }
        Opcode::AShr => {
            if !(0..64).contains(&b) {
                return Err(TrapKind::ShiftOutOfRange);
            }
            (a >> b) as i128
        }
        _ => return Err(TrapKind::TypeConfusion),
    };
    Ok(ty.wrap_int(r))
}

fn cast(kind: CastKind, to: Ty, v: Value) -> Result<Value, TrapKind> {
    Ok(match kind {
        CastKind::Trunc | CastKind::Zext | CastKind::Sext => {
            let x = v.as_i()?;
            match kind {
                CastKind::Trunc => Value::I(to.wrap_int(x as i128)),
                CastKind::Zext => Value::I(match to {
                    Ty::I64 => x,
                    _ => to.wrap_int(x as i128),
                }),
                _ => Value::I(x),
            }
        }
        CastKind::FpToSi => {
            let x = v.as_f()?;
            Value::I(to.wrap_int(if x.is_finite() { x as i64 as i128 } else { 0 }))
        }
        CastKind::SiToFp => Value::F(v.as_i()? as f64),
        CastKind::FpCast => Value::F(round_to(to, v.as_f()?)),
        CastKind::Bitcast => v,
    })
}

/// The identifier of a global by name (convenience for tests).
pub fn global_id(m: &Module, name: &str) -> Option<GlobalId> {
    m.global_by_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{fconst, iconst, FunctionBuilder};
    use crate::function::FunctionKind;

    fn run(m: &Module, f: &str, args: &[Value]) -> (ExecOutcome, u64) {
        let mut it = Interp::new(m, InterpConfig::default());
        it.seed_globals(42);
        let out = it.call(f, args).expect("executes");
        (out, it.memory_digest())
    }

    #[test]
    fn arithmetic_and_control_flow() {
        // sum of 0..n
        let mut b = FunctionBuilder::new("sum", vec![Ty::I64], Ty::I64, FunctionKind::Normal);
        let acc = b.alloca(Ty::I64, 1);
        b.store(iconst(0), acc);
        b.counted_loop(iconst(0), b.arg(0), iconst(1), |b, i| {
            let cur = b.load(Ty::I64, acc);
            let nv = b.add(Ty::I64, cur, i);
            b.store(nv, acc);
        });
        let total = b.load(Ty::I64, acc);
        b.ret(Some(total));
        let mut m = Module::new("m");
        m.add_function(b.finish());
        let (out, _) = run(&m, "sum", &[Value::I(10)]);
        assert_eq!(out.ret, Some(Value::I(45)));
        assert!(out.steps > 30);
    }

    #[test]
    fn float_math_and_intrinsics() {
        let mut b = FunctionBuilder::new("f", vec![], Ty::F64, FunctionKind::Normal);
        let x = b.fmuladd(Ty::F64, fconst(3.0), fconst(4.0), fconst(5.0));
        let r = b.call("sqrt", Ty::F64, vec![x]);
        b.ret(Some(r));
        let mut m = Module::new("m");
        m.add_function(b.finish());
        let (out, _) = run(&m, "f", &[]);
        assert_eq!(out.ret, Some(Value::F(17.0f64.sqrt())));
    }

    #[test]
    fn memory_globals_and_gep() {
        let mut m = Module::new("m");
        let g = m.add_global("buf", Ty::F64, 8);
        let mut b = FunctionBuilder::new("k", vec![Ty::I64], Ty::Void, FunctionKind::Normal);
        let p = b.gep(Ty::F64, Operand::Global(g), b.arg(0));
        let v = b.load(Ty::F64, p);
        let w = b.fmul(Ty::F64, v, fconst(2.0));
        b.store(w, p);
        b.ret(None);
        m.add_function(b.finish());
        let mut it = Interp::new(&m, InterpConfig::default());
        it.seed_globals(1);
        let before = it.memory_digest();
        it.call("k", &[Value::I(3)]).unwrap();
        assert_ne!(it.memory_digest(), before, "store visible in the digest");
        // A second call on the same cell doubles again — memory persists.
        let after_one = it.memory_digest();
        it.call("k", &[Value::I(3)]).unwrap();
        assert_ne!(it.memory_digest(), after_one);
    }

    #[test]
    fn division_by_zero_traps() {
        let mut b = FunctionBuilder::new("d", vec![Ty::I64], Ty::I64, FunctionKind::Normal);
        let q = b.sdiv(Ty::I64, iconst(10), b.arg(0));
        b.ret(Some(q));
        let mut m = Module::new("m");
        m.add_function(b.finish());
        let mut it = Interp::new(&m, InterpConfig::default());
        let err = it.call("d", &[Value::I(0)]).unwrap_err();
        assert_eq!(err.kind, TrapKind::DivByZero);
        assert!(it.call("d", &[Value::I(2)]).is_ok());
    }

    #[test]
    fn out_of_bounds_traps() {
        let mut m = Module::new("m");
        let g = m.add_global("small", Ty::I64, 2);
        let mut b = FunctionBuilder::new("o", vec![Ty::I64], Ty::I64, FunctionKind::Normal);
        let p = b.gep(Ty::I64, Operand::Global(g), b.arg(0));
        let v = b.load(Ty::I64, p);
        b.ret(Some(v));
        m.add_function(b.finish());
        let mut it = Interp::new(&m, InterpConfig::default());
        assert!(it.call("o", &[Value::I(1)]).is_ok());
        let err = it.call("o", &[Value::I(5)]).unwrap_err();
        assert_eq!(err.kind, TrapKind::OutOfBounds);
    }

    #[test]
    fn step_limit_stops_infinite_loops() {
        let text = "module \"m\"\nfunc @spin() -> void {\nbb0:\n  br bb1\nbb1:\n  br bb1\n}\n";
        let m = crate::parser::parse_module(text).unwrap();
        let mut it = Interp::new(&m, InterpConfig { step_limit: 1000, ..Default::default() });
        let err = it.call("spin", &[]).unwrap_err();
        assert_eq!(err.kind, TrapKind::StepLimit);
    }

    #[test]
    fn atomics_read_modify_write() {
        let mut m = Module::new("m");
        let g = m.add_global("ctr", Ty::I64, 1);
        let mut b = FunctionBuilder::new("inc", vec![], Ty::I64, FunctionKind::Normal);
        let p = b.gep(Ty::I64, Operand::Global(g), iconst(0));
        let old = b.atomic_rmw(RmwOp::Add, Ty::I64, p, iconst(5));
        b.ret(Some(old));
        m.add_function(b.finish());
        let mut it = Interp::new(&m, InterpConfig::default());
        assert_eq!(it.call("inc", &[]).unwrap().ret, Some(Value::I(0)));
        assert_eq!(it.call("inc", &[]).unwrap().ret, Some(Value::I(5)), "rmw yields the old value");
    }

    #[test]
    fn phi_parallel_copy_semantics() {
        // Fibonacci via two phis that must read each other's *old* values.
        let text = "module \"m\"\n\
            func @fib(i64) -> i64 {\n\
            bb0:\n  br bb1\n\
            bb1:\n  %0 = phi i64 bb0, 0, bb2, %1\n  %1 = phi i64 bb0, 1, bb2, %4\n  %2 = phi i64 bb0, 0, bb2, %5\n\
              %3 = icmp.slt i1 %2, %a0\n  condbr %3, bb2, bb3\n\
            bb2:\n  %4 = add i64 %0, %1\n  %5 = add i64 %2, 1\n  br bb1\n\
            bb3:\n  ret %0\n}\n";
        let m = crate::parser::parse_module(text).unwrap();
        crate::verify::verify_module(&m).unwrap();
        let mut it = Interp::new(&m, InterpConfig::default());
        let out = it.call("fib", &[Value::I(10)]).unwrap();
        assert_eq!(out.ret, Some(Value::I(55)), "fib(10)");
    }

    #[test]
    fn omp_intrinsics_are_configurable() {
        let mut b = FunctionBuilder::new("t", vec![], Ty::I64, FunctionKind::Normal);
        let tid = b.call("omp_get_thread_num", Ty::I32, vec![]);
        let nth = b.call("omp_get_num_threads", Ty::I32, vec![]);
        let t64 = b.cast(CastKind::Sext, Ty::I64, tid);
        let n64 = b.cast(CastKind::Sext, Ty::I64, nth);
        let r = b.mul(Ty::I64, t64, n64);
        b.ret(Some(r));
        let mut m = Module::new("m");
        m.add_function(b.finish());
        let mut it =
            Interp::new(&m, InterpConfig { thread_num: 3, num_threads: 8, ..Default::default() });
        assert_eq!(it.call("t", &[]).unwrap().ret, Some(Value::I(24)));
    }
}
