//! # irnuma-ir — a miniature SSA intermediate representation
//!
//! This crate is the IR substrate for the IPDPS'22 reproduction
//! *"Learning Intermediate Representations using Graph Neural Networks for
//! NUMA and Prefetchers Optimization"*. The paper consumes LLVM IR; this
//! crate provides a self-contained, LLVM-shaped SSA IR with everything the
//! rest of the workspace needs:
//!
//! * typed instructions grouped into basic blocks inside functions inside
//!   modules ([`Module`], [`Function`], [`Block`], [`Instr`]);
//! * a [`builder::FunctionBuilder`] used by the synthetic workload suite to
//!   emit OpenMP-outlined region bodies;
//! * a textual format with a printer ([`printer`]) and parser ([`parser`])
//!   that round-trip (`parse(print(m)) == m` modulo value numbering);
//! * a structural [`verify`]er (SSA dominance, terminator discipline,
//!   operand typing);
//! * CFG analyses ([`analysis`]): successors/predecessors, reverse postorder,
//!   dominator tree, and natural-loop detection — shared by the optimization
//!   passes in `irnuma-passes`;
//! * [`extract`]: the `llvm-extract` equivalent that pulls one outlined
//!   region (plus transitive callees and referenced globals) into a
//!   standalone module (paper step B).
//!
//! The IR is deliberately small but not toy-shaped: it has integer and float
//! arithmetic, memory (alloca/load/store/GEP), atomics, calls, phis, casts
//! and compares — enough for the middle-end passes in `irnuma-passes` to be
//! real transformations whose effect depends on code properties, which is the
//! core mechanism the paper's data augmentation exploits.

pub mod analysis;
pub mod builder;
pub mod extract;
pub mod function;
pub mod instr;
pub mod interp;
pub mod module;
pub mod parser;
pub mod printer;
pub mod types;
pub mod verify;

pub use builder::FunctionBuilder;
pub use function::{Block, BlockId, Function, FunctionKind};
pub use instr::{CastKind, FloatPred, Instr, InstrId, IntPred, Opcode, Operand, RmwOp};
pub use interp::{ExecOutcome, Interp, InterpConfig, Trap, TrapKind, Value};
pub use module::{Global, GlobalId, Module};
pub use parser::{parse_module, ParseError};
pub use printer::print_module;
pub use types::Ty;
pub use verify::{verify_function, verify_module, VerifyError};
