//! Modules and globals.

use crate::function::Function;
use crate::types::Ty;
use serde::{Deserialize, Serialize};

/// Index of a global variable within a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GlobalId(pub u32);

impl GlobalId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A module-level array variable (the kernels' shared data).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Global {
    pub name: String,
    /// Element type of the array.
    pub elem: Ty,
    /// Number of elements.
    pub count: u64,
}

impl Global {
    /// Total footprint in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.elem.size_bytes() * self.count
    }
}

/// A translation unit: globals + functions. The workload suite emits one
/// module per benchmark; `extract` carves per-region modules out of it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Module {
    pub name: String,
    pub globals: Vec<Global>,
    pub functions: Vec<Function>,
}

impl Module {
    pub fn new(name: impl Into<String>) -> Self {
        Module { name: name.into(), globals: Vec::new(), functions: Vec::new() }
    }

    /// Add a global array; returns its id.
    pub fn add_global(&mut self, name: impl Into<String>, elem: Ty, count: u64) -> GlobalId {
        self.globals.push(Global { name: name.into(), elem, count });
        GlobalId((self.globals.len() - 1) as u32)
    }

    pub fn global(&self, id: GlobalId) -> &Global {
        &self.globals[id.index()]
    }

    /// Add a function; returns a mutable reference for further construction.
    pub fn add_function(&mut self, f: Function) -> &mut Function {
        self.functions.push(f);
        self.functions.last_mut().expect("just pushed")
    }

    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    pub fn function_mut(&mut self, name: &str) -> Option<&mut Function> {
        self.functions.iter_mut().find(|f| f.name == name)
    }

    pub fn global_by_name(&self, name: &str) -> Option<GlobalId> {
        self.globals.iter().position(|g| g.name == name).map(|i| GlobalId(i as u32))
    }

    /// Names of all OpenMP-outlined regions in the module.
    pub fn outlined_regions(&self) -> Vec<&str> {
        self.functions
            .iter()
            .filter(|f| f.kind == crate::function::FunctionKind::OmpOutlined)
            .map(|f| f.name.as_str())
            .collect()
    }

    /// Total number of attached instructions across all functions.
    pub fn num_instrs(&self) -> usize {
        self.functions.iter().map(|f| f.num_attached()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::FunctionKind;

    #[test]
    fn globals_by_name_and_size() {
        let mut m = Module::new("m");
        let g = m.add_global("data", Ty::F64, 1024);
        assert_eq!(m.global(g).size_bytes(), 8192);
        assert_eq!(m.global_by_name("data"), Some(g));
        assert_eq!(m.global_by_name("nope"), None);
    }

    #[test]
    fn outlined_regions_filter() {
        let mut m = Module::new("m");
        m.add_function(Function::new("main", vec![], Ty::Void, FunctionKind::Normal));
        m.add_function(Function::new(
            ".omp_outlined.k0",
            vec![],
            Ty::Void,
            FunctionKind::OmpOutlined,
        ));
        m.add_function(Function::new(
            "omp_get_thread_num",
            vec![],
            Ty::I32,
            FunctionKind::Declaration,
        ));
        assert_eq!(m.outlined_regions(), vec![".omp_outlined.k0"]);
        assert!(m.function("main").is_some());
        assert!(m.function_mut(".omp_outlined.k0").is_some());
    }
}
