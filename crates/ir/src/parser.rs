//! Parser for the textual IR format emitted by [`crate::printer`].
//!
//! Two-pass per function: the first pass creates instructions with operand
//! *tokens* and records the mapping from printed value numbers to arena ids;
//! the second pass resolves tokens (including forward references from phis)
//! into [`Operand`]s.

use crate::function::{BlockId, Function, FunctionKind};
use crate::instr::{Instr, InstrId, Operand};
use crate::module::Module;
use crate::printer::opcode_from_mnemonic;
use crate::types::Ty;
use std::collections::HashMap;
use std::fmt;

/// Parse failure with a 1-based line number and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError { line, msg: msg.into() })
}

/// Parse a whole module from its textual form.
pub fn parse_module(text: &str) -> Result<Module, ParseError> {
    let mut module: Option<Module> = None;
    let mut lines = text.lines().enumerate().peekable();

    while let Some((idx, raw)) = lines.next() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("module ") {
            let name = rest.trim().trim_matches('"');
            if module.is_some() {
                return err(lineno, "duplicate module header");
            }
            module = Some(Module::new(name));
        } else if let Some(rest) = line.strip_prefix("global @") {
            let m = module
                .as_mut()
                .ok_or(ParseError { line: lineno, msg: "global before module header".into() })?;
            // `name ty x count`
            let mut it = rest.split_whitespace();
            let name =
                it.next().ok_or(ParseError { line: lineno, msg: "missing global name".into() })?;
            let ty = it
                .next()
                .and_then(Ty::from_keyword)
                .ok_or(ParseError { line: lineno, msg: "bad global type".into() })?;
            if it.next() != Some("x") {
                return err(lineno, "expected `x` in global");
            }
            let count: u64 = it
                .next()
                .and_then(|c| c.parse().ok())
                .ok_or(ParseError { line: lineno, msg: "bad global count".into() })?;
            m.add_global(name, ty, count);
        } else if let Some(rest) = line.strip_prefix("declare @") {
            let m = module
                .as_mut()
                .ok_or(ParseError { line: lineno, msg: "declare before module header".into() })?;
            let (name, params, ret) = parse_signature(rest, lineno)?;
            m.add_function(Function::new(name, params, ret, FunctionKind::Declaration));
        } else if let Some(rest) = line.strip_prefix("func @") {
            let m = module
                .as_mut()
                .ok_or(ParseError { line: lineno, msg: "func before module header".into() })?;
            let body_open = rest.trim_end();
            let body_open = body_open
                .strip_suffix('{')
                .ok_or(ParseError {
                    line: lineno,
                    msg: "expected `{` at end of func header".into(),
                })?
                .trim_end();
            let (sig, kind) = match body_open.strip_suffix("outlined") {
                Some(s) => (s.trim_end(), FunctionKind::OmpOutlined),
                None => (body_open, FunctionKind::Normal),
            };
            let (name, params, ret) = parse_signature(sig, lineno)?;
            // Collect the body lines until the closing `}`.
            let mut body = Vec::new();
            let mut closed = false;
            for (bidx, braw) in lines.by_ref() {
                let bline = strip_comment(braw).trim().to_string();
                if bline == "}" {
                    closed = true;
                    break;
                }
                if !bline.is_empty() {
                    body.push((bidx + 1, bline));
                }
            }
            if !closed {
                return err(lineno, "unterminated function body");
            }
            let f = parse_body(m, name, params, ret, kind, &body)?;
            m.add_function(f);
        } else {
            return err(lineno, format!("unrecognized line: {line}"));
        }
    }

    module.ok_or(ParseError { line: 0, msg: "missing module header".into() })
}

fn strip_comment(s: &str) -> &str {
    match s.find(';') {
        Some(i) => &s[..i],
        None => s,
    }
}

/// Parse `name(ty, ty) -> ret` (without the leading `@`).
fn parse_signature(s: &str, lineno: usize) -> Result<(String, Vec<Ty>, Ty), ParseError> {
    let open = s.find('(').ok_or(ParseError { line: lineno, msg: "missing `(`".into() })?;
    let close = s.find(')').ok_or(ParseError { line: lineno, msg: "missing `)`".into() })?;
    let name = s[..open].trim().to_string();
    let params: Vec<Ty> = s[open + 1..close]
        .split(',')
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .map(|p| {
            Ty::from_keyword(p)
                .ok_or(ParseError { line: lineno, msg: format!("bad param type {p}") })
        })
        .collect::<Result<_, _>>()?;
    let arrow =
        s[close..].find("->").ok_or(ParseError { line: lineno, msg: "missing `->`".into() })?;
    let ret_str = s[close + arrow + 2..].trim();
    let ret = Ty::from_keyword(ret_str)
        .ok_or(ParseError { line: lineno, msg: format!("bad return type {ret_str}") })?;
    Ok((name, params, ret))
}

struct PendingInstr {
    id: InstrId,
    line: usize,
    tokens: Vec<String>,
}

fn parse_body(
    m: &Module,
    name: String,
    params: Vec<Ty>,
    ret: Ty,
    kind: FunctionKind,
    body: &[(usize, String)],
) -> Result<Function, ParseError> {
    let mut f = Function::new(name, params, ret, kind);
    // The builder-created entry block is reused as bb0; further `bbN:` labels
    // create blocks on demand. Labels must appear in increasing order.
    let mut cur: Option<BlockId> = None;
    let mut numbers: HashMap<u32, InstrId> = HashMap::new();
    let mut pending: Vec<PendingInstr> = Vec::new();

    for (lineno, line) in body {
        let lineno = *lineno;
        if let Some(lbl) = line.strip_suffix(':') {
            let n: u32 = lbl
                .strip_prefix("bb")
                .and_then(|x| x.parse().ok())
                .ok_or(ParseError { line: lineno, msg: format!("bad block label {lbl}") })?;
            while (f.blocks.len() as u32) <= n {
                f.add_block();
            }
            cur = Some(BlockId(n));
            continue;
        }
        let cur_b = cur.ok_or(ParseError {
            line: lineno,
            msg: "instruction before first block label".into(),
        })?;

        // Optional `%N = ` prefix.
        let (num, rest) = match line.strip_prefix('%') {
            Some(r) if !r.starts_with('a') => {
                let eq =
                    r.find('=').ok_or(ParseError { line: lineno, msg: "missing `=`".into() })?;
                let n: u32 = r[..eq]
                    .trim()
                    .parse()
                    .map_err(|_| ParseError { line: lineno, msg: "bad value number".into() })?;
                (Some(n), r[eq + 1..].trim())
            }
            _ => (None, line.as_str()),
        };

        let mut parts = rest.splitn(2, ' ');
        let mnemonic = parts.next().unwrap_or_default();
        let op = opcode_from_mnemonic(mnemonic)
            .ok_or(ParseError { line: lineno, msg: format!("unknown opcode {mnemonic}") })?;
        let mut rest2 = parts.next().unwrap_or("").trim();

        // Value-producing instructions carry a type keyword next.
        let ty = if num.is_some() {
            let mut it = rest2.splitn(2, ' ');
            let tk = it.next().unwrap_or_default();
            let t = Ty::from_keyword(tk)
                .ok_or(ParseError { line: lineno, msg: format!("bad type {tk}") })?;
            rest2 = it.next().unwrap_or("").trim();
            t
        } else {
            Ty::Void
        };

        let tokens: Vec<String> =
            rest2.split(',').map(str::trim).filter(|t| !t.is_empty()).map(String::from).collect();

        let id = f.push_instr(cur_b, Instr::new(op, ty, Vec::new()));
        if let Some(n) = num {
            if numbers.insert(n, id).is_some() {
                return err(lineno, format!("duplicate value number %{n}"));
            }
        }
        pending.push(PendingInstr { id, line: lineno, tokens });
    }

    // Second pass: resolve operand tokens.
    for p in pending {
        let mut ops = Vec::with_capacity(p.tokens.len());
        for t in &p.tokens {
            ops.push(parse_operand(m, &f, &numbers, t, p.line)?);
        }
        f.instr_mut(p.id).operands = ops;
    }
    Ok(f)
}

fn parse_operand(
    m: &Module,
    f: &Function,
    numbers: &HashMap<u32, InstrId>,
    t: &str,
    line: usize,
) -> Result<Operand, ParseError> {
    if let Some(rest) = t.strip_prefix("%a") {
        let i: u32 = rest.parse().map_err(|_| ParseError { line, msg: format!("bad arg {t}") })?;
        if i as usize >= f.params.len() {
            return err(line, format!("arg index {i} out of range"));
        }
        return Ok(Operand::Arg(i));
    }
    if let Some(rest) = t.strip_prefix('%') {
        let n: u32 =
            rest.parse().map_err(|_| ParseError { line, msg: format!("bad value ref {t}") })?;
        return numbers
            .get(&n)
            .map(|&id| Operand::Instr(id))
            .ok_or(ParseError { line, msg: format!("undefined value %{n}") });
    }
    if let Some(rest) = t.strip_prefix("bb") {
        let n: u32 =
            rest.parse().map_err(|_| ParseError { line, msg: format!("bad block ref {t}") })?;
        if n as usize >= f.blocks.len() {
            return err(line, format!("block bb{n} out of range"));
        }
        return Ok(Operand::Block(BlockId(n)));
    }
    if let Some(rest) = t.strip_prefix('@') {
        return m
            .global_by_name(rest)
            .map(Operand::Global)
            .ok_or(ParseError { line, msg: format!("unknown global @{rest}") });
    }
    if let Some(rest) = t.strip_prefix("0f") {
        let bits = u64::from_str_radix(rest, 16)
            .map_err(|_| ParseError { line, msg: format!("bad float literal {t}") })?;
        return Ok(Operand::ConstFloat(bits));
    }
    t.parse::<i64>()
        .map(Operand::ConstInt)
        .map_err(|_| ParseError { line, msg: format!("bad operand {t}") })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{fconst, iconst, FunctionBuilder};
    use crate::instr::Opcode;
    use crate::printer::print_module;
    use crate::verify::verify_module;

    fn sample_module() -> Module {
        let mut m = Module::new("sample");
        let g = m.add_global("data", Ty::F64, 4096);
        m.add_function(Function::new(
            "omp_get_thread_num",
            vec![],
            Ty::I32,
            FunctionKind::Declaration,
        ));
        let mut b = FunctionBuilder::new(
            ".omp_outlined.k",
            vec![Ty::I64, Ty::I64],
            Ty::Void,
            FunctionKind::OmpOutlined,
        );
        let tid32 = b.call("omp_get_thread_num", Ty::I32, vec![]);
        let tid = b.cast(crate::instr::CastKind::Sext, Ty::I64, tid32);
        let lo = b.mul(Ty::I64, tid, b.arg(0));
        let hi = b.add(Ty::I64, lo, b.arg(0));
        b.counted_loop(lo, hi, iconst(1), |b, i| {
            let p = b.gep(Ty::F64, Operand::Global(g), i);
            let v = b.load(Ty::F64, p);
            let w = b.fmuladd(Ty::F64, v, fconst(1.5), fconst(-0.25));
            b.store(w, p);
        });
        b.ret(None);
        m.add_function(b.finish());
        m
    }

    #[test]
    fn round_trip_print_parse_print() {
        let m = sample_module();
        let t1 = print_module(&m);
        let parsed = parse_module(&t1).expect("parses");
        verify_module(&parsed).expect("parsed module verifies");
        let t2 = print_module(&parsed);
        assert_eq!(t1, t2, "print→parse→print is a fixpoint");
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let bad = "module \"m\"\nglobal @g f64 x nope\n";
        let e = parse_module(bad).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.msg.contains("count"));
    }

    #[test]
    fn unknown_opcode_is_reported() {
        let bad = "module \"m\"\nfunc @f() -> void {\nbb0:\n  frobnicate\n}\n";
        let e = parse_module(bad).unwrap_err();
        assert!(e.msg.contains("unknown opcode"), "{e}");
    }

    #[test]
    fn undefined_value_reference_is_reported() {
        let bad = "module \"m\"\nfunc @f() -> void {\nbb0:\n  %0 = add i64 %3, 1\n  ret\n}\n";
        let e = parse_module(bad).unwrap_err();
        assert!(e.msg.contains("undefined value %3"), "{e}");
    }

    #[test]
    fn forward_phi_references_resolve() {
        // Phi in bb1 refers to %2 defined later in bb2 (valid SSA: bb2
        // dominates nothing here, but the incoming is from bb2's edge).
        let text = "module \"m\"\n\
            func @f() -> void {\n\
            bb0:\n  br bb1\n\
            bb1:\n  %0 = phi i64 bb0, 0, bb2, %1\n  condbr 1, bb2, bb3\n\
            bb2:\n  %1 = add i64 %0, 1\n  br bb1\n\
            bb3:\n  ret\n}\n";
        let m = parse_module(text).expect("parses");
        let f = m.function("f").unwrap();
        let phi = f.blocks[1].instrs[0];
        assert!(matches!(f.instr(phi).op, Opcode::Phi));
        assert_eq!(f.instr(phi).phi_incomings().count(), 2);
    }

    #[test]
    fn declarations_round_trip() {
        let m = sample_module();
        let text = print_module(&m);
        assert!(text.contains("declare @omp_get_thread_num() -> i32"));
        let parsed = parse_module(&text).unwrap();
        assert!(parsed.function("omp_get_thread_num").unwrap().is_declaration());
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "module \"m\" ; the module\n\n; nothing here\nfunc @f() -> void {\nbb0:\n  ret ; done\n}\n";
        let m = parse_module(text).expect("parses with comments");
        assert_eq!(m.function("f").unwrap().num_attached(), 1);
    }
}
