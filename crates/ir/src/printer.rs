//! Textual form of the IR.
//!
//! The format is line-oriented and fully uniform so that
//! [`crate::parser::parse_module`] round-trips it exactly:
//!
//! ```text
//! module "ep"
//! global @data f64 x 1048576
//! declare @omp_get_thread_num() -> i32
//! func @.omp_outlined.ep(ptr, i64) -> void outlined {
//! bb0:
//!   %0 = add i64 %a1, 4
//!   %1 = gep.8 ptr @data, %0
//!   %2 = load f64 %1
//!   store %2, %1
//!   br bb1
//! ...
//! }
//! ```
//!
//! Value numbers (`%N`) are assigned to value-producing instructions in
//! layout order at print time; instructions without results (stores,
//! branches) have no number. Float immediates print as `0f`+16 hex digits so
//! round-trips are bit-exact.

use crate::function::{Function, FunctionKind};
use crate::instr::{Opcode, Operand};
use crate::module::Module;
use crate::types::Ty;
use std::collections::HashMap;
use std::fmt::Write;

/// Render a whole module.
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    writeln!(out, "module \"{}\"", m.name).unwrap();
    for g in &m.globals {
        writeln!(out, "global @{} {} x {}", g.name, g.elem, g.count).unwrap();
    }
    for f in &m.functions {
        out.push('\n');
        print_function(&mut out, m, f);
    }
    out
}

/// Render one function into `out`.
pub fn print_function(out: &mut String, m: &Module, f: &Function) {
    let params = f.params.iter().map(|t| t.keyword()).collect::<Vec<_>>().join(", ");
    if f.is_declaration() {
        writeln!(out, "declare @{}({}) -> {}", f.name, params, f.ret).unwrap();
        return;
    }
    let kind = match f.kind {
        FunctionKind::Normal => "",
        FunctionKind::OmpOutlined => " outlined",
        FunctionKind::Declaration => unreachable!(),
    };
    writeln!(out, "func @{}({}) -> {}{} {{", f.name, params, f.ret, kind).unwrap();

    // Number the value-producing instructions in layout order.
    let mut numbers: HashMap<crate::instr::InstrId, usize> = HashMap::new();
    for (_, _, id) in f.iter_attached() {
        if f.instr(id).ty.is_first_class() {
            let n = numbers.len();
            numbers.insert(id, n);
        }
    }

    let operand_str = |op: &Operand| -> String {
        match *op {
            Operand::Instr(id) => match numbers.get(&id) {
                Some(n) => format!("%{n}"),
                None => "%?".into(), // reference to a detached/void instr: malformed
            },
            Operand::Arg(i) => format!("%a{i}"),
            Operand::ConstInt(v) => format!("{v}"),
            Operand::ConstFloat(bits) => format!("0f{bits:016x}"),
            Operand::Global(g) => format!("@{}", m.global(g).name),
            Operand::Block(b) => format!("bb{}", b.0),
        }
    };

    for (bid, block) in f.iter_blocks() {
        writeln!(out, "bb{}:", bid.0).unwrap();
        for &id in &block.instrs {
            let instr = f.instr(id);
            let ops = instr.operands.iter().map(operand_str).collect::<Vec<_>>().join(", ");
            let mn = full_mnemonic(&instr.op);
            out.push_str("  ");
            if instr.ty.is_first_class() {
                write!(out, "%{} = ", numbers[&id]).unwrap();
            }
            // Type is printed for value-producing instructions; void ones
            // (store/br/ret/...) omit it.
            if instr.ty.is_first_class() {
                write!(out, "{} {}", mn, instr.ty).unwrap();
                if !ops.is_empty() {
                    write!(out, " {ops}").unwrap();
                }
            } else {
                write!(out, "{mn}").unwrap();
                if !ops.is_empty() {
                    write!(out, " {ops}").unwrap();
                }
            }
            out.push('\n');
        }
    }
    out.push_str("}\n");
}

/// The parseable mnemonic, including structural payloads.
pub(crate) fn full_mnemonic(op: &Opcode) -> String {
    match op {
        Opcode::Gep { elem_size } => format!("gep.{elem_size}"),
        Opcode::Alloca { elem, count } => format!("alloca.{}.{}", elem.keyword(), count),
        Opcode::Call { callee } => format!("call.@{callee}"),
        other => other.mnemonic(),
    }
}

/// Parse a full mnemonic back into an opcode; inverse of [`full_mnemonic`].
pub(crate) fn opcode_from_mnemonic(s: &str) -> Option<Opcode> {
    use crate::instr::{CastKind, FloatPred, IntPred, RmwOp};
    if let Some(rest) = s.strip_prefix("gep.") {
        return rest.parse::<u64>().ok().map(|elem_size| Opcode::Gep { elem_size });
    }
    if let Some(rest) = s.strip_prefix("alloca.") {
        let (ty, count) = rest.split_once('.')?;
        return Some(Opcode::Alloca { elem: Ty::from_keyword(ty)?, count: count.parse().ok()? });
    }
    if let Some(rest) = s.strip_prefix("call.@") {
        return Some(Opcode::Call { callee: rest.to_string() });
    }
    if let Some(rest) = s.strip_prefix("icmp.") {
        return IntPred::from_keyword(rest).map(Opcode::Icmp);
    }
    if let Some(rest) = s.strip_prefix("fcmp.") {
        return FloatPred::from_keyword(rest).map(Opcode::Fcmp);
    }
    if let Some(rest) = s.strip_prefix("atomicrmw.") {
        return RmwOp::from_keyword(rest).map(Opcode::AtomicRmw);
    }
    if let Some(k) = CastKind::from_keyword(s) {
        return Some(Opcode::Cast(k));
    }
    Some(match s {
        "add" => Opcode::Add,
        "sub" => Opcode::Sub,
        "mul" => Opcode::Mul,
        "sdiv" => Opcode::SDiv,
        "srem" => Opcode::SRem,
        "fadd" => Opcode::FAdd,
        "fsub" => Opcode::FSub,
        "fmul" => Opcode::FMul,
        "fdiv" => Opcode::FDiv,
        "and" => Opcode::And,
        "or" => Opcode::Or,
        "xor" => Opcode::Xor,
        "shl" => Opcode::Shl,
        "lshr" => Opcode::LShr,
        "ashr" => Opcode::AShr,
        "fmuladd" => Opcode::FMulAdd,
        "load" => Opcode::Load,
        "store" => Opcode::Store,
        "br" => Opcode::Br,
        "condbr" => Opcode::CondBr,
        "ret" => Opcode::Ret,
        "phi" => Opcode::Phi,
        "select" => Opcode::Select,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{fconst, iconst, FunctionBuilder};
    use crate::instr::{CastKind, FloatPred, IntPred, RmwOp};

    #[test]
    fn mnemonic_round_trips_for_payload_opcodes() {
        let cases = vec![
            Opcode::Gep { elem_size: 8 },
            Opcode::Alloca { elem: Ty::F32, count: 64 },
            Opcode::Call { callee: "omp_get_thread_num".into() },
            Opcode::Icmp(IntPred::Sge),
            Opcode::Fcmp(FloatPred::Ole),
            Opcode::AtomicRmw(RmwOp::Max),
            Opcode::Cast(CastKind::SiToFp),
            Opcode::FMulAdd,
            Opcode::Phi,
        ];
        for op in cases {
            let mn = full_mnemonic(&op);
            assert_eq!(opcode_from_mnemonic(&mn), Some(op), "{mn}");
        }
        assert_eq!(opcode_from_mnemonic("bogus"), None);
        assert_eq!(opcode_from_mnemonic("gep.x"), None);
    }

    #[test]
    fn printed_module_contains_expected_lines() {
        let mut m = Module::new("demo");
        let g = m.add_global("buf", Ty::F64, 128);
        let mut b = FunctionBuilder::new("k", vec![Ty::I64], Ty::Void, FunctionKind::OmpOutlined);
        let p = b.gep(Ty::F64, Operand::Global(g), b.arg(0));
        let v = b.load(Ty::F64, p);
        let v2 = b.fmul(Ty::F64, v, fconst(0.5));
        b.store(v2, p);
        b.ret(None);
        m.add_function(b.finish());

        let text = print_module(&m);
        assert!(text.contains("module \"demo\""));
        assert!(text.contains("global @buf f64 x 128"));
        assert!(text.contains("func @k(i64) -> void outlined {"));
        assert!(text.contains("%0 = gep.8 ptr @buf, %a0"));
        assert!(text.contains("%1 = load f64 %0"));
        assert!(text.contains("store %2, %0"));
        assert!(text.contains("0f3fe0000000000000"), "0.5 printed as hex bits");
    }

    #[test]
    fn void_instrs_are_unnumbered() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![], Ty::Void, FunctionKind::Normal);
        let x = b.add(Ty::I64, iconst(1), iconst(2));
        let _ = x;
        b.ret(None);
        m.add_function(b.finish());
        let text = print_module(&m);
        assert!(text.contains("%0 = add i64 1, 2"));
        assert!(text.contains("\n  ret\n"));
    }
}
