//! Scalar type system of the IR.
//!
//! The paper operates on LLVM IR; we keep the subset of LLVM's first-class
//! types that the synthetic OpenMP kernels actually produce. Pointers are
//! opaque (as in modern LLVM): element types live on the instructions that
//! use them (e.g. [`crate::Opcode::Gep`] carries an element size).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A first-class scalar type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Ty {
    /// 1-bit boolean, result of comparisons.
    I1,
    /// 32-bit signed integer.
    I32,
    /// 64-bit signed integer (also used for indices and sizes).
    I64,
    /// 32-bit IEEE-754 float.
    F32,
    /// 64-bit IEEE-754 float.
    F64,
    /// Opaque pointer.
    Ptr,
    /// Absence of a value (stores, branches, void calls).
    Void,
}

impl Ty {
    /// Whether this is an integer type (including `i1`).
    pub fn is_int(self) -> bool {
        matches!(self, Ty::I1 | Ty::I32 | Ty::I64)
    }

    /// Whether this is a floating-point type.
    pub fn is_float(self) -> bool {
        matches!(self, Ty::F32 | Ty::F64)
    }

    /// Whether a value of this type can be produced by an instruction.
    pub fn is_first_class(self) -> bool {
        !matches!(self, Ty::Void)
    }

    /// Size of the type in bytes as laid out by the simulated target
    /// (x86-64 data layout). `Void` has size zero.
    pub fn size_bytes(self) -> u64 {
        match self {
            Ty::I1 => 1,
            Ty::I32 | Ty::F32 => 4,
            Ty::I64 | Ty::F64 | Ty::Ptr => 8,
            Ty::Void => 0,
        }
    }

    /// Bit width for integer types; `None` otherwise.
    pub fn int_bits(self) -> Option<u32> {
        match self {
            Ty::I1 => Some(1),
            Ty::I32 => Some(32),
            Ty::I64 => Some(64),
            _ => None,
        }
    }

    /// Textual keyword used by the printer/parser.
    pub fn keyword(self) -> &'static str {
        match self {
            Ty::I1 => "i1",
            Ty::I32 => "i32",
            Ty::I64 => "i64",
            Ty::F32 => "f32",
            Ty::F64 => "f64",
            Ty::Ptr => "ptr",
            Ty::Void => "void",
        }
    }

    /// Parse a type keyword; inverse of [`Ty::keyword`].
    pub fn from_keyword(s: &str) -> Option<Ty> {
        Some(match s {
            "i1" => Ty::I1,
            "i32" => Ty::I32,
            "i64" => Ty::I64,
            "f32" => Ty::F32,
            "f64" => Ty::F64,
            "ptr" => Ty::Ptr,
            "void" => Ty::Void,
            _ => return None,
        })
    }

    /// Wrap an integer value to the representable range of this integer
    /// type (two's-complement truncation). Panics on non-integer types.
    pub fn wrap_int(self, v: i128) -> i64 {
        match self {
            Ty::I1 => (v & 1) as i64,
            Ty::I32 => v as i32 as i64,
            Ty::I64 => v as i64,
            _ => panic!("wrap_int on non-integer type {self}"),
        }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Ty; 7] = [Ty::I1, Ty::I32, Ty::I64, Ty::F32, Ty::F64, Ty::Ptr, Ty::Void];

    #[test]
    fn keyword_round_trips() {
        for ty in ALL {
            assert_eq!(Ty::from_keyword(ty.keyword()), Some(ty));
        }
        assert_eq!(Ty::from_keyword("i128"), None);
    }

    #[test]
    fn classification_is_disjoint() {
        for ty in ALL {
            assert!(!(ty.is_int() && ty.is_float()), "{ty} both int and float");
        }
        assert!(Ty::I1.is_int());
        assert!(Ty::F64.is_float());
        assert!(!Ty::Ptr.is_int());
        assert!(!Ty::Void.is_first_class());
        assert!(Ty::Ptr.is_first_class());
    }

    #[test]
    fn sizes_match_x86_64() {
        assert_eq!(Ty::I32.size_bytes(), 4);
        assert_eq!(Ty::F64.size_bytes(), 8);
        assert_eq!(Ty::Ptr.size_bytes(), 8);
        assert_eq!(Ty::Void.size_bytes(), 0);
    }

    #[test]
    fn wrap_int_truncates_two_complement() {
        assert_eq!(Ty::I32.wrap_int(i128::from(i64::MAX)), -1);
        assert_eq!(Ty::I32.wrap_int(1 << 31), i64::from(i32::MIN));
        assert_eq!(Ty::I1.wrap_int(3), 1);
        assert_eq!(Ty::I64.wrap_int(-5), -5);
    }

    #[test]
    #[should_panic(expected = "wrap_int on non-integer")]
    fn wrap_int_rejects_floats() {
        Ty::F32.wrap_int(0);
    }
}
