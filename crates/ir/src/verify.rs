//! Structural and SSA verification.
//!
//! `verify_function` checks the invariants every pass must preserve:
//!
//! 1. every reachable block ends with exactly one terminator, and no
//!    terminator appears mid-block;
//! 2. phis appear only at the head of a block, have one incoming per
//!    CFG predecessor, and no duplicates;
//! 3. every instruction operand refers to an attached instruction whose
//!    definition dominates the use (for phis: dominates the incoming edge's
//!    predecessor);
//! 4. operand references (args, blocks, globals) are in range;
//! 5. simple type sanity (terminators/stores are `Void`, compares are `i1`,
//!    value-producing instructions are first-class).

use crate::analysis::{predecessors, reachable, DomTree};
use crate::function::{BlockId, Function};
use crate::instr::{InstrId, Opcode, Operand};
use crate::module::Module;
use crate::types::Ty;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    pub function: String,
    pub msg: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "verify error in @{}: {}", self.function, self.msg)
    }
}

impl std::error::Error for VerifyError {}

fn fail<T>(f: &Function, msg: impl Into<String>) -> Result<T, VerifyError> {
    Err(VerifyError { function: f.name.clone(), msg: msg.into() })
}

/// Verify every function of a module and that call targets exist.
pub fn verify_module(m: &Module) -> Result<(), VerifyError> {
    let names: HashSet<&str> = m.functions.iter().map(|f| f.name.as_str()).collect();
    for f in &m.functions {
        verify_function(f)?;
        for (_, _, id) in f.iter_attached() {
            if let Opcode::Call { callee } = &f.instr(id).op {
                if !names.contains(callee.as_str()) && !is_runtime_intrinsic(callee) {
                    return fail(f, format!("call to undefined function @{callee}"));
                }
            }
            for op in &f.instr(id).operands {
                if let Operand::Global(g) = op {
                    if g.index() >= m.globals.len() {
                        return fail(f, format!("global id {} out of range", g.0));
                    }
                }
            }
        }
    }
    Ok(())
}

/// Runtime functions that may be called without a module-level declaration
/// (the OpenMP runtime surface the workloads use).
pub fn is_runtime_intrinsic(name: &str) -> bool {
    matches!(
        name,
        "omp_get_thread_num"
            | "omp_get_num_threads"
            | "kmpc_barrier"
            | "kmpc_reduce"
            | "kmpc_for_static_init"
            | "kmpc_critical"
            | "kmpc_end_critical"
            | "sqrt"
            | "fabs"
            | "exp"
            | "log"
            | "pow"
            | "rand_r"
    )
}

/// Verify a single function (see module docs for the checked invariants).
pub fn verify_function(f: &Function) -> Result<(), VerifyError> {
    if f.is_declaration() {
        if !f.blocks.is_empty() {
            return fail(f, "declaration with a body");
        }
        return Ok(());
    }
    if f.blocks.is_empty() {
        return fail(f, "function with no blocks");
    }

    let reach = reachable(f);
    let preds = predecessors(f);
    let dom = DomTree::compute(f);

    // Map each attached instruction to (block, position); reject sharing.
    let mut location: HashMap<InstrId, (BlockId, usize)> = HashMap::new();
    for (bid, pos, id) in f.iter_attached() {
        if location.insert(id, (bid, pos)).is_some() {
            return fail(f, format!("instruction {id:?} attached more than once"));
        }
    }

    for (bid, block) in f.iter_blocks() {
        if !reach[bid.index()] {
            continue; // unreachable blocks are tolerated (passes clean them up)
        }
        let n = block.instrs.len();
        if n == 0 {
            return fail(f, format!("reachable block bb{} is empty", bid.0));
        }
        let mut seen_non_phi = false;
        for (pos, &id) in block.instrs.iter().enumerate() {
            let instr = f.instr(id);
            let is_term = instr.op.is_terminator();
            if is_term && pos + 1 != n {
                return fail(f, format!("terminator mid-block in bb{}", bid.0));
            }
            if pos + 1 == n && !is_term {
                return fail(f, format!("bb{} does not end with a terminator", bid.0));
            }
            match instr.op {
                Opcode::Phi => {
                    if seen_non_phi {
                        return fail(f, format!("phi after non-phi in bb{}", bid.0));
                    }
                    verify_phi(f, bid, id, &preds[bid.index()])?;
                }
                _ => seen_non_phi = true,
            }
            verify_types(f, id)?;
            verify_operands(f, bid, id, &location, &dom, &reach)?;
        }
    }
    Ok(())
}

fn verify_phi(
    f: &Function,
    bid: BlockId,
    id: InstrId,
    preds: &[BlockId],
) -> Result<(), VerifyError> {
    let instr = f.instr(id);
    if instr.operands.len() % 2 != 0 {
        return fail(f, format!("phi in bb{} has odd operand count", bid.0));
    }
    let mut incoming: HashSet<BlockId> = HashSet::new();
    for (b, _) in instr.phi_incomings() {
        if !incoming.insert(b) {
            return fail(f, format!("phi in bb{} has duplicate incoming bb{}", bid.0, b.0));
        }
    }
    let pred_set: HashSet<BlockId> = preds.iter().copied().collect();
    if incoming != pred_set {
        return fail(
            f,
            format!(
                "phi in bb{} incomings {:?} do not match predecessors {:?}",
                bid.0,
                incoming.iter().map(|b| b.0).collect::<Vec<_>>(),
                pred_set.iter().map(|b| b.0).collect::<Vec<_>>()
            ),
        );
    }
    Ok(())
}

fn verify_types(f: &Function, id: InstrId) -> Result<(), VerifyError> {
    let instr = f.instr(id);
    match &instr.op {
        op if op.is_terminator() && instr.ty != Ty::Void => {
            return fail(f, "terminator with non-void type");
        }
        Opcode::Store => {
            if instr.ty != Ty::Void {
                return fail(f, "store with non-void type");
            }
            if instr.operands.len() != 2 {
                return fail(f, "store needs exactly (value, pointer)");
            }
        }
        Opcode::Icmp(_) | Opcode::Fcmp(_) if instr.ty != Ty::I1 => {
            return fail(f, "compare must have type i1");
        }
        Opcode::Load => {
            if !instr.ty.is_first_class() {
                return fail(f, "load must produce a value");
            }
            if instr.operands.len() != 1 {
                return fail(f, "load takes exactly one pointer operand");
            }
        }
        Opcode::Gep { .. } if instr.ty != Ty::Ptr => {
            return fail(f, "gep must produce ptr");
        }
        Opcode::Alloca { .. } if instr.ty != Ty::Ptr => {
            return fail(f, "alloca must produce ptr");
        }
        op if op.is_binary() => {
            if instr.operands.len() != 2 {
                return fail(f, format!("{op} needs two operands"));
            }
            if !instr.ty.is_first_class() {
                return fail(f, "binary op must produce a value");
            }
        }
        _ => {}
    }
    Ok(())
}

fn verify_operands(
    f: &Function,
    bid: BlockId,
    id: InstrId,
    location: &HashMap<InstrId, (BlockId, usize)>,
    dom: &DomTree,
    reach: &[bool],
) -> Result<(), VerifyError> {
    let instr = f.instr(id);
    let is_phi = matches!(instr.op, Opcode::Phi);
    let use_loc = location[&id];

    for (opi, op) in instr.operands.iter().enumerate() {
        match *op {
            Operand::Arg(i) => {
                if i as usize >= f.params.len() {
                    return fail(f, format!("arg %a{i} out of range"));
                }
            }
            Operand::Block(b) => {
                if b.index() >= f.blocks.len() {
                    return fail(f, format!("block ref bb{} out of range", b.0));
                }
            }
            Operand::Instr(def) => {
                let Some(&(def_b, def_pos)) = location.get(&def) else {
                    return fail(f, format!("use of detached instruction {def:?}"));
                };
                if !f.instr(def).ty.is_first_class() {
                    return fail(f, "use of a void instruction result");
                }
                if !reach[def_b.index()] {
                    // Defs in unreachable code only used from unreachable code.
                    if reach[bid.index()] {
                        return fail(f, "reachable use of unreachable definition");
                    }
                    continue;
                }
                if is_phi {
                    // The def must dominate the incoming edge's predecessor.
                    let pred = instr.operands[opi - 1]
                        .as_block()
                        .expect("phi operand layout: (block, value)*");
                    if !(dom.dominates(def_b, pred)) {
                        return fail(
                            f,
                            format!(
                                "phi incoming value {def:?} does not dominate edge bb{}",
                                pred.0
                            ),
                        );
                    }
                } else if def_b == bid {
                    if def_pos >= use_loc.1 {
                        return fail(
                            f,
                            format!("def {def:?} does not precede its use in bb{}", bid.0),
                        );
                    }
                } else if !dom.dominates(def_b, bid) {
                    return fail(
                        f,
                        format!("def in bb{} does not dominate use in bb{}", def_b.0, bid.0),
                    );
                }
            }
            Operand::ConstInt(_) | Operand::ConstFloat(_) | Operand::Global(_) => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{iconst, FunctionBuilder};
    use crate::function::FunctionKind;
    use crate::instr::{Instr, IntPred};

    #[test]
    fn missing_terminator_is_rejected() {
        let mut f = Function::new("f", vec![], Ty::Void, FunctionKind::Normal);
        let e = f.entry();
        f.push_instr(
            e,
            Instr::new(Opcode::Add, Ty::I64, vec![Operand::ConstInt(1), Operand::ConstInt(2)]),
        );
        let err = verify_function(&f).unwrap_err();
        assert!(err.msg.contains("terminator"), "{err}");
    }

    #[test]
    fn terminator_mid_block_is_rejected() {
        let mut f = Function::new("f", vec![], Ty::Void, FunctionKind::Normal);
        let e = f.entry();
        f.push_instr(e, Instr::new(Opcode::Ret, Ty::Void, vec![]));
        f.push_instr(e, Instr::new(Opcode::Ret, Ty::Void, vec![]));
        let err = verify_function(&f).unwrap_err();
        assert!(err.msg.contains("mid-block"), "{err}");
    }

    #[test]
    fn use_before_def_in_same_block_is_rejected() {
        let mut f = Function::new("f", vec![], Ty::Void, FunctionKind::Normal);
        let e = f.entry();
        // alloc the add first but attach it after its user
        let a = f.alloc_instr(Instr::new(
            Opcode::Add,
            Ty::I64,
            vec![Operand::ConstInt(1), Operand::ConstInt(2)],
        ));
        let u = f.alloc_instr(Instr::new(
            Opcode::Mul,
            Ty::I64,
            vec![Operand::Instr(a), Operand::ConstInt(3)],
        ));
        f.blocks[e.index()].instrs.push(u);
        f.blocks[e.index()].instrs.push(a);
        let r = f.alloc_instr(Instr::new(Opcode::Ret, Ty::Void, vec![]));
        f.blocks[e.index()].instrs.push(r);
        let err = verify_function(&f).unwrap_err();
        assert!(err.msg.contains("precede"), "{err}");
    }

    #[test]
    fn cross_block_dominance_is_enforced() {
        // entry -> {a, b} -> join; def in a used in join (not dominated).
        let mut b = FunctionBuilder::new("f", vec![Ty::I64], Ty::I64, FunctionKind::Normal);
        let ba = b.new_block();
        let bb = b.new_block();
        let j = b.new_block();
        let c = b.icmp(IntPred::Slt, b.arg(0), iconst(0));
        b.cond_br(c, ba, bb);
        b.switch_to(ba);
        let v = b.add(Ty::I64, b.arg(0), iconst(1));
        b.br(j);
        b.switch_to(bb);
        b.br(j);
        b.switch_to(j);
        b.ret(Some(v)); // v does not dominate join
        let f = b.finish();
        let err = verify_function(&f).unwrap_err();
        assert!(err.msg.contains("dominate"), "{err}");
    }

    #[test]
    fn phi_incoming_mismatch_is_rejected() {
        let text = "module \"m\"\nfunc @f() -> void {\nbb0:\n  br bb1\nbb1:\n  %0 = phi i64 bb0, 1, bb2, 2\n  ret\nbb2:\n  br bb1\n}\n";
        // bb2 is unreachable, so bb1's only *actual* predecessor is bb0 —
        // but wait: predecessors() is computed over all blocks including
        // unreachable ones, so bb2 IS a predecessor edge. This phi matches.
        let m = crate::parser::parse_module(text).unwrap();
        verify_module(&m).expect("phi matches CFG predecessors");

        let bad = "module \"m\"\nfunc @f() -> void {\nbb0:\n  br bb1\nbb1:\n  %0 = phi i64 bb0, 1, bb0, 2\n  ret\n}\n";
        let m = crate::parser::parse_module(bad).unwrap();
        let err = verify_module(&m).unwrap_err();
        assert!(err.msg.contains("duplicate incoming"), "{err}");
    }

    #[test]
    fn unknown_callee_is_rejected_but_runtime_is_allowed() {
        let ok = "module \"m\"\nfunc @f() -> void {\nbb0:\n  %0 = call.@omp_get_thread_num i32\n  ret\n}\n";
        verify_module(&crate::parser::parse_module(ok).unwrap()).expect("runtime intrinsic ok");
        let bad = "module \"m\"\nfunc @f() -> void {\nbb0:\n  %0 = call.@missing i32\n  ret\n}\n";
        let err = verify_module(&crate::parser::parse_module(bad).unwrap()).unwrap_err();
        assert!(err.msg.contains("undefined function"), "{err}");
    }

    #[test]
    fn compare_must_be_i1() {
        let mut f = Function::new("f", vec![], Ty::Void, FunctionKind::Normal);
        let e = f.entry();
        f.push_instr(
            e,
            Instr::new(
                Opcode::Icmp(IntPred::Eq),
                Ty::I64,
                vec![Operand::ConstInt(0), Operand::ConstInt(0)],
            ),
        );
        f.push_instr(e, Instr::new(Opcode::Ret, Ty::Void, vec![]));
        let err = verify_function(&f).unwrap_err();
        assert!(err.msg.contains("i1"), "{err}");
    }
}
