//! Property-based tests for the IR: randomly generated (but valid-by-
//! construction) functions must verify, print, re-parse to an equal module,
//! and survive compaction.

use irnuma_ir::builder::{fconst, iconst, FunctionBuilder};
use irnuma_ir::{parse_module, print_module, verify_module, FunctionKind, Module, Operand, Ty};
use proptest::prelude::*;

/// A tiny recipe language for generating valid straight-line/loop kernels.
#[derive(Debug, Clone)]
enum Step {
    IntArith(u8, i64),
    FloatArith(u8, f64),
    LoadStore(u8),
    AtomicAdd,
    CallRt,
    Loop(Vec<Step>),
}

fn step_strategy(depth: u32) -> impl Strategy<Value = Step> {
    let leaf = prop_oneof![
        (0u8..6, -100i64..100).prop_map(|(k, v)| Step::IntArith(k, v)),
        (0u8..4, -1e3..1e3).prop_map(|(k, v)| Step::FloatArith(k, v)),
        (0u8..3).prop_map(Step::LoadStore),
        Just(Step::AtomicAdd),
        Just(Step::CallRt),
    ];
    leaf.prop_recursive(depth, 24, 4, |inner| {
        prop::collection::vec(inner, 1..4).prop_map(Step::Loop)
    })
}

fn emit(b: &mut FunctionBuilder, base: Operand, cursor: &mut Operand, steps: &[Step]) {
    for s in steps {
        match s {
            Step::IntArith(k, v) => {
                let c = iconst(*v);
                *cursor = match k % 6 {
                    0 => b.add(Ty::I64, *cursor, c),
                    1 => b.sub(Ty::I64, *cursor, c),
                    2 => b.mul(Ty::I64, *cursor, iconst((*v).rem_euclid(7) + 1)),
                    3 => b.and(Ty::I64, *cursor, iconst(0xffff)),
                    4 => b.xor(Ty::I64, *cursor, c),
                    _ => b.shl(Ty::I64, *cursor, iconst((v.unsigned_abs() % 8) as i64)),
                };
            }
            Step::FloatArith(k, v) => {
                let idx = b.and(Ty::I64, *cursor, iconst(255));
                let p = b.gep(Ty::F64, base, idx);
                let x = b.load(Ty::F64, p);
                let y = match k % 4 {
                    0 => b.fadd(Ty::F64, x, fconst(*v)),
                    1 => b.fmul(Ty::F64, x, fconst(*v)),
                    2 => b.fsub(Ty::F64, x, fconst(*v)),
                    _ => b.fmuladd(Ty::F64, x, fconst(*v), fconst(1.0)),
                };
                b.store(y, p);
            }
            Step::LoadStore(k) => {
                let idx = b.and(Ty::I64, *cursor, iconst(127));
                let p = b.gep(Ty::I64, base, idx);
                match k % 3 {
                    0 => {
                        let v = b.load(Ty::I64, p);
                        *cursor = b.add(Ty::I64, *cursor, v);
                    }
                    1 => b.store(*cursor, p),
                    _ => {
                        let v = b.load(Ty::I64, p);
                        b.store(v, p);
                    }
                }
            }
            Step::AtomicAdd => {
                let idx = b.and(Ty::I64, *cursor, iconst(63));
                let p = b.gep(Ty::I64, base, idx);
                b.atomic_rmw(irnuma_ir::RmwOp::Add, Ty::I64, p, iconst(1));
            }
            Step::CallRt => {
                let t = b.call("omp_get_thread_num", Ty::I32, vec![]);
                let t64 = b.cast(irnuma_ir::CastKind::Sext, Ty::I64, t);
                *cursor = b.add(Ty::I64, *cursor, t64);
            }
            Step::Loop(body) => {
                let hi = b.and(Ty::I64, *cursor, iconst(15));
                b.counted_loop(iconst(0), hi, iconst(1), |b, i| {
                    let mut inner = i;
                    emit(b, base, &mut inner, body);
                });
            }
        }
    }
}

fn build_module(steps: &[Step]) -> Module {
    let mut m = Module::new("prop");
    let g = m.add_global("data", Ty::F64, 4096);
    let mut b = FunctionBuilder::new(
        ".omp_outlined.prop",
        vec![Ty::I64, Ty::I64],
        Ty::Void,
        FunctionKind::OmpOutlined,
    );
    let base = b.global(g);
    let mut cursor = b.arg(0);
    emit(&mut b, base, &mut cursor, steps);
    b.ret(None);
    m.add_function(b.finish());
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_functions_verify(steps in prop::collection::vec(step_strategy(3), 1..8)) {
        let m = build_module(&steps);
        verify_module(&m).expect("builder output must verify");
    }

    #[test]
    fn print_parse_roundtrip_is_fixpoint(steps in prop::collection::vec(step_strategy(3), 1..8)) {
        let m = build_module(&steps);
        let t1 = print_module(&m);
        let parsed = parse_module(&t1).expect("printed modules parse");
        verify_module(&parsed).expect("parsed modules verify");
        let t2 = print_module(&parsed);
        prop_assert_eq!(t1, t2);
    }

    #[test]
    fn compaction_preserves_text(steps in prop::collection::vec(step_strategy(2), 1..6)) {
        let m = build_module(&steps);
        let before = print_module(&m);
        let mut m2 = m.clone();
        for f in &mut m2.functions {
            f.compact();
        }
        verify_module(&m2).expect("compacted module verifies");
        prop_assert_eq!(before, print_module(&m2));
    }

    #[test]
    fn extraction_keeps_region_text_stable(steps in prop::collection::vec(step_strategy(2), 1..6)) {
        let m = build_module(&steps);
        let e = irnuma_ir::extract::extract_region(&m, ".omp_outlined.prop").expect("region exists");
        verify_module(&e).expect("extracted verifies");
        // The single-function module's body must be unchanged by extraction.
        let f_before = m.function(".omp_outlined.prop").unwrap();
        let f_after = e.function(".omp_outlined.prop").unwrap();
        prop_assert_eq!(f_before.num_attached(), f_after.num_attached());
    }
}
