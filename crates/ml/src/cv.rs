//! Deterministic k-fold cross-validation splits (paper: 10 folds over the
//! 56 regions, each validation fold ≈ 5 unseen programs).

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Split `n` items into `k` folds: returns per-fold index lists.
/// Items are shuffled with `seed`, then dealt round-robin so fold sizes
/// differ by at most one.
pub fn kfold(n: usize, k: usize, seed: u64) -> Vec<Vec<usize>> {
    assert!(k >= 2, "need at least two folds");
    assert!(n >= k, "more folds than items");
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(&mut ChaCha8Rng::seed_from_u64(seed));
    let mut folds = vec![Vec::with_capacity(n / k + 1); k];
    for (i, v) in idx.into_iter().enumerate() {
        folds[i % k].push(v);
    }
    folds
}

/// Complement of a fold: the training indices.
pub fn train_indices(folds: &[Vec<usize>], validation_fold: usize) -> Vec<usize> {
    folds
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != validation_fold)
        .flat_map(|(_, f)| f.iter().copied())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn folds_partition_the_items() {
        let folds = kfold(56, 10, 42);
        assert_eq!(folds.len(), 10);
        let all: HashSet<usize> = folds.iter().flatten().copied().collect();
        assert_eq!(all.len(), 56);
        let sizes: Vec<usize> = folds.iter().map(Vec::len).collect();
        assert!(sizes.iter().all(|&s| s == 5 || s == 6), "{sizes:?}");
    }

    #[test]
    fn train_indices_complement_validation() {
        let folds = kfold(20, 4, 1);
        for v in 0..4 {
            let train = train_indices(&folds, v);
            assert_eq!(train.len(), 15);
            for i in &folds[v] {
                assert!(!train.contains(i));
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(kfold(30, 5, 7), kfold(30, 5, 7));
        assert_ne!(kfold(30, 5, 7), kfold(30, 5, 8));
    }

    #[test]
    #[should_panic(expected = "more folds than items")]
    fn too_many_folds_panics() {
        kfold(3, 10, 0);
    }
}
