//! Deterministic k-fold cross-validation splits (paper: 10 folds over the
//! 56 regions, each validation fold ≈ 5 unseen programs).

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fmt;

/// Why a cross-validation split is impossible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CvError {
    /// Fewer than two folds requested.
    TooFewFolds { k: usize },
    /// More folds than items to distribute.
    TooFewItems { n: usize, k: usize },
}

impl fmt::Display for CvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CvError::TooFewFolds { k } => {
                write!(f, "cross-validation needs at least 2 folds, got {k}")
            }
            CvError::TooFewItems { n, k } => {
                write!(f, "cannot split {n} items into {k} folds (more folds than items)")
            }
        }
    }
}

impl std::error::Error for CvError {}

/// Split `n` items into `k` folds: returns per-fold index lists.
/// Items are shuffled with `seed`, then dealt round-robin so fold sizes
/// differ by at most one.
pub fn kfold(n: usize, k: usize, seed: u64) -> Result<Vec<Vec<usize>>, CvError> {
    if k < 2 {
        return Err(CvError::TooFewFolds { k });
    }
    if n < k {
        return Err(CvError::TooFewItems { n, k });
    }
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(&mut ChaCha8Rng::seed_from_u64(seed));
    let mut folds = vec![Vec::with_capacity(n / k + 1); k];
    for (i, v) in idx.into_iter().enumerate() {
        folds[i % k].push(v);
    }
    Ok(folds)
}

/// Complement of a fold: the training indices.
pub fn train_indices(folds: &[Vec<usize>], validation_fold: usize) -> Vec<usize> {
    folds
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != validation_fold)
        .flat_map(|(_, f)| f.iter().copied())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn folds_partition_the_items() {
        let folds = kfold(56, 10, 42).unwrap();
        assert_eq!(folds.len(), 10);
        let all: HashSet<usize> = folds.iter().flatten().copied().collect();
        assert_eq!(all.len(), 56);
        let sizes: Vec<usize> = folds.iter().map(Vec::len).collect();
        assert!(sizes.iter().all(|&s| s == 5 || s == 6), "{sizes:?}");
    }

    #[test]
    fn train_indices_complement_validation() {
        let folds = kfold(20, 4, 1).unwrap();
        for v in 0..4 {
            let train = train_indices(&folds, v);
            assert_eq!(train.len(), 15);
            for i in &folds[v] {
                assert!(!train.contains(i));
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(kfold(30, 5, 7).unwrap(), kfold(30, 5, 7).unwrap());
        assert_ne!(kfold(30, 5, 7).unwrap(), kfold(30, 5, 8).unwrap());
    }

    #[test]
    fn impossible_splits_are_typed_errors_not_panics() {
        assert_eq!(kfold(3, 10, 0), Err(CvError::TooFewItems { n: 3, k: 10 }));
        assert_eq!(kfold(10, 1, 0), Err(CvError::TooFewFolds { k: 1 }));
        assert_eq!(kfold(10, 0, 0), Err(CvError::TooFewFolds { k: 0 }));
        let msg = CvError::TooFewItems { n: 3, k: 10 }.to_string();
        assert!(msg.contains("3 items") && msg.contains("10 folds"), "{msg}");
    }
}
