//! Genetic-algorithm feature-subset selection, mirroring the paper's
//! pyeasyga setup: population 500, crossover probability 0.8, mutation rate
//! 0.1. An individual is a set of `k` distinct feature indices (the paper
//! subsets 10 of the 256 embedding dimensions).

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap, HashSet};

/// GA hyper-parameters (paper defaults).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GaParams {
    pub population: usize,
    pub generations: usize,
    pub crossover_prob: f64,
    pub mutation_rate: f64,
    pub seed: u64,
}

impl Default for GaParams {
    fn default() -> Self {
        GaParams {
            population: 500,
            generations: 30,
            crossover_prob: 0.8,
            mutation_rate: 0.1,
            seed: 23,
        }
    }
}

/// The optimizer. Maximizes a caller-provided fitness over k-subsets of
/// `0..n_features`.
pub struct Ga {
    pub params: GaParams,
}

type Individual = Vec<usize>;

impl Ga {
    pub fn new(params: GaParams) -> Ga {
        Ga { params }
    }

    fn random_individual(n: usize, k: usize, rng: &mut ChaCha8Rng) -> Individual {
        let mut all: Vec<usize> = (0..n).collect();
        all.shuffle(rng);
        let mut ind: Individual = all.into_iter().take(k).collect();
        ind.sort_unstable();
        ind
    }

    fn crossover(
        a: &Individual,
        b: &Individual,
        k: usize,
        n: usize,
        rng: &mut ChaCha8Rng,
    ) -> Individual {
        let mut pool: BTreeSet<usize> = a.iter().chain(b.iter()).copied().collect();
        let mut merged: Vec<usize> = pool.iter().copied().collect();
        merged.shuffle(rng);
        merged.truncate(k);
        while merged.len() < k {
            let cand = rng.gen_range(0..n);
            if !merged.contains(&cand) {
                merged.push(cand);
            }
            pool.insert(cand);
        }
        merged.sort_unstable();
        merged
    }

    fn mutate(ind: &mut Individual, n: usize, rng: &mut ChaCha8Rng, rate: f64) {
        for slot in 0..ind.len() {
            if rng.gen_bool(rate) {
                loop {
                    let cand = rng.gen_range(0..n);
                    if !ind.contains(&cand) {
                        ind[slot] = cand;
                        break;
                    }
                }
            }
        }
        ind.sort_unstable();
    }

    /// Run the GA; returns the best subset found and its fitness.
    /// `fitness` is maximized and must be deterministic.
    pub fn select_features(
        &self,
        n_features: usize,
        k: usize,
        fitness: impl Fn(&[usize]) -> f64 + Sync,
    ) -> (Vec<usize>, f64) {
        assert!(k <= n_features, "cannot select {k} of {n_features}");
        let p = self.params;
        let mut ga_span = irnuma_obs::span!(
            "ml.ga",
            population = p.population,
            generations = p.generations,
            features = n_features,
            k = k
        );
        let mut rng = ChaCha8Rng::seed_from_u64(p.seed);
        let mut pop: Vec<Individual> =
            (0..p.population).map(|_| Self::random_individual(n_features, k, &mut rng)).collect();

        // Memoized parallel evaluation. Elitism re-submits the best
        // individual every generation and crossover/mutation frequently
        // reproduce subsets seen before, so only *new* genomes pay the
        // fitness call: duplicates are deduplicated within the generation
        // (first-seen order keeps the parallel map's work list — and hence
        // the result — deterministic) and resolved from the cache across
        // generations. Sound because `fitness` must be deterministic.
        let mut cache: HashMap<Individual, f64> = HashMap::new();
        // Fitness workers adopt the GA span's context: with a trace sink
        // installed, every evaluation shows up as an `ml.ga_eval` span
        // under `ml.ga` in the forest (inert otherwise).
        let ga_ctx = ga_span.ctx();
        let eval = |pop: &[Individual], cache: &mut HashMap<Individual, f64>| -> Vec<f64> {
            use rayon::prelude::*;
            let mut fresh: Vec<&Individual> = Vec::new();
            let mut queued: HashSet<&Individual> = HashSet::new();
            for ind in pop {
                if !cache.contains_key(ind) && queued.insert(ind) {
                    fresh.push(ind);
                }
            }
            if irnuma_obs::telemetry_enabled() {
                irnuma_obs::counter!("ml.ga_fitness_evals").inc(fresh.len() as u64);
                irnuma_obs::counter!("ml.ga_fitness_cached").inc((pop.len() - fresh.len()) as u64);
            }
            let scores: Vec<f64> = fresh
                .par_iter()
                .map(|ind| {
                    let _g = irnuma_obs::span_fanout!(ga_ctx, "ml.ga_eval");
                    fitness(ind)
                })
                .collect();
            for (ind, score) in fresh.into_iter().zip(scores) {
                cache.insert(ind.clone(), score);
            }
            pop.iter().map(|ind| cache[ind]).collect()
        };

        let mut scores = eval(&pop, &mut cache);
        for _gen in 0..p.generations {
            // Elitism: keep the best individual.
            let best_i = argmax(&scores);
            let elite = pop[best_i].clone();

            let mut next: Vec<Individual> = vec![elite];
            while next.len() < p.population {
                // Tournament selection (size 2), as pyeasyga defaults.
                let pick = |rng: &mut ChaCha8Rng| -> usize {
                    let a = rng.gen_range(0..pop.len());
                    let b = rng.gen_range(0..pop.len());
                    if scores[a] >= scores[b] {
                        a
                    } else {
                        b
                    }
                };
                let pa = pick(&mut rng);
                let pb = pick(&mut rng);
                let mut child = if rng.gen_bool(p.crossover_prob) {
                    Self::crossover(&pop[pa], &pop[pb], k, n_features, &mut rng)
                } else {
                    pop[pa].clone()
                };
                Self::mutate(&mut child, n_features, &mut rng, p.mutation_rate);
                next.push(child);
            }
            pop = next;
            scores = eval(&pop, &mut cache);
        }
        let best_i = argmax(&scores);
        ga_span.field("best_fitness", scores[best_i]);
        (pop[best_i].clone(), scores[best_i])
    }
}

fn argmax(v: &[f64]) -> usize {
    v.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i).expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> GaParams {
        GaParams { population: 60, generations: 25, ..Default::default() }
    }

    #[test]
    fn finds_planted_informative_features() {
        // Fitness: number of selected features among the planted set.
        let planted: Vec<usize> = vec![3, 17, 42, 99, 123];
        let ga = Ga::new(small());
        let (best, score) = ga.select_features(128, 5, |sel| {
            sel.iter().filter(|f| planted.contains(f)).count() as f64
        });
        assert!(score >= 4.0, "found {best:?} (score {score})");
    }

    #[test]
    fn respects_subset_size_and_uniqueness() {
        let ga = Ga::new(small());
        let (best, _) = ga.select_features(64, 10, |sel| {
            // Any deterministic fitness.
            sel.iter().map(|&f| (f % 7) as f64).sum()
        });
        assert_eq!(best.len(), 10);
        let mut dedup = best.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 10, "indices are distinct (sorted by construction)");
        assert!(best.iter().all(|&f| f < 64));
    }

    #[test]
    fn deterministic_given_seed() {
        let ga = Ga::new(small());
        let f = |sel: &[usize]| sel.iter().map(|&v| ((v * 37) % 11) as f64).sum::<f64>();
        let a = ga.select_features(96, 6, f);
        let b = ga.select_features(96, 6, f);
        assert_eq!(a, b);
    }

    #[test]
    fn memoization_never_reevaluates_a_seen_genome() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let calls = AtomicUsize::new(0);
        let ga = Ga::new(small());
        let f = |sel: &[usize]| {
            calls.fetch_add(1, Ordering::Relaxed);
            sel.iter().map(|&v| ((v * 37) % 11) as f64).sum::<f64>()
        };
        let (best, score) = ga.select_features(96, 6, f);
        // 60 individuals × (1 initial + 25 generations) submissions; elitism
        // alone guarantees repeats, so the cache must absorb a good chunk.
        let submitted = 60 * 26;
        let evaluated = calls.load(Ordering::Relaxed);
        assert!(evaluated < submitted, "{evaluated} fitness calls for {submitted} submissions");
        // Caching must not change the outcome.
        let plain = |sel: &[usize]| sel.iter().map(|&v| ((v * 37) % 11) as f64).sum::<f64>();
        assert_eq!((best, score), ga.select_features(96, 6, plain));
    }

    #[test]
    #[should_panic(expected = "cannot select")]
    fn oversized_subset_panics() {
        Ga::new(small()).select_features(4, 10, |_| 0.0);
    }
}
