//! Configuration-label reduction (Sánchez Barrera et al., reused by the
//! paper): from the full 288/320-point space, select k configurations
//! (13, 6, or 2) such that picking the best of the k per region retains as
//! much of the full-space gains as possible.
//!
//! Greedy forward selection: start from the single configuration with the
//! best total gain, then repeatedly add the configuration that most
//! improves the attainable total. Greedy is the standard approach for this
//! submodular-style coverage objective.

/// Select `k` configuration indices from `times[region][config]`, where
/// `baseline[region]` is the default-configuration time.
///
/// Returns the chosen indices in selection order (most valuable first).
pub fn reduce_labels(times: &[Vec<f64>], baseline: &[f64], k: usize) -> Vec<usize> {
    assert!(!times.is_empty());
    let n_cfg = times[0].len();
    assert!(times.iter().all(|r| r.len() == n_cfg), "ragged time matrix");
    assert_eq!(times.len(), baseline.len());
    assert!(k >= 1 && k <= n_cfg);

    let mut chosen: Vec<usize> = Vec::with_capacity(k);
    // best_time[region] under the currently chosen set.
    let mut best_time: Vec<f64> = vec![f64::INFINITY; times.len()];

    for _ in 0..k {
        let mut best_cfg = None;
        let mut best_score = f64::MIN;
        for c in 0..n_cfg {
            if chosen.contains(&c) {
                continue;
            }
            // Total speedup sum if we add c.
            let score: f64 = times
                .iter()
                .zip(&best_time)
                .zip(baseline)
                .map(|((row, &bt), &base)| base / bt.min(row[c]))
                .sum();
            if score > best_score {
                best_score = score;
                best_cfg = Some(c);
            }
        }
        let c = best_cfg.expect("space has unchosen configs");
        chosen.push(c);
        for (r, row) in times.iter().enumerate() {
            best_time[r] = best_time[r].min(row[c]);
        }
    }
    chosen
}

/// Fraction of full-space gains retained by a label set:
/// `mean(base/best_of_set) / mean(base/best_of_space)`.
pub fn coverage(times: &[Vec<f64>], baseline: &[f64], chosen: &[usize]) -> f64 {
    let mut got = 0.0;
    let mut full = 0.0;
    for (r, row) in times.iter().enumerate() {
        let best_all = row.iter().cloned().fold(f64::INFINITY, f64::min);
        let best_set = chosen.iter().map(|&c| row[c]).fold(f64::INFINITY, f64::min);
        got += baseline[r] / best_set;
        full += baseline[r] / best_all;
    }
    got / full
}

/// For each region, the index (within `chosen`) of its best configuration —
/// the training label of the static model.
pub fn label_per_region(times: &[Vec<f64>], chosen: &[usize]) -> Vec<usize> {
    times
        .iter()
        .map(|row| {
            // First strict minimum: ties resolve to the earliest-selected
            // (most valuable) configuration, deterministically.
            let mut best = 0usize;
            for (i, &c) in chosen.iter().enumerate() {
                if row[c] < row[chosen[best]] {
                    best = i;
                }
            }
            best
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 4 regions × 5 configs; config 4 is the default-ish mediocre one.
    fn toy() -> (Vec<Vec<f64>>, Vec<f64>) {
        let times = vec![
            vec![1.0, 5.0, 5.0, 5.0, 4.0], // region 0 wants cfg 0
            vec![5.0, 1.0, 5.0, 5.0, 4.0], // region 1 wants cfg 1
            vec![5.0, 5.0, 1.0, 5.0, 4.0], // region 2 wants cfg 2
            vec![5.0, 1.2, 5.0, 1.0, 4.0], // region 3 wants cfg 3, cfg 1 close
        ];
        let baseline = vec![4.0, 4.0, 4.0, 4.0];
        (times, baseline)
    }

    #[test]
    fn greedy_picks_the_winners() {
        let (times, base) = toy();
        let chosen = reduce_labels(&times, &base, 2);
        // cfg 1 covers regions 1 and 3 well; cfg 0 or 2 next.
        assert!(chosen.contains(&1), "{chosen:?}");
        assert_eq!(chosen.len(), 2);
    }

    #[test]
    fn full_k_reaches_full_coverage() {
        let (times, base) = toy();
        let chosen = reduce_labels(&times, &base, 5);
        let cov = coverage(&times, &base, &chosen);
        assert!((cov - 1.0).abs() < 1e-12);
    }

    #[test]
    fn coverage_grows_with_k() {
        let (times, base) = toy();
        let mut prev = 0.0;
        for k in 1..=5 {
            let chosen = reduce_labels(&times, &base, k);
            let cov = coverage(&times, &base, &chosen);
            assert!(cov >= prev - 1e-12, "coverage must be monotone in k");
            prev = cov;
        }
        assert!(prev > 0.99);
    }

    #[test]
    fn labels_point_to_best_in_set() {
        let (times, _) = toy();
        let chosen = vec![0, 1, 3];
        let labels = label_per_region(&times, &chosen);
        // Region 2's true winner (cfg 2) is not in the set: all chosen
        // configs tie at 5.0, so the first selected wins deterministically.
        assert_eq!(labels, vec![0, 1, 0, 2], "indices within the chosen set");
    }

    #[test]
    #[should_panic(expected = "ragged time matrix")]
    fn ragged_matrix_panics() {
        let times = vec![vec![1.0, 2.0], vec![1.0]];
        reduce_labels(&times, &[1.0, 1.0], 1);
    }
}
