//! # irnuma-ml — classical machine-learning substrate
//!
//! Everything non-neural the paper uses:
//!
//! * [`tree::DecisionTree`] — a CART classifier with Gini impurity and
//!   scikit-learn's default settings (unbounded depth, `min_samples_split =
//!   2`, `min_samples_leaf = 1`). The paper feeds it the GNN embeddings for
//!   the hybrid and flag-prediction models, and the performance counters
//!   for the dynamic baseline.
//! * [`ga::Ga`] — a pyeasyga-style genetic algorithm (population 500,
//!   crossover 0.8, mutation 0.1) used to pick a 10-of-256 feature subset.
//! * [`cv`] — deterministic k-fold cross-validation splits (the paper uses
//!   10 folds over the 56 regions).
//! * [`labels`] — the configuration-label reduction of Sánchez Barrera et
//!   al.: greedily select the k configurations (13/6/2) that retain the
//!   most of the full space's gains.
//! * [`metrics`] — relative differences, arithmetic-mean speedups, accuracy.

pub mod cv;
pub mod ga;
pub mod labels;
pub mod metrics;
pub mod tree;

pub use cv::{kfold, CvError};
pub use ga::{Ga, GaParams};
pub use labels::{coverage, reduce_labels};
pub use metrics::{accuracy, mean_speedup, relative_difference};
pub use tree::{DecisionTree, TreeParams};
