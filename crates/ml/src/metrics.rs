//! Evaluation metrics used throughout the experiments.

/// The paper's prediction-error metric: the relative difference between two
/// times — absolute difference divided by the maximum absolute value.
/// Symmetric, in [0, 1] for same-sign values; 0 when equal.
pub fn relative_difference(a: f64, b: f64) -> f64 {
    if a == b {
        return 0.0;
    }
    let denom = a.abs().max(b.abs());
    if denom == 0.0 {
        0.0
    } else {
        (a - b).abs() / denom
    }
}

/// Arithmetic-mean speedup of `predicted` times against `baseline` times
/// (the paper's headline aggregate).
pub fn mean_speedup(baseline: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(baseline.len(), predicted.len());
    assert!(!baseline.is_empty());
    baseline.iter().zip(predicted).map(|(&b, &p)| b / p).sum::<f64>() / baseline.len() as f64
}

/// Classification accuracy.
pub fn accuracy(truth: &[usize], pred: &[usize]) -> f64 {
    assert_eq!(truth.len(), pred.len());
    if truth.is_empty() {
        return 1.0;
    }
    truth.iter().zip(pred).filter(|(a, b)| a == b).count() as f64 / truth.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_difference_properties() {
        assert_eq!(relative_difference(2.0, 2.0), 0.0);
        assert!((relative_difference(1.0, 2.0) - 0.5).abs() < 1e-12);
        assert_eq!(relative_difference(1.0, 2.0), relative_difference(2.0, 1.0), "symmetric");
        assert_eq!(relative_difference(0.0, 0.0), 0.0);
        assert!((relative_difference(0.0, 3.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_speedup_is_arithmetic() {
        let base = vec![4.0, 9.0];
        let pred = vec![2.0, 3.0];
        assert!((mean_speedup(&base, &pred) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn accuracy_counts_matches() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 0, 3]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 1.0);
    }
}
