//! CART decision tree with Gini impurity (scikit-learn default setup).

use serde::{Deserialize, Serialize};

/// Hyper-parameters; defaults mirror `sklearn.tree.DecisionTreeClassifier`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TreeParams {
    pub max_depth: Option<usize>,
    pub min_samples_split: usize,
    pub min_samples_leaf: usize,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams { max_depth: None, min_samples_split: 2, min_samples_leaf: 1 }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf { class: usize },
    Split { feat: usize, thresh: f32, left: usize, right: usize },
}

/// A fitted CART classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    params: TreeParams,
    n_features: usize,
}

fn gini(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    1.0 - counts.iter().map(|&c| (c as f64 / t).powi(2)).sum::<f64>()
}

fn majority(ys: &[usize], n_classes: usize) -> usize {
    let mut counts = vec![0usize; n_classes];
    for &y in ys {
        counts[y] += 1;
    }
    counts
        .iter()
        .enumerate()
        .max_by_key(|&(i, &c)| (c, std::cmp::Reverse(i)))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

impl DecisionTree {
    /// Fit on row-major features `x` (all rows same length) and labels `y`.
    pub fn fit(x: &[Vec<f32>], y: &[usize], params: TreeParams) -> DecisionTree {
        assert_eq!(x.len(), y.len());
        assert!(!x.is_empty(), "empty training set");
        let n_features = x[0].len();
        let n_classes = y.iter().copied().max().unwrap_or(0) + 1;
        let mut tree = DecisionTree { nodes: Vec::new(), params, n_features };
        let idx: Vec<usize> = (0..x.len()).collect();
        tree.build(x, y, &idx, n_classes, 0);
        tree
    }

    fn build(
        &mut self,
        x: &[Vec<f32>],
        y: &[usize],
        idx: &[usize],
        n_classes: usize,
        depth: usize,
    ) -> usize {
        let ys: Vec<usize> = idx.iter().map(|&i| y[i]).collect();
        let pure = ys.iter().all(|&v| v == ys[0]);
        let depth_stop = self.params.max_depth.is_some_and(|d| depth >= d);
        if pure || idx.len() < self.params.min_samples_split || depth_stop {
            let class = majority(&ys, n_classes);
            self.nodes.push(Node::Leaf { class });
            return self.nodes.len() - 1;
        }

        match self.best_split(x, y, idx, n_classes) {
            None => {
                let class = majority(&ys, n_classes);
                self.nodes.push(Node::Leaf { class });
                self.nodes.len() - 1
            }
            Some((feat, thresh, left_idx, right_idx)) => {
                // Reserve our slot, then recurse.
                self.nodes.push(Node::Leaf { class: 0 });
                let me = self.nodes.len() - 1;
                let left = self.build(x, y, &left_idx, n_classes, depth + 1);
                let right = self.build(x, y, &right_idx, n_classes, depth + 1);
                self.nodes[me] = Node::Split { feat, thresh, left, right };
                me
            }
        }
    }

    #[allow(clippy::type_complexity)]
    fn best_split(
        &self,
        x: &[Vec<f32>],
        y: &[usize],
        idx: &[usize],
        n_classes: usize,
    ) -> Option<(usize, f32, Vec<usize>, Vec<usize>)> {
        let total = idx.len();
        let mut best: Option<(f64, usize, f32)> = None;
        let parent_counts = {
            let mut c = vec![0usize; n_classes];
            for &i in idx {
                c[y[i]] += 1;
            }
            c
        };
        let parent_gini = gini(&parent_counts, total);

        // `feat` indexes the inner (feature) dimension of `x`, whose outer
        // length is n_samples — clippy's `x.iter().take(..)` suggestion
        // would iterate the wrong axis.
        #[allow(clippy::needless_range_loop)]
        for feat in 0..self.n_features {
            // Sort sample indices by feature value.
            let mut order: Vec<usize> = idx.to_vec();
            order.sort_by(|&a, &b| x[a][feat].total_cmp(&x[b][feat]).then(a.cmp(&b)));
            let mut left_counts = vec![0usize; n_classes];
            let mut right_counts = parent_counts.clone();
            for k in 0..total - 1 {
                let i = order[k];
                left_counts[y[i]] += 1;
                right_counts[y[i]] -= 1;
                let (va, vb) = (x[order[k]][feat], x[order[k + 1]][feat]);
                if va == vb {
                    continue; // not a valid threshold position
                }
                let nl = k + 1;
                let nr = total - nl;
                if nl < self.params.min_samples_leaf || nr < self.params.min_samples_leaf {
                    continue;
                }
                let score = (nl as f64 * gini(&left_counts, nl)
                    + nr as f64 * gini(&right_counts, nr))
                    / total as f64;
                let thresh = (va + vb) * 0.5;
                if best.is_none() || score < best.unwrap().0 - 1e-12 {
                    best = Some((score, feat, thresh));
                }
            }
        }

        let (score, feat, thresh) = best?;
        if score >= parent_gini - 1e-12 {
            return None; // no impurity decrease
        }
        let (mut l, mut r) = (Vec::new(), Vec::new());
        for &i in idx {
            if x[i][feat] <= thresh {
                l.push(i);
            } else {
                r.push(i);
            }
        }
        if l.is_empty() || r.is_empty() {
            return None;
        }
        Some((feat, thresh, l, r))
    }

    pub fn predict(&self, features: &[f32]) -> usize {
        assert_eq!(features.len(), self.n_features, "feature dimension mismatch");
        let mut cur = 0usize;
        loop {
            match &self.nodes[cur] {
                Node::Leaf { class } => return *class,
                Node::Split { feat, thresh, left, right } => {
                    cur = if features[*feat] <= *thresh { *left } else { *right };
                }
            }
        }
    }

    pub fn depth(&self) -> usize {
        fn d(nodes: &[Node], i: usize) -> usize {
            match &nodes[i] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + d(nodes, *left).max(d(nodes, *right)),
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            d(&self.nodes, 0)
        }
    }

    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xy() -> (Vec<Vec<f32>>, Vec<usize>) {
        // Two features; class = (f0 > 0.5) XOR-free simple AND structure.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..20 {
            let a = i as f32 / 20.0;
            for j in 0..20 {
                let b = j as f32 / 20.0;
                x.push(vec![a, b]);
                y.push(usize::from(a > 0.5 && b > 0.3));
            }
        }
        (x, y)
    }

    #[test]
    fn fits_axis_aligned_concept_perfectly() {
        let (x, y) = xy();
        let t = DecisionTree::fit(&x, &y, TreeParams::default());
        let correct = x.iter().zip(&y).filter(|(f, &l)| t.predict(f) == l).count();
        assert_eq!(correct, x.len(), "training accuracy must be 100%");
        assert!(t.depth() >= 2, "needs two splits");
    }

    #[test]
    fn generalizes_to_new_points() {
        let (x, y) = xy();
        let t = DecisionTree::fit(&x, &y, TreeParams::default());
        assert_eq!(t.predict(&[0.9, 0.9]), 1);
        assert_eq!(t.predict(&[0.9, 0.1]), 0);
        assert_eq!(t.predict(&[0.1, 0.9]), 0);
    }

    #[test]
    fn max_depth_limits_the_tree() {
        let (x, y) = xy();
        let t = DecisionTree::fit(&x, &y, TreeParams { max_depth: Some(1), ..Default::default() });
        assert_eq!(t.depth(), 1);
    }

    #[test]
    fn constant_features_yield_single_leaf() {
        let x = vec![vec![1.0, 1.0]; 10];
        let y = vec![0, 1, 0, 1, 0, 1, 0, 1, 0, 0];
        let t = DecisionTree::fit(&x, &y, TreeParams::default());
        assert_eq!(t.num_nodes(), 1);
        assert_eq!(t.predict(&[1.0, 1.0]), 0, "majority class");
    }

    #[test]
    fn deterministic_fit() {
        let (x, y) = xy();
        let a = DecisionTree::fit(&x, &y, TreeParams::default());
        let b = DecisionTree::fit(&x, &y, TreeParams::default());
        assert_eq!(serde_json::to_string(&a).unwrap(), serde_json::to_string(&b).unwrap());
    }

    #[test]
    fn multiclass_works() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..60 {
            let v = i as f32 / 60.0;
            x.push(vec![v]);
            y.push(if v < 0.33 {
                0
            } else if v < 0.66 {
                1
            } else {
                2
            });
        }
        let t = DecisionTree::fit(&x, &y, TreeParams::default());
        assert_eq!(t.predict(&[0.1]), 0);
        assert_eq!(t.predict(&[0.5]), 1);
        assert_eq!(t.predict(&[0.9]), 2);
    }
}
