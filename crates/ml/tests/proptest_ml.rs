//! Property tests for the classical-ML substrate.

use irnuma_ml::{
    accuracy, coverage, kfold, mean_speedup, reduce_labels, relative_difference, DecisionTree,
    TreeParams,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn relative_difference_is_symmetric_bounded(a in -1e6f64..1e6, b in -1e6f64..1e6) {
        let d1 = relative_difference(a, b);
        let d2 = relative_difference(b, a);
        prop_assert!((d1 - d2).abs() < 1e-12);
        prop_assert!(d1 >= 0.0);
        if a.signum() == b.signum() || a == 0.0 || b == 0.0 {
            prop_assert!(d1 <= 1.0 + 1e-12, "same-sign relative diff ≤ 1: {d1}");
        }
    }

    #[test]
    fn kfold_always_partitions(n in 4usize..200, k in 2usize..10, seed in 0u64..50) {
        prop_assume!(n >= k);
        let folds = kfold(n, k, seed).unwrap();
        let mut seen = vec![false; n];
        for f in &folds {
            for &i in f {
                prop_assert!(!seen[i], "duplicate {i}");
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        let min = folds.iter().map(Vec::len).min().unwrap();
        let max = folds.iter().map(Vec::len).max().unwrap();
        prop_assert!(max - min <= 1, "balanced folds: {min}..{max}");
    }

    #[test]
    fn tree_training_accuracy_is_perfect_on_separable_data(
        rows in prop::collection::vec((0.0f32..1.0, 0.0f32..1.0), 8..60),
        thresh in 0.2f32..0.8,
    ) {
        // Labels derived from a single threshold on feature 0: CART with
        // unlimited depth must fit it exactly (no duplicate-x conflicts
        // because the label is a function of x).
        let x: Vec<Vec<f32>> = rows.iter().map(|&(a, b)| vec![a, b]).collect();
        let y: Vec<usize> = rows.iter().map(|&(a, _)| usize::from(a > thresh)).collect();
        let t = DecisionTree::fit(&x, &y, TreeParams::default());
        for (xi, &yi) in x.iter().zip(&y) {
            prop_assert_eq!(t.predict(xi), yi);
        }
    }

    #[test]
    fn reduced_label_sets_are_valid_and_monotone(
        times in prop::collection::vec(prop::collection::vec(0.1f64..10.0, 6), 4..12),
    ) {
        let baseline: Vec<f64> = times.iter().map(|r| r[0]).collect();
        let mut prev_cov = 0.0;
        for k in 1..=6 {
            let chosen = reduce_labels(&times, &baseline, k);
            prop_assert_eq!(chosen.len(), k);
            let mut dedup = chosen.clone();
            dedup.sort_unstable();
            dedup.dedup();
            prop_assert_eq!(dedup.len(), k, "distinct configs");
            let cov = coverage(&times, &baseline, &chosen);
            prop_assert!(cov >= prev_cov - 1e-9, "monotone coverage");
            prop_assert!(cov <= 1.0 + 1e-9);
            prev_cov = cov;
        }
        prop_assert!((prev_cov - 1.0).abs() < 1e-9, "full k reaches full coverage");
    }

    #[test]
    fn mean_speedup_of_identity_is_one(base in prop::collection::vec(0.1f64..100.0, 1..20)) {
        let s = mean_speedup(&base, &base);
        prop_assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn accuracy_bounds(truth in prop::collection::vec(0usize..5, 1..40), seed in 0u64..20) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let pred: Vec<usize> = truth.iter().map(|_| rng.gen_range(0..5)).collect();
        let a = accuracy(&truth, &pred);
        prop_assert!((0.0..=1.0).contains(&a));
        prop_assert!((accuracy(&truth, &truth) - 1.0).abs() < 1e-12);
    }
}
