//! Reverse-mode automatic differentiation on a tape.
//!
//! Each forward op appends a node holding its output value and enough
//! information to propagate gradients. [`Tape::backward`] walks the tape in
//! reverse, producing a gradient per node; leaf gradients are read back and
//! accumulated into the parameter store by the trainer.
//!
//! The op set is exactly what the paper's architecture needs: embedding
//! gather, sparse typed-edge message passing (the RGCN aggregation of
//! Eq. 1), dense affine layers, relu, mean pooling, residual add, layer
//! normalization, and softmax cross-entropy.

use crate::tensor::Tensor;
use std::rc::Rc;

/// Index of a value on the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

impl Var {
    /// Position of this value on its tape (aligned with
    /// [`Tape::backward`]'s gradient vector).
    pub fn index(self) -> usize {
        self.0
    }
}

enum Op {
    Leaf,
    /// `a @ b`
    Matmul(Var, Var),
    /// matrix `a` + broadcast row vector `b`
    AddBias(Var, Var),
    /// elementwise same-shape addition (residual connections)
    Add(Var, Var),
    Relu(Var),
    /// rows of `table` selected by `ids`
    Gather {
        table: Var,
        ids: Rc<Vec<u32>>,
    },
    /// sparse message passing: `out[dst] += norm_e * x[src]` per edge
    Spmm {
        x: Var,
        edges: Rc<Vec<(u32, u32)>>,
        norm: Rc<Vec<f32>>,
    },
    /// column-wise mean over rows: `n×d → 1×d`
    MeanPool(Var),
    /// row-wise layer norm with affine params (1×d each)
    LayerNorm {
        x: Var,
        gamma: Var,
        beta: Var,
        eps: f32,
    },
    /// scalar loss; caches the softmax distribution for the backward pass
    SoftmaxCe {
        logits: Var,
        label: usize,
        probs: Tensor,
    },
}

struct Node {
    value: Tensor,
    op: Op,
}

/// A fresh tape per forward pass.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    pub fn new() -> Tape {
        Tape::default()
    }

    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    fn push(&mut self, value: Tensor, op: Op) -> Var {
        self.nodes.push(Node { value, op });
        Var(self.nodes.len() - 1)
    }

    /// Add an input/parameter value.
    pub fn leaf(&mut self, value: Tensor) -> Var {
        self.push(value, Op::Leaf)
    }

    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).matmul(self.value(b));
        self.push(v, Op::Matmul(a, b))
    }

    /// `a + bias` where `bias` is `1×cols`, broadcast over rows.
    pub fn add_bias(&mut self, a: Var, bias: Var) -> Var {
        let (m, b) = (self.value(a), self.value(bias));
        assert_eq!(b.rows, 1);
        assert_eq!(m.cols, b.cols);
        let mut out = m.clone();
        for r in 0..out.rows {
            for c in 0..out.cols {
                *out.at_mut(r, c) += b.at(0, c);
            }
        }
        self.push(out, Op::AddBias(a, bias))
    }

    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let mut out = self.value(a).clone();
        out.add_assign(self.value(b));
        self.push(out, Op::Add(a, b))
    }

    pub fn relu(&mut self, x: Var) -> Var {
        let mut out = self.value(x).clone();
        for v in &mut out.data {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        self.push(out, Op::Relu(x))
    }

    /// Select rows of `table` by id (embedding lookup).
    pub fn gather(&mut self, table: Var, ids: Rc<Vec<u32>>) -> Var {
        let t = self.value(table);
        let mut out = Tensor::zeros(ids.len(), t.cols);
        for (r, &id) in ids.iter().enumerate() {
            let src = t.row(id as usize);
            out.data[r * t.cols..(r + 1) * t.cols].copy_from_slice(src);
        }
        self.push(out, Op::Gather { table, ids })
    }

    /// Typed-edge message passing: for each edge `(src, dst)` with weight
    /// `norm`, add `norm * x[src]` into `out[dst]`. Output has the same
    /// shape as `x`.
    pub fn spmm(&mut self, x: Var, edges: Rc<Vec<(u32, u32)>>, norm: Rc<Vec<f32>>) -> Var {
        assert_eq!(edges.len(), norm.len());
        let xv = self.value(x);
        let cols = xv.cols;
        let mut out = Tensor::zeros(xv.rows, cols);
        for (e, &(s, d)) in edges.iter().enumerate() {
            let w = norm[e];
            let src = &xv.data[s as usize * cols..(s as usize + 1) * cols];
            let dst = &mut out.data[d as usize * cols..(d as usize + 1) * cols];
            for (o, &v) in dst.iter_mut().zip(src) {
                *o += w * v;
            }
        }
        self.push(out, Op::Spmm { x, edges, norm })
    }

    /// Column-wise mean over rows (graph readout): `n×d → 1×d`.
    pub fn mean_pool(&mut self, x: Var) -> Var {
        let xv = self.value(x);
        let mut out = Tensor::zeros(1, xv.cols);
        for r in 0..xv.rows {
            for c in 0..xv.cols {
                out.data[c] += xv.at(r, c);
            }
        }
        let inv = 1.0 / xv.rows.max(1) as f32;
        out.scale(inv);
        self.push(out, Op::MeanPool(x))
    }

    /// Row-wise layer normalization with learnable affine (`gamma`, `beta`
    /// are `1×d`).
    pub fn layer_norm(&mut self, x: Var, gamma: Var, beta: Var) -> Var {
        let eps = 1e-5;
        let (xv, g, b) = (self.value(x), self.value(gamma), self.value(beta));
        let d = xv.cols;
        let mut out = Tensor::zeros(xv.rows, d);
        for r in 0..xv.rows {
            let row = xv.row(r);
            let mu: f32 = row.iter().sum::<f32>() / d as f32;
            let var: f32 = row.iter().map(|v| (v - mu) * (v - mu)).sum::<f32>() / d as f32;
            let inv = 1.0 / (var + eps).sqrt();
            for (c, &xc) in row.iter().enumerate() {
                let xhat = (xc - mu) * inv;
                *out.at_mut(r, c) = g.at(0, c) * xhat + b.at(0, c);
            }
        }
        self.push(out, Op::LayerNorm { x, gamma, beta, eps })
    }

    /// Softmax cross-entropy of `1×C` logits against a class label;
    /// produces a `1×1` loss.
    pub fn softmax_ce(&mut self, logits: Var, label: usize) -> Var {
        let l = self.value(logits);
        assert_eq!(l.rows, 1, "one sample at a time");
        assert!(label < l.cols);
        let max = l.data.iter().cloned().fold(f32::MIN, f32::max);
        let exps: Vec<f32> = l.data.iter().map(|v| (v - max).exp()).collect();
        let z: f32 = exps.iter().sum();
        let probs = Tensor::from_vec(1, l.cols, exps.iter().map(|e| e / z).collect());
        let loss = -(probs.at(0, label).max(1e-12)).ln();
        self.push(Tensor::from_vec(1, 1, vec![loss]), Op::SoftmaxCe { logits, label, probs })
    }

    /// The softmax distribution cached by a [`Tape::softmax_ce`] node.
    pub fn cached_probs(&self, loss: Var) -> &Tensor {
        match &self.nodes[loss.0].op {
            Op::SoftmaxCe { probs, .. } => probs,
            _ => panic!("cached_probs on a non-loss node"),
        }
    }

    /// Reverse pass from `root` (typically the loss). Returns one gradient
    /// slot per node; untouched slots are `None`.
    ///
    /// Every op's inputs precede it on the tape, so the reverse walk splits
    /// the gradient vector at the current node: the upstream gradient is
    /// *borrowed* from the upper half and accumulated directly into the
    /// lower half's slots — no per-node clone of the upstream gradient, no
    /// per-op temporary tensors, and the two matmul gradients go through
    /// the transpose-free kernels instead of materializing `xᵀ`/`Wᵀ`.
    pub fn backward(&self, root: Var) -> Vec<Option<Tensor>> {
        let mut grads: Vec<Option<Tensor>> = (0..self.nodes.len()).map(|_| None).collect();
        let root_val = &self.nodes[root.0].value;
        let mut seed = Tensor::zeros(root_val.rows, root_val.cols);
        seed.data.fill(1.0);
        grads[root.0] = Some(seed);

        // One scratch row for the layer-norm backward, reused across nodes.
        let mut dxhat: Vec<f32> = Vec::new();

        for i in (0..self.nodes.len()).rev() {
            let (glo, ghi) = grads.split_at_mut(i);
            let Some(gy) = ghi[0].as_ref() else { continue };
            // Zero-initialized gradient slot for input `v` (all inputs have
            // index < i, hence live in `glo`).
            let slot = |glo: &mut [Option<Tensor>], v: Var, rows: usize, cols: usize| {
                let t = glo[v.0].get_or_insert_with(|| Tensor::zeros(rows, cols));
                debug_assert!(t.rows == rows && t.cols == cols, "gradient shape drift");
            };
            match &self.nodes[i].op {
                Op::Leaf => {}
                Op::Matmul(a, b) => {
                    let (av, bv) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
                    slot(glo, *a, av.rows, av.cols);
                    crate::tensor::matmul_transpose_b_accumulate(
                        &gy.data,
                        gy.rows,
                        gy.cols,
                        &bv.data,
                        bv.rows,
                        &mut glo[a.0].as_mut().unwrap().data,
                    );
                    slot(glo, *b, bv.rows, bv.cols);
                    crate::tensor::matmul_transpose_a_accumulate(
                        &av.data,
                        av.rows,
                        av.cols,
                        &gy.data,
                        gy.cols,
                        &mut glo[b.0].as_mut().unwrap().data,
                    );
                }
                Op::AddBias(a, bias) => {
                    slot(glo, *a, gy.rows, gy.cols);
                    glo[a.0].as_mut().unwrap().add_assign(gy);
                    slot(glo, *bias, 1, gy.cols);
                    let gb = glo[bias.0].as_mut().unwrap();
                    for r in 0..gy.rows {
                        for c in 0..gy.cols {
                            gb.data[c] += gy.at(r, c);
                        }
                    }
                }
                Op::Add(a, b) => {
                    slot(glo, *a, gy.rows, gy.cols);
                    glo[a.0].as_mut().unwrap().add_assign(gy);
                    slot(glo, *b, gy.rows, gy.cols);
                    glo[b.0].as_mut().unwrap().add_assign(gy);
                }
                Op::Relu(x) => {
                    let xv = &self.nodes[x.0].value;
                    slot(glo, *x, xv.rows, xv.cols);
                    let gx = glo[x.0].as_mut().unwrap();
                    for ((g, &v), &u) in gx.data.iter_mut().zip(&xv.data).zip(&gy.data) {
                        if v > 0.0 {
                            *g += u;
                        }
                    }
                }
                Op::Gather { table, ids } => {
                    let t = &self.nodes[table.0].value;
                    slot(glo, *table, t.rows, t.cols);
                    let gt = glo[table.0].as_mut().unwrap();
                    for (r, &id) in ids.iter().enumerate() {
                        let src = &gy.data[r * t.cols..(r + 1) * t.cols];
                        let dst = &mut gt.data[id as usize * t.cols..(id as usize + 1) * t.cols];
                        for (d, &s) in dst.iter_mut().zip(src) {
                            *d += s;
                        }
                    }
                }
                Op::Spmm { x, edges, norm } => {
                    let xv = &self.nodes[x.0].value;
                    let cols = xv.cols;
                    slot(glo, *x, xv.rows, cols);
                    let gx = glo[x.0].as_mut().unwrap();
                    for (e, &(s, d)) in edges.iter().enumerate() {
                        let w = norm[e];
                        let gdst = &gy.data[d as usize * cols..(d as usize + 1) * cols];
                        let gsrc = &mut gx.data[s as usize * cols..(s as usize + 1) * cols];
                        for (g, &v) in gsrc.iter_mut().zip(gdst) {
                            *g += w * v;
                        }
                    }
                }
                Op::MeanPool(x) => {
                    let xv = &self.nodes[x.0].value;
                    let inv = 1.0 / xv.rows.max(1) as f32;
                    slot(glo, *x, xv.rows, xv.cols);
                    let gx = glo[x.0].as_mut().unwrap();
                    for r in 0..xv.rows {
                        for c in 0..xv.cols {
                            *gx.at_mut(r, c) += gy.at(0, c) * inv;
                        }
                    }
                }
                Op::LayerNorm { x, gamma, beta, eps } => {
                    let xv = &self.nodes[x.0].value;
                    let g = &self.nodes[gamma.0].value;
                    let d = xv.cols;
                    slot(glo, *x, xv.rows, d);
                    slot(glo, *gamma, 1, d);
                    slot(glo, *beta, 1, d);
                    dxhat.clear();
                    dxhat.resize(d, 0.0);
                    for r in 0..xv.rows {
                        let row = xv.row(r);
                        let mu: f32 = row.iter().sum::<f32>() / d as f32;
                        let var: f32 =
                            row.iter().map(|v| (v - mu) * (v - mu)).sum::<f32>() / d as f32;
                        let inv = 1.0 / (var + eps).sqrt();
                        // dxhat, plus the two mean corrections.
                        let mut mean_dxhat = 0.0f32;
                        let mut mean_dxhat_xhat = 0.0f32;
                        for c in 0..d {
                            let xhat = (row[c] - mu) * inv;
                            let dy = gy.at(r, c);
                            glo[gamma.0].as_mut().unwrap().data[c] += dy * xhat;
                            glo[beta.0].as_mut().unwrap().data[c] += dy;
                            dxhat[c] = dy * g.at(0, c);
                            mean_dxhat += dxhat[c];
                            mean_dxhat_xhat += dxhat[c] * xhat;
                        }
                        mean_dxhat /= d as f32;
                        mean_dxhat_xhat /= d as f32;
                        let gx = glo[x.0].as_mut().unwrap();
                        for c in 0..d {
                            let xhat = (row[c] - mu) * inv;
                            *gx.at_mut(r, c) +=
                                (dxhat[c] - mean_dxhat - xhat * mean_dxhat_xhat) * inv;
                        }
                    }
                }
                Op::SoftmaxCe { logits, label, probs } => {
                    let scale = gy.at(0, 0);
                    slot(glo, *logits, 1, probs.cols);
                    let gl = glo[logits.0].as_mut().unwrap();
                    for (j, (o, &p)) in gl.data.iter_mut().zip(&probs.data).enumerate() {
                        *o += scale * (p - (j == *label) as u8 as f32);
                    }
                }
            }
        }
        grads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Central-difference gradient check for a scalar-valued builder.
    fn grad_check(inputs: Vec<Tensor>, build: impl Fn(&mut Tape, &[Var]) -> Var) {
        // Analytic gradients.
        let mut tape = Tape::new();
        let vars: Vec<Var> = inputs.iter().map(|t| tape.leaf(t.clone())).collect();
        let loss = build(&mut tape, &vars);
        assert_eq!(tape.value(loss).data.len(), 1, "loss must be scalar");
        let grads = tape.backward(loss);

        let eps = 2e-2f32;
        for (vi, input) in inputs.iter().enumerate() {
            let analytic =
                grads[vi].clone().unwrap_or_else(|| Tensor::zeros(input.rows, input.cols));
            for j in 0..input.data.len() {
                let mut plus = inputs.clone();
                plus[vi].data[j] += eps;
                let mut minus = inputs.clone();
                minus[vi].data[j] -= eps;
                let f = |ins: &[Tensor]| -> f32 {
                    let mut t = Tape::new();
                    let vs: Vec<Var> = ins.iter().map(|x| t.leaf(x.clone())).collect();
                    let l = build(&mut t, &vs);
                    t.value(l).data[0]
                };
                let numeric = (f(&plus) - f(&minus)) / (2.0 * eps);
                let a = analytic.data[j];
                let denom = a.abs().max(numeric.abs()).max(1e-2);
                assert!(
                    (a - numeric).abs() / denom < 0.12,
                    "input {vi} elem {j}: analytic {a} vs numeric {numeric}"
                );
            }
        }
    }

    fn t(rows: usize, cols: usize, v: &[f32]) -> Tensor {
        Tensor::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn gradcheck_matmul_bias_relu_ce() {
        grad_check(
            vec![
                t(1, 3, &[0.5, -0.3, 0.8]),
                t(3, 4, &[0.1, 0.2, -0.1, 0.4, -0.2, 0.3, 0.2, -0.3, 0.05, -0.15, 0.25, 0.35]),
                t(1, 4, &[0.01, -0.02, 0.03, 0.04]),
            ],
            |tape, v| {
                let h = tape.matmul(v[0], v[1]);
                let h = tape.add_bias(h, v[2]);
                let h = tape.relu(h);
                tape.softmax_ce(h, 2)
            },
        );
    }

    #[test]
    fn gradcheck_spmm_meanpool() {
        let edges = Rc::new(vec![(0u32, 1u32), (1, 2), (2, 0), (0, 2)]);
        let norm = Rc::new(vec![1.0f32, 0.5, 0.5, 0.5]);
        grad_check(
            vec![
                t(3, 2, &[0.4, -0.2, 0.1, 0.7, -0.5, 0.3]),
                t(2, 3, &[0.3, -0.1, 0.2, 0.15, 0.25, -0.35]),
            ],
            move |tape, v| {
                let msg = tape.spmm(v[0], edges.clone(), norm.clone());
                let pooled = tape.mean_pool(msg);
                let logits = tape.matmul(pooled, v[1]);
                tape.softmax_ce(logits, 0)
            },
        );
    }

    #[test]
    fn gradcheck_layernorm_residual() {
        grad_check(
            vec![
                t(2, 4, &[0.9, -0.4, 0.2, 0.6, -0.3, 0.8, 0.1, -0.7]),
                t(1, 4, &[1.1, 0.9, 1.05, 0.95]),
                t(1, 4, &[0.0, 0.1, -0.1, 0.05]),
                t(4, 3, &[0.2, -0.1, 0.3, 0.1, 0.25, -0.2, -0.15, 0.05, 0.1, 0.3, -0.25, 0.15]),
            ],
            |tape, v| {
                let doubled = tape.add(v[0], v[0]); // residual-style reuse
                let n = tape.layer_norm(doubled, v[1], v[2]);
                let pooled = tape.mean_pool(n);
                let logits = tape.matmul(pooled, v[3]);
                tape.softmax_ce(logits, 1)
            },
        );
    }

    #[test]
    fn gradcheck_gather() {
        let ids = Rc::new(vec![2u32, 0, 2]);
        grad_check(
            vec![t(3, 2, &[0.5, -0.2, 0.3, 0.8, -0.4, 0.6]), t(2, 2, &[0.2, -0.3, 0.4, 0.1])],
            move |tape, v| {
                let rows = tape.gather(v[0], ids.clone());
                let pooled = tape.mean_pool(rows);
                let logits = tape.matmul(pooled, v[1]);
                tape.softmax_ce(logits, 1)
            },
        );
    }

    #[test]
    fn softmax_probs_sum_to_one() {
        let mut tape = Tape::new();
        let l = tape.leaf(t(1, 5, &[1.0, 2.0, 3.0, 4.0, 5.0]));
        let loss = tape.softmax_ce(l, 4);
        let p = tape.cached_probs(loss);
        let sum: f32 = p.data.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(tape.value(loss).data[0] > 0.0);
        // Most probable class has the largest logit.
        let argmax = p.data.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).unwrap().0;
        assert_eq!(argmax, 4);
    }
}
