//! Tape-free fused forward+backward training engine for the RGCN.
//!
//! The autograd tape ([`crate::autograd`]) is a faithful but allocating
//! oracle: every forward op clones tensors onto the tape (including one
//! clone of *every parameter* per graph), and `Tape::backward` returns a
//! full gradient vector per graph. Training pushes thousands of augmented
//! region graphs through that path every epoch, so the allocations — not
//! the arithmetic — dominate the epoch.
//!
//! This module mirrors the PR 1 inference design for the whole
//! forward+backward pass:
//!
//! * **Per-worker scratch.** All activations the backward pass needs
//!   (per-layer hidden states, per-relation message buffers, the residual
//!   sum) plus every backward temporary live in a reusable [`TrainScratch`],
//!   grow-only across graphs and epochs. ReLU masks are implicit: the saved
//!   post-activation `h` is zero exactly where the pre-activation was
//!   `<= 0`, which is the tape's masking rule.
//! * **Fused kernels.** The forward shares the shape-dispatched matmul
//!   kernels ([`crate::dispatch`]) and the cached CSR adjacency with the
//!   inference engine, so fused forward losses are bit-identical to the
//!   tape's. The backward stages weight and activation transposes into the
//!   scratch (`xt`/`wt`, no allocation — or reads the plan's prepacked
//!   transposes when [`FusedEngine::batch_grads`] supplies one) and drives
//!   the large `dW += xᵀ·dy` / `dx += dy·Wᵀ` products through the same
//!   blocked kernels — the tape's
//!   transpose-free kernels compute one dependent add chain per output
//!   element and are FP-latency-bound, which made the backward ~7× the
//!   forward; staged transposes bring it back to the ~2× the FLOP ratio
//!   predicts, bit-identically (both orderings match the materialized
//!   transpose exactly). The SpMM backward walks a cached source-grouped
//!   CSC mirror ([`GraphData::csc`]) so `dx[src]` rows accumulate
//!   independently, in original edge order.
//! * **Flat gradient accumulation.** Gradients for one graph land in a
//!   [`GradBuffer`] — one flat `Vec<f32>` spanning every parameter — not a
//!   `Vec<Option<Tensor>>` per graph.
//! * **Deterministic reduction.** [`FusedEngine::batch_grads`] assigns
//!   graph `chunk[i]` to pool buffer `i` (fixed assignment, independent of
//!   thread scheduling) and combines the buffers with an ordered pairwise
//!   tree reduce whose shape depends only on the chunk length — training is
//!   bit-for-bit reproducible for a given seed at any thread count.
//!
//! The tape stays as the reference oracle: `tests/proptest_backprop.rs`
//! asserts fused gradients match `Tape::backward` within `1e-4` across
//! random graphs, widths, layer counts, and the layer-norm ablation.

use crate::dispatch::{self, matmul_accumulate_auto, plan_matmul, ModelPlan, RelView};
use crate::graphdata::{GraphData, NUM_RELATIONS};
use crate::model::GnnModel;
use crate::tensor::{
    matmul_transpose_a_accumulate, matmul_transpose_b_accumulate, softmax_into, transpose_into,
};
use rayon::prelude::*;
use std::cell::RefCell;

/// Reusable forward+backward workspace. Buffers grow to the largest
/// (graph, model) seen and are recycled across graphs and epochs; a fresh
/// `TrainScratch` is all-empty and valid.
#[derive(Default)]
pub struct TrainScratch {
    /// Hidden states `h_0..h_L`, each `n×d` (`h_0` is the embedding gather,
    /// `h_{l+1}` the post-ReLU output of layer `l`). All are saved: the
    /// backward pass needs every layer input, and the post-activation
    /// doubles as the ReLU mask.
    hs: Vec<Vec<f32>>,
    /// Saved SpMM outputs, `layers × NUM_RELATIONS` buffers of `n×d`
    /// (the `msgs` operand of each relation matmul, needed for `dW_r`).
    msgs: Vec<Vec<f32>>,
    /// Forward layer accumulator / pre-activation (`n×d`).
    acc: Vec<f32>,
    /// Shared `n×d` temporary (forward relation term, backward `dmsgs`).
    term: Vec<f32>,
    /// Residual sum `h_1 + h_L` — the layer-norm input (`n×d`).
    res: Vec<f32>,
    /// Gradient of the residual sum, kept until the backward walk reaches
    /// `h_1` (`n×d`).
    gres: Vec<f32>,
    /// Gradient w.r.t. the current hidden state (`n×d`).
    ga: Vec<f32>,
    /// Gradient w.r.t. the previous hidden state, swapped with `ga` per
    /// layer (`n×d`).
    gh: Vec<f32>,
    /// ReLU-masked gradient of the pre-activation (`n×d`).
    gpre: Vec<f32>,
    /// Staged activation transpose (`d×n`): `h_lᵀ` / `msgsᵀ` for the weight
    /// gradients, so they run through the blocked kernel.
    xt: Vec<f32>,
    /// Staged weight transpose (`d×d`): `Wᵀ` for the input gradients.
    wt: Vec<f32>,
    /// Layer-norm backward row temporary (`d`).
    dxhat: Vec<f32>,
    /// Layer-norm affine gradients, accumulated across rows then flushed
    /// into the grad buffer (`d` each).
    dgamma: Vec<f32>,
    dbeta: Vec<f32>,
    /// Head activations and gradients (`d` / `classes` sized).
    pooled: Vec<f32>,
    z: Vec<f32>,
    gz: Vec<f32>,
    gpooled: Vec<f32>,
    logits: Vec<f32>,
    probs: Vec<f32>,
    glogits: Vec<f32>,
}

impl TrainScratch {
    pub fn new() -> TrainScratch {
        TrainScratch::default()
    }

    fn reserve(&mut self, layers: usize, n: usize, d: usize, classes: usize) {
        let nd = n * d;
        if irnuma_obs::telemetry_enabled() {
            if self.ga.capacity() >= nd && self.hs.len() > layers {
                irnuma_obs::counter!("train.scratch_hits").inc(1);
            } else {
                irnuma_obs::counter!("train.scratch_misses").inc(1);
            }
        }
        self.hs.resize_with(layers + 1, Vec::new);
        self.msgs.resize_with(layers * NUM_RELATIONS, Vec::new);
        for buf in self.hs.iter_mut().chain(self.msgs.iter_mut()) {
            buf.clear();
            buf.resize(nd, 0.0);
        }
        for buf in [
            &mut self.acc,
            &mut self.term,
            &mut self.res,
            &mut self.gres,
            &mut self.ga,
            &mut self.gh,
            &mut self.gpre,
            &mut self.xt,
        ] {
            buf.clear();
            buf.resize(nd, 0.0);
        }
        self.wt.clear();
        self.wt.resize(d * d, 0.0);
        for buf in [
            &mut self.dxhat,
            &mut self.dgamma,
            &mut self.dbeta,
            &mut self.pooled,
            &mut self.z,
            &mut self.gz,
            &mut self.gpooled,
        ] {
            buf.clear();
            buf.resize(d, 0.0);
        }
        for buf in [&mut self.logits, &mut self.glogits] {
            buf.clear();
            buf.resize(classes, 0.0);
        }
    }
}

thread_local! {
    static SCRATCH: RefCell<TrainScratch> = RefCell::new(TrainScratch::new());
}

/// Flat per-parameter gradient accumulator: one contiguous `Vec<f32>`
/// spanning every parameter tensor of a model, addressed by parameter index.
#[derive(Debug, Clone)]
pub struct GradBuffer {
    data: Vec<f32>,
    /// `offsets[i]..offsets[i+1]` is parameter `i`'s slice.
    offsets: Vec<usize>,
}

impl GradBuffer {
    /// A zeroed buffer laid out for `model`'s parameter list.
    pub fn for_model(model: &GnnModel) -> GradBuffer {
        let mut offsets = Vec::with_capacity(model.params.len() + 1);
        let mut total = 0usize;
        offsets.push(0);
        for p in &model.params {
            total += p.data.len();
            offsets.push(total);
        }
        GradBuffer { data: vec![0.0; total], offsets }
    }

    fn matches(&self, model: &GnnModel) -> bool {
        self.offsets.len() == model.params.len() + 1
            && model
                .params
                .iter()
                .enumerate()
                .all(|(i, p)| self.offsets[i + 1] - self.offsets[i] == p.data.len())
    }

    pub fn zero(&mut self) {
        self.data.fill(0.0);
    }

    pub fn view(&self, i: usize) -> &[f32] {
        &self.data[self.offsets[i]..self.offsets[i + 1]]
    }

    pub fn view_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[self.offsets[i]..self.offsets[i + 1]]
    }

    /// One read-only slice per parameter, aligned with `model.params`.
    pub fn views(&self) -> Vec<&[f32]> {
        (0..self.offsets.len() - 1).map(|i| self.view(i)).collect()
    }

    pub fn add_assign(&mut self, other: &GradBuffer) {
        debug_assert_eq!(self.data.len(), other.data.len());
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    pub fn scale(&mut self, alpha: f32) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Sum of squared entries (for gradient-norm telemetry).
    pub fn squared_norm(&self) -> f64 {
        self.data.iter().map(|&g| g as f64 * g as f64).sum()
    }
}

impl GnnModel {
    /// Fused forward+backward for one labeled graph: returns the
    /// cross-entropy loss and **adds** (never overwrites) this graph's
    /// parameter gradients into `grads`. The forward pass is bit-identical
    /// to [`GnnModel::forward`] + `softmax_ce`; gradients match
    /// `Tape::backward` to float rounding (≤1e-4 enforced by proptest).
    pub fn fused_loss_grads(
        &self,
        g: &GraphData,
        label: usize,
        s: &mut TrainScratch,
        grads: &mut GradBuffer,
    ) -> f64 {
        self.fused_loss_grads_planned(g, label, s, grads, None)
    }

    /// [`GnnModel::fused_loss_grads`] through a prebuilt kernel plan:
    /// forward products use the prepacked weight panels and the backward's
    /// `dx += dy·Wᵀ` products read the plan's prematerialized transposes
    /// instead of re-striding `Wᵀ` into scratch per graph. Bit-identical to
    /// the planless path; `plan` must match the model's current parameters
    /// ([`FusedEngine::batch_grads`] rebuilds it once per minibatch, after
    /// each optimizer step).
    pub fn fused_loss_grads_planned(
        &self,
        g: &GraphData,
        label: usize,
        s: &mut TrainScratch,
        grads: &mut GradBuffer,
        plan: Option<&ModelPlan>,
    ) -> f64 {
        let _f = irnuma_obs::profile_frame!("train.fused_grads");
        debug_assert!(grads.matches(self), "grad buffer laid out for another model");
        let d = self.cfg.hidden;
        let n = g.num_nodes();
        let classes = self.cfg.classes;
        let layers = self.cfg.layers;
        assert!(label < classes, "label {label} out of range");
        s.reserve(layers, n, d, classes);

        // Parameter indices, mirroring `GnnModel::new`'s push order.
        let idx_embed = 0usize;
        let layer_base = |l: usize| 1 + l * (2 + NUM_RELATIONS);
        let idx_gamma = layer_base(layers);
        let idx_beta = idx_gamma + 1;
        let idx_fc1 = idx_beta + 1;
        let idx_b1 = idx_fc1 + 1;
        let idx_fc2 = idx_b1 + 1;
        let idx_b2 = idx_fc2 + 1;
        debug_assert_eq!(idx_b2 + 1, self.params.len(), "parameter layout drift");
        let p = &self.params;

        // ---------- forward ----------
        let embed = &p[idx_embed];
        for (row, &id) in g.node_text.iter().enumerate() {
            s.hs[0][row * d..(row + 1) * d].copy_from_slice(embed.row(id as usize));
        }

        let csr = g.csr();
        let gplan = dispatch::plan_for(d, classes, layers, g);
        for l in 0..layers {
            let base = layer_base(l);
            let (h_in, h_rest) = s.hs.split_at_mut(l + 1);
            let h_in = &h_in[l];
            let h_out = &mut h_rest[0];

            s.acc.fill(0.0);
            plan_matmul(plan, base, h_in, n, &p[base], &mut s.acc);

            for r in 0..NUM_RELATIONS {
                if g.edges[r].is_empty() {
                    continue;
                }
                let msgs = &mut s.msgs[l * NUM_RELATIONS + r];
                let rel = RelView { rows: &csr[r], edges: &g.edges[r], norm: &g.norm[r] };
                dispatch::spmm_forward(gplan.spmm[r], rel, h_in, n, d, msgs);
                // Like the tape, the product goes through a zeroed buffer
                // before joining the accumulator (summing straight into
                // `acc` would regroup the additions).
                s.term.fill(0.0);
                plan_matmul(plan, base + 1 + r, msgs, n, &p[base + 1 + r], &mut s.term);
                dispatch::vec_add_assign(&mut s.acc[..n * d], &s.term[..n * d]);
            }

            let bias = &p[base + 1 + NUM_RELATIONS];
            dispatch::bias_relu_rows(&s.acc[..n * d], &bias.data, &mut h_out[..n * d]);
        }

        // Residual around the deeper layers (tape order: h1 + h).
        if layers > 1 {
            for ((r, &a), &b) in s.res.iter_mut().zip(&s.hs[1]).zip(&s.hs[layers]) {
                *r = a + b;
            }
        } else {
            s.res.copy_from_slice(&s.hs[layers]);
        }

        // Layer norm (optional) fused with mean pooling: the normalized
        // rows are consumed only by the column mean, so they are pooled on
        // the fly — per column, rows accumulate in ascending order, exactly
        // as the tape's `mean_pool` sums them.
        let gamma = &p[idx_gamma];
        let beta = &p[idx_beta];
        let eps = 1e-5f32;
        s.pooled.fill(0.0);
        for row in 0..n {
            let x = &s.res[row * d..(row + 1) * d];
            if self.cfg.layer_norm {
                let mu: f32 = x.iter().sum::<f32>() / d as f32;
                let var: f32 = x.iter().map(|v| (v - mu) * (v - mu)).sum::<f32>() / d as f32;
                let inv = 1.0 / (var + eps).sqrt();
                for (((o, &xc), &gc), &bc) in
                    s.pooled.iter_mut().zip(x).zip(&gamma.data).zip(&beta.data)
                {
                    *o += gc * ((xc - mu) * inv) + bc;
                }
            } else {
                for (o, &xc) in s.pooled.iter_mut().zip(x) {
                    *o += xc;
                }
            }
        }
        let inv_n = 1.0 / n.max(1) as f32;
        for v in s.pooled.iter_mut() {
            *v *= inv_n;
        }

        // FC head: z = relu(pooled @ fc1 + b1); logits = z @ fc2 + b2.
        s.z.fill(0.0);
        plan_matmul(plan, idx_fc1, &s.pooled, 1, &p[idx_fc1], &mut s.z);
        for (zv, &bv) in s.z.iter_mut().zip(&p[idx_b1].data) {
            let pre = *zv + bv;
            *zv = if pre < 0.0 { 0.0 } else { pre };
        }
        s.logits.fill(0.0);
        plan_matmul(plan, idx_fc2, &s.z, 1, &p[idx_fc2], &mut s.logits);
        for (lv, &bv) in s.logits.iter_mut().zip(&p[idx_b2].data) {
            *lv += bv;
        }

        // Softmax cross-entropy (max-shifted, like the tape's loss node).
        softmax_into(&s.logits, &mut s.probs);
        let loss = -(s.probs[label].max(1e-12)).ln() as f64;

        // ---------- backward ----------
        // d loss / d logits = probs - onehot(label).
        for (j, (gl, &pv)) in s.glogits.iter_mut().zip(&s.probs).enumerate() {
            *gl = pv - (j == label) as u8 as f32;
        }

        // FC2 head: db2 += glogits; dfc2 += zᵀ @ glogits; gz = glogits @ fc2ᵀ.
        for (o, &v) in grads.view_mut(idx_b2).iter_mut().zip(&s.glogits) {
            *o += v;
        }
        matmul_transpose_a_accumulate(&s.z, 1, d, &s.glogits, classes, grads.view_mut(idx_fc2));
        s.gz.fill(0.0);
        matmul_transpose_b_accumulate(&s.glogits, 1, classes, &p[idx_fc2].data, d, &mut s.gz);
        // ReLU mask: z is zero exactly where the pre-activation was <= 0.
        for (gv, &zv) in s.gz.iter_mut().zip(&s.z) {
            if zv <= 0.0 {
                *gv = 0.0;
            }
        }
        // FC1: db1 += gz; dfc1 += pooledᵀ @ gz; gpooled = gz @ fc1ᵀ.
        for (o, &v) in grads.view_mut(idx_b1).iter_mut().zip(&s.gz) {
            *o += v;
        }
        matmul_transpose_a_accumulate(&s.pooled, 1, d, &s.gz, d, grads.view_mut(idx_fc1));
        s.gpooled.fill(0.0);
        matmul_transpose_b_accumulate(&s.gz, 1, d, &p[idx_fc1].data, d, &mut s.gpooled);

        // Mean-pool backward spreads `gpooled·1/n` to every row; fuse it
        // with the layer-norm backward so the `n×d` upstream gradient is
        // never materialized.
        if self.cfg.layer_norm {
            s.dgamma.fill(0.0);
            s.dbeta.fill(0.0);
            for row in 0..n {
                let x = &s.res[row * d..(row + 1) * d];
                let mu: f32 = x.iter().sum::<f32>() / d as f32;
                let var: f32 = x.iter().map(|v| (v - mu) * (v - mu)).sum::<f32>() / d as f32;
                let inv = 1.0 / (var + eps).sqrt();
                let mut mean_dxhat = 0.0f32;
                let mut mean_dxhat_xhat = 0.0f32;
                for ((((&xc, &gp), dg), db), (dx, &gc)) in x
                    .iter()
                    .zip(&s.gpooled)
                    .zip(s.dgamma.iter_mut())
                    .zip(s.dbeta.iter_mut())
                    .zip(s.dxhat.iter_mut().zip(&gamma.data))
                {
                    let xhat = (xc - mu) * inv;
                    let dy = gp * inv_n;
                    *dg += dy * xhat;
                    *db += dy;
                    *dx = dy * gc;
                    mean_dxhat += *dx;
                    mean_dxhat_xhat += *dx * xhat;
                }
                mean_dxhat /= d as f32;
                mean_dxhat_xhat /= d as f32;
                let grow = &mut s.ga[row * d..(row + 1) * d];
                for c in 0..d {
                    let xhat = (x[c] - mu) * inv;
                    grow[c] = (s.dxhat[c] - mean_dxhat - xhat * mean_dxhat_xhat) * inv;
                }
            }
            for (o, &v) in grads.view_mut(idx_gamma).iter_mut().zip(&s.dgamma) {
                *o += v;
            }
            for (o, &v) in grads.view_mut(idx_beta).iter_mut().zip(&s.dbeta) {
                *o += v;
            }
        } else {
            for row in 0..n {
                let grow = &mut s.ga[row * d..(row + 1) * d];
                for (o, &gp) in grow.iter_mut().zip(&s.gpooled) {
                    *o = gp * inv_n;
                }
            }
        }

        // Residual: the same upstream gradient reaches h_L now and h_1 when
        // the backward walk gets there.
        if layers > 1 {
            s.gres.copy_from_slice(&s.ga);
        }

        // Layer backward, deepest first. `s.ga` holds d loss / d h_{l+1}.
        for l in (0..layers).rev() {
            let base = layer_base(l);
            // ReLU mask via the saved post-activation.
            for ((gp, &ga), &hv) in s.gpre.iter_mut().zip(&s.ga).zip(&s.hs[l + 1]) {
                *gp = if hv > 0.0 { ga } else { 0.0 };
            }
            // Bias: column sums in ascending row order (tape order).
            {
                let db = grads.view_mut(base + 1 + NUM_RELATIONS);
                for row in 0..n {
                    for (o, &v) in db.iter_mut().zip(&s.gpre[row * d..(row + 1) * d]) {
                        *o += v;
                    }
                }
            }
            // Self term: dW_self += h_lᵀ @ gpre, with `h_lᵀ` staged into
            // scratch so the product runs through the blocked kernel
            // (bit-identical to the transpose-free kernel: both accumulate
            // each output element over ascending rows of `h_l`).
            transpose_into(&s.hs[l], n, d, &mut s.xt);
            matmul_accumulate_auto(&s.xt, d, n, &s.gpre, d, grads.view_mut(base));

            // Gradient w.r.t. h_l: seeded with the residual's share when
            // this layer's input is h_1 (matching the tape, where the
            // residual Add is the first node to touch grads[h1] in the
            // reverse walk), then the relation terms in reverse forward
            // order, then the self term.
            if l == 1 && layers > 1 {
                s.gh.copy_from_slice(&s.gres);
            } else {
                s.gh.fill(0.0);
            }
            for r in (0..NUM_RELATIONS).rev() {
                if g.edges[r].is_empty() {
                    continue;
                }
                // dW_r += msgsᵀ @ gpre.
                transpose_into(&s.msgs[l * NUM_RELATIONS + r], n, d, &mut s.xt);
                matmul_accumulate_auto(&s.xt, d, n, &s.gpre, d, grads.view_mut(base + 1 + r));
                // dmsgs = gpre @ W_rᵀ — the plan's prematerialized transpose
                // when available, a per-graph staged transpose otherwise —
                // then the SpMM backward scatters w·dmsgs[dst] into dh[src]
                // under the same strategy the forward used.
                let wt: &[f32] = match plan.and_then(|pl| pl.weight_t(base + 1 + r)) {
                    Some(t) => t,
                    None => {
                        transpose_into(&p[base + 1 + r].data, d, d, &mut s.wt);
                        &s.wt
                    }
                };
                s.term.fill(0.0);
                matmul_accumulate_auto(&s.gpre, n, d, wt, d, &mut s.term);
                let rel = RelView { rows: &g.csc()[r], edges: &g.edges[r], norm: &g.norm[r] };
                dispatch::spmm_backward(gplan.spmm[r], rel, &s.term, n, d, &mut s.gh);
            }
            let wt: &[f32] = match plan.and_then(|pl| pl.weight_t(base)) {
                Some(t) => t,
                None => {
                    transpose_into(&p[base].data, d, d, &mut s.wt);
                    &s.wt
                }
            };
            matmul_accumulate_auto(&s.gpre, n, d, wt, d, &mut s.gh);
            std::mem::swap(&mut s.ga, &mut s.gh);
        }

        // Embedding gather backward: scatter rows in ascending order.
        {
            let de = grads.view_mut(idx_embed);
            for (row, &id) in g.node_text.iter().enumerate() {
                let grow = &s.ga[row * d..(row + 1) * d];
                let dst = &mut de[id as usize * d..(id as usize + 1) * d];
                for (o, &v) in dst.iter_mut().zip(grow) {
                    *o += v;
                }
            }
        }
        loss
    }
}

/// Minibatch gradient driver: a pool of [`GradBuffer`]s (one per in-flight
/// graph, reused across batches and epochs) and the deterministic ordered
/// tree reduction that combines them.
#[derive(Default)]
pub struct FusedEngine {
    pool: Vec<GradBuffer>,
}

impl FusedEngine {
    pub fn new() -> FusedEngine {
        FusedEngine::default()
    }

    /// Compute the mean gradient over `chunk` (indices into
    /// `graphs`/`labels`). Returns the summed loss and the reduced, scaled
    /// gradient (borrowing the engine's pool). Deterministic at any thread
    /// count: graph `chunk[i]` always lands in pool buffer `i`, and the
    /// pairwise reduction tree depends only on `chunk.len()`.
    pub fn batch_grads<'a>(
        &'a mut self,
        model: &GnnModel,
        graphs: &[GraphData],
        labels: &[usize],
        chunk: &[usize],
    ) -> (f64, &'a GradBuffer) {
        assert!(!chunk.is_empty(), "empty minibatch");
        let k = chunk.len();
        if self.pool.first().is_some_and(|b| !b.matches(model)) {
            self.pool.clear();
        }
        while self.pool.len() < k {
            self.pool.push(GradBuffer::for_model(model));
        }

        let t0 = irnuma_obs::telemetry_enabled().then(std::time::Instant::now);
        // One span per minibatch (covering prepack, fan-out, and reduce);
        // per-graph worker spans only open while a trace sink is installed,
        // so the stats-only serving path stays span-free in the hot loop.
        let span = irnuma_obs::span!("train.batch_grads", graphs = k);
        let ctx = span.ctx();
        // Prepack the weights once for the whole minibatch (the optimizer
        // mutates parameters between batches, so the plan cannot outlive
        // one call); every worker shares the packed panels and layer-weight
        // transposes read-only.
        let plan = ModelPlan::build_training(model);
        let losses: Vec<f64> = self.pool[..k]
            .par_iter_mut()
            .zip(chunk.par_iter())
            .map(|(buf, &i)| {
                let _g = irnuma_obs::span_fanout!(ctx, "train.graph_grads");
                buf.zero();
                SCRATCH.with(|s| {
                    let loss = model.fused_loss_grads_planned(
                        &graphs[i],
                        labels[i],
                        &mut s.borrow_mut(),
                        buf,
                        Some(&plan),
                    );
                    if irnuma_obs::telemetry_enabled() {
                        irnuma_obs::counter!("train.fused_graphs").inc(1);
                    }
                    loss
                })
            })
            .collect();

        // Ordered pairwise tree reduce: level by level, buffer `i` absorbs
        // buffer `i + gap`. The summation tree is a function of `k` alone,
        // so the reduced gradient is bit-identical at any thread count.
        let mut gap = 1;
        while gap < k {
            self.pool[..k].par_chunks_mut(2 * gap).for_each(|pair| {
                if pair.len() > gap {
                    let (a, b) = pair.split_at_mut(gap);
                    a[0].add_assign(&b[0]);
                }
            });
            gap *= 2;
        }
        self.pool[0].scale(1.0 / k as f32);
        if let Some(t0) = t0 {
            irnuma_obs::histogram!("train.fused_batch_ns").record_duration(t0.elapsed());
        }
        // Canonical-order loss sum (chunk order, not completion order).
        (losses.iter().sum(), &self.pool[0])
    }
}

/// Fused forward+backward through this thread's cached scratch workspace
/// (test/bench convenience; the batch path goes through [`FusedEngine`]).
pub fn fused_loss_grads_threadlocal(
    model: &GnnModel,
    g: &GraphData,
    label: usize,
    grads: &mut GradBuffer,
) -> f64 {
    SCRATCH.with(|s| model.fused_loss_grads(g, label, &mut s.borrow_mut(), grads))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::GnnConfig;
    use crate::tensor::Tensor;
    use irnuma_graph::{EdgeKind, Graph, NodeKind};

    fn toy_graph(seed: u32) -> GraphData {
        let mut g = Graph::default();
        let n = 5 + (seed % 4);
        let mut prev = None;
        for i in 0..n {
            let node = g.add_node(NodeKind::Instruction, (seed + i) % 20);
            if let Some(p) = prev {
                g.add_edge(p, node, EdgeKind::Control, 0);
                g.add_edge(node, p, EdgeKind::Data, 0);
                if i % 3 == 0 {
                    g.add_edge(p, node, EdgeKind::Call, 0);
                }
            }
            prev = Some(node);
        }
        GraphData::from_graph(&g)
    }

    fn model(layers: usize, layer_norm: bool) -> GnnModel {
        GnnModel::new(GnnConfig {
            vocab_size: 24,
            hidden: 8,
            classes: 4,
            layers,
            layer_norm,
            seed: 9,
        })
    }

    /// Tape-oracle gradients as flat per-param slices.
    fn tape_grads(m: &GnnModel, g: &GraphData, label: usize) -> (f64, Vec<Tensor>) {
        m.loss_and_grads(g, label)
    }

    fn assert_grads_close(m: &GnnModel, fused: &GradBuffer, tape: &[Tensor], tol: f32) {
        for (i, t) in tape.iter().enumerate() {
            for (j, (&a, &b)) in fused.view(i).iter().zip(&t.data).enumerate() {
                assert!(
                    (a - b).abs() <= tol,
                    "param {} ({}) elem {j}: fused {a} vs tape {b}",
                    i,
                    m.param_name(i)
                );
            }
        }
    }

    #[test]
    fn fused_matches_tape_under_all_layer_combos() {
        for layers in [1usize, 2, 3] {
            for layer_norm in [true, false] {
                let m = model(layers, layer_norm);
                for seed in 0..4u32 {
                    let g = toy_graph(seed);
                    let label = (seed as usize) % 4;
                    let (tape_loss, tape) = tape_grads(&m, &g, label);
                    let mut gb = GradBuffer::for_model(&m);
                    let fused_loss = fused_loss_grads_threadlocal(&m, &g, label, &mut gb);
                    assert_eq!(
                        fused_loss, tape_loss,
                        "forward loss must be bit-identical (layers={layers}, ln={layer_norm})"
                    );
                    assert_grads_close(&m, &gb, &tape, 1e-4);
                }
            }
        }
    }

    #[test]
    fn scratch_recycles_across_graph_sizes_without_bleed() {
        let m = model(2, true);
        let big = toy_graph(3); // 8 nodes
        let small = toy_graph(0); // 5 nodes
        let mut s = TrainScratch::new();

        let reference = |g: &GraphData| -> GradBuffer {
            let mut gb = GradBuffer::for_model(&m);
            m.fused_loss_grads(g, 1, &mut TrainScratch::new(), &mut gb);
            gb
        };
        let fresh_big = reference(&big);
        let fresh_small = reference(&small);

        // big → small → big through one workspace must not leak stale
        // activations or gradients between graphs.
        for (g, fresh) in [(&big, &fresh_big), (&small, &fresh_small), (&big, &fresh_big)] {
            let mut gb = GradBuffer::for_model(&m);
            m.fused_loss_grads(g, 1, &mut s, &mut gb);
            assert_eq!(gb.data, fresh.data, "recycled scratch must match a fresh one bitwise");
        }
    }

    #[test]
    fn grad_buffer_accumulates_across_graphs() {
        let m = model(2, true);
        let g0 = toy_graph(0);
        let g1 = toy_graph(1);
        let mut separate0 = GradBuffer::for_model(&m);
        let mut separate1 = GradBuffer::for_model(&m);
        fused_loss_grads_threadlocal(&m, &g0, 0, &mut separate0);
        fused_loss_grads_threadlocal(&m, &g1, 2, &mut separate1);
        let mut both = GradBuffer::for_model(&m);
        fused_loss_grads_threadlocal(&m, &g0, 0, &mut both);
        fused_loss_grads_threadlocal(&m, &g1, 2, &mut both);
        for ((a, b), c) in both.data.iter().zip(&separate0.data).zip(&separate1.data) {
            assert!((a - (b + c)).abs() <= 1e-5, "{a} vs {} + {c}", b);
        }
    }

    #[test]
    fn batch_grads_is_deterministic_and_order_sensitive_only_in_chunk_order() {
        let m = model(2, true);
        let graphs: Vec<GraphData> = (0..7).map(toy_graph).collect();
        let labels: Vec<usize> = (0..7).map(|i| i % 4).collect();
        let chunk: Vec<usize> = (0..7).collect();

        let mut e1 = FusedEngine::new();
        let (l1, g1) = e1.batch_grads(&m, &graphs, &labels, &chunk);
        let g1 = g1.clone();
        let mut e2 = FusedEngine::new();
        let (l2, g2) = e2.batch_grads(&m, &graphs, &labels, &chunk);
        assert_eq!(l1, l2);
        assert_eq!(g1.data, g2.data, "reduction must be bit-for-bit reproducible");

        // Reusing the same engine (warm pool) must also reproduce bitwise.
        let (l3, g3) = e1.batch_grads(&m, &graphs, &labels, &chunk);
        assert_eq!(l1, l3);
        assert_eq!(g1.data, g3.data);
    }

    #[test]
    fn batch_grads_mean_matches_manual_mean() {
        let m = model(2, true);
        let graphs: Vec<GraphData> = (0..3).map(toy_graph).collect();
        let labels = vec![0usize, 1, 2];
        let chunk = vec![0usize, 1, 2];
        let mut engine = FusedEngine::new();
        let (loss, gb) = engine.batch_grads(&m, &graphs, &labels, &chunk);

        let mut manual_loss = 0.0;
        let mut manual = GradBuffer::for_model(&m);
        for i in 0..3 {
            manual_loss += fused_loss_grads_threadlocal(&m, &graphs[i], labels[i], &mut manual);
        }
        assert!((loss - manual_loss).abs() < 1e-9);
        for (a, &b) in gb.data.iter().zip(&manual.data) {
            assert!((a - b / 3.0).abs() <= 1e-6, "{a} vs {}", b / 3.0);
        }
    }
}
