//! Compact binary codec for [`GraphData`] — the record payload of packed
//! dataset shards (`irnuma_store::shard`).
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! u32 num_nodes
//! u32 flags                  // bit 0: adjacency caches present
//! u32[n] node_text
//! per relation (×3):
//!   u32 num_edges
//!   (u32 src, u32 dst)[e]
//!   f32[e] norm
//! if flags & 1, per relation (×3) CSR then (×3) CSC:
//!   u32[n + 1] row_ptr
//!   u32[e] src
//!   f32[e] weight
//! ```
//!
//! Packing embeds the cached CSR/CSC adjacency so streamed training skips
//! the per-graph counting sorts entirely: [`decode_graph_into`] lands the
//! bytes straight into the `GraphData` layout the kernels read, reusing the
//! destination's existing allocations (near-zero steady-state allocation in
//! the loader). Every structural invariant the kernels index by — edge
//! endpoints in range, `row_ptr` monotone and spanning the edge count — is
//! checked here, so damaged or truncated payloads surface as
//! [`io::ErrorKind::InvalidData`], never an index panic. (Record-level
//! checksums in the shard framing catch bit flips before this layer; these
//! checks make the decoder safe even against a colliding or hand-crafted
//! payload.)

use crate::graphdata::{GraphData, NUM_RELATIONS};
use irnuma_store::{corruption, invalid};
use std::io;

/// Flag bit: payload carries prebuilt CSR/CSC adjacency.
const FLAG_ADJACENCY: u32 = 1;

/// Append `g` to `out` in the binary layout, including its CSR/CSC
/// adjacency (materializing both caches if not yet built).
pub fn encode_graph(g: &GraphData, out: &mut Vec<u8>) {
    let n = g.num_nodes();
    assert!(n <= u32::MAX as usize, "graph too large for u32 node indices");
    out.extend_from_slice(&(n as u32).to_le_bytes());
    out.extend_from_slice(&FLAG_ADJACENCY.to_le_bytes());
    for &t in &g.node_text {
        out.extend_from_slice(&t.to_le_bytes());
    }
    for r in 0..NUM_RELATIONS {
        out.extend_from_slice(&(g.edges[r].len() as u32).to_le_bytes());
        for &(s, d) in &g.edges[r] {
            out.extend_from_slice(&s.to_le_bytes());
            out.extend_from_slice(&d.to_le_bytes());
        }
        for &w in &g.norm[r] {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }
    for view in [g.csr(), g.csc()] {
        for csr in view {
            for &p in &csr.row_ptr {
                out.extend_from_slice(&p.to_le_bytes());
            }
            for &s in &csr.src {
                out.extend_from_slice(&s.to_le_bytes());
            }
            for &w in &csr.weight {
                out.extend_from_slice(&w.to_le_bytes());
            }
        }
    }
}

/// Decode one graph from `bytes` into a fresh [`GraphData`].
pub fn decode_graph(bytes: &[u8]) -> io::Result<GraphData> {
    let mut g = GraphData::from_parts(Vec::new(), Default::default(), Default::default());
    decode_graph_into(bytes, &mut g)?;
    Ok(g)
}

/// Decode one graph from `bytes` into `dst`, reusing every allocation `dst`
/// already holds (node/edge/norm vectors and, if built, its adjacency
/// cache arrays). On error `dst` is left in an unspecified but valid state.
pub fn decode_graph_into(bytes: &[u8], dst: &mut GraphData) -> io::Result<()> {
    let mut cur = Cur { bytes, pos: 0 };
    let n = cur.u32()? as usize;
    let flags = cur.u32()?;
    if flags & !FLAG_ADJACENCY != 0 {
        return Err(invalid(format!("graph record: unknown flag bits {flags:#x}")));
    }

    cur.u32s_into(n, &mut dst.node_text)?;
    let mut edge_counts = [0usize; NUM_RELATIONS];
    for (r, count) in edge_counts.iter_mut().enumerate() {
        let e = cur.u32()? as usize;
        *count = e;
        cur.pairs_into(e, &mut dst.edges[r])?;
        cur.f32s_into(e, &mut dst.norm[r])?;
        for (i, &(s, d)) in dst.edges[r].iter().enumerate() {
            if s as usize >= n || d as usize >= n {
                return Err(corruption(format!(
                    "graph record: relation {r} edge {i} endpoint out of range \
                     (({s}, {d}) with {n} nodes)"
                )));
            }
        }
    }

    // Recycle the destination's adjacency arrays (if any) as decode targets.
    let (old_csr, old_csc) = dst.take_adjacency();
    if flags & FLAG_ADJACENCY != 0 {
        let mut views = [old_csr.unwrap_or_default(), old_csc.unwrap_or_default()];
        for view in &mut views {
            for (r, csr) in view.iter_mut().enumerate() {
                let e = edge_counts[r];
                cur.u32s_into(n + 1, &mut csr.row_ptr)?;
                cur.u32s_into(e, &mut csr.src)?;
                cur.f32s_into(e, &mut csr.weight)?;
                if csr.row_ptr.first() != Some(&0) && n > 0 {
                    return Err(corruption(format!("graph record: relation {r} row_ptr[0] != 0")));
                }
                if csr.row_ptr.windows(2).any(|w| w[0] > w[1]) {
                    return Err(corruption(format!(
                        "graph record: relation {r} row_ptr not monotone"
                    )));
                }
                if csr.row_ptr.last().copied().unwrap_or(0) as usize != e {
                    return Err(corruption(format!(
                        "graph record: relation {r} row_ptr does not span {e} edges"
                    )));
                }
                if csr.src.iter().any(|&s| s as usize >= n) {
                    return Err(corruption(format!(
                        "graph record: relation {r} adjacency source out of range"
                    )));
                }
            }
        }
        let [csr, csc] = views;
        dst.install_adjacency(csr, csc);
    }

    if cur.pos != bytes.len() {
        return Err(corruption(format!(
            "graph record: {} trailing bytes after the graph",
            bytes.len() - cur.pos
        )));
    }
    Ok(())
}

/// Bounds-checked little-endian cursor over a record payload.
struct Cur<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn take(&mut self, len: usize) -> io::Result<&'a [u8]> {
        if self.bytes.len() - self.pos < len {
            return Err(corruption(format!(
                "graph record truncated: need {len} bytes at offset {}, {} remain",
                self.pos,
                self.bytes.len() - self.pos
            )));
        }
        let out = &self.bytes[self.pos..self.pos + len];
        self.pos += len;
        Ok(out)
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u32s_into(&mut self, count: usize, out: &mut Vec<u32>) -> io::Result<()> {
        let raw = self.take(count * 4)?;
        out.clear();
        out.extend(raw.chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().unwrap())));
        Ok(())
    }

    fn f32s_into(&mut self, count: usize, out: &mut Vec<f32>) -> io::Result<()> {
        let raw = self.take(count * 4)?;
        out.clear();
        out.extend(raw.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())));
        Ok(())
    }

    fn pairs_into(&mut self, count: usize, out: &mut Vec<(u32, u32)>) -> io::Result<()> {
        let raw = self.take(count * 8)?;
        out.clear();
        out.extend(raw.chunks_exact(8).map(|c| {
            (
                u32::from_le_bytes(c[..4].try_into().unwrap()),
                u32::from_le_bytes(c[4..].try_into().unwrap()),
            )
        }));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GraphData {
        GraphData::from_edge_lists(
            vec![3, 5, 9, 2],
            [vec![(0, 1), (2, 1)], vec![(0, 2), (2, 1), (1, 2), (3, 2)], vec![]],
        )
    }

    fn assert_graphs_identical(a: &GraphData, b: &GraphData) {
        assert_eq!(a.node_text, b.node_text);
        assert_eq!(a.edges, b.edges);
        assert_eq!(a.norm, b.norm);
        for r in 0..NUM_RELATIONS {
            for (x, y) in [(&a.csr()[r], &b.csr()[r]), (&a.csc()[r], &b.csc()[r])] {
                assert_eq!(x.row_ptr, y.row_ptr, "relation {r}");
                assert_eq!(x.src, y.src, "relation {r}");
                assert_eq!(x.weight, y.weight, "relation {r}");
            }
        }
    }

    #[test]
    fn round_trip_is_bit_identical_including_adjacency() {
        let g = sample();
        let mut buf = Vec::new();
        encode_graph(&g, &mut buf);
        let back = decode_graph(&buf).unwrap();
        assert_graphs_identical(&g, &back);

        // Empty graph round-trips too.
        let empty = GraphData::from_edge_lists(vec![], Default::default());
        let mut buf = Vec::new();
        encode_graph(&empty, &mut buf);
        let back = decode_graph(&buf).unwrap();
        assert_graphs_identical(&empty, &back);
    }

    #[test]
    fn decode_into_reuses_a_previous_graphs_allocations() {
        let g = sample();
        let mut buf = Vec::new();
        encode_graph(&g, &mut buf);

        // Seed the slot with a different, adjacency-materialized graph.
        let mut slot =
            GraphData::from_edge_lists(vec![1, 1, 1, 1, 1, 1], [vec![(0, 5)], vec![], vec![]]);
        let _ = slot.csr();
        let _ = slot.csc();
        decode_graph_into(&buf, &mut slot).unwrap();
        assert_graphs_identical(&g, &slot);

        // And a second decode over the now-populated slot still matches.
        decode_graph_into(&buf, &mut slot).unwrap();
        assert_graphs_identical(&g, &slot);
    }

    #[test]
    fn truncation_and_trailing_bytes_are_invalid_data() {
        let g = sample();
        let mut buf = Vec::new();
        encode_graph(&g, &mut buf);
        for cut in [3, buf.len() / 2, buf.len() - 1] {
            let err = decode_graph(&buf[..cut]).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "cut at {cut}");
        }
        let mut padded = buf.clone();
        padded.push(0);
        let err = decode_graph(&padded).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn structural_damage_is_invalid_data_not_a_panic() {
        let g = sample();
        let mut buf = Vec::new();
        encode_graph(&g, &mut buf);
        // Corrupt the first node token's slot? That's legal data. Instead,
        // make an edge endpoint out of range: the first edge src lives right
        // after header (8) + node_text (4*4) + relation-0 edge count (4).
        let off = 8 + 16 + 4;
        let mut bad = buf.clone();
        bad[off..off + 4].copy_from_slice(&99u32.to_le_bytes());
        let err = decode_graph(&bad).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("out of range"), "{err}");
    }
}
