//! Shape-specialized kernel dispatch with prepacked weights ("JIT-lite").
//!
//! The blocked kernels in [`crate::tensor`] are fully generic over matrix
//! shape, but the paper's workload hits a handful of hot shapes (hidden
//! 64/256, 13 labels, per-relation degree skew). This module closes the gap
//! between generic and shape-tuned kernels without changing a single bit of
//! output:
//!
//! * **Monomorphized matmul kernels** ([`matmul_accumulate_auto`]) — const
//!   generic column-width variants of the blocked kernel for the common
//!   shapes. Knowing the width at compile time lets the inner loops hold a
//!   4-row × 8-column accumulator block entirely in registers across the
//!   whole `k` sweep (the generic kernel re-loads and re-stores four output
//!   rows on every `k`), which is where the speedup comes from. Every output
//!   element still accumulates its terms in exactly the generic kernel's
//!   order — same zero-skip condition, ascending `k` — so results are
//!   bit-identical and the dynamic kernel remains a drop-in fallback.
//! * **Prepacked weights** ([`ModelPlan`]) — at model load (or once per
//!   optimizer step in training), each matmul weight is packed into an
//!   8-wide column-panel layout ([`PackedMatrix`]) so the specialized
//!   kernels stream it sequentially, and each RGCN layer weight's transpose
//!   is materialized once for the backward pass — inference and training
//!   stop re-striding weights per call.
//! * **Per-relation SpMM strategy** ([`SpmmStrategy`]) — picked from cheap
//!   degree statistics cached on [`GraphData`]: the CSR row-major gather for
//!   relations with real fan-in, an edge-major sweep for sparse/tiny
//!   relations where walking `n` row pointers costs more than streaming `e`
//!   edges. Both visit each destination's incoming edges in original
//!   edge-list order, so they are bit-identical. (A dense-matmul fallback
//!   and a CSC-staged forward were evaluated and rejected: both reorder
//!   per-destination sums and would break the bit-identity contract.)
//! * **Plan cache** ([`plan_for`]) — the chosen strategies are memoized per
//!   graph-shape signature (hidden, classes, layers, per-relation degree
//!   buckets) with hit/miss counters exposed through `irnuma-obs` and
//!   rendered by `irnuma report`.
//!
//! Dispatch is on by default. `IRNUMA_NO_DISPATCH=1` (or
//! [`set_dispatch`]`(false)`, wired to the CLI's `--no-dispatch`) forces
//! every path back onto the generic kernels — the fallback stays live and
//! is exercised by CI.

use crate::graphdata::{Csr, GraphData, NUM_RELATIONS};
use crate::model::GnnModel;
use crate::tensor::{matmul_accumulate, Tensor};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

// ---------------------------------------------------------------------------
// Dispatch switch
// ---------------------------------------------------------------------------

/// 0 = unset (read `IRNUMA_NO_DISPATCH` on first use), 1 = on, 2 = off.
static DISPATCH: AtomicU8 = AtomicU8::new(0);

/// Whether shape-specialized dispatch is active. Defaults to on; the
/// `IRNUMA_NO_DISPATCH` environment variable (any non-empty value except
/// `0`) or [`set_dispatch`]`(false)` forces the generic fallback kernels.
pub fn dispatch_enabled() -> bool {
    match DISPATCH.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let off = std::env::var("IRNUMA_NO_DISPATCH").is_ok_and(|v| !v.is_empty() && v != "0");
            DISPATCH.store(if off { 2 } else { 1 }, Ordering::Relaxed);
            !off
        }
    }
}

/// Force dispatch on or off for this process (CLI `--no-dispatch`, benches,
/// tests). Overrides the environment.
pub fn set_dispatch(enabled: bool) {
    DISPATCH.store(if enabled { 1 } else { 2 }, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Monomorphized matmul kernels
// ---------------------------------------------------------------------------

/// Column-panel width of the packed weight layout: 16 f32 lanes — one
/// 512-bit vector register, or two 256-bit ones.
const PANEL: usize = 16;

/// The column widths with a monomorphized kernel: the paper's label count
/// (13), its hidden sizes (64, 256), and the reduced widths the test suite
/// and smoke configurations run at.
pub const SPEC_COLS: [usize; 7] = [8, 13, 16, 32, 64, 128, 256];

/// Offset of packed element `b[k][j]` in the layout of [`PackedMatrix`]:
/// `PANEL`-column panels, `k`-major inside each panel. `j` must be 8-aligned
/// so an 8-float read never crosses a panel row.
#[inline(always)]
fn pack_off(inner: usize, k: usize, j: usize) -> usize {
    (j / PANEL) * (inner * PANEL) + k * PANEL + (j % PANEL)
}

/// One 4-row × `W`-column accumulator block over packed `b` (`W` a multiple
/// of 8, known at compile time so the column loops fully unroll into vector
/// code), registers-resident across the whole `k` sweep. Per output element
/// the accumulation order is exactly the generic kernel's: existing output
/// value first, then ascending `k`, skipping `k` only when all four `a`
/// values are zero.
#[inline(always)]
fn mm_block4<const COLS: usize, const W: usize>(
    a: &[f32],
    i: usize,
    inner: usize,
    b: &[f32],
    out: &mut [f32],
    j0: usize,
) {
    let mut acc = [[0.0f32; W]; 4];
    for (rb, row) in acc.iter_mut().enumerate() {
        row.copy_from_slice(&out[(i + rb) * COLS + j0..][..W]);
    }
    for k in 0..inner {
        let a0 = a[i * inner + k];
        let a1 = a[(i + 1) * inner + k];
        let a2 = a[(i + 2) * inner + k];
        let a3 = a[(i + 3) * inner + k];
        if a0 == 0.0 && a1 == 0.0 && a2 == 0.0 && a3 == 0.0 {
            continue; // post-relu activations are often zero
        }
        for p in 0..W / 8 {
            let off = pack_off(inner, k, j0 + p * 8);
            let brow = &b[off..off + 8];
            for jj in 0..8 {
                let bv = brow[jj];
                acc[0][p * 8 + jj] += a0 * bv;
                acc[1][p * 8 + jj] += a1 * bv;
                acc[2][p * 8 + jj] += a2 * bv;
                acc[3][p * 8 + jj] += a3 * bv;
            }
        }
    }
    for (rb, row) in acc.iter().enumerate() {
        out[(i + rb) * COLS + j0..][..W].copy_from_slice(row);
    }
}

/// 4-row sub-panel tail (`w < 8` at runtime): same skip rule as
/// [`mm_block4`].
#[inline(always)]
fn mm_tail4<const COLS: usize>(
    a: &[f32],
    i: usize,
    inner: usize,
    b: &[f32],
    out: &mut [f32],
    j0: usize,
    w: usize,
) {
    let mut acc = [[0.0f32; 8]; 4];
    for (rb, row) in acc.iter_mut().enumerate() {
        row[..w].copy_from_slice(&out[(i + rb) * COLS + j0..][..w]);
    }
    for k in 0..inner {
        let a0 = a[i * inner + k];
        let a1 = a[(i + 1) * inner + k];
        let a2 = a[(i + 2) * inner + k];
        let a3 = a[(i + 3) * inner + k];
        if a0 == 0.0 && a1 == 0.0 && a2 == 0.0 && a3 == 0.0 {
            continue;
        }
        let off = pack_off(inner, k, j0);
        for (jj, &bv) in b[off..off + w].iter().enumerate() {
            acc[0][jj] += a0 * bv;
            acc[1][jj] += a1 * bv;
            acc[2][jj] += a2 * bv;
            acc[3][jj] += a3 * bv;
        }
    }
    for (rb, row) in acc.iter().enumerate() {
        out[(i + rb) * COLS + j0..][..w].copy_from_slice(&row[..w]);
    }
}

/// Single-row `W`-column block over packed `b`: same per-row zero-skip as
/// the generic kernel's tail.
#[inline(always)]
fn mm_row1<const COLS: usize, const W: usize>(
    arow: &[f32],
    inner: usize,
    b: &[f32],
    dst: &mut [f32],
    j0: usize,
) {
    let mut acc = [0.0f32; W];
    acc.copy_from_slice(&dst[j0..j0 + W]);
    for (k, &av) in arow.iter().enumerate() {
        if av == 0.0 {
            continue;
        }
        for p in 0..W / 8 {
            let off = pack_off(inner, k, j0 + p * 8);
            for (jj, &bv) in b[off..off + 8].iter().enumerate() {
                acc[p * 8 + jj] += av * bv;
            }
        }
    }
    dst[j0..j0 + W].copy_from_slice(&acc);
}

/// Single-row sub-panel tail (`w < 8` at runtime).
#[inline(always)]
fn mm_tail1<const COLS: usize>(
    arow: &[f32],
    inner: usize,
    b: &[f32],
    dst: &mut [f32],
    j0: usize,
    w: usize,
) {
    let mut acc = [0.0f32; 8];
    acc[..w].copy_from_slice(&dst[j0..j0 + w]);
    for (k, &av) in arow.iter().enumerate() {
        if av == 0.0 {
            continue;
        }
        let off = pack_off(inner, k, j0);
        for (jj, &bv) in b[off..off + w].iter().enumerate() {
            acc[jj] += av * bv;
        }
    }
    dst[j0..j0 + w].copy_from_slice(&acc[..w]);
}

/// `out += a @ b` over a [`PackedMatrix`] with `COLS` known at compile time.
/// Bit-identical to [`matmul_accumulate`] (proven by
/// `tests/dispatch_equivalence.rs`). `WIDE` turns on 32-column blocks (8
/// 512-bit accumulators) — profitable only on the AVX-512 instantiation;
/// narrower ISAs would spill. `inline(always)` so the ISA wrappers below
/// recompile this body under their wider vector features.
#[inline(always)]
fn mm_pack_body<const COLS: usize, const WIDE: bool>(
    a: &[f32],
    rows: usize,
    inner: usize,
    b: &[f32],
    out: &mut [f32],
) {
    debug_assert_eq!(a.len(), rows * inner);
    debug_assert_eq!(out.len(), rows * COLS);
    // Column split, const-folded per COLS: 64- then 32-wide blocks (if
    // WIDE), then at most one 16-wide, one 8-wide, and a <8 sub-panel tail.
    // Wider blocks amortize the per-`k` loads of `a` and the zero test over
    // more vector work, and re-stream `a` fewer times.
    let w64 = if WIDE { COLS / 64 * 64 } else { 0 };
    let w32 = w64 + if WIDE { (COLS - w64) / 32 * 32 } else { 0 };
    let w16 = w32 + (COLS - w32) / 16 * 16;
    let w8 = w16 + (COLS - w16) / 8 * 8;

    let full_rows = rows / 4 * 4;
    let mut i = 0;
    while i < full_rows {
        let mut j0 = 0;
        while j0 < w64 {
            mm_block4::<COLS, 64>(a, i, inner, b, out, j0);
            j0 += 64;
        }
        while j0 < w32 {
            mm_block4::<COLS, 32>(a, i, inner, b, out, j0);
            j0 += 32;
        }
        while j0 < w16 {
            mm_block4::<COLS, 16>(a, i, inner, b, out, j0);
            j0 += 16;
        }
        while j0 < w8 {
            mm_block4::<COLS, 8>(a, i, inner, b, out, j0);
            j0 += 8;
        }
        if j0 < COLS {
            mm_tail4::<COLS>(a, i, inner, b, out, j0, COLS - j0);
        }
        i += 4;
    }
    for i in full_rows..rows {
        let arow = &a[i * inner..(i + 1) * inner];
        let dst = &mut out[i * COLS..(i + 1) * COLS];
        let mut j0 = 0;
        while j0 < w64 {
            mm_row1::<COLS, 64>(arow, inner, b, dst, j0);
            j0 += 64;
        }
        while j0 < w32 {
            mm_row1::<COLS, 32>(arow, inner, b, dst, j0);
            j0 += 32;
        }
        while j0 < w16 {
            mm_row1::<COLS, 16>(arow, inner, b, dst, j0);
            j0 += 16;
        }
        while j0 < w8 {
            mm_row1::<COLS, 8>(arow, inner, b, dst, j0);
            j0 += 8;
        }
        if j0 < COLS {
            mm_tail1::<COLS>(arow, inner, b, dst, j0, COLS - j0);
        }
    }
}

/// Row-major monomorphized body: the generic blocked kernel with `cols`
/// promoted to a compile-time constant, so LLVM can fully unroll the column
/// loop (and, in the ISA wrappers, widen it). The generic kernel's
/// b-row-streaming shape is the right one for row-major operands; the panel
/// kernels above exist for the packed layout.
#[inline(always)]
fn mm_rm_body<const COLS: usize>(a: &[f32], rows: usize, inner: usize, b: &[f32], out: &mut [f32]) {
    crate::tensor::matmul_accumulate_body(a, rows, inner, b, COLS, out)
}

/// Column-blocked row-major body for wide outputs. At `COLS ≤ 64` LLVM
/// register-promotes the streaming kernel's output rows across the whole
/// `k` loop (the `&mut` slice is `noalias`), but a 4×128+ strip exceeds the
/// register file and every `k` iteration re-loads and re-stores it — output
/// traffic grows with `inner`. This variant makes the promotion explicit:
/// `JB`-column strips of the output are accumulated in locals across all of
/// `k` and written back once. Per output element the arithmetic — separate
/// multiply and add, ascending `k`, the streaming kernel's exact 4-row /
/// 1-row zero-skip tests — is unchanged, so it is bit-identical to
/// [`mm_rm_body`] at every `JB`. Requires `COLS % JB == 0`.
#[inline(always)]
fn mm_rm_wide_body<const COLS: usize, const JB: usize>(
    a: &[f32],
    rows: usize,
    inner: usize,
    b: &[f32],
    out: &mut [f32],
) {
    debug_assert_eq!(COLS % JB, 0);
    debug_assert_eq!(a.len(), rows * inner);
    debug_assert_eq!(b.len(), inner * COLS);
    debug_assert_eq!(out.len(), rows * COLS);

    let full = rows / 4 * 4;
    let mut i = 0;
    while i < full {
        let mut jb = 0;
        while jb < COLS {
            let mut acc = [[0.0f32; JB]; 4];
            for (r, accr) in acc.iter_mut().enumerate() {
                accr.copy_from_slice(&out[(i + r) * COLS + jb..][..JB]);
            }
            for k in 0..inner {
                let a0 = a[i * inner + k];
                let a1 = a[(i + 1) * inner + k];
                let a2 = a[(i + 2) * inner + k];
                let a3 = a[(i + 3) * inner + k];
                if a0 == 0.0 && a1 == 0.0 && a2 == 0.0 && a3 == 0.0 {
                    continue; // same skip as the streaming kernel
                }
                let brow: &[f32; JB] = b[k * COLS + jb..][..JB].try_into().expect("strip");
                for (j, &bv) in brow.iter().enumerate() {
                    acc[0][j] += a0 * bv;
                    acc[1][j] += a1 * bv;
                    acc[2][j] += a2 * bv;
                    acc[3][j] += a3 * bv;
                }
            }
            for (r, accr) in acc.iter().enumerate() {
                out[(i + r) * COLS + jb..][..JB].copy_from_slice(accr);
            }
            jb += JB;
        }
        i += 4;
    }

    for i in full..rows {
        let mut jb = 0;
        while jb < COLS {
            let mut acc = [0.0f32; JB];
            acc.copy_from_slice(&out[i * COLS + jb..][..JB]);
            for k in 0..inner {
                let av = a[i * inner + k];
                if av == 0.0 {
                    continue;
                }
                let brow: &[f32; JB] = b[k * COLS + jb..][..JB].try_into().expect("strip");
                for (j, &bv) in brow.iter().enumerate() {
                    acc[j] += av * bv;
                }
            }
            out[i * COLS + jb..][..JB].copy_from_slice(&acc);
            jb += JB;
        }
    }
}

/// Strip width per ISA: 4 rows × `JB` floats of accumulator must fit the
/// vector register file (AVX-512: 4×64 = 16 of 32 zmm; AVX2: 4×32 = 16 of
/// 16 ymm, brow reloads from L1). Widths the preferred strip doesn't divide
/// drop to a 32-wide strip, then to the streaming kernel — all bit-identical,
/// so the cascade is purely a speed choice.
#[inline(always)]
fn mm_rm_isa_body<const COLS: usize, const JB: usize>(
    a: &[f32],
    rows: usize,
    inner: usize,
    b: &[f32],
    out: &mut [f32],
) {
    if COLS % JB == 0 {
        mm_rm_wide_body::<COLS, JB>(a, rows, inner, b, out)
    } else if COLS % 32 == 0 {
        mm_rm_wide_body::<COLS, 32>(a, rows, inner, b, out)
    } else {
        mm_rm_body::<COLS>(a, rows, inner, b, out)
    }
}

/// Baseline-ISA instantiations (whatever vector width the crate was
/// compiled for — plain x86-64 means SSE2).
fn mm_rm<const COLS: usize>(a: &[f32], rows: usize, inner: usize, b: &[f32], out: &mut [f32]) {
    mm_rm_body::<COLS>(a, rows, inner, b, out)
}

fn mm_pack<const COLS: usize>(a: &[f32], rows: usize, inner: usize, b: &[f32], out: &mut [f32]) {
    mm_pack_body::<COLS, false>(a, rows, inner, b, out)
}

/// The same bodies recompiled with 256-bit vectors. The scalar accumulation
/// per output element is unchanged (separate multiply and add, ascending
/// `k`) — LLVM only widens the independent column lanes, and never
/// introduces FMA contraction — so results stay bit-identical. Callers must
/// have verified `avx2` is available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn mm_rm_avx2<const COLS: usize>(
    a: &[f32],
    rows: usize,
    inner: usize,
    b: &[f32],
    out: &mut [f32],
) {
    mm_rm_isa_body::<COLS, 32>(a, rows, inner, b, out)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn mm_pack_avx2<const COLS: usize>(
    a: &[f32],
    rows: usize,
    inner: usize,
    b: &[f32],
    out: &mut [f32],
) {
    mm_pack_body::<COLS, false>(a, rows, inner, b, out)
}

/// 512-bit vector instantiations; same bit-identity argument as the AVX2
/// wrappers. Callers must have verified `avx512f` is available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn mm_rm_avx512<const COLS: usize>(
    a: &[f32],
    rows: usize,
    inner: usize,
    b: &[f32],
    out: &mut [f32],
) {
    mm_rm_isa_body::<COLS, 64>(a, rows, inner, b, out)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn mm_pack_avx512<const COLS: usize>(
    a: &[f32],
    rows: usize,
    inner: usize,
    b: &[f32],
    out: &mut [f32],
) {
    mm_pack_body::<COLS, true>(a, rows, inner, b, out)
}

/// Vector ISA detected at runtime, cached: 1 = crate baseline, 2 = AVX2,
/// 3 = AVX-512F (0 = not probed yet). This is the "JIT" half of JIT-lite:
/// the binary is compiled for a portable baseline, but the dispatch table
/// hands out kernels recompiled for whatever the host actually has.
static ISA: AtomicU8 = AtomicU8::new(0);

fn isa_level() -> u8 {
    match ISA.load(Ordering::Relaxed) {
        0 => {
            #[cfg(target_arch = "x86_64")]
            let level = if std::arch::is_x86_feature_detected!("avx512f") {
                3
            } else if std::arch::is_x86_feature_detected!("avx2") {
                2
            } else {
                1
            };
            #[cfg(not(target_arch = "x86_64"))]
            let level = 1;
            ISA.store(level, Ordering::Relaxed);
            level
        }
        level => level,
    }
}

type MmFn = fn(&[f32], usize, usize, &[f32], &mut [f32]);

/// Kernel for one (width, layout) pair at the detected ISA level. The
/// non-capturing closures around the `unsafe` wrappers are sound because
/// they are only ever handed out after [`isa_level`] has verified the
/// feature.
fn pick_mm<const COLS: usize, const PACKED: bool>() -> MmFn {
    #[cfg(target_arch = "x86_64")]
    {
        match (isa_level(), PACKED) {
            (3, true) => return |a, r, i, b, o| unsafe { mm_pack_avx512::<COLS>(a, r, i, b, o) },
            (3, false) => return |a, r, i, b, o| unsafe { mm_rm_avx512::<COLS>(a, r, i, b, o) },
            (2, true) => return |a, r, i, b, o| unsafe { mm_pack_avx2::<COLS>(a, r, i, b, o) },
            (2, false) => return |a, r, i, b, o| unsafe { mm_rm_avx2::<COLS>(a, r, i, b, o) },
            _ => {}
        }
    }
    if PACKED {
        mm_pack::<COLS>
    } else {
        mm_rm::<COLS>
    }
}

/// The dispatch table: a monomorphized kernel for each supported column
/// width (`PACKED` selects the operand layout), at the best ISA the host
/// supports.
fn spec_mm<const PACKED: bool>(cols: usize) -> Option<MmFn> {
    Some(match cols {
        8 => pick_mm::<8, PACKED>(),
        13 => pick_mm::<13, PACKED>(),
        16 => pick_mm::<16, PACKED>(),
        32 => pick_mm::<32, PACKED>(),
        64 => pick_mm::<64, PACKED>(),
        128 => pick_mm::<128, PACKED>(),
        256 => pick_mm::<256, PACKED>(),
        _ => return None,
    })
}

/// `out += a @ b` (row-major `b`), routed through the monomorphized kernel
/// when dispatch is on and `cols` has one, the generic blocked kernel
/// otherwise. Always bit-identical to [`matmul_accumulate`].
pub fn matmul_accumulate_auto(
    a: &[f32],
    rows: usize,
    inner: usize,
    b: &[f32],
    cols: usize,
    out: &mut [f32],
) {
    let _f = irnuma_obs::profile_frame!("kernel.matmul");
    if dispatch_enabled() {
        if let Some(f) = spec_mm::<false>(cols) {
            if irnuma_obs::telemetry_enabled() {
                irnuma_obs::counter!("dispatch.matmul_spec").inc(1);
            }
            return f(a, rows, inner, b, out);
        }
    }
    if irnuma_obs::telemetry_enabled() {
        irnuma_obs::counter!("dispatch.matmul_generic").inc(1);
    }
    matmul_accumulate(a, rows, inner, b, cols, out);
}

// ---------------------------------------------------------------------------
// Elementwise kernels
// ---------------------------------------------------------------------------
//
// The forward pass spends a visible slice of its time in elementwise sweeps
// over `n × d` activation buffers: folding relation terms into the layer
// accumulator, bias + ReLU, the residual add, layer-norm scaling, pooling.
// Every one of them is per-element independent (no cross-element reductions),
// so re-instantiating the same body inside a `#[target_feature]` wrapper
// changes how many lanes run per instruction and nothing else — results are
// bit-identical at every ISA level. The reductions that do exist (layer-norm
// mean/variance) stay in their original scalar order at the call sites.

#[inline(always)]
fn vadd_body(out: &mut [f32], src: &[f32]) {
    for (o, &v) in out.iter_mut().zip(src) {
        *o += v;
    }
}

/// `out[i] = max(acc[i] + bias[i mod d], 0)` over `n` rows of width `d`.
#[inline(always)]
fn bias_relu_body(acc: &[f32], bias: &[f32], out: &mut [f32]) {
    let d = bias.len();
    for (orow, arow) in out.chunks_exact_mut(d).zip(acc.chunks_exact(d)) {
        for ((o, &a), &b) in orow.iter_mut().zip(arow).zip(bias) {
            let pre = a + b;
            *o = if pre < 0.0 { 0.0 } else { pre };
        }
    }
}

/// One normalized layer-norm row: `out[j] = gamma[j]·((x[j]−mu)·inv) + beta[j]`.
/// `mu`/`inv` come from the caller's scalar reductions.
#[inline(always)]
fn ln_scale_body(x: &[f32], mu: f32, inv: f32, gamma: &[f32], beta: &[f32], out: &mut [f32]) {
    for (((o, &xc), &gc), &bc) in out.iter_mut().zip(x).zip(gamma).zip(beta) {
        *o = gc * ((xc - mu) * inv) + bc;
    }
}

macro_rules! isa_wrap {
    ($base:ident, $avx2:ident, $avx512:ident, $body:ident, ($($arg:ident : $ty:ty),*)) => {
        fn $base($($arg: $ty),*) {
            $body($($arg),*)
        }
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx2")]
        unsafe fn $avx2($($arg: $ty),*) {
            $body($($arg),*)
        }
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx512f")]
        unsafe fn $avx512($($arg: $ty),*) {
            $body($($arg),*)
        }
    };
}

isa_wrap!(vadd_base, vadd_avx2, vadd_avx512, vadd_body, (out: &mut [f32], src: &[f32]));
isa_wrap!(
    bias_relu_base,
    bias_relu_avx2,
    bias_relu_avx512,
    bias_relu_body,
    (acc: &[f32], bias: &[f32], out: &mut [f32])
);
isa_wrap!(
    ln_scale_base,
    ln_scale_avx2,
    ln_scale_avx512,
    ln_scale_body,
    (x: &[f32], mu: f32, inv: f32, gamma: &[f32], beta: &[f32], out: &mut [f32])
);

/// `out += src`, elementwise, at the widest ISA this CPU runs (scalar-order
/// fallback when dispatch is off). Bit-identical either way.
#[inline]
pub fn vec_add_assign(out: &mut [f32], src: &[f32]) {
    #[cfg(target_arch = "x86_64")]
    if dispatch_enabled() {
        match isa_level() {
            3 => return unsafe { vadd_avx512(out, src) },
            2 => return unsafe { vadd_avx2(out, src) },
            _ => {}
        }
    }
    vadd_base(out, src)
}

/// Bias add + ReLU over `n` rows (`acc`/`out` are `n·d` long, `bias` is `d`).
#[inline]
pub fn bias_relu_rows(acc: &[f32], bias: &[f32], out: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if dispatch_enabled() {
        match isa_level() {
            3 => return unsafe { bias_relu_avx512(acc, bias, out) },
            2 => return unsafe { bias_relu_avx2(acc, bias, out) },
            _ => {}
        }
    }
    bias_relu_base(acc, bias, out)
}

/// The elementwise tail of one layer-norm row (the caller supplies the
/// scalar-order `mu` and `inv` reductions).
#[inline]
pub fn ln_scale_row(x: &[f32], mu: f32, inv: f32, gamma: &[f32], beta: &[f32], out: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if dispatch_enabled() {
        match isa_level() {
            3 => return unsafe { ln_scale_avx512(x, mu, inv, gamma, beta, out) },
            2 => return unsafe { ln_scale_avx2(x, mu, inv, gamma, beta, out) },
            _ => {}
        }
    }
    ln_scale_base(x, mu, inv, gamma, beta, out)
}

/// One row's layer-norm statistics in the tape's exact order: `mu` is the
/// strict left-to-right sum over the row, `inv` the matching variance
/// reciprocal. Kept `inline(always)` so [`ln_pool_body`] can interleave four
/// independent rows' chains without touching any single row's order.
#[inline(always)]
fn ln_row_stats(x: &[f32], d: usize, eps: f32) -> (f32, f32) {
    let mu: f32 = x.iter().sum::<f32>() / d as f32;
    let var: f32 = x.iter().map(|v| (v - mu) * (v - mu)).sum::<f32>() / d as f32;
    (mu, 1.0 / (var + eps).sqrt())
}

/// Layer norm over `n` rows fused with ascending-row mean-pool accumulation.
/// Each row's `mu`/`var` reduction keeps the tape's strict left-to-right
/// order — four rows are interleaved only to give the CPU four independent
/// FP-add chains (the serial chain is the bottleneck, ~4 cycles per add) —
/// and pooled rows still accumulate in ascending row order, so the result
/// is bit-identical to the one-row-at-a-time loop.
#[inline(always)]
fn ln_pool_body(
    h: &[f32],
    n: usize,
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
    out: &mut [f32],
    pooled: &mut [f32],
) {
    let d = gamma.len();
    let full = n / 4 * 4;
    let mut row = 0;
    while row < full {
        let x0 = &h[row * d..(row + 1) * d];
        let x1 = &h[(row + 1) * d..(row + 2) * d];
        let x2 = &h[(row + 2) * d..(row + 3) * d];
        let x3 = &h[(row + 3) * d..(row + 4) * d];
        let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
        for j in 0..d {
            s0 += x0[j];
            s1 += x1[j];
            s2 += x2[j];
            s3 += x3[j];
        }
        let dn = d as f32;
        let (m0, m1, m2, m3) = (s0 / dn, s1 / dn, s2 / dn, s3 / dn);
        let (mut v0, mut v1, mut v2, mut v3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
        for j in 0..d {
            v0 += (x0[j] - m0) * (x0[j] - m0);
            v1 += (x1[j] - m1) * (x1[j] - m1);
            v2 += (x2[j] - m2) * (x2[j] - m2);
            v3 += (x3[j] - m3) * (x3[j] - m3);
        }
        let i0 = 1.0 / (v0 / dn + eps).sqrt();
        let i1 = 1.0 / (v1 / dn + eps).sqrt();
        let i2 = 1.0 / (v2 / dn + eps).sqrt();
        let i3 = 1.0 / (v3 / dn + eps).sqrt();
        for (r, (xr, mr, ir)) in
            [(x0, m0, i0), (x1, m1, i1), (x2, m2, i2), (x3, m3, i3)].into_iter().enumerate()
        {
            let o = &mut out[(row + r) * d..(row + r + 1) * d];
            ln_scale_body(xr, mr, ir, gamma, beta, o);
            vadd_body(pooled, o);
        }
        row += 4;
    }
    while row < n {
        let x = &h[row * d..(row + 1) * d];
        let (mu, inv) = ln_row_stats(x, d, eps);
        let o = &mut out[row * d..(row + 1) * d];
        ln_scale_body(x, mu, inv, gamma, beta, o);
        vadd_body(pooled, o);
        row += 1;
    }
}

isa_wrap!(
    ln_pool_base,
    ln_pool_avx2,
    ln_pool_avx512,
    ln_pool_body,
    (h: &[f32], n: usize, gamma: &[f32], beta: &[f32], eps: f32, out: &mut [f32], pooled: &mut [f32])
);

/// Fused layer norm + mean-pool accumulation over `n` rows (`h`/`out` are
/// `n·d`; `pooled` is `d` and receives the ascending-row sum of normalized
/// rows — the caller divides by `n`). Bit-identical to the scalar per-row
/// loop at every ISA level; dispatch off falls back to exactly that loop.
#[inline]
pub fn ln_pool_rows(
    h: &[f32],
    n: usize,
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
    out: &mut [f32],
    pooled: &mut [f32],
) {
    if dispatch_enabled() {
        #[cfg(target_arch = "x86_64")]
        match isa_level() {
            3 => return unsafe { ln_pool_avx512(h, n, gamma, beta, eps, out, pooled) },
            2 => return unsafe { ln_pool_avx2(h, n, gamma, beta, eps, out, pooled) },
            _ => {}
        }
        // Baseline ISA still benefits from the four interleaved chains.
        return ln_pool_base(h, n, gamma, beta, eps, out, pooled);
    }
    let d = gamma.len();
    for row in 0..n {
        let x = &h[row * d..(row + 1) * d];
        let (mu, inv) = ln_row_stats(x, d, eps);
        let o = &mut out[row * d..(row + 1) * d];
        ln_scale_base(x, mu, inv, gamma, beta, o);
        vadd_base(pooled, o);
    }
}

// ---------------------------------------------------------------------------
// Prepacked weights
// ---------------------------------------------------------------------------

/// A weight matrix repacked into [`PANEL`]-wide column panels: panel `p`
/// holds columns `p*PANEL .. (p+1)*PANEL` for all `inner` rows contiguously
/// (`k`-major within the panel), the last panel zero-padded to the full
/// width. The monomorphized kernels stream a panel sequentially instead of
/// striding `cols × 4` bytes per `k`. Values are unchanged — only the
/// layout moves — so packed products stay bit-identical.
#[derive(Debug, Clone)]
pub struct PackedMatrix {
    pub inner: usize,
    pub cols: usize,
    data: Vec<f32>,
}

impl PackedMatrix {
    /// Pack a row-major `inner × cols` matrix. Only widths in [`SPEC_COLS`]
    /// have a packed kernel; callers gate on [`spec_cols_supported`].
    pub fn pack(b: &[f32], inner: usize, cols: usize) -> PackedMatrix {
        assert_eq!(b.len(), inner * cols, "shape/data mismatch");
        let panels = cols.div_ceil(PANEL);
        let mut data = vec![0.0f32; panels * inner * PANEL];
        for (k, row) in b.chunks_exact(cols).enumerate() {
            for (j, &v) in row.iter().enumerate() {
                data[(j / PANEL) * (inner * PANEL) + k * PANEL + (j % PANEL)] = v;
            }
        }
        PackedMatrix { inner, cols, data }
    }
}

/// Whether `cols` has a monomorphized (and packed) kernel variant.
pub fn spec_cols_supported(cols: usize) -> bool {
    SPEC_COLS.contains(&cols)
}

/// `out += a @ b` where `b` was packed with [`PackedMatrix::pack`].
pub fn matmul_accumulate_packed(a: &[f32], rows: usize, pm: &PackedMatrix, out: &mut [f32]) {
    let _f = irnuma_obs::profile_frame!("kernel.matmul_packed");
    let f = spec_mm::<true>(pm.cols)
        .unwrap_or_else(|| panic!("no packed kernel for width {}", pm.cols));
    if irnuma_obs::telemetry_enabled() {
        irnuma_obs::counter!("dispatch.matmul_packed").inc(1);
    }
    f(a, rows, pm.inner, &pm.data, out);
}

/// One parameter's prepacked forms on a [`ModelPlan`].
#[derive(Debug, Clone)]
pub struct PackedParam {
    /// Column-panel layout for the forward product (only for widths with a
    /// packed kernel).
    pub fwd: Option<PackedMatrix>,
    /// Row-major transpose for the backward `dx += dy @ Wᵀ` product,
    /// materialized once instead of per graph.
    pub bwd_t: Option<Vec<f32>>,
}

/// Immutable per-model kernel plan: prepacked weights aligned with
/// `GnnModel::params`. Built at model load (inference) or once per
/// optimizer step (training) — weights are packed once and every forward /
/// backward call stops re-striding them. An empty plan (dispatch disabled)
/// routes every product through the dynamic-shape fallback.
#[derive(Debug, Clone)]
pub struct ModelPlan {
    packed: Vec<Option<PackedParam>>,
}

impl ModelPlan {
    /// Build the inference plan: panel-pack the FC head weights, whose
    /// forward products are 1-row (pooled features) — the shape where the
    /// packed kernels beat streaming the row-major weight. The n-row layer
    /// products go through the monomorphized row-major kernels directly, so
    /// packing them would only add build cost. When dispatch is off the
    /// plan is empty and all call sites fall back.
    pub fn build(model: &GnnModel) -> ModelPlan {
        Self::build_inner(model, false)
    }

    /// Build the training plan: everything [`build`](Self::build) does,
    /// plus the row-major transpose of each layer weight for the backward
    /// `dx += dy @ Wᵀ` products — materialized once per optimizer step
    /// instead of once per graph.
    pub fn build_training(model: &GnnModel) -> ModelPlan {
        Self::build_inner(model, true)
    }

    fn build_inner(model: &GnnModel, training: bool) -> ModelPlan {
        let mut packed: Vec<Option<PackedParam>> = vec![None; model.params.len()];
        if !dispatch_enabled() {
            return ModelPlan { packed };
        }
        if irnuma_obs::telemetry_enabled() {
            irnuma_obs::counter!("dispatch.plan_builds").inc(1);
        }
        let d = model.cfg.hidden;
        let layer_base = |l: usize| 1 + l * (2 + NUM_RELATIONS);
        if training {
            for l in 0..model.cfg.layers {
                let base = layer_base(l);
                let slots = packed.iter_mut().enumerate().skip(base).take(1 + NUM_RELATIONS);
                for (idx, slot) in slots {
                    let p = &model.params[idx];
                    debug_assert_eq!((p.rows, p.cols), (d, d));
                    let mut t = vec![0.0f32; p.data.len()];
                    crate::tensor::transpose_into(&p.data, p.rows, p.cols, &mut t);
                    *slot = Some(PackedParam { fwd: None, bwd_t: Some(t) });
                }
            }
        }
        let idx_fc1 = layer_base(model.cfg.layers) + 2;
        let idx_fc2 = idx_fc1 + 2;
        debug_assert!(model.param_name(idx_fc1) == "fc1.w");
        debug_assert!(model.param_name(idx_fc2) == "fc2.w");
        for idx in [idx_fc1, idx_fc2] {
            let p = &model.params[idx];
            packed[idx] = Some(PackedParam {
                fwd: spec_cols_supported(p.cols)
                    .then(|| PackedMatrix::pack(&p.data, p.rows, p.cols)),
                bwd_t: None,
            });
        }
        ModelPlan { packed }
    }

    /// Whether any parameter was actually packed (false when dispatch was
    /// off at build time).
    pub fn is_packed(&self) -> bool {
        self.packed.iter().any(Option::is_some)
    }

    /// `out += a @ w` for parameter `idx`. The prepacked panels only pay
    /// off on few-row products (the head's pooled features); at four rows
    /// and up the blocked row-major kernel streams `w` faster than the
    /// panel walk, so wide products take the auto-dispatched path even
    /// when panels exist. Both paths are bit-identical, so the shape
    /// split is purely a speed choice.
    #[inline]
    pub fn matmul(&self, idx: usize, a: &[f32], rows: usize, w: &Tensor, out: &mut [f32]) {
        if rows < 4 {
            if let Some(Some(p)) = self.packed.get(idx) {
                if let Some(pm) = &p.fwd {
                    debug_assert_eq!((pm.inner, pm.cols), (w.rows, w.cols));
                    return matmul_accumulate_packed(a, rows, pm, out);
                }
            }
        }
        matmul_accumulate_auto(a, rows, w.rows, &w.data, w.cols, out);
    }

    /// Parameter `idx`'s prepacked transpose (row-major `cols × rows`), if
    /// the plan carries one.
    pub fn weight_t(&self, idx: usize) -> Option<&[f32]> {
        self.packed.get(idx).and_then(|p| p.as_ref()).and_then(|p| p.bwd_t.as_deref())
    }
}

/// [`ModelPlan::matmul`] through an optional plan (single-graph callers
/// skip plan construction entirely).
#[inline]
pub fn plan_matmul(
    plan: Option<&ModelPlan>,
    idx: usize,
    a: &[f32],
    rows: usize,
    w: &Tensor,
    out: &mut [f32],
) {
    match plan {
        Some(p) => p.matmul(idx, a, rows, w, out),
        None => matmul_accumulate_auto(a, rows, w.rows, &w.data, w.cols, out),
    }
}

// ---------------------------------------------------------------------------
// SpMM strategy
// ---------------------------------------------------------------------------

/// How one relation's message aggregation runs. Every strategy visits each
/// output row's terms in original edge-list order, so all are bit-identical;
/// the choice is purely about memory-access shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpmmStrategy {
    /// Walk the destination-grouped CSR (forward) / source-grouped CSC
    /// (backward) row by row. Best when rows have real fan-in: each output
    /// row stays register/L1-resident across its incoming edges.
    CsrGather,
    /// Stream the original edge list directly, scattering per edge. Best
    /// for sparse or tiny relations where scanning `n` row pointers costs
    /// more than the `e` edges themselves.
    EdgeMajor,
}

/// One relation's adjacency in every form a strategy can consume.
#[derive(Clone, Copy)]
pub struct RelView<'a> {
    /// Destination-grouped (forward) or source-grouped (backward) rows.
    pub rows: &'a Csr,
    /// Original edge list `(src, dst)`.
    pub edges: &'a [(u32, u32)],
    /// Per-edge `1/c_{dst,r}` weights, aligned with `edges`.
    pub norm: &'a [f32],
}

type AxpyFn = fn(&mut [f32], f32, &[f32]);

fn axpy_dyn(out: &mut [f32], w: f32, src: &[f32]) {
    for (o, &v) in out.iter_mut().zip(src) {
        *o += w * v;
    }
}

/// The one shared axpy body, re-instantiated inside each `#[target_feature]`
/// wrapper below. Per-lane multiply-then-add in ascending index order: wider
/// vectors change how many lanes run per instruction, never the per-element
/// arithmetic, so every instantiation is bit-identical (rustc emits strict
/// IR — LLVM will not contract to FMA).
#[inline(always)]
fn axpy_body<const D: usize>(out: &mut [f32], w: f32, src: &[f32]) {
    let out: &mut [f32; D] = (&mut out[..D]).try_into().expect("row width");
    let src: &[f32; D] = src[..D].try_into().expect("row width");
    for (o, &v) in out.iter_mut().zip(src) {
        *o += w * v;
    }
}

fn axpy_spec<const D: usize>(out: &mut [f32], w: f32, src: &[f32]) {
    axpy_body::<D>(out, w, src)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn axpy_spec_avx2<const D: usize>(out: &mut [f32], w: f32, src: &[f32]) {
    axpy_body::<D>(out, w, src)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn axpy_spec_avx512<const D: usize>(out: &mut [f32], w: f32, src: &[f32]) {
    axpy_body::<D>(out, w, src)
}

/// The widest [`axpy_body`] instantiation this CPU can run (same selection
/// story as [`pick_mm`]; the closures are sound because they are only handed
/// out after feature detection).
fn pick_axpy<const D: usize>() -> AxpyFn {
    #[cfg(target_arch = "x86_64")]
    match isa_level() {
        3 => return |out, w, src| unsafe { axpy_spec_avx512::<D>(out, w, src) },
        2 => return |out, w, src| unsafe { axpy_spec_avx2::<D>(out, w, src) },
        _ => {}
    }
    axpy_spec::<D>
}

/// Row-width-specialized `out += w * src` for the SpMM inner loop.
fn axpy_for(d: usize) -> AxpyFn {
    if !dispatch_enabled() {
        return axpy_dyn;
    }
    match d {
        8 => pick_axpy::<8>(),
        13 => pick_axpy::<13>(),
        16 => pick_axpy::<16>(),
        32 => pick_axpy::<32>(),
        64 => pick_axpy::<64>(),
        128 => pick_axpy::<128>(),
        256 => pick_axpy::<256>(),
        _ => axpy_dyn,
    }
}

/// Forward SpMM: `out[dst] = Σ w_e · h[src_e]` over one relation,
/// overwriting `out[..n*d]`. Both strategies accumulate each destination's
/// terms in original edge order — bit-identical results.
pub fn spmm_forward(
    strategy: SpmmStrategy,
    rel: RelView<'_>,
    h: &[f32],
    n: usize,
    d: usize,
    out: &mut [f32],
) {
    let _f = irnuma_obs::profile_frame!("kernel.spmm");
    let axpy = axpy_for(d);
    if irnuma_obs::telemetry_enabled() {
        match strategy {
            SpmmStrategy::CsrGather => irnuma_obs::counter!("dispatch.spmm_csr").inc(1),
            SpmmStrategy::EdgeMajor => irnuma_obs::counter!("dispatch.spmm_edge").inc(1),
        }
    }
    match strategy {
        SpmmStrategy::CsrGather => {
            for i in 0..n {
                let (srcs, ws) = rel.rows.row(i);
                let row = &mut out[i * d..(i + 1) * d];
                row.fill(0.0);
                for (&s, &w) in srcs.iter().zip(ws) {
                    axpy(row, w, &h[s as usize * d..(s as usize + 1) * d]);
                }
            }
        }
        SpmmStrategy::EdgeMajor => {
            out[..n * d].fill(0.0);
            for (&(s, dst), &w) in rel.edges.iter().zip(rel.norm) {
                let (s, dst) = (s as usize, dst as usize);
                axpy(&mut out[dst * d..(dst + 1) * d], w, &h[s * d..(s + 1) * d]);
            }
        }
    }
}

/// Backward SpMM: `out[src] += Σ w_e · term[dst_e]` over one relation,
/// *accumulating* into `out` (the hidden-state gradient is seeded before
/// the relation loop). `rel.rows` must be the source-grouped CSC mirror.
/// Both strategies accumulate each source's terms in original edge order.
pub fn spmm_backward(
    strategy: SpmmStrategy,
    rel: RelView<'_>,
    term: &[f32],
    n: usize,
    d: usize,
    out: &mut [f32],
) {
    let _f = irnuma_obs::profile_frame!("kernel.spmm_backward");
    let axpy = axpy_for(d);
    if irnuma_obs::telemetry_enabled() {
        match strategy {
            SpmmStrategy::CsrGather => irnuma_obs::counter!("dispatch.spmm_csr").inc(1),
            SpmmStrategy::EdgeMajor => irnuma_obs::counter!("dispatch.spmm_edge").inc(1),
        }
    }
    match strategy {
        SpmmStrategy::CsrGather => {
            for i in 0..n {
                let (dsts, ws) = rel.rows.row(i);
                let row = &mut out[i * d..(i + 1) * d];
                for (&dst, &w) in dsts.iter().zip(ws) {
                    axpy(row, w, &term[dst as usize * d..(dst as usize + 1) * d]);
                }
            }
        }
        SpmmStrategy::EdgeMajor => {
            for (&(s, dst), &w) in rel.edges.iter().zip(rel.norm) {
                let (s, dst) = (s as usize, dst as usize);
                axpy(&mut out[s * d..(s + 1) * d], w, &term[dst * d..(dst + 1) * d]);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Plan cache (graph-shape signature → chosen strategies)
// ---------------------------------------------------------------------------

/// A graph-shape signature: everything the strategy choice depends on.
/// Degree distributions are bucketed (log₂ node-count class × density
/// class) so graphs of the same shape share one cache entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShapeSig {
    pub hidden: u32,
    pub classes: u32,
    pub layers: u32,
    /// Per relation: `0xFF` for empty, else `size_class << 2 | density`.
    pub rel: [u8; NUM_RELATIONS],
}

/// Bucket one relation's shape: log₂ node-count class (0–14) and a density
/// class — 0 sparse (`2e < n`), 1 moderate, 2 dense (`e ≥ 4n`).
fn rel_bucket(n: usize, e: usize) -> u8 {
    if e == 0 {
        return 0xFF;
    }
    let size = (usize::BITS - 1 - n.max(1).leading_zeros()).min(14) as u8;
    let density = if e * 2 < n {
        0
    } else if e < n * 4 {
        1
    } else {
        2
    };
    size << 2 | density
}

/// The strategies chosen for one graph shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphPlan {
    pub spmm: [SpmmStrategy; NUM_RELATIONS],
}

impl GraphPlan {
    /// The pre-dispatch behavior: CSR gather everywhere.
    pub fn generic() -> GraphPlan {
        GraphPlan { spmm: [SpmmStrategy::CsrGather; NUM_RELATIONS] }
    }
}

/// Pure strategy choice from a bucketed relation shape: edge-major for
/// sparse relations and tiny graphs (size class < 6 ⇒ n < 64), CSR gather
/// otherwise. Deriving from the bucket — not the raw counts — keeps the
/// signature → plan mapping a pure function the cache can memoize.
fn plan_from_sig(sig: &ShapeSig) -> GraphPlan {
    let mut spmm = [SpmmStrategy::CsrGather; NUM_RELATIONS];
    for (s, &b) in spmm.iter_mut().zip(&sig.rel) {
        if b != 0xFF && (b & 0b11 == 0 || b >> 2 < 6) {
            *s = SpmmStrategy::EdgeMajor;
        }
    }
    GraphPlan { spmm }
}

static PLAN_CACHE: Mutex<Option<HashMap<ShapeSig, GraphPlan>>> = Mutex::new(None);
static PLAN_HITS: AtomicU64 = AtomicU64::new(0);
static PLAN_MISSES: AtomicU64 = AtomicU64::new(0);

/// Entries kept before the cache is cleared (a runaway-shape backstop; real
/// workloads see a handful of signatures).
const PLAN_CACHE_CAP: usize = 4096;

/// Lifetime plan-cache `(hits, misses)` for this process.
pub fn plan_cache_stats() -> (u64, u64) {
    (PLAN_HITS.load(Ordering::Relaxed), PLAN_MISSES.load(Ordering::Relaxed))
}

/// The kernel plan for one graph under one model shape, memoized by shape
/// signature with hit/miss counters. Falls back to the generic plan when
/// dispatch is off.
pub fn plan_for(hidden: usize, classes: usize, layers: usize, g: &GraphData) -> GraphPlan {
    if !dispatch_enabled() {
        return GraphPlan::generic();
    }
    let stats = g.rel_stats();
    let n = g.num_nodes();
    let mut rel = [0u8; NUM_RELATIONS];
    for (b, s) in rel.iter_mut().zip(stats) {
        *b = rel_bucket(n, s.edges as usize);
    }
    let sig =
        ShapeSig { hidden: hidden as u32, classes: classes as u32, layers: layers as u32, rel };

    let mut guard = PLAN_CACHE.lock().expect("plan cache poisoned");
    let cache = guard.get_or_insert_with(HashMap::new);
    if let Some(&plan) = cache.get(&sig) {
        PLAN_HITS.fetch_add(1, Ordering::Relaxed);
        if irnuma_obs::telemetry_enabled() {
            irnuma_obs::counter!("dispatch.plan_hits").inc(1);
        }
        return plan;
    }
    PLAN_MISSES.fetch_add(1, Ordering::Relaxed);
    if irnuma_obs::telemetry_enabled() {
        irnuma_obs::counter!("dispatch.plan_misses").inc(1);
    }
    if cache.len() >= PLAN_CACHE_CAP {
        cache.clear();
    }
    let plan = plan_from_sig(&sig);
    cache.insert(sig, plan);
    plan
}

// ---------------------------------------------------------------------------
// Shared model-plan cache (parameter fingerprint → Arc<ModelPlan>)
// ---------------------------------------------------------------------------

/// FNV-1a 64 fingerprint of a model's architecture and exact parameter
/// bits. Two models agree iff their configs match and every parameter is
/// bit-identical — the same contract a [`ModelPlan`]'s prepacked weights
/// depend on, which is why [`shared_plan`] keys on this rather than on
/// shape alone: two same-shape models with different weights must never
/// share a cached plan (the packed panels *are* the weights).
pub fn model_fingerprint(model: &GnnModel) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    let c = &model.cfg;
    for v in [c.vocab_size, c.hidden, c.classes, c.layers, c.layer_norm as usize] {
        eat(&(v as u64).to_le_bytes());
    }
    for p in &model.params {
        eat(&(p.rows as u64).to_le_bytes());
        eat(&(p.cols as u64).to_le_bytes());
        for v in &p.data {
            eat(&v.to_bits().to_le_bytes());
        }
    }
    h
}

static MODEL_PLANS: Mutex<Option<HashMap<u64, Arc<ModelPlan>>>> = Mutex::new(None);
static MODEL_PLAN_HITS: AtomicU64 = AtomicU64::new(0);
static MODEL_PLAN_MISSES: AtomicU64 = AtomicU64::new(0);

/// Distinct live models kept; a serving process holds one or two (current
/// plus the one being reloaded), so a tiny cap bounds stale-entry memory.
const MODEL_PLAN_CAP: usize = 8;

/// Lifetime shared-model-plan-cache `(hits, misses)` for this process.
pub fn model_plan_cache_stats() -> (u64, u64) {
    (MODEL_PLAN_HITS.load(Ordering::Relaxed), MODEL_PLAN_MISSES.load(Ordering::Relaxed))
}

/// One prepacked [`ModelPlan`] shared by every caller holding the same
/// model bits: keyed by [`model_fingerprint`] (plus the dispatch switch,
/// since it changes what the plan packs), memoized process-wide. This is
/// the serving path's plan source — all connections share one immutable
/// `Arc` per loaded model generation, and a hot-reload naturally misses to
/// a fresh plan because the reloaded weights fingerprint differently.
pub fn shared_plan(model: &GnnModel) -> Arc<ModelPlan> {
    // The dispatch flag is part of the key: an empty (dispatch-off) plan
    // must not be served after the flag flips on, and vice versa.
    let key = model_fingerprint(model) ^ if dispatch_enabled() { 0 } else { 1 };
    if let Some(plan) = MODEL_PLANS
        .lock()
        .expect("model plan cache poisoned")
        .as_ref()
        .and_then(|cache| cache.get(&key).cloned())
    {
        MODEL_PLAN_HITS.fetch_add(1, Ordering::Relaxed);
        if irnuma_obs::telemetry_enabled() {
            irnuma_obs::counter!("dispatch.model_plan_hits").inc(1);
        }
        return plan;
    }
    MODEL_PLAN_MISSES.fetch_add(1, Ordering::Relaxed);
    if irnuma_obs::telemetry_enabled() {
        irnuma_obs::counter!("dispatch.model_plan_misses").inc(1);
    }
    // Built outside the lock: packing touches every FC weight, and a
    // concurrent reload should not serialize behind it. A racing builder
    // produces an identical plan; first insert wins.
    let plan = Arc::new(ModelPlan::build(model));
    let mut guard = MODEL_PLANS.lock().expect("model plan cache poisoned");
    let cache = guard.get_or_insert_with(HashMap::new);
    if cache.len() >= MODEL_PLAN_CAP {
        cache.clear();
    }
    cache.entry(key).or_insert_with(|| plan.clone()).clone()
}

/// Drop every cached kernel plan: the shared model plans *and* the
/// graph-shape strategy cache. Called on model hot-reload so nothing
/// derived from the previous generation's parameters (or its shape
/// population) survives the swap; the next lookups rebuild from the live
/// model. Existing `Arc<ModelPlan>` handles stay valid — invalidation
/// unpins them from the cache, it does not free them under a reader.
pub fn invalidate_plan_caches() {
    if let Some(cache) = MODEL_PLANS.lock().expect("model plan cache poisoned").as_mut() {
        cache.clear();
    }
    if let Some(cache) = PLAN_CACHE.lock().expect("plan cache poisoned").as_mut() {
        cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn random_mats(rows: usize, inner: usize, cols: usize, seed: u64) -> (Vec<f32>, Vec<f32>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut a = Tensor::glorot(rows, inner, &mut rng).data;
        // Post-relu-style zeros exercise the skip path.
        for v in a.iter_mut().step_by(3) {
            *v = 0.0;
        }
        let b = Tensor::glorot(inner, cols, &mut rng).data;
        (a, b)
    }

    #[test]
    fn spec_kernels_match_generic_bitwise_for_every_supported_width() {
        for &cols in &SPEC_COLS {
            for &(rows, inner) in &[(1, 1), (3, 7), (4, 64), (5, 65), (9, 130), (12, 13)] {
                let (a, b) = random_mats(rows, inner, cols, 7 + cols as u64);
                let mut generic = vec![0.5f32; rows * cols]; // nonzero: += semantics
                let mut spec = generic.clone();
                matmul_accumulate(&a, rows, inner, &b, cols, &mut generic);
                spec_mm::<false>(cols).unwrap()(&a, rows, inner, &b, &mut spec);
                assert_eq!(spec, generic, "{rows}x{inner}x{cols}");
            }
        }
    }

    #[test]
    fn packed_kernels_match_generic_bitwise() {
        for &cols in &SPEC_COLS {
            let (rows, inner) = (7, 33);
            let (a, b) = random_mats(rows, inner, cols, cols as u64);
            let mut generic = vec![1.0f32; rows * cols];
            let mut packed = generic.clone();
            matmul_accumulate(&a, rows, inner, &b, cols, &mut generic);
            let pm = PackedMatrix::pack(&b, inner, cols);
            matmul_accumulate_packed(&a, rows, &pm, &mut packed);
            assert_eq!(packed, generic, "packed {rows}x{inner}x{cols}");
        }
    }

    #[test]
    fn unsupported_widths_fall_back_to_generic() {
        assert!(spec_mm::<false>(12).is_none());
        assert!(!spec_cols_supported(12));
        let (a, b) = random_mats(5, 9, 12, 3);
        let mut auto = vec![0.0f32; 5 * 12];
        let mut generic = auto.clone();
        matmul_accumulate_auto(&a, 5, 9, &b, 12, &mut auto);
        matmul_accumulate(&a, 5, 9, &b, 12, &mut generic);
        assert_eq!(auto, generic);
    }

    #[test]
    fn rel_buckets_separate_size_and_density() {
        assert_eq!(rel_bucket(10, 0), 0xFF);
        // 1000 nodes, 100 edges: sparse → edge-major.
        let sparse =
            ShapeSig { hidden: 64, classes: 13, layers: 2, rel: [rel_bucket(1000, 100); 3] };
        assert_eq!(plan_from_sig(&sparse).spmm[0], SpmmStrategy::EdgeMajor);
        // 1000 nodes, 2500 edges: real fan-in → CSR gather.
        let dense =
            ShapeSig { hidden: 64, classes: 13, layers: 2, rel: [rel_bucket(1000, 2500); 3] };
        assert_eq!(plan_from_sig(&dense).spmm[0], SpmmStrategy::CsrGather);
        // Tiny graph: edge-major regardless of density.
        let tiny = ShapeSig { hidden: 64, classes: 13, layers: 2, rel: [rel_bucket(10, 40); 3] };
        assert_eq!(plan_from_sig(&tiny).spmm[0], SpmmStrategy::EdgeMajor);
    }

    /// Serializes tests that mutate the process-global plan caches (the
    /// invalidation test clears them; the hit-count tests depend on entries
    /// surviving between two lookups).
    static CACHE_TEST_LOCK: Mutex<()> = Mutex::new(());

    fn cache_test_guard() -> std::sync::MutexGuard<'static, ()> {
        CACHE_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn plan_cache_counts_hits_and_misses() {
        use crate::graphdata::GraphData;
        let _serial = cache_test_guard();
        let g = GraphData::from_edge_lists(
            (0..5).collect(),
            [vec![(0, 1), (1, 2), (2, 3), (3, 4)], vec![], vec![]],
        );
        // A hidden width no other test uses → this test owns the signature.
        let (h0, m0) = plan_cache_stats();
        let p1 = plan_for(9973, 13, 2, &g);
        let p2 = plan_for(9973, 13, 2, &g);
        let (h1, m1) = plan_cache_stats();
        assert_eq!(p1, p2);
        assert!(m1 > m0, "first lookup misses");
        assert!(h1 > h0, "second lookup hits");
    }

    #[test]
    fn shared_plans_are_keyed_by_weights_not_shape() {
        use crate::infer::Scratch;
        use crate::model::GnnConfig;
        let _serial = cache_test_guard();
        let cfg = GnnConfig {
            vocab_size: 16,
            hidden: 8,
            classes: 4,
            layers: 2,
            layer_norm: true,
            seed: 1,
        };
        let a = GnnModel::new(cfg);
        let b = GnnModel::new(GnnConfig { seed: 2, ..cfg });
        // Same architecture, different weights: a shape-keyed cache would
        // hand model b the plan packed from model a's parameters.
        assert_ne!(model_fingerprint(&a), model_fingerprint(&b));
        let pa = shared_plan(&a);
        let pb = shared_plan(&b);
        assert!(!Arc::ptr_eq(&pa, &pb), "same-shape models must not share a plan");
        // The cached plan must reproduce each model's own unplanned forward
        // bit-for-bit — stale packed weights would diverge here.
        let g = GraphData::from_edge_lists(
            vec![1, 3, 5, 7],
            [vec![(0, 1), (1, 2), (2, 3)], vec![(3, 0)], vec![]],
        );
        let mut s = Scratch::new();
        assert_eq!(a.infer_planned(&pa, &g, &mut s).logits, a.infer(&g).logits);
        assert_eq!(b.infer_planned(&pb, &g, &mut s).logits, b.infer(&g).logits);
        // Repeat lookups hit, returning the identical Arc.
        let (h0, _) = model_plan_cache_stats();
        assert!(Arc::ptr_eq(&shared_plan(&a), &pa));
        let (h1, _) = model_plan_cache_stats();
        assert!(h1 > h0, "second lookup hits");
    }

    #[test]
    fn invalidation_drops_shared_plans_and_shape_cache() {
        use crate::graphdata::GraphData;
        use crate::model::GnnConfig;
        let _serial = cache_test_guard();
        let m = GnnModel::new(GnnConfig {
            vocab_size: 16,
            hidden: 8,
            classes: 4,
            layers: 2,
            layer_norm: true,
            seed: 3,
        });
        let p1 = shared_plan(&m);
        invalidate_plan_caches();
        let (_, miss0) = model_plan_cache_stats();
        let p2 = shared_plan(&m);
        let (_, miss1) = model_plan_cache_stats();
        assert!(miss1 > miss0, "invalidated model plan must rebuild");
        assert!(!Arc::ptr_eq(&p1, &p2), "rebuilt plan is a fresh Arc");
        // The graph-shape strategy cache is dropped too: the same unique
        // signature misses again after invalidation.
        let g = GraphData::from_edge_lists(
            (0..5).collect(),
            [vec![(0, 1), (1, 2), (2, 3), (3, 4)], vec![], vec![]],
        );
        let _ = plan_for(9941, 13, 2, &g);
        invalidate_plan_caches();
        let (_, shape_miss0) = plan_cache_stats();
        let _ = plan_for(9941, 13, 2, &g);
        let (_, shape_miss1) = plan_cache_stats();
        assert!(shape_miss1 > shape_miss0, "cleared shape cache misses on re-lookup");
    }
}
