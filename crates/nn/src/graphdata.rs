//! Conversion of `irnuma-graph` graphs into the arrays the GNN consumes:
//! node text ids, per-relation edge lists, and the `1/c_{i,r}` normalization
//! constants of the paper's Eq. 1 (per-destination in-degree within each
//! relation).

use irnuma_graph::Graph;
use serde::{Deserialize, Serialize};
use std::rc::Rc;

/// Number of edge relations (control, data, call).
pub const NUM_RELATIONS: usize = 3;

/// A GNN-ready graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GraphData {
    /// Vocabulary index per node.
    pub node_text: Vec<u32>,
    /// Per relation: edge list as `(src, dst)`.
    pub edges: [Vec<(u32, u32)>; NUM_RELATIONS],
    /// Per relation: `1/c_{dst,r}` per edge, aligned with `edges`.
    pub norm: [Vec<f32>; NUM_RELATIONS],
}

impl GraphData {
    pub fn from_graph(g: &Graph) -> GraphData {
        let node_text = g.nodes.iter().map(|n| n.text_id).collect();
        let edges = g.edges_by_relation();
        let mut norm: [Vec<f32>; NUM_RELATIONS] = Default::default();
        for (r, rel_edges) in edges.iter().enumerate() {
            let mut indeg = vec![0u32; g.num_nodes()];
            for &(_, d) in rel_edges {
                indeg[d as usize] += 1;
            }
            norm[r] = rel_edges
                .iter()
                .map(|&(_, d)| 1.0 / indeg[d as usize].max(1) as f32)
                .collect();
        }
        GraphData { node_text, edges, norm }
    }

    pub fn num_nodes(&self) -> usize {
        self.node_text.len()
    }

    pub fn num_edges(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }

    /// Rc-wrapped edges/norms for cheap tape capture.
    pub fn relation(&self, r: usize) -> (Rc<Vec<(u32, u32)>>, Rc<Vec<f32>>) {
        (Rc::new(self.edges[r].clone()), Rc::new(self.norm[r].clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irnuma_graph::{EdgeKind, Graph, NodeKind};

    fn toy() -> Graph {
        let mut g = Graph::default();
        let a = g.add_node(NodeKind::Instruction, 3);
        let b = g.add_node(NodeKind::Instruction, 5);
        let v = g.add_node(NodeKind::Variable, 9);
        g.add_edge(a, b, EdgeKind::Control, 0);
        g.add_edge(a, v, EdgeKind::Data, 0);
        g.add_edge(v, b, EdgeKind::Data, 0);
        g.add_edge(b, v, EdgeKind::Data, 1); // v has in-degree 2 in Data
        g
    }

    #[test]
    fn norms_are_inverse_indegree_per_relation() {
        let d = GraphData::from_graph(&toy());
        assert_eq!(d.node_text, vec![3, 5, 9]);
        let data_r = EdgeKind::Data.index();
        // edges: (a,v), (v,b), (b,v); in-degree of v within Data is 2.
        for (i, &(_, dst)) in d.edges[data_r].iter().enumerate() {
            let expect = if dst == 2 { 0.5 } else { 1.0 };
            assert_eq!(d.norm[data_r][i], expect);
        }
        assert_eq!(d.num_edges(), 4);
        assert_eq!(d.num_nodes(), 3);
    }

    #[test]
    fn empty_relations_are_fine() {
        let d = GraphData::from_graph(&toy());
        assert!(d.edges[EdgeKind::Call.index()].is_empty());
        assert!(d.norm[EdgeKind::Call.index()].is_empty());
    }
}
