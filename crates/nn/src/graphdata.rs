//! Conversion of `irnuma-graph` graphs into the arrays the GNN consumes:
//! node text ids, per-relation edge lists, and the `1/c_{i,r}` normalization
//! constants of the paper's Eq. 1 (per-destination in-degree within each
//! relation).

use irnuma_graph::Graph;
use serde::{Deserialize, Serialize};
use std::rc::Rc;
use std::sync::OnceLock;

/// Number of edge relations (control, data, call).
pub const NUM_RELATIONS: usize = 3;

/// Why a graph is not safe to feed into the GNN kernels. Internally-built
/// graphs ([`GraphData::from_graph`]) are valid by construction; graphs
/// arriving from untrusted input (the serve wire protocol, deserialized
/// files) must pass [`GraphData::validate`] first — the CSR build and the
/// embedding gather index with edge endpoints and token ids directly, so an
/// out-of-range value is an index panic, not a recoverable error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint references a node `>= num_nodes`.
    EdgeOutOfRange { relation: usize, edge: usize, node: u32, num_nodes: usize },
    /// A relation's `norm` array is not aligned with its edge list.
    NormLengthMismatch { relation: usize, edges: usize, norms: usize },
    /// A node's vocabulary token is `>= vocab_size` (embedding row gather
    /// would read out of bounds).
    TokenOutOfVocab { node: usize, token: u32, vocab_size: usize },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            GraphError::EdgeOutOfRange { relation, edge, node, num_nodes } => write!(
                f,
                "relation {relation} edge {edge} references node {node} \
                 but the graph has {num_nodes} nodes"
            ),
            GraphError::NormLengthMismatch { relation, edges, norms } => {
                write!(f, "relation {relation} has {edges} edges but {norms} norm entries")
            }
            GraphError::TokenOutOfVocab { node, token, vocab_size } => write!(
                f,
                "node {node} has vocabulary token {token} \
                 but the model's vocabulary has {vocab_size} entries"
            ),
        }
    }
}

impl std::error::Error for GraphError {}

/// One relation's `(edges, norms)`, Rc-wrapped so tape ops can capture them
/// without copying.
pub type RelationArrays = (Rc<Vec<(u32, u32)>>, Rc<Vec<f32>>);

/// Cheap per-relation degree statistics, computed once per graph alongside
/// the adjacency caches. The kernel-dispatch layer buckets these into a
/// graph-shape signature to pick an SpMM strategy per relation (see
/// `crate::dispatch::plan_for`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RelStats {
    /// Edge count of this relation.
    pub edges: u32,
    /// Largest per-destination in-degree (fan-in skew).
    pub max_in_degree: u32,
}

/// Compressed-sparse-row view of one relation's incoming edges, grouped by
/// destination node. Slot order within a destination preserves the original
/// edge order, so per-row accumulation visits the same summands in the same
/// order as an edge-major sweep.
#[derive(Debug, Clone, Default)]
pub struct Csr {
    /// `row_ptr[i]..row_ptr[i+1]` indexes the slots of destination `i`.
    pub row_ptr: Vec<u32>,
    /// Source node per slot.
    pub src: Vec<u32>,
    /// Edge weight (`1/c_{dst,r}`) per slot.
    pub weight: Vec<f32>,
}

impl Csr {
    /// Build from an edge list (stable counting sort by destination).
    pub fn from_edges(num_nodes: usize, edges: &[(u32, u32)], norm: &[f32]) -> Csr {
        assert_eq!(edges.len(), norm.len());
        let mut row_ptr = vec![0u32; num_nodes + 1];
        for &(_, d) in edges {
            row_ptr[d as usize + 1] += 1;
        }
        for i in 0..num_nodes {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut cursor: Vec<u32> = row_ptr[..num_nodes].to_vec();
        let mut src = vec![0u32; edges.len()];
        let mut weight = vec![0f32; edges.len()];
        for (e, &(s, d)) in edges.iter().enumerate() {
            let slot = cursor[d as usize] as usize;
            cursor[d as usize] += 1;
            src[slot] = s;
            weight[slot] = norm[e];
        }
        Csr { row_ptr, src, weight }
    }

    /// Slots of destination row `i` as `(sources, weights)`.
    pub fn row(&self, i: usize) -> (&[u32], &[f32]) {
        let lo = self.row_ptr[i] as usize;
        let hi = self.row_ptr[i + 1] as usize;
        (&self.src[lo..hi], &self.weight[lo..hi])
    }
}

/// A GNN-ready graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GraphData {
    /// Vocabulary index per node.
    pub node_text: Vec<u32>,
    /// Per relation: edge list as `(src, dst)`.
    pub edges: [Vec<(u32, u32)>; NUM_RELATIONS],
    /// Per relation: `1/c_{dst,r}` per edge, aligned with `edges`.
    pub norm: [Vec<f32>; NUM_RELATIONS],
    /// Destination-grouped adjacency, built on first use by the inference
    /// engine and reused across every later forward pass of this graph.
    /// Skipped by serde and rebuilt lazily after deserialization. Code that
    /// mutates `edges`/`norm` in place must construct a fresh `GraphData`
    /// (see [`GraphData::from_parts`]) instead, or the cache goes stale.
    #[serde(skip)]
    csr: OnceLock<[Csr; NUM_RELATIONS]>,
    /// Source-grouped mirror of `csr` (a CSC view of the same edges), built
    /// on first use by the fused backward pass: the SpMM gradient scatters
    /// `w · dy[dst]` into `dx[src]`, so grouping by source turns it into an
    /// independent-per-row gather with no transpose ever materialized.
    #[serde(skip)]
    csc: OnceLock<[Csr; NUM_RELATIONS]>,
    /// Per-relation degree statistics, built on first use by the kernel
    /// dispatcher. Serde-skipped like the adjacency caches, so a graph
    /// deserialized (or rebuilt) always recomputes its stats — the plan
    /// derived from them can never go stale against `edges`/`norm`.
    #[serde(skip)]
    stats: OnceLock<[RelStats; NUM_RELATIONS]>,
}

impl GraphData {
    pub fn from_graph(g: &Graph) -> GraphData {
        let node_text = g.nodes.iter().map(|n| n.text_id).collect();
        let edges = g.edges_by_relation();
        let norm = compute_norms(g.num_nodes(), &edges);
        GraphData::from_parts(node_text, edges, norm)
    }

    /// Assemble from raw arrays (norms supplied by the caller).
    pub fn from_parts(
        node_text: Vec<u32>,
        edges: [Vec<(u32, u32)>; NUM_RELATIONS],
        norm: [Vec<f32>; NUM_RELATIONS],
    ) -> GraphData {
        GraphData {
            node_text,
            edges,
            norm,
            csr: OnceLock::new(),
            csc: OnceLock::new(),
            stats: OnceLock::new(),
        }
    }

    /// Assemble from node ids and edge lists, computing the paper's
    /// `1/c_{i,r}` normalization (inverse per-relation in-degree).
    pub fn from_edge_lists(
        node_text: Vec<u32>,
        edges: [Vec<(u32, u32)>; NUM_RELATIONS],
    ) -> GraphData {
        let norm = compute_norms(node_text.len(), &edges);
        GraphData::from_parts(node_text, edges, norm)
    }

    /// [`GraphData::from_edge_lists`] for untrusted input: edge endpoints
    /// are range-checked *before* the norm computation indexes with them,
    /// so a bad edge is a typed [`GraphError`] instead of an index panic.
    /// Token ids are not checked here (the valid range depends on the
    /// model's vocabulary) — callers holding a model should follow up with
    /// [`GraphData::validate`].
    pub fn try_from_edge_lists(
        node_text: Vec<u32>,
        edges: [Vec<(u32, u32)>; NUM_RELATIONS],
    ) -> Result<GraphData, GraphError> {
        let n = node_text.len();
        for (relation, rel_edges) in edges.iter().enumerate() {
            for (i, &(s, d)) in rel_edges.iter().enumerate() {
                let bad = [s, d].into_iter().find(|&x| x as usize >= n);
                if let Some(node) = bad {
                    return Err(GraphError::EdgeOutOfRange {
                        relation,
                        edge: i,
                        node,
                        num_nodes: n,
                    });
                }
            }
        }
        Ok(GraphData::from_edge_lists(node_text, edges))
    }

    /// Check that this graph is safe to feed into the kernels: every edge
    /// endpoint in range, every `norm` array aligned with its edge list,
    /// and every node token within `vocab_size`. Empty graphs and empty
    /// relations are valid. Required at trust boundaries (deserialized or
    /// wire-delivered graphs) — the kernels index without bounds recovery.
    pub fn validate(&self, vocab_size: usize) -> Result<(), GraphError> {
        let n = self.num_nodes();
        for relation in 0..NUM_RELATIONS {
            let (rel_edges, norms) = (&self.edges[relation], &self.norm[relation]);
            if rel_edges.len() != norms.len() {
                return Err(GraphError::NormLengthMismatch {
                    relation,
                    edges: rel_edges.len(),
                    norms: norms.len(),
                });
            }
            for (i, &(s, d)) in rel_edges.iter().enumerate() {
                let bad = [s, d].into_iter().find(|&x| x as usize >= n);
                if let Some(node) = bad {
                    return Err(GraphError::EdgeOutOfRange {
                        relation,
                        edge: i,
                        node,
                        num_nodes: n,
                    });
                }
            }
        }
        for (node, &token) in self.node_text.iter().enumerate() {
            if token as usize >= vocab_size {
                return Err(GraphError::TokenOutOfVocab { node, token, vocab_size });
            }
        }
        Ok(())
    }

    pub fn num_nodes(&self) -> usize {
        self.node_text.len()
    }

    pub fn num_edges(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }

    /// Rc-wrapped edges/norms for cheap tape capture.
    pub fn relation(&self, r: usize) -> RelationArrays {
        (Rc::new(self.edges[r].clone()), Rc::new(self.norm[r].clone()))
    }

    /// The cached CSR adjacency, one per relation (built on first call).
    pub fn csr(&self) -> &[Csr; NUM_RELATIONS] {
        self.csr.get_or_init(|| {
            if irnuma_obs::telemetry_enabled() {
                irnuma_obs::counter!("infer.csr_build").inc(1);
            }
            let n = self.num_nodes();
            std::array::from_fn(|r| Csr::from_edges(n, &self.edges[r], &self.norm[r]))
        })
    }

    /// The cached source-grouped (CSC) adjacency, one per relation. Row `i`
    /// lists the *destinations* node `i` sends messages to, each with the
    /// edge's `1/c_{dst,r}` weight. Built by feeding [`Csr::from_edges`] the
    /// reversed edge list, so the counting sort's stability preserves
    /// original edge order within each source — the fused SpMM backward
    /// accumulates each `dx[src]` row's terms in the same order the tape's
    /// edge-major sweep does.
    pub fn csc(&self) -> &[Csr; NUM_RELATIONS] {
        self.csc.get_or_init(|| {
            if irnuma_obs::telemetry_enabled() {
                irnuma_obs::counter!("train.csc_build").inc(1);
            }
            let n = self.num_nodes();
            std::array::from_fn(|r| {
                let reversed: Vec<(u32, u32)> =
                    self.edges[r].iter().map(|&(s, d)| (d, s)).collect();
                Csr::from_edges(n, &reversed, &self.norm[r])
            })
        })
    }

    /// Take the adjacency caches out of this graph (leaving the cells
    /// empty), so the binary decoder can recycle their allocations when
    /// overwriting a graph slot in place. Returns `None` per cache that was
    /// never built.
    pub(crate) fn take_adjacency(
        &mut self,
    ) -> (Option<[Csr; NUM_RELATIONS]>, Option<[Csr; NUM_RELATIONS]>) {
        (self.csr.take(), self.csc.take())
    }

    /// Install prebuilt adjacency caches (decoded from the binary format,
    /// where they were materialized at pack time). Replaces any existing
    /// caches — callers must have already made `edges`/`norm` consistent
    /// with the supplied views.
    pub(crate) fn install_adjacency(
        &mut self,
        csr: [Csr; NUM_RELATIONS],
        csc: [Csr; NUM_RELATIONS],
    ) {
        self.csr = OnceLock::new();
        self.csc = OnceLock::new();
        let _ = self.csr.set(csr);
        let _ = self.csc.set(csc);
        self.stats = OnceLock::new();
    }

    /// Cached per-relation degree statistics (built on first call). An
    /// `n + e` counting pass per relation — negligible next to one layer of
    /// message passing — consumed by the kernel dispatcher's shape
    /// signature.
    pub fn rel_stats(&self) -> &[RelStats; NUM_RELATIONS] {
        self.stats.get_or_init(|| {
            if irnuma_obs::telemetry_enabled() {
                irnuma_obs::counter!("dispatch.stats_build").inc(1);
            }
            let n = self.num_nodes();
            let mut indeg = vec![0u32; n];
            std::array::from_fn(|r| {
                indeg.fill(0);
                for &(_, d) in &self.edges[r] {
                    indeg[d as usize] += 1;
                }
                RelStats {
                    edges: self.edges[r].len() as u32,
                    max_in_degree: indeg.iter().copied().max().unwrap_or(0),
                }
            })
        })
    }
}

fn compute_norms(
    num_nodes: usize,
    edges: &[Vec<(u32, u32)>; NUM_RELATIONS],
) -> [Vec<f32>; NUM_RELATIONS] {
    let mut norm: [Vec<f32>; NUM_RELATIONS] = Default::default();
    for (r, rel_edges) in edges.iter().enumerate() {
        let mut indeg = vec![0u32; num_nodes];
        for &(_, d) in rel_edges {
            indeg[d as usize] += 1;
        }
        norm[r] = rel_edges.iter().map(|&(_, d)| 1.0 / indeg[d as usize].max(1) as f32).collect();
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use irnuma_graph::{EdgeKind, Graph, NodeKind};

    fn toy() -> Graph {
        let mut g = Graph::default();
        let a = g.add_node(NodeKind::Instruction, 3);
        let b = g.add_node(NodeKind::Instruction, 5);
        let v = g.add_node(NodeKind::Variable, 9);
        g.add_edge(a, b, EdgeKind::Control, 0);
        g.add_edge(a, v, EdgeKind::Data, 0);
        g.add_edge(v, b, EdgeKind::Data, 0);
        g.add_edge(b, v, EdgeKind::Data, 1); // v has in-degree 2 in Data
        g
    }

    #[test]
    fn norms_are_inverse_indegree_per_relation() {
        let d = GraphData::from_graph(&toy());
        assert_eq!(d.node_text, vec![3, 5, 9]);
        let data_r = EdgeKind::Data.index();
        // edges: (a,v), (v,b), (b,v); in-degree of v within Data is 2.
        for (i, &(_, dst)) in d.edges[data_r].iter().enumerate() {
            let expect = if dst == 2 { 0.5 } else { 1.0 };
            assert_eq!(d.norm[data_r][i], expect);
        }
        assert_eq!(d.num_edges(), 4);
        assert_eq!(d.num_nodes(), 3);
    }

    #[test]
    fn empty_relations_are_fine() {
        let d = GraphData::from_graph(&toy());
        assert!(d.edges[EdgeKind::Call.index()].is_empty());
        assert!(d.norm[EdgeKind::Call.index()].is_empty());
    }

    #[test]
    fn csr_groups_by_destination_preserving_edge_order() {
        let d = GraphData::from_graph(&toy());
        let r = EdgeKind::Data.index();
        let csr = &d.csr()[r];
        assert_eq!(csr.row_ptr.len(), d.num_nodes() + 1);
        assert_eq!(csr.src.len(), d.edges[r].len());
        // Expanding the rows back must reproduce each destination's incoming
        // edges in their original edge-list order.
        for i in 0..d.num_nodes() {
            let (srcs, ws) = csr.row(i);
            let expect: Vec<(u32, f32)> = d.edges[r]
                .iter()
                .zip(&d.norm[r])
                .filter(|(&(_, dst), _)| dst as usize == i)
                .map(|(&(s, _), &w)| (s, w))
                .collect();
            let got: Vec<(u32, f32)> = srcs.iter().copied().zip(ws.iter().copied()).collect();
            assert_eq!(got, expect, "row {i}");
        }
    }

    #[test]
    fn csc_groups_by_source_preserving_edge_order() {
        let d = GraphData::from_graph(&toy());
        let r = EdgeKind::Data.index();
        let csc = &d.csc()[r];
        assert_eq!(csc.row_ptr.len(), d.num_nodes() + 1);
        assert_eq!(csc.src.len(), d.edges[r].len());
        // Row `i` of the CSC must list node i's outgoing edges (dst, norm)
        // in original edge-list order.
        for i in 0..d.num_nodes() {
            let (dsts, ws) = csc.row(i);
            let expect: Vec<(u32, f32)> = d.edges[r]
                .iter()
                .zip(&d.norm[r])
                .filter(|(&(src, _), _)| src as usize == i)
                .map(|(&(_, dst), &w)| (dst, w))
                .collect();
            let got: Vec<(u32, f32)> = dsts.iter().copied().zip(ws.iter().copied()).collect();
            assert_eq!(got, expect, "row {i}");
        }
    }

    #[test]
    fn csr_cache_survives_clone_and_is_rebuilt_after_serde() {
        let d = GraphData::from_graph(&toy());
        let _ = d.csr();
        let cloned = d.clone();
        assert_eq!(cloned.csr()[0].src, d.csr()[0].src);
        let json = serde_json::to_string(&d).unwrap();
        let back: GraphData = serde_json::from_str(&json).unwrap();
        assert_eq!(back.csr()[1].src, d.csr()[1].src);
        assert_eq!(back.node_text, d.node_text);
    }

    #[test]
    fn validate_accepts_internally_built_and_degenerate_graphs() {
        let d = GraphData::from_graph(&toy());
        assert_eq!(d.validate(10), Ok(()));
        // Empty graph: zero nodes, zero edges — valid.
        let empty = GraphData::from_edge_lists(vec![], Default::default());
        assert_eq!(empty.validate(1), Ok(()));
        // Single node, no edges — valid.
        let single = GraphData::from_edge_lists(vec![0], Default::default());
        assert_eq!(single.validate(1), Ok(()));
    }

    #[test]
    fn validate_rejects_what_the_kernels_would_panic_on() {
        // Edge endpoint out of range (would panic in compute_norms / CSR).
        let bad_edge = GraphData::from_parts(
            vec![0, 1],
            [vec![(0, 7)], vec![], vec![]],
            [vec![1.0], vec![], vec![]],
        );
        assert_eq!(
            bad_edge.validate(4),
            Err(GraphError::EdgeOutOfRange { relation: 0, edge: 0, node: 7, num_nodes: 2 })
        );
        // Norm array misaligned with its edge list (would trip the CSR
        // build's assert).
        let bad_norm = GraphData::from_parts(
            vec![0, 1],
            [vec![(0, 1)], vec![], vec![]],
            [vec![], vec![], vec![]],
        );
        assert_eq!(
            bad_norm.validate(4),
            Err(GraphError::NormLengthMismatch { relation: 0, edges: 1, norms: 0 })
        );
        // Token beyond the vocabulary (would read past the embedding rows).
        let bad_token = GraphData::from_edge_lists(vec![0, 99], [vec![(0, 1)], vec![], vec![]]);
        assert_eq!(
            bad_token.validate(4),
            Err(GraphError::TokenOutOfVocab { node: 1, token: 99, vocab_size: 4 })
        );
        assert!(bad_token.validate(100).is_ok());
    }

    #[test]
    fn try_from_edge_lists_returns_typed_error_instead_of_panicking() {
        // The unchecked constructor would index indeg[9] on a 2-node graph.
        let err = GraphData::try_from_edge_lists(vec![0, 1], [vec![(0, 9)], vec![], vec![]])
            .expect_err("out-of-range edge must be rejected");
        assert_eq!(err, GraphError::EdgeOutOfRange { relation: 0, edge: 0, node: 9, num_nodes: 2 });
        let ok = GraphData::try_from_edge_lists(vec![0, 1], [vec![(0, 1)], vec![], vec![]])
            .expect("in-range edges");
        assert_eq!(ok.norm[0], vec![1.0]);
        let display = format!("{err}");
        assert!(display.contains("node 9"), "{display}");
    }

    #[test]
    fn degree_stats_are_rebuilt_after_serde_so_plans_cannot_go_stale() {
        // Mirror of the CSR-cache test above for the dispatch layer's
        // inputs: the stats (and therefore any plan derived from them) must
        // be recomputed from the deserialized edges, never serialized stale.
        let d = GraphData::from_graph(&toy());
        let stats = *d.rel_stats();
        let data_r = EdgeKind::Data.index();
        assert_eq!(stats[data_r].edges, 3);
        assert_eq!(stats[data_r].max_in_degree, 2); // v's Data fan-in
        assert_eq!(stats[EdgeKind::Call.index()], RelStats::default());

        let cloned = d.clone();
        assert_eq!(*cloned.rel_stats(), stats);
        let json = serde_json::to_string(&d).unwrap();
        let back: GraphData = serde_json::from_str(&json).unwrap();
        assert_eq!(*back.rel_stats(), stats);

        // A graph with different edges under the same node set must produce
        // different stats (i.e. stats really derive from the live arrays).
        let rewired = GraphData::from_edge_lists(back.node_text.clone(), Default::default());
        assert_eq!(rewired.rel_stats()[data_r], RelStats::default());
    }
}
