//! Tape-free batched inference for the RGCN classifier.
//!
//! Training needs the autograd tape; prediction does not. This module runs
//! the same forward computation as [`GnnModel::forward`] without recording
//! ops, without cloning a single parameter tensor (weights are borrowed from
//! the model), and with all activation buffers held in a reusable
//! [`Scratch`] workspace so repeated calls allocate nothing once the
//! high-water graph size has been seen.
//!
//! One pass produces everything the downstream models consume — logits,
//! pooled embedding, softmax distribution, and top-1 margin — collapsing the
//! old `predict` / `embedding` / `embedding_with_confidence` triple-forward
//! into a single [`InferOutput`].
//!
//! Numerical equivalence with the tape is exact, not approximate: the dense
//! kernels are shared ([`matmul_accumulate`]), message passing walks each
//! destination's incoming edges in the same order the tape's edge-major
//! sweep does (the CSR rows preserve edge order), and every elementwise op
//! mirrors the tape's evaluation order. The `≤ 1e-4` bound the tests assert
//! is a safety margin, not a budget.
//!
//! [`infer_batch`](GnnModel::infer_batch) fans graphs out across threads
//! with one scratch workspace per thread; the per-destination row loop of
//! the SpMM is independent per row, so the whole engine stays deterministic
//! regardless of thread count.

use crate::dispatch::{self, plan_matmul, ModelPlan, RelView};
use crate::graphdata::GraphData;
use crate::model::GnnModel;
use rayon::prelude::*;
use std::cell::RefCell;

/// Everything one forward pass yields.
#[derive(Debug, Clone)]
pub struct InferOutput {
    /// Class logits (`classes` entries).
    pub logits: Vec<f32>,
    /// Pooled graph embedding (`hidden` entries) — the paper's "vector".
    pub pooled: Vec<f32>,
    /// Softmax distribution over classes.
    pub probs: Vec<f32>,
    /// Top-1 softmax probability minus top-2 (prediction confidence).
    pub margin: f32,
}

impl InferOutput {
    /// The predicted class (argmax of the logits).
    pub fn label(&self) -> usize {
        self.logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("non-empty logits")
    }

    /// Embedding ++ softmax ++ margin — the hybrid router's feature vector.
    pub fn router_features(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.pooled.len() + self.probs.len() + 1);
        out.extend_from_slice(&self.pooled);
        out.extend_from_slice(&self.probs);
        out.push(self.margin);
        out
    }
}

/// Reusable activation workspace. Buffers grow to the largest graph seen and
/// are recycled across calls; a fresh `Scratch` is all-empty and valid.
#[derive(Default)]
pub struct Scratch {
    /// Current node activations (`n×d`).
    h: Vec<f32>,
    /// Layer accumulator: self-term plus per-relation message terms.
    acc: Vec<f32>,
    /// SpMM output (aggregated messages) for one relation.
    msgs: Vec<f32>,
    /// One relation's `msgs @ w_r` product, added into `acc`.
    term: Vec<f32>,
    /// First-layer activations, kept for the residual connection.
    h1: Vec<f32>,
}

impl Scratch {
    pub fn new() -> Scratch {
        Scratch::default()
    }

    fn reserve(&mut self, n: usize, d: usize, stats: bool) {
        let len = n * d;
        if stats {
            // Reuse hit: every buffer already holds enough capacity, so this
            // call allocates nothing.
            if self.h.capacity() >= len {
                irnuma_obs::counter!("infer.scratch_hits").inc(1);
            } else {
                irnuma_obs::counter!("infer.scratch_misses").inc(1);
            }
        }
        for buf in [&mut self.h, &mut self.acc, &mut self.msgs, &mut self.term, &mut self.h1] {
            buf.clear();
            buf.resize(len, 0.0);
        }
    }
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::new());
}

impl GnnModel {
    /// Tape-free forward pass using this thread's cached scratch workspace.
    /// Single-graph calls skip weight prepacking (the pack would cost more
    /// than it saves) but still go through the shape-dispatched kernels;
    /// batched calls prepack once via [`GnnModel::plan`].
    pub fn infer(&self, g: &GraphData) -> InferOutput {
        SCRATCH.with(|s| self.infer_with(g, &mut s.borrow_mut()))
    }

    /// Tape-free forward pass into a caller-provided workspace.
    pub fn infer_with(&self, g: &GraphData, scratch: &mut Scratch) -> InferOutput {
        let stats = irnuma_obs::telemetry_enabled();
        let t0 = stats.then(std::time::Instant::now);
        let out = self.infer_impl(g, scratch, None, stats);
        if let Some(t0) = t0 {
            irnuma_obs::histogram!("infer.graph_ns").record_duration(t0.elapsed());
            irnuma_obs::counter!("infer.graphs").inc(1);
        }
        out
    }

    /// Forward pass through a prebuilt kernel plan (prepacked weights).
    /// Bit-identical to [`GnnModel::infer_with`]; `plan` must have been
    /// built from this model's current parameters.
    pub fn infer_planned(
        &self,
        plan: &ModelPlan,
        g: &GraphData,
        scratch: &mut Scratch,
    ) -> InferOutput {
        let stats = irnuma_obs::telemetry_enabled();
        let t0 = stats.then(std::time::Instant::now);
        let out = self.infer_impl(g, scratch, Some(plan), stats);
        if let Some(t0) = t0 {
            irnuma_obs::histogram!("infer.graph_ns").record_duration(t0.elapsed());
            irnuma_obs::counter!("infer.graphs").inc(1);
        }
        out
    }

    fn infer_impl(
        &self,
        g: &GraphData,
        scratch: &mut Scratch,
        plan: Option<&ModelPlan>,
        stats: bool,
    ) -> InferOutput {
        let _f = irnuma_obs::profile_frame!("infer.forward");
        let d = self.cfg.hidden;
        let n = g.num_nodes();
        scratch.reserve(n, d, stats);

        let mut params = self.params.iter().enumerate();
        let mut next = || params.next().expect("parameter list matches architecture");

        // Embedding gather.
        let (_, embed) = next();
        for (row, &id) in g.node_text.iter().enumerate() {
            scratch.h[row * d..(row + 1) * d].copy_from_slice(embed.row(id as usize));
        }

        let csr = g.csr();
        let gplan = dispatch::plan_for(d, self.cfg.classes, self.cfg.layers, g);
        for layer in 0..self.cfg.layers {
            let (wi, w_self) = next();
            scratch.acc.fill(0.0);
            plan_matmul(plan, wi, &scratch.h, n, w_self, &mut scratch.acc);

            for (r, csr_r) in csr.iter().enumerate() {
                let (wri, w_r) = next();
                if g.edges[r].is_empty() {
                    continue;
                }
                // SpMM through the strategy the graph's shape signature
                // selected. Every strategy visits a destination's incoming
                // edges in the tape's edge order, so sums round identically.
                let rel = RelView { rows: csr_r, edges: &g.edges[r], norm: &g.norm[r] };
                dispatch::spmm_forward(gplan.spmm[r], rel, &scratch.h, n, d, &mut scratch.msgs);
                // The tape materializes `msgs @ w_r` before adding, so the
                // product goes through a zeroed buffer here too (summing
                // directly into `acc` would regroup the additions).
                scratch.term.fill(0.0);
                plan_matmul(plan, wri, &scratch.msgs, n, w_r, &mut scratch.term);
                dispatch::vec_add_assign(&mut scratch.acc[..n * d], &scratch.term[..n * d]);
            }

            let (_, bias) = next();
            dispatch::bias_relu_rows(&scratch.acc[..n * d], &bias.data, &mut scratch.h[..n * d]);
            if layer == 0 {
                scratch.h1.copy_from_slice(&scratch.h);
            }
        }

        // Residual around the deeper layers (tape order: h1 + h).
        if self.cfg.layers > 1 {
            // f32 addition is commutative, so `h + h1` rounds identically to
            // the tape's `h1 + h`.
            dispatch::vec_add_assign(&mut scratch.h[..n * d], &scratch.h1[..n * d]);
        }

        // Layer norm (into `acc`, unless ablated off) fused with mean
        // pooling; per-row reductions keep the tape's scalar order.
        let (_, gamma) = next();
        let (_, beta) = next();
        let mut pooled = vec![0.0f32; d];
        if self.cfg.layer_norm {
            dispatch::ln_pool_rows(
                &scratch.h[..n * d],
                n,
                &gamma.data,
                &beta.data,
                1e-5,
                &mut scratch.acc[..n * d],
                &mut pooled,
            );
        } else {
            scratch.acc.copy_from_slice(&scratch.h);
            for row in 0..n {
                dispatch::vec_add_assign(&mut pooled, &scratch.acc[row * d..(row + 1) * d]);
            }
        }
        let inv_n = 1.0 / n.max(1) as f32;
        for p in pooled.iter_mut() {
            *p *= inv_n;
        }

        // FC head: z = relu(pooled @ fc1 + b1); logits = z @ fc2 + b2.
        let (fi1, fc1) = next();
        let (_, b1) = next();
        let mut z = vec![0.0f32; d];
        plan_matmul(plan, fi1, &pooled, 1, fc1, &mut z);
        for (zv, &bv) in z.iter_mut().zip(&b1.data) {
            let pre = *zv + bv;
            *zv = if pre < 0.0 { 0.0 } else { pre };
        }
        let (fi2, fc2) = next();
        let (_, b2) = next();
        let classes = self.cfg.classes;
        let mut logits = vec![0.0f32; classes];
        plan_matmul(plan, fi2, &z, 1, fc2, &mut logits);
        for (lv, &bv) in logits.iter_mut().zip(&b2.data) {
            *lv += bv;
        }
        debug_assert!(params.next().is_none(), "all parameters consumed");

        // Softmax + confidence margin (same max-shift as the tape's loss).
        let mut probs = Vec::with_capacity(classes);
        crate::tensor::softmax_into(&logits, &mut probs);
        let mut sorted = probs.clone();
        sorted.sort_by(|a, b| b.total_cmp(a));
        let margin = sorted[0] - sorted.get(1).copied().unwrap_or(0.0);

        InferOutput { logits, pooled, probs, margin }
    }

    /// Batched inference: graphs fan out across threads, each thread reusing
    /// its own scratch workspace. Weights are prepacked once per call
    /// ([`GnnModel::plan`]) and shared read-only by every worker. Output
    /// order matches input order.
    /// Per-graph *stats* telemetry (the per-graph latency-histogram record)
    /// is hoisted out of the hot loop: in stats-only mode workers run the
    /// bare forward pass, and the batch records one `infer.batch_ns` sample
    /// plus an `infer.graphs += len` bump at the end. Causal tracing opts
    /// back in: with a trace sink installed, each worker opens an
    /// `infer.graph` span under the batch (`span_fanout!`), so `irnuma
    /// trace analyze` sees the fan-out; without one the macro is inert.
    pub fn infer_batch(&self, graphs: &[GraphData]) -> Vec<InferOutput> {
        let span = irnuma_obs::span!("infer.batch", graphs = graphs.len());
        let ctx = span.ctx();
        let plan = self.plan();
        let out: Vec<InferOutput> = graphs
            .par_iter()
            .map(|g| {
                let _g = irnuma_obs::span_fanout!(ctx, "infer.graph");
                self.infer_planned_threadlocal(&plan, g)
            })
            .collect();
        self.record_batch(&span, graphs.len());
        out
    }

    /// [`infer_batch`](GnnModel::infer_batch) over scattered graph
    /// references (e.g. one graph per (region, sequence) pair).
    pub fn infer_batch_refs(&self, graphs: &[&GraphData]) -> Vec<InferOutput> {
        let span = irnuma_obs::span!("infer.batch", graphs = graphs.len());
        let ctx = span.ctx();
        let plan = self.plan();
        let out: Vec<InferOutput> = graphs
            .par_iter()
            .map(|g| {
                let _g = irnuma_obs::span_fanout!(ctx, "infer.graph");
                self.infer_planned_threadlocal(&plan, g)
            })
            .collect();
        self.record_batch(&span, graphs.len());
        out
    }

    /// [`infer_batch_refs`](GnnModel::infer_batch_refs) through a prebuilt
    /// (typically cached and `Arc`-shared) [`ModelPlan`] — the serving
    /// path, where one immutable plan per model generation is shared by
    /// every connection and rebuilding it per micro-batch would dominate
    /// small batches. `plan` must have been built from this model's current
    /// parameters; results are bit-identical to
    /// [`infer_batch`](GnnModel::infer_batch).
    pub fn infer_batch_planned(&self, plan: &ModelPlan, graphs: &[&GraphData]) -> Vec<InferOutput> {
        let span = irnuma_obs::span!("infer.batch", graphs = graphs.len());
        let ctx = span.ctx();
        let out: Vec<InferOutput> = graphs
            .par_iter()
            .map(|g| {
                let _g = irnuma_obs::span_fanout!(ctx, "infer.graph");
                self.infer_planned_threadlocal(plan, g)
            })
            .collect();
        self.record_batch(&span, graphs.len());
        out
    }

    fn record_batch(&self, span: &irnuma_obs::SpanGuard, graphs: usize) {
        if irnuma_obs::telemetry_enabled() {
            irnuma_obs::histogram!("infer.batch_ns").record_duration(span.elapsed());
            irnuma_obs::counter!("infer.graphs").inc(graphs as u64);
        }
    }

    fn infer_planned_threadlocal(&self, plan: &ModelPlan, g: &GraphData) -> InferOutput {
        SCRATCH.with(|s| self.infer_impl(g, &mut s.borrow_mut(), Some(plan), false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::GnnConfig;
    use irnuma_graph::{EdgeKind, Graph, NodeKind};

    fn toy_graph(seed: u32) -> GraphData {
        let mut g = Graph::default();
        let n = 5 + (seed % 4);
        let mut prev = None;
        for i in 0..n {
            let node = g.add_node(NodeKind::Instruction, (seed + i) % 20);
            if let Some(p) = prev {
                g.add_edge(p, node, EdgeKind::Control, 0);
                g.add_edge(node, p, EdgeKind::Data, 0);
            }
            prev = Some(node);
        }
        GraphData::from_graph(&g)
    }

    fn model() -> GnnModel {
        GnnModel::new(GnnConfig {
            vocab_size: 24,
            hidden: 8,
            classes: 4,
            layers: 2,
            layer_norm: true,
            seed: 9,
        })
    }

    #[test]
    fn infer_matches_tape_exactly() {
        let m = model();
        for seed in 0..6 {
            let g = toy_graph(seed);
            let f = m.forward(&g);
            let out = m.infer(&g);
            assert_eq!(out.pooled, f.tape.value(f.pooled).data, "pooled, graph {seed}");
            assert_eq!(out.logits, f.tape.value(f.logits).data, "logits, graph {seed}");
        }
    }

    #[test]
    fn scratch_recycles_across_different_sizes() {
        let m = model();
        let mut s = Scratch::new();
        let big = toy_graph(3); // 8 nodes
        let small = toy_graph(0); // 5 nodes
        let fresh_big = m.infer_with(&big, &mut Scratch::new());
        let fresh_small = m.infer_with(&small, &mut Scratch::new());
        // big → small → big through one workspace must not leak state.
        assert_eq!(m.infer_with(&big, &mut s).logits, fresh_big.logits);
        assert_eq!(m.infer_with(&small, &mut s).logits, fresh_small.logits);
        assert_eq!(m.infer_with(&big, &mut s).logits, fresh_big.logits);
    }

    #[test]
    fn batch_matches_serial_and_preserves_order() {
        let m = model();
        let graphs: Vec<GraphData> = (0..17).map(toy_graph).collect();
        let batch = m.infer_batch(&graphs);
        for (g, out) in graphs.iter().zip(&batch) {
            let serial = m.infer_with(g, &mut Scratch::new());
            assert_eq!(out.logits, serial.logits);
            assert_eq!(out.pooled, serial.pooled);
        }
        let refs: Vec<&GraphData> = graphs.iter().collect();
        let by_ref = m.infer_batch_refs(&refs);
        for (a, b) in batch.iter().zip(&by_ref) {
            assert_eq!(a.logits, b.logits);
        }
    }

    #[test]
    fn probs_and_margin_are_consistent() {
        let m = model();
        let out = m.infer(&toy_graph(2));
        let sum: f32 = out.probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(out.margin >= 0.0 && out.margin <= 1.0);
        assert_eq!(
            out.label(),
            out.probs.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).unwrap().0
        );
        let rf = out.router_features();
        assert_eq!(rf.len(), out.pooled.len() + out.probs.len() + 1);
    }

    #[test]
    fn empty_graph_infers_to_a_well_defined_output() {
        // Zero nodes, zero edges — reachable from untrusted serving input.
        // The pooled embedding is all-zero, so the logits collapse to the
        // FC head's response to a zero vector: finite, well-defined, and
        // identical between the planned and unplanned paths.
        let m = model();
        let empty = GraphData::from_edge_lists(vec![], Default::default());
        let out = m.infer(&empty);
        assert_eq!(out.logits.len(), m.cfg.classes);
        assert_eq!(out.pooled, vec![0.0; m.cfg.hidden]);
        assert!(out.logits.iter().all(|v| v.is_finite()));
        let sum: f32 = out.probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(out.margin >= 0.0 && out.margin <= 1.0);
        let _ = out.label();
        let batch = m.infer_batch(std::slice::from_ref(&empty));
        assert_eq!(batch[0].logits, out.logits);
    }

    #[test]
    fn planned_batch_matches_per_call_plan_batch() {
        let m = model();
        let graphs: Vec<GraphData> = (0..9).map(toy_graph).collect();
        let refs: Vec<&GraphData> = graphs.iter().collect();
        let plan = crate::dispatch::shared_plan(&m);
        let planned = m.infer_batch_planned(&plan, &refs);
        let per_call = m.infer_batch_refs(&refs);
        for (a, b) in planned.iter().zip(&per_call) {
            assert_eq!(a.logits, b.logits);
            assert_eq!(a.pooled, b.pooled);
            assert_eq!(a.probs, b.probs);
        }
    }

    #[test]
    fn single_node_graph_and_empty_relations_work() {
        let mut g = Graph::default();
        g.add_node(NodeKind::Instruction, 7);
        let gd = GraphData::from_graph(&g);
        let m = model();
        let f = m.forward(&gd);
        let out = m.infer(&gd);
        assert_eq!(out.logits, f.tape.value(f.logits).data);
        assert_eq!(out.pooled, f.tape.value(f.pooled).data);
    }
}
