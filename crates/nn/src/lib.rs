//! # irnuma-nn — the deep-learning substrate
//!
//! A self-contained neural-network stack sufficient for the paper's model
//! (Fig. 2): dense f32 tensors ([`tensor::Tensor`]), a reverse-mode autograd
//! tape ([`autograd`]) with the ops a relational GCN needs (matmul, bias
//! add, relu, sparse typed-edge message passing, mean pooling, residual
//! add, layer norm, softmax cross-entropy), the RGCN graph classifier
//! ([`model::GnnModel`]) implementing the paper's Eq. 1, and an Adam trainer
//! ([`train`]) with rayon map-reduce gradient accumulation over minibatches.
//! Training gradients come from a tape-free fused forward+backward engine
//! ([`backprop`]) — per-worker scratch, flat gradient buffers, deterministic
//! tree reduction — with the tape kept as its verification oracle.
//!
//! Inference goes through a separate tape-free engine ([`infer`]): one pass
//! over a graph produces logits, pooled embedding, softmax probabilities and
//! confidence margin ([`infer::InferOutput`]) using a reusable scratch
//! workspace and the cached CSR adjacency — no tape, no parameter clones —
//! while matching the tape forward bit-for-bit.
//!
//! Everything is seeded and deterministic: `GnnClassifier::fit` with the
//! same seed and data reproduces identical weights bit-for-bit (per-graph
//! gradients are summed in a canonical order after the parallel map).

pub mod autograd;
pub mod backprop;
pub mod binfmt;
pub mod dispatch;
pub mod graphdata;
pub mod infer;
pub mod model;
pub mod stream;
pub mod tensor;
pub mod train;

pub use backprop::{FusedEngine, GradBuffer, TrainScratch};
pub use binfmt::{decode_graph, decode_graph_into, encode_graph};
pub use dispatch::{
    dispatch_enabled, invalidate_plan_caches, model_fingerprint, set_dispatch, shared_plan,
    GraphPlan, ModelPlan, SpmmStrategy,
};
pub use graphdata::{Csr, GraphData, GraphError};
pub use infer::{InferOutput, Scratch};
pub use model::{GnnConfig, GnnModel};
pub use stream::{MemorySource, RecordMap, ShardBatch, ShardSource, ShardStream, GRAPH_SHARD_KIND};
pub use tensor::Tensor;
pub use train::{CheckpointConfig, GnnClassifier, TrainCheckpoint, TrainEngine, TrainParams};
