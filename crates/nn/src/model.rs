//! The paper's prediction architecture (Fig. 2): embedding → RGCN layers →
//! residual + layer norm → mean pooling → fully-connected head.
//!
//! The RGCN update is Eq. 1 of the paper:
//!
//! ```text
//! h_i^{l+1} = σ( W_0^l h_i^l + Σ_{r∈R} Σ_{j∈N_i^r} (1/c_{i,r}) W_r^l h_j^l + b^l )
//! ```
//!
//! with one weight matrix per relation (control/data/call), per-destination
//! normalization `1/c_{i,r}`, and σ = ReLU.

use crate::autograd::{Tape, Var};
use crate::graphdata::{GraphData, NUM_RELATIONS};
use crate::tensor::Tensor;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::rc::Rc;

/// Model hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GnnConfig {
    pub vocab_size: usize,
    /// Embedding/hidden width (the paper uses 256; tests use less).
    pub hidden: usize,
    /// Number of output classes (13/6/2 configuration labels).
    pub classes: usize,
    /// RGCN layers (paper-style: 2).
    pub layers: usize,
    /// Apply the post-residual layer normalization (paper-style: on). The
    /// off switch is the ablation axis; `gamma`/`beta` stay in the parameter
    /// list either way so checkpoints keep one shape per width.
    #[serde(default = "default_layer_norm")]
    pub layer_norm: bool,
    pub seed: u64,
}

/// Models saved before the `layer_norm` switch existed always normalized.
fn default_layer_norm() -> bool {
    true
}

impl GnnConfig {
    pub fn new(vocab_size: usize, hidden: usize, classes: usize) -> GnnConfig {
        GnnConfig { vocab_size, hidden, classes, layers: 2, layer_norm: true, seed: 0xC0FFEE }
    }
}

/// Parameter store. Weights live here between steps; each forward pass
/// copies them onto a fresh tape as leaves.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GnnModel {
    pub cfg: GnnConfig,
    pub params: Vec<Tensor>,
    names: Vec<String>,
}

/// Indices of a forward pass's interesting nodes on the tape.
pub struct Forward {
    pub tape: Tape,
    /// Tape var per parameter, aligned with `GnnModel::params`.
    pub param_vars: Vec<Var>,
    /// The pooled graph embedding (`1×hidden`) — the "vector" of Fig. 2
    /// consumed by the FCNN head, the hybrid model, and the flag model.
    pub pooled: Var,
    /// Class logits (`1×classes`).
    pub logits: Var,
}

impl GnnModel {
    pub fn new(cfg: GnnConfig) -> GnnModel {
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let d = cfg.hidden;
        let mut params = Vec::new();
        let mut names = Vec::new();
        let push = |p: Tensor, n: String, params: &mut Vec<Tensor>, names: &mut Vec<String>| {
            params.push(p);
            names.push(n);
        };
        push(Tensor::glorot(cfg.vocab_size, d, &mut rng), "embed".into(), &mut params, &mut names);
        for l in 0..cfg.layers {
            push(Tensor::glorot(d, d, &mut rng), format!("l{l}.w_self"), &mut params, &mut names);
            for r in 0..NUM_RELATIONS {
                push(
                    Tensor::glorot(d, d, &mut rng),
                    format!("l{l}.w_rel{r}"),
                    &mut params,
                    &mut names,
                );
            }
            push(Tensor::zeros(1, d), format!("l{l}.bias"), &mut params, &mut names);
        }
        let mut gamma = Tensor::zeros(1, d);
        gamma.data.fill(1.0);
        push(gamma, "ln.gamma".into(), &mut params, &mut names);
        push(Tensor::zeros(1, d), "ln.beta".into(), &mut params, &mut names);
        push(Tensor::glorot(d, d, &mut rng), "fc1.w".into(), &mut params, &mut names);
        push(Tensor::zeros(1, d), "fc1.b".into(), &mut params, &mut names);
        push(Tensor::glorot(d, cfg.classes, &mut rng), "fc2.w".into(), &mut params, &mut names);
        push(Tensor::zeros(1, cfg.classes), "fc2.b".into(), &mut params, &mut names);
        GnnModel { cfg, params, names }
    }

    pub fn param_name(&self, i: usize) -> &str {
        &self.names[i]
    }

    /// Build this model's kernel plan: weights prepacked for the
    /// shape-specialized kernels (see [`crate::dispatch`]). The plan
    /// snapshots the *current* parameter values — rebuild it after any
    /// optimizer step. Batched inference and the fused trainer do this
    /// automatically.
    pub fn plan(&self) -> crate::dispatch::ModelPlan {
        crate::dispatch::ModelPlan::build(self)
    }

    pub fn num_params(&self) -> usize {
        self.params.iter().map(|p| p.data.len()).sum()
    }

    /// Build the forward graph for one program graph.
    pub fn forward(&self, g: &GraphData) -> Forward {
        let mut tape = Tape::new();
        let param_vars: Vec<Var> = self.params.iter().map(|p| tape.leaf(p.clone())).collect();
        let d = self.cfg.hidden;
        let _ = d;

        let mut idx = 0usize;
        let mut next = || {
            let v = param_vars[idx];
            idx += 1;
            v
        };
        let embed = next();

        let ids = Rc::new(g.node_text.clone());
        let mut h = tape.gather(embed, ids);
        let mut first_layer_out = None;

        for _l in 0..self.cfg.layers {
            let w_self = next();
            let self_term = tape.matmul(h, w_self);
            let mut acc = self_term;
            for r in 0..NUM_RELATIONS {
                let w_r = next();
                if g.edges[r].is_empty() {
                    continue; // no messages along this relation
                }
                let (edges, norm) = g.relation(r);
                let msgs = tape.spmm(h, edges, norm);
                let term = tape.matmul(msgs, w_r);
                acc = tape.add(acc, term);
            }
            let bias = next();
            let pre = tape.add_bias(acc, bias);
            h = tape.relu(pre);
            if first_layer_out.is_none() {
                first_layer_out = Some(h);
            }
        }

        // Residual connection around the deeper layers, then normalization.
        let res = match first_layer_out {
            Some(h1) if self.cfg.layers > 1 => tape.add(h1, h),
            _ => h,
        };
        let gamma = next();
        let beta = next();
        let normed = if self.cfg.layer_norm { tape.layer_norm(res, gamma, beta) } else { res };
        let pooled = tape.mean_pool(normed);

        let fc1 = next();
        let b1 = next();
        let z = tape.matmul(pooled, fc1);
        let z = tape.add_bias(z, b1);
        let z = tape.relu(z);
        let fc2 = next();
        let b2 = next();
        let logits = tape.matmul(z, fc2);
        let logits = tape.add_bias(logits, b2);

        debug_assert_eq!(idx, param_vars.len(), "all parameters consumed");
        Forward { tape, param_vars, pooled, logits }
    }

    /// Class prediction for one graph (tape-free, via [`GnnModel::infer`]).
    pub fn predict(&self, g: &GraphData) -> usize {
        self.infer(g).label()
    }

    /// The pooled graph embedding (paper's 256-d "vector").
    pub fn embedding(&self, g: &GraphData) -> Vec<f32> {
        self.infer(g).pooled
    }

    /// Embedding concatenated with the softmax class distribution and the
    /// top-1 margin — the feature vector of the hybrid router (the model's
    /// own confidence is the strongest "will I be wrong?" signal).
    pub fn embedding_with_confidence(&self, g: &GraphData) -> Vec<f32> {
        self.infer(g).router_features()
    }

    /// Loss and parameter gradients for one labeled graph.
    pub fn loss_and_grads(&self, g: &GraphData, label: usize) -> (f64, Vec<Tensor>) {
        let mut f = self.forward(g);
        let loss = f.tape.softmax_ce(f.logits, label);
        let loss_val = f.tape.value(loss).data[0] as f64;
        let grads = f.tape.backward(loss);
        let out = f
            .param_vars
            .iter()
            .enumerate()
            .map(|(i, v)| {
                grads[v.index()]
                    .clone()
                    .unwrap_or_else(|| Tensor::zeros(self.params[i].rows, self.params[i].cols))
            })
            .collect();
        (loss_val, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irnuma_graph::{EdgeKind, Graph, NodeKind};

    fn toy_graph(seed: u32) -> GraphData {
        let mut g = Graph::default();
        let n = 6 + (seed % 3);
        let mut prev = None;
        for i in 0..n {
            let node = g.add_node(NodeKind::Instruction, (seed + i) % 20);
            if let Some(p) = prev {
                g.add_edge(p, node, EdgeKind::Control, 0);
                g.add_edge(node, p, EdgeKind::Data, 0);
            }
            prev = Some(node);
        }
        GraphData::from_graph(&g)
    }

    fn cfg() -> GnnConfig {
        GnnConfig { vocab_size: 24, hidden: 8, classes: 4, layers: 2, layer_norm: true, seed: 9 }
    }

    #[test]
    fn configs_saved_before_the_layer_norm_switch_deserialize_to_normalizing() {
        // Pre-ablation serialized configs have no `layer_norm` key; the
        // serde default must fill in `true` (those models always normalized).
        let json = r#"{"vocab_size":24,"hidden":8,"classes":4,"layers":2,"seed":9}"#;
        let old: GnnConfig = serde_json::from_str(json).unwrap();
        assert!(old.layer_norm);
        assert_eq!(old, cfg());
        // Round-tripping a current config preserves an explicit `false`.
        let ablated = GnnConfig { layer_norm: false, ..cfg() };
        let back: GnnConfig =
            serde_json::from_str(&serde_json::to_string(&ablated).unwrap()).unwrap();
        assert!(!back.layer_norm);
    }

    #[test]
    fn forward_shapes_are_right() {
        let m = GnnModel::new(cfg());
        let g = toy_graph(0);
        let f = m.forward(&g);
        assert_eq!(f.tape.value(f.pooled).cols, 8);
        assert_eq!(f.tape.value(f.pooled).rows, 1);
        assert_eq!(f.tape.value(f.logits).cols, 4);
        assert!(m.num_params() > 24 * 8);
    }

    #[test]
    fn forward_is_deterministic() {
        let m = GnnModel::new(cfg());
        let g = toy_graph(1);
        assert_eq!(m.embedding(&g), m.embedding(&g));
        assert_eq!(m.predict(&g), m.predict(&g));
    }

    #[test]
    fn different_graphs_embed_differently() {
        let m = GnnModel::new(cfg());
        assert_ne!(m.embedding(&toy_graph(0)), m.embedding(&toy_graph(7)));
    }

    #[test]
    fn gradients_cover_all_parameters() {
        let m = GnnModel::new(cfg());
        let g = toy_graph(2);
        let (loss, grads) = m.loss_and_grads(&g, 1);
        assert!(loss > 0.0);
        assert_eq!(grads.len(), m.params.len());
        for (i, gr) in grads.iter().enumerate() {
            assert!(gr.same_shape(&m.params[i]), "grad {} shape mismatch ({})", i, m.param_name(i));
        }
        // At least embed, one relation weight and the head must receive
        // non-zero gradient.
        let nonzero: Vec<&str> = grads
            .iter()
            .enumerate()
            .filter(|(_, g)| g.norm() > 0.0)
            .map(|(i, _)| m.param_name(i))
            .collect();
        assert!(nonzero.contains(&"embed"), "{nonzero:?}");
        assert!(nonzero.contains(&"fc2.w"), "{nonzero:?}");
        assert!(nonzero.iter().any(|n| n.contains("w_rel")), "{nonzero:?}");
    }

    #[test]
    fn one_gradient_step_reduces_loss() {
        let mut m = GnnModel::new(cfg());
        let g = toy_graph(3);
        let (l0, grads) = m.loss_and_grads(&g, 2);
        for (p, gr) in m.params.iter_mut().zip(&grads) {
            p.axpy(-0.1, gr);
        }
        let (l1, _) = m.loss_and_grads(&g, 2);
        assert!(l1 < l0, "loss {l0} -> {l1}");
    }
}
