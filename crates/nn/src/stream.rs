//! Streaming minibatch loader over packed dataset shards.
//!
//! [`ShardStream`] reads shards written by `irnuma dataset pack`
//! (`irnuma_store::shard` framing, [`crate::binfmt`] record payloads) on a
//! single prefetch thread, double-buffered: while the trainer runs
//! `FusedEngine::batch_grads` over one decoded shard, the worker reads and
//! decodes the next into the second buffer, so epoch wall-clock stays
//! compute-bound. Two [`ShardBatch`] buffers circulate for the life of the
//! stream — file bytes, graph vectors, and each graph's CSR/CSC arrays are
//! all reused, so steady-state decode allocation is ~0.
//!
//! Determinism: the loader adds no ordering freedom. The trainer hands
//! [`ShardSource::begin_epoch`] an explicit shard order and receives shards
//! back in exactly that order; within a shard, records keep pack order.
//! Combined with the fused engine's fixed graph→buffer assignment and
//! ordered tree reduce, a streamed epoch consumes graphs in a sequence that
//! depends only on the seed — never on thread timing — which is what makes
//! streaming `--resume` bit-for-bit reproducible (see `train::fit_streaming`).

use crate::binfmt::decode_graph_into;
use crate::graphdata::GraphData;
use irnuma_store::shard::{parse_shard, ShardManifest};
use irnuma_store::{corruption, invalid};
use std::collections::VecDeque;
use std::io::{self, Read};
use std::path::Path;
use std::sync::mpsc;
use std::time::Instant;

/// Shard kind for packed dataset graph shards.
pub const GRAPH_SHARD_KIND: &str = "graph-shard";

/// Byte length of the `[u32 region][u32 sequence]` record prefix that
/// precedes each encoded graph in a packed shard.
pub const RECORD_PREFIX: usize = 8;

/// Maps a record's `(region, sequence)` ids to its training label, or
/// `None` to filter the record out (e.g. held-out sequences).
pub type RecordMap = Box<dyn Fn(u32, u32) -> Option<usize> + Send + Sync>;

/// One decoded shard: parallel `graphs`/`labels` arrays plus the raw file
/// buffer, all recycled across epochs via [`ShardSource::recycle`].
#[derive(Debug)]
pub struct ShardBatch {
    /// Index of the shard (in manifest order) this batch holds.
    pub shard: usize,
    pub graphs: Vec<GraphData>,
    pub labels: Vec<usize>,
    buf: Vec<u8>,
}

impl ShardBatch {
    fn empty() -> ShardBatch {
        ShardBatch { shard: usize::MAX, graphs: Vec::new(), labels: Vec::new(), buf: Vec::new() }
    }

    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }
}

/// A source of decoded shards for the streaming train loop. The contract:
/// call [`begin_epoch`](ShardSource::begin_epoch) with the epoch's shard
/// order, then alternate exactly `num_shards` calls to
/// [`next_shard`](ShardSource::next_shard) — which returns shards in that
/// order — each followed by a [`recycle`](ShardSource::recycle) of the
/// returned batch.
pub trait ShardSource: Send {
    fn num_shards(&self) -> usize;
    /// Start an epoch that will visit shards in `order` (a permutation of
    /// `0..num_shards`).
    fn begin_epoch(&mut self, order: &[usize]);
    /// The next shard in the epoch's order. Blocks until prefetched;
    /// blocked time is counted under `loader.prefetch_stall_ns`.
    fn next_shard(&mut self) -> io::Result<ShardBatch>;
    /// Return a batch's buffers for reuse (and trigger the next prefetch).
    fn recycle(&mut self, batch: ShardBatch);
}

enum Job {
    Load(usize, ShardBatch),
}

/// The double-buffered on-disk source.
#[derive(Debug)]
pub struct ShardStream {
    manifest: ShardManifest,
    to_worker: mpsc::Sender<Job>,
    from_worker: mpsc::Receiver<io::Result<ShardBatch>>,
    worker: Option<std::thread::JoinHandle<()>>,
    /// Shards of the current epoch not yet handed to the worker.
    pending: VecDeque<usize>,
    /// Idle buffers (between epochs, or before the first).
    spare: Vec<ShardBatch>,
    in_flight: usize,
}

impl ShardStream {
    /// Open a pack directory: load + sanity-check its manifest and spawn
    /// the prefetch worker. Every listed shard must exist (a missing shard
    /// is an immediate typed error, not a mid-epoch surprise); contents are
    /// verified incrementally as shards are read.
    pub fn open(dir: &Path, map: RecordMap) -> io::Result<ShardStream> {
        let manifest = ShardManifest::load(dir)?;
        for e in &manifest.entries {
            let path = dir.join(&e.file);
            if !path.is_file() {
                return Err(invalid(format!(
                    "shard `{}` is listed in the manifest but missing from {}",
                    e.file,
                    dir.display()
                )));
            }
            e.checksum()?; // reject malformed manifest checksums up front
        }
        let (to_worker, jobs) = mpsc::channel::<Job>();
        let (results, from_worker) = mpsc::channel::<io::Result<ShardBatch>>();
        let worker_manifest = manifest.clone();
        let dir = dir.to_path_buf();
        let worker = std::thread::Builder::new()
            .name("irnuma-loader".into())
            .spawn(move || worker_loop(&dir, &worker_manifest, &map, &jobs, &results))
            .map_err(|e| io::Error::new(e.kind(), format!("spawning loader thread: {e}")))?;
        Ok(ShardStream {
            manifest,
            to_worker,
            from_worker,
            worker: Some(worker),
            pending: VecDeque::new(),
            spare: vec![ShardBatch::empty(), ShardBatch::empty()],
            in_flight: 0,
        })
    }

    pub fn manifest(&self) -> &ShardManifest {
        &self.manifest
    }

    fn dispatch(&mut self, batch: ShardBatch) {
        if let Some(idx) = self.pending.pop_front() {
            // The worker only exits when the sender is dropped, so a send
            // failure means it panicked; surface that on the next recv.
            if self.to_worker.send(Job::Load(idx, batch)).is_ok() {
                self.in_flight += 1;
            }
        } else {
            self.spare.push(batch);
        }
    }
}

impl ShardSource for ShardStream {
    fn num_shards(&self) -> usize {
        self.manifest.entries.len()
    }

    fn begin_epoch(&mut self, order: &[usize]) {
        assert_eq!(
            self.in_flight, 0,
            "begin_epoch called with shards still in flight (missing next_shard/recycle calls)"
        );
        self.pending = order.iter().copied().collect();
        // Prime the pipeline: both buffers go to the worker immediately, so
        // shard order[1] decodes while the trainer consumes order[0].
        while let Some(batch) = self.spare.pop() {
            if self.pending.is_empty() {
                self.spare.push(batch);
                break;
            }
            self.dispatch(batch);
        }
    }

    fn next_shard(&mut self) -> io::Result<ShardBatch> {
        if self.in_flight == 0 {
            return Err(invalid("next_shard called with no shard in flight"));
        }
        let start = Instant::now();
        let result = self
            .from_worker
            .recv()
            .map_err(|_| io::Error::other("shard loader thread died unexpectedly"))?;
        irnuma_obs::counter!("loader.prefetch_stall_ns").inc(start.elapsed().as_nanos() as u64);
        self.in_flight -= 1;
        result
    }

    fn recycle(&mut self, batch: ShardBatch) {
        self.dispatch(batch);
    }
}

impl Drop for ShardStream {
    fn drop(&mut self) {
        // Close the job channel so the worker's recv loop ends, drain any
        // in-flight results, then join.
        let (dead, _) = mpsc::channel();
        self.to_worker = dead;
        while self.in_flight > 0 {
            if self.from_worker.recv().is_err() {
                break;
            }
            self.in_flight -= 1;
        }
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

fn worker_loop(
    dir: &Path,
    manifest: &ShardManifest,
    map: &RecordMap,
    jobs: &mpsc::Receiver<Job>,
    results: &mpsc::Sender<io::Result<ShardBatch>>,
) {
    while let Ok(Job::Load(idx, mut batch)) = jobs.recv() {
        let outcome = load_shard(dir, manifest, map, idx, &mut batch);
        let send = match outcome {
            Ok(()) => results.send(Ok(batch)),
            Err(e) => results.send(Err(e)),
        };
        if send.is_err() {
            break; // stream dropped
        }
    }
}

/// Read, verify, and decode shard `idx` into `batch`, reusing all of the
/// batch's allocations.
fn load_shard(
    dir: &Path,
    manifest: &ShardManifest,
    map: &RecordMap,
    idx: usize,
    batch: &mut ShardBatch,
) -> io::Result<()> {
    let entry = manifest
        .entries
        .get(idx)
        .ok_or_else(|| invalid(format!("shard index {idx} out of range")))?;
    let _span = irnuma_obs::span!("loader.decode", shard = idx as u64);
    let start = Instant::now();
    batch.shard = idx;
    batch.buf.clear();
    std::fs::File::open(dir.join(&entry.file))
        .map_err(|e| io::Error::new(e.kind(), format!("opening shard `{}`: {e}", entry.file)))?
        .read_to_end(&mut batch.buf)?;
    // Cheap structural gate against the manifest; byte integrity is covered
    // by the per-record checksums `parse_shard` verifies, so each payload
    // byte is hashed exactly once per decode. The whole-file checksum stays
    // available through [`ShardManifest::verify`].
    if batch.buf.len() as u64 != entry.bytes {
        return Err(corruption(format!(
            "shard `{}` is {} bytes, manifest says {}",
            entry.file,
            batch.buf.len(),
            entry.bytes
        )));
    }

    // Split-borrow the batch so record slices from `buf` can be decoded
    // while `graphs`/`labels` are repopulated.
    let ShardBatch { buf, graphs, labels, .. } = batch;
    let ranges = parse_shard(GRAPH_SHARD_KIND, buf)?;
    let mut slots = std::mem::take(graphs);
    slots.reverse(); // pop() then yields slots in their previous order
    labels.clear();
    for (i, range) in ranges.into_iter().enumerate() {
        let record = &buf[range];
        if record.len() < RECORD_PREFIX {
            return Err(corruption(format!(
                "shard `{}` record {i} too short for its (region, sequence) prefix",
                entry.file
            )));
        }
        let region = u32::from_le_bytes(record[..4].try_into().unwrap());
        let sequence = u32::from_le_bytes(record[4..8].try_into().unwrap());
        let Some(label) = map(region, sequence) else { continue };
        let mut g = slots.pop().unwrap_or_else(|| {
            GraphData::from_parts(Vec::new(), Default::default(), Default::default())
        });
        decode_graph_into(&record[RECORD_PREFIX..], &mut g).map_err(|e| {
            io::Error::new(e.kind(), format!("shard `{}` record {i}: {e}", entry.file))
        })?;
        graphs.push(g);
        labels.push(label);
    }
    irnuma_obs::counter!("dataset.shards_read").inc(1);
    irnuma_obs::counter!("dataset.decode_ns").inc(start.elapsed().as_nanos() as u64);
    Ok(())
}

/// An in-memory [`ShardSource`]: all shards decoded once and held resident.
/// This is the legacy-equivalent path (`irnuma train --in-memory`) and the
/// determinism oracle the streaming path is tested against.
pub struct MemorySource {
    shards: Vec<Option<(Vec<GraphData>, Vec<usize>)>>,
    order: VecDeque<usize>,
}

impl MemorySource {
    /// Drain `source` once (in identity order) into memory.
    pub fn from_source(source: &mut dyn ShardSource) -> io::Result<MemorySource> {
        let n = source.num_shards();
        let identity: Vec<usize> = (0..n).collect();
        source.begin_epoch(&identity);
        let mut shards = Vec::with_capacity(n);
        for _ in 0..n {
            let batch = source.next_shard()?;
            shards.push(Some((batch.graphs.clone(), batch.labels.clone())));
            source.recycle(batch);
        }
        Ok(MemorySource { shards, order: VecDeque::new() })
    }

    /// Build directly from per-shard `(graphs, labels)` arrays.
    pub fn from_shards(shards: Vec<(Vec<GraphData>, Vec<usize>)>) -> MemorySource {
        MemorySource { shards: shards.into_iter().map(Some).collect(), order: VecDeque::new() }
    }

    /// Total graphs across all shards.
    pub fn num_graphs(&self) -> usize {
        self.shards.iter().flatten().map(|(g, _)| g.len()).sum()
    }
}

impl ShardSource for MemorySource {
    fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn begin_epoch(&mut self, order: &[usize]) {
        self.order = order.iter().copied().collect();
    }

    fn next_shard(&mut self) -> io::Result<ShardBatch> {
        let idx = self
            .order
            .pop_front()
            .ok_or_else(|| invalid("next_shard called past the end of the epoch's order"))?;
        let slot = self
            .shards
            .get_mut(idx)
            .ok_or_else(|| invalid(format!("shard index {idx} out of range")))?;
        let (graphs, labels) = slot
            .take()
            .ok_or_else(|| invalid(format!("shard {idx} checked out twice without recycle")))?;
        Ok(ShardBatch { shard: idx, graphs, labels, buf: Vec::new() })
    }

    fn recycle(&mut self, batch: ShardBatch) {
        if let Some(slot) = self.shards.get_mut(batch.shard) {
            *slot = Some((batch.graphs, batch.labels));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binfmt::encode_graph;
    use irnuma_store::shard::{ShardManifest, ShardWriter};
    use std::fs;
    use std::path::PathBuf;

    fn tdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join("irnuma-stream-test").join(name);
        fs::remove_dir_all(&d).ok();
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn graph(seed: u32) -> GraphData {
        GraphData::from_edge_lists(
            vec![seed % 7, (seed + 1) % 7, (seed + 2) % 7],
            [vec![(0, 1), (1, 2)], vec![(2, 0)], vec![]],
        )
    }

    /// Write `shards` of synthetic records; record (region, seq) = (s, i).
    fn write_pack(dir: &Path, shards: usize, per_shard: usize) {
        let mut manifest = ShardManifest::default();
        for s in 0..shards {
            let mut w = ShardWriter::new(GRAPH_SHARD_KIND);
            for i in 0..per_shard {
                let mut rec = Vec::new();
                rec.extend_from_slice(&(s as u32).to_le_bytes());
                rec.extend_from_slice(&(i as u32).to_le_bytes());
                encode_graph(&graph((s * per_shard + i) as u32), &mut rec);
                w.push(&rec);
            }
            manifest.entries.push(w.finish(dir, &format!("shard-{s:04}.bin")).unwrap());
        }
        manifest.save(dir).unwrap();
    }

    fn label_map() -> RecordMap {
        Box::new(|region, seq| Some((region * 10 + seq) as usize))
    }

    #[test]
    fn stream_yields_shards_in_the_requested_order() {
        let d = tdir("order");
        write_pack(&d, 3, 4);
        let mut stream = ShardStream::open(&d, label_map()).unwrap();
        assert_eq!(stream.num_shards(), 3);
        for order in [vec![0, 1, 2], vec![2, 0, 1], vec![1, 2, 0]] {
            stream.begin_epoch(&order);
            for &want in &order {
                let batch = stream.next_shard().unwrap();
                assert_eq!(batch.shard, want);
                assert_eq!(batch.len(), 4);
                assert_eq!(batch.labels, (0..4).map(|i| want * 10 + i).collect::<Vec<_>>());
                stream.recycle(batch);
            }
        }
    }

    #[test]
    fn stream_matches_memory_source_and_filters_records() {
        let d = tdir("memory");
        write_pack(&d, 2, 3);
        // Filter out sequence 1 everywhere.
        let map = || Box::new(|r: u32, s: u32| (s != 1).then_some(r as usize)) as RecordMap;
        let mut stream = ShardStream::open(&d, map()).unwrap();
        let mut mem = MemorySource::from_source(&mut stream).unwrap();
        assert_eq!(mem.num_graphs(), 4); // 2 shards × (3 - 1) records

        let mut stream = ShardStream::open(&d, map()).unwrap();
        let order = vec![1, 0];
        stream.begin_epoch(&order);
        mem.begin_epoch(&order);
        for _ in 0..2 {
            let a = stream.next_shard().unwrap();
            let b = mem.next_shard().unwrap();
            assert_eq!(a.shard, b.shard);
            assert_eq!(a.labels, b.labels);
            assert_eq!(a.len(), 2);
            for (x, y) in a.graphs.iter().zip(&b.graphs) {
                assert_eq!(x.node_text, y.node_text);
                assert_eq!(x.edges, y.edges);
                assert_eq!(x.norm, y.norm);
            }
            stream.recycle(a);
            mem.recycle(b);
        }
    }

    #[test]
    fn bit_flip_surfaces_as_invalid_data_from_next_shard() {
        let d = tdir("flip");
        write_pack(&d, 2, 2);
        let path = d.join("shard-0001.bin");
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 2;
        bytes[last] ^= 0x40;
        fs::write(&path, &bytes).unwrap();

        let mut stream = ShardStream::open(&d, label_map()).unwrap();
        stream.begin_epoch(&[1, 0]);
        let err = stream.next_shard().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn missing_shard_fails_open_with_a_typed_error() {
        let d = tdir("missing");
        write_pack(&d, 2, 1);
        fs::remove_file(d.join("shard-0000.bin")).unwrap();
        let err = ShardStream::open(&d, label_map()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("shard-0000.bin"), "{err}");
    }

    #[test]
    fn loader_counters_advance() {
        let d = tdir("counters");
        write_pack(&d, 2, 2);
        let read0 = irnuma_obs::registry().counter("dataset.shards_read").get();
        let mut stream = ShardStream::open(&d, label_map()).unwrap();
        stream.begin_epoch(&[0, 1]);
        for _ in 0..2 {
            let b = stream.next_shard().unwrap();
            stream.recycle(b);
        }
        drop(stream);
        let read1 = irnuma_obs::registry().counter("dataset.shards_read").get();
        assert!(read1 >= read0 + 2, "shards_read {read0} -> {read1}");
        assert!(irnuma_obs::registry().counter("dataset.decode_ns").get() > 0);
    }

    #[test]
    fn memory_source_double_checkout_is_an_error_not_a_panic() {
        let mut mem = MemorySource::from_shards(vec![(vec![graph(0)], vec![0])]);
        mem.begin_epoch(&[0, 0]);
        let first = mem.next_shard().unwrap();
        let err = mem.next_shard().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        mem.recycle(first);
    }
}
