//! Dense row-major f32 matrices with the handful of BLAS-ish kernels the
//! model needs. Kept deliberately simple: all shapes are 2-D, `1×n` rows
//! double as vectors.

use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f32`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    pub rows: usize,
    pub cols: usize,
    pub data: Vec<f32>,
}

impl Tensor {
    pub fn zeros(rows: usize, cols: usize) -> Tensor {
        Tensor { rows, cols, data: vec![0.0; rows * cols] }
    }

    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Tensor {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Tensor { rows, cols, data }
    }

    /// Xavier/Glorot-uniform initialization, deterministic in `rng`.
    pub fn glorot(rows: usize, cols: usize, rng: &mut ChaCha8Rng) -> Tensor {
        let limit = (6.0 / (rows + cols) as f64).sqrt() as f32;
        let data = (0..rows * cols).map(|_| rng.gen_range(-limit..limit)).collect();
        Tensor { rows, cols, data }
    }

    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }

    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    pub fn same_shape(&self, other: &Tensor) -> bool {
        self.rows == other.rows && self.cols == other.cols
    }

    /// `self @ other` (naive ikj loop; matrices here are ≤ a few hundred
    /// wide, where this beats fancier schemes after inlining).
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Tensor::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.at(i, k);
                if a == 0.0 {
                    continue;
                }
                let orow = &other.data[k * other.cols..(k + 1) * other.cols];
                let dst = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (d, &o) in dst.iter_mut().zip(orow) {
                    *d += a * o;
                }
            }
        }
        out
    }

    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                *out.at_mut(c, r) = self.at(r, c);
            }
        }
        out
    }

    /// Elementwise addition into `self`.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert!(self.same_shape(other), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert!(self.same_shape(other), "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    pub fn scale(&mut self, alpha: f32) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn matmul_matches_hand_example() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data, vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transpose_round_trips() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().at(2, 1), 6.0);
    }

    #[test]
    fn glorot_is_deterministic_and_bounded() {
        let mut r1 = ChaCha8Rng::seed_from_u64(5);
        let mut r2 = ChaCha8Rng::seed_from_u64(5);
        let a = Tensor::glorot(16, 16, &mut r1);
        let b = Tensor::glorot(16, 16, &mut r2);
        assert_eq!(a, b);
        let limit = (6.0f64 / 32.0).sqrt() as f32;
        assert!(a.data.iter().all(|x| x.abs() <= limit));
        assert!(a.norm() > 0.0);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Tensor::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Tensor::from_vec(1, 3, vec![10.0, 20.0, 30.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.data, vec![6.0, 12.0, 18.0]);
        a.scale(2.0);
        assert_eq!(a.data, vec![12.0, 24.0, 36.0]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn shape_mismatch_panics() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
