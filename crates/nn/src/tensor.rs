//! Dense row-major f32 matrices with the handful of BLAS-ish kernels the
//! model needs. Kept deliberately simple: all shapes are 2-D, `1×n` rows
//! double as vectors.

use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f32`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    pub rows: usize,
    pub cols: usize,
    pub data: Vec<f32>,
}

impl Tensor {
    pub fn zeros(rows: usize, cols: usize) -> Tensor {
        Tensor { rows, cols, data: vec![0.0; rows * cols] }
    }

    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Tensor {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Tensor { rows, cols, data }
    }

    /// Xavier/Glorot-uniform initialization, deterministic in `rng`.
    pub fn glorot(rows: usize, cols: usize, rng: &mut ChaCha8Rng) -> Tensor {
        let limit = (6.0 / (rows + cols) as f64).sqrt() as f32;
        let data = (0..rows * cols).map(|_| rng.gen_range(-limit..limit)).collect();
        Tensor { rows, cols, data }
    }

    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }

    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    pub fn same_shape(&self, other: &Tensor) -> bool {
        self.rows == other.rows && self.cols == other.cols
    }

    /// `self @ other`, via the blocked kernel of [`matmul_accumulate`].
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Tensor::zeros(self.rows, other.cols);
        matmul_accumulate(&self.data, self.rows, self.cols, &other.data, other.cols, &mut out.data);
        out
    }

    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                *out.at_mut(c, r) = self.at(r, c);
            }
        }
        out
    }

    /// Elementwise addition into `self`.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert!(self.same_shape(other), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert!(self.same_shape(other), "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    pub fn scale(&mut self, alpha: f32) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }
}

/// Rows of `a` processed together per sweep of `b`. Four 1-row accumulators
/// stay register/L1-resident and reuse each loaded `b` row four times.
const ROW_BLOCK: usize = 4;

/// Columns of `a` (rows of `b`) per tile; bounds the slice of `b` touched
/// before the output rows are revisited, keeping them cache-hot.
const K_TILE: usize = 64;

/// `out += a @ b` where `a` is `rows×inner` and `b` is `inner×cols`, all
/// row-major. Blocked: 4 rows of `a` share each streamed row of `b`, and the
/// inner dimension is tiled. Every output element still accumulates its
/// `k` terms in ascending order, so results are bit-identical to a naive
/// ikj loop — training and inference can share this kernel without the two
/// paths drifting.
pub fn matmul_accumulate(
    a: &[f32],
    rows: usize,
    inner: usize,
    b: &[f32],
    cols: usize,
    out: &mut [f32],
) {
    debug_assert_eq!(a.len(), rows * inner);
    debug_assert_eq!(b.len(), inner * cols);
    debug_assert_eq!(out.len(), rows * cols);

    let full_blocks = rows / ROW_BLOCK * ROW_BLOCK;
    let mut i = 0;
    while i < full_blocks {
        let (o0, rest) = out[i * cols..(i + 4) * cols].split_at_mut(cols);
        let (o1, rest) = rest.split_at_mut(cols);
        let (o2, o3) = rest.split_at_mut(cols);
        for k0 in (0..inner).step_by(K_TILE) {
            let k_end = (k0 + K_TILE).min(inner);
            for k in k0..k_end {
                let a0 = a[i * inner + k];
                let a1 = a[(i + 1) * inner + k];
                let a2 = a[(i + 2) * inner + k];
                let a3 = a[(i + 3) * inner + k];
                if a0 == 0.0 && a1 == 0.0 && a2 == 0.0 && a3 == 0.0 {
                    continue; // post-relu activations are often zero
                }
                let brow = &b[k * cols..(k + 1) * cols];
                for ((((d0, d1), d2), d3), &bv) in
                    o0.iter_mut().zip(o1.iter_mut()).zip(o2.iter_mut()).zip(o3.iter_mut()).zip(brow)
                {
                    *d0 += a0 * bv;
                    *d1 += a1 * bv;
                    *d2 += a2 * bv;
                    *d3 += a3 * bv;
                }
            }
        }
        i += ROW_BLOCK;
    }

    for i in full_blocks..rows {
        let dst = &mut out[i * cols..(i + 1) * cols];
        for k0 in (0..inner).step_by(K_TILE) {
            let k_end = (k0 + K_TILE).min(inner);
            for k in k0..k_end {
                let av = a[i * inner + k];
                if av == 0.0 {
                    continue;
                }
                let brow = &b[k * cols..(k + 1) * cols];
                for (d, &bv) in dst.iter_mut().zip(brow) {
                    *d += av * bv;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn matmul_matches_hand_example() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data, vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transpose_round_trips() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().at(2, 1), 6.0);
    }

    #[test]
    fn glorot_is_deterministic_and_bounded() {
        let mut r1 = ChaCha8Rng::seed_from_u64(5);
        let mut r2 = ChaCha8Rng::seed_from_u64(5);
        let a = Tensor::glorot(16, 16, &mut r1);
        let b = Tensor::glorot(16, 16, &mut r2);
        assert_eq!(a, b);
        let limit = (6.0f64 / 32.0).sqrt() as f32;
        assert!(a.data.iter().all(|x| x.abs() <= limit));
        assert!(a.norm() > 0.0);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Tensor::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Tensor::from_vec(1, 3, vec![10.0, 20.0, 30.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.data, vec![6.0, 12.0, 18.0]);
        a.scale(2.0);
        assert_eq!(a.data, vec![12.0, 24.0, 36.0]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn shape_mismatch_panics() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    /// Reference ikj product (the kernel the blocked one replaced).
    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(a.rows, b.cols);
        for i in 0..a.rows {
            for k in 0..a.cols {
                let av = a.at(i, k);
                for j in 0..b.cols {
                    *out.at_mut(i, j) += av * b.at(k, j);
                }
            }
        }
        out
    }

    #[test]
    fn blocked_matmul_matches_naive_on_awkward_shapes() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        // Row counts around the 4-row block boundary, odd inner/col sizes
        // spanning the 64-wide k tile, plus post-relu-style zeros.
        for &(r, k, c) in &[(1, 1, 1), (3, 5, 2), (4, 64, 7), (5, 65, 9), (8, 130, 33), (13, 70, 4)]
        {
            let mut a = Tensor::glorot(r, k, &mut rng);
            for v in a.data.iter_mut() {
                if *v < 0.0 {
                    *v = 0.0;
                }
            }
            let b = Tensor::glorot(k, c, &mut rng);
            assert_eq!(a.matmul(&b).data, naive_matmul(&a, &b).data, "shape {r}x{k}x{c}");
        }
    }
}
