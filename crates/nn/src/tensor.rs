//! Dense row-major f32 matrices with the handful of BLAS-ish kernels the
//! model needs. Kept deliberately simple: all shapes are 2-D, `1×n` rows
//! double as vectors.

use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f32`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    pub rows: usize,
    pub cols: usize,
    pub data: Vec<f32>,
}

impl Tensor {
    pub fn zeros(rows: usize, cols: usize) -> Tensor {
        Tensor { rows, cols, data: vec![0.0; rows * cols] }
    }

    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Tensor {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Tensor { rows, cols, data }
    }

    /// Xavier/Glorot-uniform initialization, deterministic in `rng`.
    pub fn glorot(rows: usize, cols: usize, rng: &mut ChaCha8Rng) -> Tensor {
        let limit = (6.0 / (rows + cols) as f64).sqrt() as f32;
        let data = (0..rows * cols).map(|_| rng.gen_range(-limit..limit)).collect();
        Tensor { rows, cols, data }
    }

    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }

    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    pub fn same_shape(&self, other: &Tensor) -> bool {
        self.rows == other.rows && self.cols == other.cols
    }

    /// `self @ other`, via the blocked kernel of [`matmul_accumulate`].
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Tensor::zeros(self.rows, other.cols);
        matmul_accumulate(&self.data, self.rows, self.cols, &other.data, other.cols, &mut out.data);
        out
    }

    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                *out.at_mut(c, r) = self.at(r, c);
            }
        }
        out
    }

    /// Elementwise addition into `self`.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert!(self.same_shape(other), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert!(self.same_shape(other), "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    pub fn scale(&mut self, alpha: f32) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }
}

/// Rows of `a` processed together per sweep of `b`. Four 1-row accumulators
/// stay register/L1-resident and reuse each loaded `b` row four times.
const ROW_BLOCK: usize = 4;

/// Columns of `a` (rows of `b`) per tile; bounds the slice of `b` touched
/// before the output rows are revisited, keeping them cache-hot.
const K_TILE: usize = 64;

/// `out += a @ b` where `a` is `rows×inner` and `b` is `inner×cols`, all
/// row-major. Blocked: 4 rows of `a` share each streamed row of `b`, and the
/// inner dimension is tiled. Every output element still accumulates its
/// `k` terms in ascending order, so results are bit-identical to a naive
/// ikj loop — training and inference can share this kernel without the two
/// paths drifting.
pub fn matmul_accumulate(
    a: &[f32],
    rows: usize,
    inner: usize,
    b: &[f32],
    cols: usize,
    out: &mut [f32],
) {
    matmul_accumulate_body(a, rows, inner, b, cols, out)
}

/// The blocked-kernel body, `inline(always)` so `crate::dispatch` can
/// re-instantiate it inside `#[target_feature]` wrappers (recompiling the
/// same scalar code at wider vector widths — bit-identical, since each
/// output element keeps its separate-multiply-add sequence).
#[inline(always)]
pub(crate) fn matmul_accumulate_body(
    a: &[f32],
    rows: usize,
    inner: usize,
    b: &[f32],
    cols: usize,
    out: &mut [f32],
) {
    debug_assert_eq!(a.len(), rows * inner);
    debug_assert_eq!(b.len(), inner * cols);
    debug_assert_eq!(out.len(), rows * cols);

    let full_blocks = rows / ROW_BLOCK * ROW_BLOCK;
    let mut i = 0;
    while i < full_blocks {
        let (o0, rest) = out[i * cols..(i + 4) * cols].split_at_mut(cols);
        let (o1, rest) = rest.split_at_mut(cols);
        let (o2, o3) = rest.split_at_mut(cols);
        for k0 in (0..inner).step_by(K_TILE) {
            let k_end = (k0 + K_TILE).min(inner);
            for k in k0..k_end {
                let a0 = a[i * inner + k];
                let a1 = a[(i + 1) * inner + k];
                let a2 = a[(i + 2) * inner + k];
                let a3 = a[(i + 3) * inner + k];
                if a0 == 0.0 && a1 == 0.0 && a2 == 0.0 && a3 == 0.0 {
                    continue; // post-relu activations are often zero
                }
                let brow = &b[k * cols..(k + 1) * cols];
                for ((((d0, d1), d2), d3), &bv) in
                    o0.iter_mut().zip(o1.iter_mut()).zip(o2.iter_mut()).zip(o3.iter_mut()).zip(brow)
                {
                    *d0 += a0 * bv;
                    *d1 += a1 * bv;
                    *d2 += a2 * bv;
                    *d3 += a3 * bv;
                }
            }
        }
        i += ROW_BLOCK;
    }

    for i in full_blocks..rows {
        let dst = &mut out[i * cols..(i + 1) * cols];
        for k0 in (0..inner).step_by(K_TILE) {
            let k_end = (k0 + K_TILE).min(inner);
            for k in k0..k_end {
                let av = a[i * inner + k];
                if av == 0.0 {
                    continue;
                }
                let brow = &b[k * cols..(k + 1) * cols];
                for (d, &bv) in dst.iter_mut().zip(brow) {
                    *d += av * bv;
                }
            }
        }
    }
}

/// `out += aᵀ @ b` where `a` is `rows×a_cols` and `b` is `rows×b_cols`,
/// all row-major (`out` is `a_cols×b_cols`). This is the weight-gradient
/// kernel of the fused backward pass (`dW += xᵀ @ dy`): each output element
/// accumulates its `rows` terms in ascending row order, exactly the order
/// `a.transpose().matmul(&b)` produces, so the fused path and the tape
/// oracle round identically — without materializing the transpose.
pub fn matmul_transpose_a_accumulate(
    a: &[f32],
    rows: usize,
    a_cols: usize,
    b: &[f32],
    b_cols: usize,
    out: &mut [f32],
) {
    debug_assert_eq!(a.len(), rows * a_cols);
    debug_assert_eq!(b.len(), rows * b_cols);
    debug_assert_eq!(out.len(), a_cols * b_cols);
    for i in 0..rows {
        let brow = &b[i * b_cols..(i + 1) * b_cols];
        for k in 0..a_cols {
            let av = a[i * a_cols + k];
            if av == 0.0 {
                continue; // post-relu activations are often zero
            }
            let dst = &mut out[k * b_cols..(k + 1) * b_cols];
            for (o, &bv) in dst.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

/// `out += a @ bᵀ` where `a` is `rows×inner` and `b` is `b_rows×inner`,
/// all row-major (`out` is `rows×b_rows`). This is the activation-gradient
/// kernel of the fused backward pass (`dx += dy @ Wᵀ`): each output element
/// is a dot product over `inner` in ascending order — the same order
/// `a.matmul(&b.transpose())` uses — and `b`'s rows are read contiguously,
/// so no transpose is ever materialized.
pub fn matmul_transpose_b_accumulate(
    a: &[f32],
    rows: usize,
    inner: usize,
    b: &[f32],
    b_rows: usize,
    out: &mut [f32],
) {
    debug_assert_eq!(a.len(), rows * inner);
    debug_assert_eq!(b.len(), b_rows * inner);
    debug_assert_eq!(out.len(), rows * b_rows);
    for i in 0..rows {
        let arow = &a[i * inner..(i + 1) * inner];
        let dst = &mut out[i * b_rows..(i + 1) * b_rows];
        for (o, brow) in dst.iter_mut().zip(b.chunks_exact(inner)) {
            let mut acc = 0.0f32;
            for (&av, &bv) in arow.iter().zip(brow) {
                acc += av * bv;
            }
            *o += acc;
        }
    }
}

/// Transpose `src` (`rows×cols`, row-major) into `dst` (`cols×rows`),
/// overwriting `dst`. The fused training engine stages weight and
/// activation transposes in reusable scratch with this, then runs the
/// backward matmuls through the blocked [`matmul_accumulate`] kernel —
/// the transpose-free kernels above are one long dependent add chain per
/// output element, while the blocked kernel keeps four independent output
/// rows streaming, so staging the transpose is the faster backward at
/// training widths despite the extra copy.
pub fn transpose_into(src: &[f32], rows: usize, cols: usize, dst: &mut [f32]) {
    debug_assert_eq!(src.len(), rows * cols);
    debug_assert_eq!(dst.len(), rows * cols);
    for (r, row) in src.chunks_exact(cols).enumerate() {
        for (c, &v) in row.iter().enumerate() {
            dst[c * rows + r] = v;
        }
    }
}

/// Softmax of `logits` written into `probs` (max-shifted, matching the
/// tape's [`crate::autograd::Tape::softmax_ce`] evaluation order exactly).
/// Shared by the inference engine and the fused training engine so the two
/// can never drift.
pub fn softmax_into(logits: &[f32], probs: &mut Vec<f32>) {
    let max = logits.iter().cloned().fold(f32::MIN, f32::max);
    probs.clear();
    probs.extend(logits.iter().map(|v| (v - max).exp()));
    let z: f32 = probs.iter().sum();
    for p in probs.iter_mut() {
        *p /= z;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn matmul_matches_hand_example() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data, vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transpose_round_trips() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().at(2, 1), 6.0);
    }

    #[test]
    fn glorot_is_deterministic_and_bounded() {
        let mut r1 = ChaCha8Rng::seed_from_u64(5);
        let mut r2 = ChaCha8Rng::seed_from_u64(5);
        let a = Tensor::glorot(16, 16, &mut r1);
        let b = Tensor::glorot(16, 16, &mut r2);
        assert_eq!(a, b);
        let limit = (6.0f64 / 32.0).sqrt() as f32;
        assert!(a.data.iter().all(|x| x.abs() <= limit));
        assert!(a.norm() > 0.0);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Tensor::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Tensor::from_vec(1, 3, vec![10.0, 20.0, 30.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.data, vec![6.0, 12.0, 18.0]);
        a.scale(2.0);
        assert_eq!(a.data, vec![12.0, 24.0, 36.0]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn shape_mismatch_panics() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    /// Reference ikj product (the kernel the blocked one replaced).
    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(a.rows, b.cols);
        for i in 0..a.rows {
            for k in 0..a.cols {
                let av = a.at(i, k);
                for j in 0..b.cols {
                    *out.at_mut(i, j) += av * b.at(k, j);
                }
            }
        }
        out
    }

    #[test]
    fn transpose_kernels_match_materialized_transpose_bitwise() {
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        for &(r, k, c) in &[(1, 1, 1), (3, 5, 2), (7, 16, 9), (12, 33, 4)] {
            let mut a = Tensor::glorot(r, k, &mut rng);
            // Post-relu-style zeros exercise the skip path.
            for v in a.data.iter_mut().step_by(3) {
                *v = 0.0;
            }
            let b = Tensor::glorot(r, c, &mut rng);
            let mut out = Tensor::zeros(k, c);
            matmul_transpose_a_accumulate(&a.data, r, k, &b.data, c, &mut out.data);
            assert_eq!(out.data, a.transpose().matmul(&b).data, "aT@b {r}x{k}x{c}");

            let w = Tensor::glorot(k, c, &mut rng);
            let g = Tensor::glorot(r, c, &mut rng);
            let mut out = Tensor::zeros(r, k);
            matmul_transpose_b_accumulate(&g.data, r, c, &w.data, k, &mut out.data);
            assert_eq!(out.data, g.matmul(&w.transpose()).data, "a@bT {r}x{c}x{k}");
        }
    }

    #[test]
    fn transpose_kernels_accumulate_into_existing_output() {
        let a = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let mut out = vec![100.0; 4];
        matmul_transpose_a_accumulate(&a.data, 2, 2, &b.data, 2, &mut out);
        let expect = a.transpose().matmul(&b);
        for (o, e) in out.iter().zip(&expect.data) {
            assert_eq!(*o, 100.0 + e);
        }
    }

    #[test]
    fn transpose_into_matches_tensor_transpose() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for &(r, c) in &[(1, 1), (3, 5), (8, 8), (13, 4)] {
            let a = Tensor::glorot(r, c, &mut rng);
            let mut out = vec![f32::NAN; r * c]; // stale content must be overwritten
            transpose_into(&a.data, r, c, &mut out);
            assert_eq!(out, a.transpose().data, "{r}x{c}");
        }
    }

    #[test]
    fn softmax_into_is_a_distribution_and_reuses_the_buffer() {
        let mut probs = vec![9.0; 17]; // stale content must be cleared
        softmax_into(&[1.0, 2.0, 3.0], &mut probs);
        assert_eq!(probs.len(), 3);
        let sum: f32 = probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(probs[2] > probs[1] && probs[1] > probs[0]);
    }

    #[test]
    fn blocked_matmul_matches_naive_on_awkward_shapes() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        // Row counts around the 4-row block boundary, odd inner/col sizes
        // spanning the 64-wide k tile, plus post-relu-style zeros.
        for &(r, k, c) in &[(1, 1, 1), (3, 5, 2), (4, 64, 7), (5, 65, 9), (8, 130, 33), (13, 70, 4)]
        {
            let mut a = Tensor::glorot(r, k, &mut rng);
            for v in a.data.iter_mut() {
                if *v < 0.0 {
                    *v = 0.0;
                }
            }
            let b = Tensor::glorot(k, c, &mut rng);
            assert_eq!(a.matmul(&b).data, naive_matmul(&a, &b).data, "shape {r}x{k}x{c}");
        }
    }
}
