//! Adam optimizer and the graph-classification trainer.
//!
//! Minibatch gradients are computed per-graph in parallel (rayon map) and
//! reduced in canonical sample order, so training is bit-for-bit
//! deterministic for a given seed regardless of thread count.

use crate::graphdata::GraphData;
use crate::model::{GnnConfig, GnnModel};
use crate::tensor::Tensor;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One tensor's `(m, v)` moments zipped with its parameter and gradient.
type AdamSlot<'a> = (((&'a mut Tensor, &'a mut Tensor), &'a mut Tensor), &'a Tensor);

/// Adam state per parameter tensor.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Adam {
    m: Vec<Tensor>,
    v: Vec<Tensor>,
    t: u64,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
}

impl Adam {
    fn new(params: &[Tensor], lr: f32) -> Adam {
        Adam {
            m: params.iter().map(|p| Tensor::zeros(p.rows, p.cols)).collect(),
            v: params.iter().map(|p| Tensor::zeros(p.rows, p.cols)).collect(),
            t: 0,
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }

    fn step(&mut self, params: &mut [Tensor], grads: &[Tensor]) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let (lr, b1, b2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        // Each parameter tensor's update is independent and every element's
        // arithmetic is unchanged, so parallelizing across tensors keeps the
        // step bit-for-bit deterministic.
        let work: Vec<AdamSlot> =
            self.m.iter_mut().zip(self.v.iter_mut()).zip(params.iter_mut()).zip(grads).collect();
        work.into_par_iter().for_each(|(((m, v), p), g)| {
            for j in 0..p.data.len() {
                let gj = g.data[j];
                m.data[j] = b1 * m.data[j] + (1.0 - b1) * gj;
                v.data[j] = b2 * v.data[j] + (1.0 - b2) * gj * gj;
                let mhat = m.data[j] / bc1;
                let vhat = v.data[j] / bc2;
                p.data[j] -= lr * mhat / (vhat.sqrt() + eps);
            }
        });
    }
}

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TrainParams {
    pub epochs: usize,
    pub batch_size: usize,
    pub lr: f32,
    pub seed: u64,
}

impl Default for TrainParams {
    fn default() -> Self {
        TrainParams { epochs: 30, batch_size: 16, lr: 3e-3, seed: 17 }
    }
}

/// A trained (or trainable) graph classifier: the paper's static model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GnnClassifier {
    pub model: GnnModel,
}

impl GnnClassifier {
    pub fn new(cfg: GnnConfig) -> GnnClassifier {
        GnnClassifier { model: GnnModel::new(cfg) }
    }

    /// Train on labeled graphs; returns the mean loss per epoch.
    pub fn fit(&mut self, graphs: &[GraphData], labels: &[usize], p: TrainParams) -> Vec<f64> {
        assert_eq!(graphs.len(), labels.len());
        assert!(!graphs.is_empty(), "cannot fit on an empty dataset");
        for &l in labels {
            assert!(l < self.model.cfg.classes, "label {l} out of range");
        }
        let mut adam = Adam::new(&self.model.params, p.lr);
        let mut rng = ChaCha8Rng::seed_from_u64(p.seed);
        let mut order: Vec<usize> = (0..graphs.len()).collect();
        let mut history = Vec::with_capacity(p.epochs);

        let mut fit_span = irnuma_obs::span!(
            "train.fit",
            graphs = graphs.len(),
            epochs = p.epochs,
            batch_size = p.batch_size
        );
        for epoch in 0..p.epochs {
            let mut epoch_span = irnuma_obs::span!("train.epoch", epoch = epoch);
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            let mut grad_sq = 0.0f64;
            for chunk in order.chunks(p.batch_size.max(1)) {
                // Parallel map, canonical-order reduce: deterministic.
                let results: Vec<(f64, Vec<Tensor>)> = chunk
                    .par_iter()
                    .map(|&i| self.model.loss_and_grads(&graphs[i], labels[i]))
                    .collect();
                let mut total: Vec<Tensor> =
                    self.model.params.iter().map(|q| Tensor::zeros(q.rows, q.cols)).collect();
                let inv = 1.0 / chunk.len() as f32;
                for (loss, grads) in results {
                    epoch_loss += loss;
                    for (acc, g) in total.iter_mut().zip(&grads) {
                        acc.axpy(inv, g);
                    }
                }
                if irnuma_obs::trace_enabled() {
                    grad_sq += total
                        .iter()
                        .flat_map(|t| &t.data)
                        .map(|&g| g as f64 * g as f64)
                        .sum::<f64>();
                    let t0 = std::time::Instant::now();
                    adam.step(&mut self.model.params, &total);
                    irnuma_obs::histogram!("train.adam_step_ns").record_duration(t0.elapsed());
                    irnuma_obs::counter!("train.batches").inc(1);
                } else {
                    adam.step(&mut self.model.params, &total);
                }
            }
            let mean_loss = epoch_loss / graphs.len() as f64;
            if irnuma_obs::trace_enabled() {
                epoch_span.field("loss", mean_loss);
                epoch_span.field("grad_norm", grad_sq.sqrt());
                irnuma_obs::histogram!("train.epoch_ns").record_duration(epoch_span.elapsed());
            }
            history.push(mean_loss);
        }
        if let Some(&last) = history.last() {
            fit_span.field("final_loss", last);
        }
        history
    }

    pub fn predict(&self, g: &GraphData) -> usize {
        self.model.predict(g)
    }

    /// The pooled embedding vector (input of the hybrid and flag models).
    pub fn embedding(&self, g: &GraphData) -> Vec<f32> {
        self.model.embedding(g)
    }

    /// Embedding + softmax confidence (router features).
    pub fn embedding_with_confidence(&self, g: &GraphData) -> Vec<f32> {
        self.model.embedding_with_confidence(g)
    }

    /// Persist the trained classifier (weights + config) as JSON.
    pub fn save_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        let json = serde_json::to_vec(self).expect("classifier serializes");
        std::fs::write(path, json)
    }

    /// Load a classifier saved with [`GnnClassifier::save_json`].
    pub fn load_json(path: &std::path::Path) -> std::io::Result<GnnClassifier> {
        let bytes = std::fs::read(path)?;
        serde_json::from_slice(&bytes)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Fraction of graphs classified correctly (one batched inference pass).
    pub fn accuracy(&self, graphs: &[GraphData], labels: &[usize]) -> f64 {
        let outputs = self.model.infer_batch(graphs);
        let correct = outputs.iter().zip(labels).filter(|(o, &l)| o.label() == l).count();
        correct as f64 / graphs.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irnuma_graph::{EdgeKind, Graph, NodeKind};

    /// Two synthetic graph families that differ in structure: "chains"
    /// (class 0) and "stars with atomics" (class 1).
    fn family(class: usize, variant: u32) -> GraphData {
        let mut g = Graph::default();
        if class == 0 {
            let mut prev = None;
            for i in 0..6 + variant % 4 {
                let n = g.add_node(NodeKind::Instruction, i % 7);
                if let Some(p) = prev {
                    g.add_edge(p, n, EdgeKind::Control, 0);
                }
                prev = Some(n);
            }
        } else {
            let hub = g.add_node(NodeKind::Instruction, 15);
            for i in 0..6 + variant % 4 {
                let n = g.add_node(NodeKind::Variable, 16 + i % 4);
                g.add_edge(n, hub, EdgeKind::Data, i);
                let c = g.add_node(NodeKind::Instruction, 12);
                g.add_edge(hub, c, EdgeKind::Control, 0);
            }
        }
        GraphData::from_graph(&g)
    }

    fn dataset() -> (Vec<GraphData>, Vec<usize>) {
        let mut gs = Vec::new();
        let mut ls = Vec::new();
        for v in 0..12 {
            gs.push(family(0, v));
            ls.push(0);
            gs.push(family(1, v));
            ls.push(1);
        }
        (gs, ls)
    }

    fn cfg() -> GnnConfig {
        GnnConfig { vocab_size: 24, hidden: 12, classes: 2, layers: 2, seed: 3 }
    }

    #[test]
    fn training_separates_two_structural_classes() {
        let (gs, ls) = dataset();
        let mut clf = GnnClassifier::new(cfg());
        let hist = clf.fit(&gs, &ls, TrainParams { epochs: 40, batch_size: 8, lr: 5e-3, seed: 4 });
        assert!(hist.last().unwrap() < &hist[0], "loss decreases: {hist:?}");
        let acc = clf.accuracy(&gs, &ls);
        assert!(acc >= 0.95, "train accuracy {acc}");
        // Held-out variants of each family classify correctly too.
        assert_eq!(clf.predict(&family(0, 99)), 0);
        assert_eq!(clf.predict(&family(1, 99)), 1);
    }

    #[test]
    fn training_is_deterministic() {
        let (gs, ls) = dataset();
        let p = TrainParams { epochs: 5, batch_size: 4, lr: 1e-3, seed: 11 };
        let mut a = GnnClassifier::new(cfg());
        let ha = a.fit(&gs, &ls, p);
        let mut b = GnnClassifier::new(cfg());
        let hb = b.fit(&gs, &ls, p);
        assert_eq!(ha, hb, "loss history identical");
        assert_eq!(a.model.params, b.model.params, "weights identical");
    }

    #[test]
    fn embeddings_cluster_by_class() {
        let (gs, ls) = dataset();
        let mut clf = GnnClassifier::new(cfg());
        clf.fit(&gs, &ls, TrainParams { epochs: 30, batch_size: 8, lr: 5e-3, seed: 4 });
        let e0 = clf.embedding(&family(0, 50));
        let e0b = clf.embedding(&family(0, 51));
        let e1 = clf.embedding(&family(1, 50));
        let dist = |a: &[f32], b: &[f32]| -> f32 {
            a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f32>().sqrt()
        };
        assert!(dist(&e0, &e0b) < dist(&e0, &e1), "same-class embeddings are closer");
    }

    #[test]
    fn saved_model_predicts_identically_after_reload() {
        let (gs, ls) = dataset();
        let mut clf = GnnClassifier::new(cfg());
        clf.fit(&gs, &ls, TrainParams { epochs: 10, batch_size: 8, lr: 3e-3, seed: 9 });
        let dir = std::env::temp_dir().join("irnuma-nn-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        clf.save_json(&path).unwrap();
        let loaded = GnnClassifier::load_json(&path).unwrap();
        for g in &gs {
            assert_eq!(clf.predict(g), loaded.predict(g));
            assert_eq!(clf.embedding(g), loaded.embedding(g));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "label 5 out of range")]
    fn out_of_range_labels_are_rejected() {
        let (gs, _) = dataset();
        let mut clf = GnnClassifier::new(cfg());
        clf.fit(&gs[..1], &[5], TrainParams::default());
    }
}
