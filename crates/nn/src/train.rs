//! Adam optimizer and the graph-classification trainer.
//!
//! Minibatch gradients flow through the tape-free fused engine
//! ([`crate::backprop`]) by default: per-graph forward+backward in parallel
//! (rayon map) with fixed graph→buffer assignment and an ordered pairwise
//! tree reduction, so training is bit-for-bit deterministic for a given
//! seed regardless of thread count. The autograd tape remains available as
//! [`TrainEngine::TapeReference`] — the verification oracle and benchmark
//! baseline.
//!
//! Training can checkpoint through `irnuma-store`
//! ([`GnnClassifier::fit_checkpointed`]): every N epochs the full trainer
//! state (weights, Adam moments, loss history) is written atomically, and a
//! resumed run replays the RNG to the checkpointed epoch so an interrupted
//! run reproduces the uninterrupted one bit for bit.

use crate::backprop::FusedEngine;
use crate::graphdata::GraphData;
use crate::model::{GnnConfig, GnnModel};
use crate::stream::ShardSource;
use crate::tensor::Tensor;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::{Path, PathBuf};

/// One tensor's `(m, v)` moments zipped with its parameter and gradient.
type AdamSlot<'a, 'b> = (((&'a mut Tensor, &'a mut Tensor), &'a mut Tensor), &'b [f32]);

/// Adam state per parameter tensor.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Adam {
    m: Vec<Tensor>,
    v: Vec<Tensor>,
    t: u64,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
}

impl Adam {
    fn new(params: &[Tensor], lr: f32) -> Adam {
        Adam {
            m: params.iter().map(|p| Tensor::zeros(p.rows, p.cols)).collect(),
            v: params.iter().map(|p| Tensor::zeros(p.rows, p.cols)).collect(),
            t: 0,
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }

    /// One optimizer step. Gradients arrive as one flat slice per parameter
    /// (aligned with `params`) so both the fused engine's [`GradBuffer`]
    /// views and the tape path's tensors feed the same update.
    ///
    /// [`GradBuffer`]: crate::backprop::GradBuffer
    fn step(&mut self, params: &mut [Tensor], grads: &[&[f32]]) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let (lr, b1, b2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        // Each parameter tensor's update is independent and every element's
        // arithmetic is unchanged, so parallelizing across tensors keeps the
        // step bit-for-bit deterministic.
        let work: Vec<AdamSlot> = self
            .m
            .iter_mut()
            .zip(self.v.iter_mut())
            .zip(params.iter_mut())
            .zip(grads.iter().copied())
            .collect();
        work.into_par_iter().for_each(|(((m, v), p), g)| {
            let moments = m.data.iter_mut().zip(v.data.iter_mut());
            for ((mj, vj), (pj, &gj)) in moments.zip(p.data.iter_mut().zip(g)) {
                *mj = b1 * *mj + (1.0 - b1) * gj;
                *vj = b2 * *vj + (1.0 - b2) * gj * gj;
                let mhat = *mj / bc1;
                let vhat = *vj / bc2;
                *pj -= lr * mhat / (vhat.sqrt() + eps);
            }
        });
    }
}

/// Which gradient engine drives the epoch loop. Both compute the same math
/// (fused forward losses are bit-identical to the tape; gradients agree to
/// float rounding), so this is a performance switch, not a semantic one —
/// which is why it is *not* part of [`TrainParams`] (and never reaches a
/// checkpoint): a run checkpointed under one engine may resume under the
/// other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TrainEngine {
    /// The tape-free fused forward+backward engine
    /// ([`crate::backprop::FusedEngine`]) — per-worker scratch, flat
    /// gradient buffers, deterministic tree reduction. The default.
    #[default]
    Fused,
    /// Per-graph autograd tape ([`GnnModel::loss_and_grads`]). The reference
    /// oracle the fused engine is verified against, and the baseline the
    /// training benchmark measures speedup over.
    TapeReference,
}

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainParams {
    pub epochs: usize,
    pub batch_size: usize,
    pub lr: f32,
    pub seed: u64,
}

impl Default for TrainParams {
    fn default() -> Self {
        TrainParams { epochs: 30, batch_size: 16, lr: 3e-3, seed: 17 }
    }
}

/// Checkpointing knobs for [`GnnClassifier::fit_checkpointed`].
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Directory holding `ckpt-<epoch>.json` files plus the `latest` pointer.
    pub dir: PathBuf,
    /// Write a checkpoint every `every` epochs (a final-epoch checkpoint is
    /// always written). `0` disables periodic checkpoints.
    pub every: usize,
    /// Continue from the newest valid checkpoint in `dir`, if any.
    pub resume: bool,
}

const CKPT_KIND: &str = "train-checkpoint";
const LATEST_KIND: &str = "checkpoint-pointer";
const LATEST_FILE: &str = "latest";

/// The full trainer state after `epoch` completed epochs: enough to continue
/// training bit-for-bit (weights, Adam moments, loss history; the shuffle
/// RNG is re-derived from `params.seed` by replaying `epoch` shuffles).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainCheckpoint {
    /// Number of completed epochs.
    pub epoch: usize,
    pub params: TrainParams,
    pub classifier: GnnClassifier,
    adam: Adam,
    pub history: Vec<f64>,
    /// Whether this checkpoint came from the streaming loop
    /// ([`GnnClassifier::fit_streaming`]). The two loops consume graphs in
    /// different seeded orders, so resuming one from the other's checkpoint
    /// would silently change the training trajectory — each path refuses
    /// the other's checkpoints. Defaults to `false` for pre-streaming
    /// checkpoints.
    #[serde(default)]
    pub streaming: bool,
}

impl TrainCheckpoint {
    fn file_name(epoch: usize) -> String {
        format!("ckpt-{epoch:05}.json")
    }

    /// Atomically persist the checkpoint and repoint `latest` at it.
    pub fn save(&self, dir: &Path) -> io::Result<PathBuf> {
        let name = Self::file_name(self.epoch);
        let path = dir.join(&name);
        irnuma_store::save_json(&path, CKPT_KIND, self)?;
        irnuma_store::save_bytes(&dir.join(LATEST_FILE), LATEST_KIND, name.as_bytes())?;
        Ok(path)
    }

    /// Load and validate one checkpoint file (checksum + kind + parse).
    pub fn load(path: &Path) -> io::Result<TrainCheckpoint> {
        irnuma_store::load_json(path, CKPT_KIND)
    }

    /// The newest *valid* checkpoint in `dir`. Follows the `latest` pointer
    /// when it is intact; a torn pointer or a corrupt/truncated checkpoint
    /// is skipped (with a warning and a `ckpt.skipped_corrupt` count) in
    /// favor of the next-newest valid file. `Ok(None)` when the directory
    /// holds no usable checkpoint.
    pub fn load_latest(dir: &Path) -> io::Result<Option<TrainCheckpoint>> {
        let mut tried = None;
        if let Ok(name) = irnuma_store::load_bytes(&dir.join(LATEST_FILE), LATEST_KIND) {
            let name = String::from_utf8_lossy(&name).trim().to_string();
            match Self::load(&dir.join(&name)) {
                Ok(c) => return Ok(Some(c)),
                Err(e) => {
                    irnuma_obs::warn!("checkpoint `{name}` unusable ({e}); scanning for older");
                    irnuma_obs::counter!("ckpt.skipped_corrupt").inc(1);
                    tried = Some(name);
                }
            }
        }
        // Pointer missing or target bad: scan epoch-sorted, newest first.
        let entries = match std::fs::read_dir(dir) {
            Ok(it) => it,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        let mut names: Vec<String> = entries
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| n.starts_with("ckpt-") && n.ends_with(".json"))
            .collect();
        names.sort();
        for name in names.into_iter().rev() {
            if tried.as_deref() == Some(name.as_str()) {
                continue;
            }
            match Self::load(&dir.join(&name)) {
                Ok(c) => return Ok(Some(c)),
                Err(e) => {
                    irnuma_obs::warn!("checkpoint `{name}` unusable ({e}); skipping");
                    irnuma_obs::counter!("ckpt.skipped_corrupt").inc(1);
                }
            }
        }
        Ok(None)
    }
}

/// A trained (or trainable) graph classifier: the paper's static model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GnnClassifier {
    pub model: GnnModel,
}

impl GnnClassifier {
    pub fn new(cfg: GnnConfig) -> GnnClassifier {
        GnnClassifier { model: GnnModel::new(cfg) }
    }

    /// Train on labeled graphs; returns the mean loss per epoch.
    pub fn fit(&mut self, graphs: &[GraphData], labels: &[usize], p: TrainParams) -> Vec<f64> {
        self.fit_checkpointed(graphs, labels, p, None)
            .expect("training without checkpoints performs no I/O")
    }

    /// [`GnnClassifier::fit`] with optional crash-safe checkpointing: every
    /// `ckpt.every` epochs (and at the final epoch) the trainer state is
    /// written atomically under `ckpt.dir`. With `ckpt.resume`, training
    /// continues from the newest valid checkpoint — the shuffle RNG is
    /// fast-forwarded by replaying the completed epochs' shuffles, so an
    /// interrupted-then-resumed run reproduces the uninterrupted run bit
    /// for bit on the same seed.
    pub fn fit_checkpointed(
        &mut self,
        graphs: &[GraphData],
        labels: &[usize],
        p: TrainParams,
        ckpt: Option<&CheckpointConfig>,
    ) -> io::Result<Vec<f64>> {
        self.fit_with_engine(graphs, labels, p, ckpt, TrainEngine::Fused)
    }

    /// [`GnnClassifier::fit_checkpointed`] with an explicit gradient engine
    /// (benchmarks pin [`TrainEngine::TapeReference`] as the baseline).
    pub fn fit_with_engine(
        &mut self,
        graphs: &[GraphData],
        labels: &[usize],
        p: TrainParams,
        ckpt: Option<&CheckpointConfig>,
        engine: TrainEngine,
    ) -> io::Result<Vec<f64>> {
        assert_eq!(graphs.len(), labels.len());
        assert!(!graphs.is_empty(), "cannot fit on an empty dataset");
        for &l in labels {
            assert!(l < self.model.cfg.classes, "label {l} out of range");
        }
        let mut adam = Adam::new(&self.model.params, p.lr);
        let mut rng = ChaCha8Rng::seed_from_u64(p.seed);
        let mut order: Vec<usize> = (0..graphs.len()).collect();
        let mut history = Vec::with_capacity(p.epochs);
        let mut start_epoch = 0;

        if let Some(c) = ckpt.filter(|c| c.resume) {
            if let Some(saved) = TrainCheckpoint::load_latest(&c.dir)? {
                let same = (saved.params.batch_size, saved.params.lr, saved.params.seed)
                    == (p.batch_size, p.lr, p.seed);
                if !same || saved.classifier.model.cfg != self.model.cfg {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "checkpoint at epoch {} was trained with different \
                             hyper-parameters or model shape; refusing to resume",
                            saved.epoch
                        ),
                    ));
                }
                if saved.streaming {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "checkpoint at epoch {} came from the streaming loop; \
                             resume it with `fit_streaming` (the in-memory loop \
                             shuffles graphs in a different seeded order)",
                            saved.epoch
                        ),
                    ));
                }
                start_epoch = saved.epoch;
                *self = saved.classifier;
                adam = saved.adam;
                history = saved.history;
                // Replay the completed epochs' shuffles: `order` and `rng`
                // end up exactly where the uninterrupted run had them.
                for _ in 0..start_epoch {
                    order.shuffle(&mut rng);
                }
                irnuma_obs::info!(
                    "resuming training at epoch {start_epoch}/{} from {}",
                    p.epochs,
                    c.dir.display()
                );
            }
        }

        let mut fused = FusedEngine::new();
        let mut fit_span = irnuma_obs::span!(
            "train.fit",
            graphs = graphs.len(),
            epochs = p.epochs,
            batch_size = p.batch_size
        );
        for epoch in start_epoch..p.epochs {
            let mut epoch_span = irnuma_obs::span!("train.epoch", epoch = epoch);
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            // Gradient-norm telemetry is sampled from the epoch's final
            // minibatch: a full pass over every parameter per chunk would
            // cost more than the tracing budget allows.
            let mut grad_sq = 0.0f64;
            let chunks = order.chunks(p.batch_size.max(1));
            let last_chunk = chunks.len().saturating_sub(1);
            for (chunk_i, chunk) in chunks.enumerate() {
                match engine {
                    TrainEngine::Fused => {
                        // Fixed graph→buffer assignment + ordered tree
                        // reduce inside `batch_grads`: deterministic.
                        let (chunk_loss, gb) =
                            fused.batch_grads(&self.model, graphs, labels, chunk);
                        epoch_loss += chunk_loss;
                        let views = gb.views();
                        if irnuma_obs::telemetry_enabled() {
                            if chunk_i == last_chunk {
                                grad_sq = gb.squared_norm();
                            }
                            let t0 = std::time::Instant::now();
                            adam.step(&mut self.model.params, &views);
                            irnuma_obs::histogram!("train.adam_step_ns")
                                .record_duration(t0.elapsed());
                            irnuma_obs::counter!("train.batches").inc(1);
                        } else {
                            adam.step(&mut self.model.params, &views);
                        }
                    }
                    TrainEngine::TapeReference => {
                        // Parallel map, canonical-order reduce: deterministic.
                        // Worker spans adopt the epoch's context so the
                        // trace forest nests them under this epoch.
                        let ctx = epoch_span.ctx();
                        let results: Vec<(f64, Vec<Tensor>)> = chunk
                            .par_iter()
                            .map(|&i| {
                                let _g = irnuma_obs::span_fanout!(ctx, "train.tape_grads");
                                self.model.loss_and_grads(&graphs[i], labels[i])
                            })
                            .collect();
                        let mut total: Vec<Tensor> = self
                            .model
                            .params
                            .iter()
                            .map(|q| Tensor::zeros(q.rows, q.cols))
                            .collect();
                        let inv = 1.0 / chunk.len() as f32;
                        for (loss, grads) in results {
                            epoch_loss += loss;
                            for (acc, g) in total.iter_mut().zip(&grads) {
                                acc.axpy(inv, g);
                            }
                        }
                        let views: Vec<&[f32]> = total.iter().map(|t| t.data.as_slice()).collect();
                        if irnuma_obs::telemetry_enabled() {
                            if chunk_i == last_chunk {
                                grad_sq = total
                                    .iter()
                                    .flat_map(|t| &t.data)
                                    .map(|&g| g as f64 * g as f64)
                                    .sum::<f64>();
                            }
                            let t0 = std::time::Instant::now();
                            adam.step(&mut self.model.params, &views);
                            irnuma_obs::histogram!("train.adam_step_ns")
                                .record_duration(t0.elapsed());
                            irnuma_obs::counter!("train.batches").inc(1);
                        } else {
                            adam.step(&mut self.model.params, &views);
                        }
                    }
                }
            }
            let mean_loss = epoch_loss / graphs.len() as f64;
            if irnuma_obs::telemetry_enabled() {
                epoch_span.field("loss", mean_loss);
                epoch_span.field("grad_norm", grad_sq.sqrt());
                irnuma_obs::histogram!("train.epoch_ns").record_duration(epoch_span.elapsed());
                irnuma_obs::gauge!("train.loss").set(mean_loss);
            }
            history.push(mean_loss);

            if let Some(c) = ckpt {
                let done = epoch + 1;
                if (c.every > 0 && done % c.every == 0) || done == p.epochs {
                    TrainCheckpoint {
                        epoch: done,
                        params: p,
                        classifier: self.clone(),
                        adam: adam.clone(),
                        history: history.clone(),
                        streaming: false,
                    }
                    .save(&c.dir)?;
                    irnuma_obs::counter!("ckpt.written").inc(1);
                }
            }
        }
        if let Some(&last) = history.last() {
            fit_span.field("final_loss", last);
        }
        Ok(history)
    }

    /// Train from a [`ShardSource`] — the out-of-core epoch loop. Shards
    /// are visited in a seeded order and only one decoded shard is resident
    /// at a time (two with the [`crate::stream::ShardStream`] double
    /// buffer), so the corpus never has to fit in memory.
    ///
    /// Determinism: each epoch derives a fresh RNG from
    /// `seed ⊕ mix(epoch)`, then shuffles the shard order and each shard's
    /// records with it. Shard arrival order is fixed by
    /// [`ShardSource::begin_epoch`] and gradient reduction is the fused
    /// engine's ordered tree, so the whole trajectory depends only on the
    /// seed and the pack — never on thread timing. Per-epoch derivation
    /// (rather than one sequential RNG) is what makes `--resume` exact with
    /// no replay: epoch `k`'s shuffles are the same whether or not epochs
    /// `0..k` ran in this process.
    ///
    /// Checkpoints are tagged `streaming: true`; resuming an in-memory
    /// ([`GnnClassifier::fit_checkpointed`]) checkpoint here is refused
    /// (and vice versa) since the two loops consume graphs in different
    /// seeded orders.
    pub fn fit_streaming(
        &mut self,
        source: &mut dyn ShardSource,
        p: TrainParams,
        ckpt: Option<&CheckpointConfig>,
    ) -> io::Result<Vec<f64>> {
        let mut adam = Adam::new(&self.model.params, p.lr);
        let mut history = Vec::with_capacity(p.epochs);
        let mut start_epoch = 0;

        if let Some(c) = ckpt.filter(|c| c.resume) {
            if let Some(saved) = TrainCheckpoint::load_latest(&c.dir)? {
                let same = (saved.params.batch_size, saved.params.lr, saved.params.seed)
                    == (p.batch_size, p.lr, p.seed);
                if !same || saved.classifier.model.cfg != self.model.cfg {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "checkpoint at epoch {} was trained with different \
                             hyper-parameters or model shape; refusing to resume",
                            saved.epoch
                        ),
                    ));
                }
                if !saved.streaming {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "checkpoint at epoch {} came from the in-memory loop; \
                             resume it with `fit_checkpointed` (the streaming loop \
                             shuffles graphs in a different seeded order)",
                            saved.epoch
                        ),
                    ));
                }
                start_epoch = saved.epoch;
                *self = saved.classifier;
                adam = saved.adam;
                history = saved.history;
                irnuma_obs::info!(
                    "resuming streaming training at epoch {start_epoch}/{} from {}",
                    p.epochs,
                    c.dir.display()
                );
            }
        }

        let num_shards = source.num_shards();
        let mut fused = FusedEngine::new();
        let mut fit_span = irnuma_obs::span!(
            "train.fit",
            shards = num_shards,
            epochs = p.epochs,
            batch_size = p.batch_size
        );
        for epoch in start_epoch..p.epochs {
            let mut epoch_span = irnuma_obs::span!("train.epoch", epoch = epoch);
            let mut rng = ChaCha8Rng::seed_from_u64(streaming_epoch_seed(p.seed, epoch));
            let mut shard_order: Vec<usize> = (0..num_shards).collect();
            shard_order.shuffle(&mut rng);
            source.begin_epoch(&shard_order);

            let mut epoch_loss = 0.0;
            let mut seen = 0usize;
            let mut grad_sq = 0.0f64;
            for _ in 0..num_shards {
                let batch = source.next_shard()?;
                for &l in &batch.labels {
                    assert!(l < self.model.cfg.classes, "label {l} out of range");
                }
                let mut order: Vec<usize> = (0..batch.len()).collect();
                order.shuffle(&mut rng);
                let chunks = order.chunks(p.batch_size.max(1));
                let last_chunk = chunks.len().saturating_sub(1);
                for (chunk_i, chunk) in chunks.enumerate() {
                    let (chunk_loss, gb) =
                        fused.batch_grads(&self.model, &batch.graphs, &batch.labels, chunk);
                    epoch_loss += chunk_loss;
                    let views = gb.views();
                    if irnuma_obs::telemetry_enabled() {
                        // Gradient-norm telemetry samples the epoch's final
                        // minibatch; each shard's last chunk overwrites the
                        // previous, leaving the last shard's.
                        if chunk_i == last_chunk {
                            grad_sq = gb.squared_norm();
                        }
                        let t0 = std::time::Instant::now();
                        adam.step(&mut self.model.params, &views);
                        irnuma_obs::histogram!("train.adam_step_ns").record_duration(t0.elapsed());
                        irnuma_obs::counter!("train.batches").inc(1);
                    } else {
                        adam.step(&mut self.model.params, &views);
                    }
                }
                seen += batch.len();
                source.recycle(batch);
            }
            if seen == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "streaming source yielded no training graphs",
                ));
            }
            let mean_loss = epoch_loss / seen as f64;
            if irnuma_obs::telemetry_enabled() {
                epoch_span.field("loss", mean_loss);
                epoch_span.field("grad_norm", grad_sq.sqrt());
                irnuma_obs::histogram!("train.epoch_ns").record_duration(epoch_span.elapsed());
                irnuma_obs::gauge!("train.loss").set(mean_loss);
            }
            history.push(mean_loss);

            if let Some(c) = ckpt {
                let done = epoch + 1;
                if (c.every > 0 && done % c.every == 0) || done == p.epochs {
                    TrainCheckpoint {
                        epoch: done,
                        params: p,
                        classifier: self.clone(),
                        adam: adam.clone(),
                        history: history.clone(),
                        streaming: true,
                    }
                    .save(&c.dir)?;
                    irnuma_obs::counter!("ckpt.written").inc(1);
                }
            }
        }
        if let Some(&last) = history.last() {
            fit_span.field("final_loss", last);
        }
        Ok(history)
    }

    pub fn predict(&self, g: &GraphData) -> usize {
        self.model.predict(g)
    }

    /// The pooled embedding vector (input of the hybrid and flag models).
    pub fn embedding(&self, g: &GraphData) -> Vec<f32> {
        self.model.embedding(g)
    }

    /// Embedding + softmax confidence (router features).
    pub fn embedding_with_confidence(&self, g: &GraphData) -> Vec<f32> {
        self.model.embedding_with_confidence(g)
    }

    /// Persist the trained classifier (weights + config): atomic write,
    /// versioned header, checksum — a crash mid-save or a torn file can
    /// never produce a silently-wrong model.
    pub fn save_json(&self, path: &Path) -> io::Result<()> {
        irnuma_store::save_json(path, "model", self)
    }

    /// Load a classifier saved with [`GnnClassifier::save_json`]. Truncated
    /// or bit-flipped files fail with [`io::ErrorKind::InvalidData`].
    pub fn load_json(path: &Path) -> io::Result<GnnClassifier> {
        irnuma_store::load_json(path, "model")
    }

    /// Fraction of graphs classified correctly (one batched inference
    /// pass). `None` on an empty graph set — there is no accuracy to
    /// report, and `0.0` would read as "everything misclassified".
    pub fn accuracy(&self, graphs: &[GraphData], labels: &[usize]) -> Option<f64> {
        if graphs.is_empty() {
            return None;
        }
        let outputs = self.model.infer_batch(graphs);
        let correct = outputs.iter().zip(labels).filter(|(o, &l)| o.label() == l).count();
        Some(correct as f64 / graphs.len() as f64)
    }
}

/// The streaming loop's per-epoch RNG seed: the run seed xor-mixed with a
/// splitmix-style odd multiplier of `epoch + 1` (so epoch 0 differs from
/// the raw seed). Deriving per epoch — instead of advancing one sequential
/// RNG — is what lets `--resume` start at epoch `k` with zero replay.
fn streaming_epoch_seed(seed: u64, epoch: usize) -> u64 {
    seed ^ (epoch as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::MemorySource;
    use irnuma_graph::{EdgeKind, Graph, NodeKind};

    /// Two synthetic graph families that differ in structure: "chains"
    /// (class 0) and "stars with atomics" (class 1).
    fn family(class: usize, variant: u32) -> GraphData {
        let mut g = Graph::default();
        if class == 0 {
            let mut prev = None;
            for i in 0..6 + variant % 4 {
                let n = g.add_node(NodeKind::Instruction, i % 7);
                if let Some(p) = prev {
                    g.add_edge(p, n, EdgeKind::Control, 0);
                }
                prev = Some(n);
            }
        } else {
            let hub = g.add_node(NodeKind::Instruction, 15);
            for i in 0..6 + variant % 4 {
                let n = g.add_node(NodeKind::Variable, 16 + i % 4);
                g.add_edge(n, hub, EdgeKind::Data, i);
                let c = g.add_node(NodeKind::Instruction, 12);
                g.add_edge(hub, c, EdgeKind::Control, 0);
            }
        }
        GraphData::from_graph(&g)
    }

    fn dataset() -> (Vec<GraphData>, Vec<usize>) {
        let mut gs = Vec::new();
        let mut ls = Vec::new();
        for v in 0..12 {
            gs.push(family(0, v));
            ls.push(0);
            gs.push(family(1, v));
            ls.push(1);
        }
        (gs, ls)
    }

    fn cfg() -> GnnConfig {
        GnnConfig { vocab_size: 24, hidden: 12, classes: 2, layers: 2, layer_norm: true, seed: 3 }
    }

    #[test]
    fn training_separates_two_structural_classes() {
        let (gs, ls) = dataset();
        let mut clf = GnnClassifier::new(cfg());
        let hist = clf.fit(&gs, &ls, TrainParams { epochs: 40, batch_size: 8, lr: 5e-3, seed: 4 });
        assert!(hist.last().unwrap() < &hist[0], "loss decreases: {hist:?}");
        let acc = clf.accuracy(&gs, &ls).expect("non-empty evaluation set");
        assert!(acc >= 0.95, "train accuracy {acc}");
        // Held-out variants of each family classify correctly too.
        assert_eq!(clf.predict(&family(0, 99)), 0);
        assert_eq!(clf.predict(&family(1, 99)), 1);
    }

    #[test]
    fn training_is_deterministic() {
        let (gs, ls) = dataset();
        let p = TrainParams { epochs: 5, batch_size: 4, lr: 1e-3, seed: 11 };
        let mut a = GnnClassifier::new(cfg());
        let ha = a.fit(&gs, &ls, p);
        let mut b = GnnClassifier::new(cfg());
        let hb = b.fit(&gs, &ls, p);
        assert_eq!(ha, hb, "loss history identical");
        assert_eq!(a.model.params, b.model.params, "weights identical");
    }

    #[test]
    fn fused_and_tape_engines_agree() {
        let (gs, ls) = dataset();
        let p = TrainParams { epochs: 3, batch_size: 4, lr: 1e-3, seed: 11 };
        let mut fused = GnnClassifier::new(cfg());
        let hf = fused.fit_with_engine(&gs, &ls, p, None, TrainEngine::Fused).unwrap();
        let mut tape = GnnClassifier::new(cfg());
        let ht = tape.fit_with_engine(&gs, &ls, p, None, TrainEngine::TapeReference).unwrap();
        // The fused forward is bit-identical to the tape, but Adam steps
        // between chunks, so all but the first chunk of epoch 0 already see
        // rounding-level weight drift; histories must stay numerically close.
        assert!((hf[0] - ht[0]).abs() < 1e-6, "epoch-0 loss: {} vs {}", hf[0], ht[0]);
        for (a, b) in hf.iter().zip(&ht) {
            assert!((a - b).abs() < 1e-3, "histories diverged: {hf:?} vs {ht:?}");
        }
        for (pf, pt) in fused.model.params.iter().zip(&tape.model.params) {
            for (a, b) in pf.data.iter().zip(&pt.data) {
                assert!((a - b).abs() < 1e-2, "weights diverged: {a} vs {b}");
            }
        }
    }

    #[test]
    fn embeddings_cluster_by_class() {
        let (gs, ls) = dataset();
        let mut clf = GnnClassifier::new(cfg());
        clf.fit(&gs, &ls, TrainParams { epochs: 30, batch_size: 8, lr: 5e-3, seed: 4 });
        let e0 = clf.embedding(&family(0, 50));
        let e0b = clf.embedding(&family(0, 51));
        let e1 = clf.embedding(&family(1, 50));
        let dist = |a: &[f32], b: &[f32]| -> f32 {
            a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f32>().sqrt()
        };
        assert!(dist(&e0, &e0b) < dist(&e0, &e1), "same-class embeddings are closer");
    }

    #[test]
    fn saved_model_predicts_identically_after_reload() {
        let (gs, ls) = dataset();
        let mut clf = GnnClassifier::new(cfg());
        clf.fit(&gs, &ls, TrainParams { epochs: 10, batch_size: 8, lr: 3e-3, seed: 9 });
        let dir = std::env::temp_dir().join("irnuma-nn-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        clf.save_json(&path).unwrap();
        let loaded = GnnClassifier::load_json(&path).unwrap();
        for g in &gs {
            assert_eq!(clf.predict(g), loaded.predict(g));
            assert_eq!(clf.embedding(g), loaded.embedding(g));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "label 5 out of range")]
    fn out_of_range_labels_are_rejected() {
        let (gs, _) = dataset();
        let mut clf = GnnClassifier::new(cfg());
        clf.fit(&gs[..1], &[5], TrainParams::default());
    }

    #[test]
    fn accuracy_on_empty_set_is_none_not_zero() {
        let clf = GnnClassifier::new(cfg());
        assert_eq!(clf.accuracy(&[], &[]), None);
    }

    fn ckpt_dir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join("irnuma-ckpt-test").join(name);
        std::fs::remove_dir_all(&d).ok();
        d
    }

    #[test]
    fn interrupted_then_resumed_training_matches_uninterrupted_bit_for_bit() {
        let (gs, ls) = dataset();
        let p4 = TrainParams { epochs: 4, batch_size: 4, lr: 1e-3, seed: 11 };
        let dir = ckpt_dir("resume-exact");

        // The reference: one uninterrupted 4-epoch run.
        let mut full = GnnClassifier::new(cfg());
        let h_full = full.fit(&gs, &ls, p4);

        // The "crash": train only 2 epochs, checkpointing every epoch.
        let mut first = GnnClassifier::new(cfg());
        let cc = CheckpointConfig { dir: dir.clone(), every: 1, resume: false };
        first.fit_checkpointed(&gs, &ls, TrainParams { epochs: 2, ..p4 }, Some(&cc)).unwrap();

        // The "restart": a fresh classifier resumes to 4 epochs.
        let mut resumed = GnnClassifier::new(cfg());
        let cr = CheckpointConfig { resume: true, ..cc };
        let h_res = resumed.fit_checkpointed(&gs, &ls, p4, Some(&cr)).unwrap();

        assert_eq!(h_full, h_res, "loss history identical across the interruption");
        assert_eq!(full.model.params, resumed.model.params, "weights identical");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_skips_torn_latest_and_corrupt_checkpoints() {
        let (gs, ls) = dataset();
        let p = TrainParams { epochs: 3, batch_size: 4, lr: 1e-3, seed: 5 };
        let dir = ckpt_dir("resume-torn");
        let mut clf = GnnClassifier::new(cfg());
        let cc = CheckpointConfig { dir: dir.clone(), every: 1, resume: false };
        clf.fit_checkpointed(&gs, &ls, p, Some(&cc)).unwrap();

        // Tear the `latest` pointer and corrupt the newest checkpoint: the
        // loader must fall back to epoch 2, the newest *valid* one.
        std::fs::write(dir.join("latest"), b"irnuma-store v1 kind=checkpoint-po").unwrap();
        let newest = dir.join("ckpt-00003.json");
        let bytes = std::fs::read(&newest).unwrap();
        std::fs::write(&newest, &bytes[..bytes.len() / 2]).unwrap();

        let loaded = TrainCheckpoint::load_latest(&dir).unwrap().expect("a valid checkpoint");
        assert_eq!(loaded.epoch, 2);
        assert_eq!(loaded.history.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_latest_on_missing_or_empty_dir_is_none() {
        let dir = ckpt_dir("resume-none");
        assert!(TrainCheckpoint::load_latest(&dir).unwrap().is_none());
        std::fs::create_dir_all(&dir).unwrap();
        assert!(TrainCheckpoint::load_latest(&dir).unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_with_different_hyper_parameters_is_refused() {
        let (gs, ls) = dataset();
        let p = TrainParams { epochs: 2, batch_size: 4, lr: 1e-3, seed: 5 };
        let dir = ckpt_dir("resume-mismatch");
        let mut clf = GnnClassifier::new(cfg());
        let cc = CheckpointConfig { dir: dir.clone(), every: 1, resume: false };
        clf.fit_checkpointed(&gs, &ls, p, Some(&cc)).unwrap();

        let mut other = GnnClassifier::new(cfg());
        let cr = CheckpointConfig { resume: true, ..cc };
        let err = other
            .fit_checkpointed(&gs, &ls, TrainParams { lr: 9e-3, epochs: 4, ..p }, Some(&cr))
            .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The test corpus split into 3 in-memory shards.
    fn sharded_dataset() -> MemorySource {
        let (gs, ls) = dataset();
        let shards =
            gs.chunks(8).zip(ls.chunks(8)).map(|(g, l)| (g.to_vec(), l.to_vec())).collect();
        MemorySource::from_shards(shards)
    }

    #[test]
    fn streaming_training_is_deterministic_and_learns() {
        let p = TrainParams { epochs: 25, batch_size: 4, lr: 5e-3, seed: 11 };
        let mut a = GnnClassifier::new(cfg());
        let ha = a.fit_streaming(&mut sharded_dataset(), p, None).unwrap();
        let mut b = GnnClassifier::new(cfg());
        let hb = b.fit_streaming(&mut sharded_dataset(), p, None).unwrap();
        assert_eq!(ha, hb, "loss history identical");
        assert_eq!(a.model.params, b.model.params, "weights identical");
        assert!(ha.last().unwrap() < &ha[0], "loss decreases: {ha:?}");
        let (gs, ls) = dataset();
        assert!(a.accuracy(&gs, &ls).unwrap() >= 0.9);
    }

    #[test]
    fn streaming_resume_matches_uninterrupted_bit_for_bit() {
        let p4 = TrainParams { epochs: 4, batch_size: 4, lr: 1e-3, seed: 11 };
        let dir = ckpt_dir("stream-resume");

        let mut full = GnnClassifier::new(cfg());
        let h_full = full.fit_streaming(&mut sharded_dataset(), p4, None).unwrap();

        let mut first = GnnClassifier::new(cfg());
        let cc = CheckpointConfig { dir: dir.clone(), every: 1, resume: false };
        first
            .fit_streaming(&mut sharded_dataset(), TrainParams { epochs: 2, ..p4 }, Some(&cc))
            .unwrap();

        let mut resumed = GnnClassifier::new(cfg());
        let cr = CheckpointConfig { resume: true, ..cc };
        let h_res = resumed.fit_streaming(&mut sharded_dataset(), p4, Some(&cr)).unwrap();

        assert_eq!(h_full, h_res, "loss history identical across the interruption");
        assert_eq!(full.model.params, resumed.model.params, "weights identical");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn streaming_and_in_memory_checkpoints_are_mutually_refused() {
        let (gs, ls) = dataset();
        let p = TrainParams { epochs: 2, batch_size: 4, lr: 1e-3, seed: 5 };

        // A streaming checkpoint must not resume under the in-memory loop.
        let dir = ckpt_dir("stream-cross-a");
        let cc = CheckpointConfig { dir: dir.clone(), every: 1, resume: false };
        GnnClassifier::new(cfg()).fit_streaming(&mut sharded_dataset(), p, Some(&cc)).unwrap();
        let cr = CheckpointConfig { resume: true, ..cc };
        let err = GnnClassifier::new(cfg())
            .fit_checkpointed(&gs, &ls, TrainParams { epochs: 4, ..p }, Some(&cr))
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("streaming"), "{err}");
        std::fs::remove_dir_all(&dir).ok();

        // And an in-memory checkpoint must not resume under streaming.
        let dir = ckpt_dir("stream-cross-b");
        let cc = CheckpointConfig { dir: dir.clone(), every: 1, resume: false };
        GnnClassifier::new(cfg()).fit_checkpointed(&gs, &ls, p, Some(&cc)).unwrap();
        let cr = CheckpointConfig { resume: true, ..cc };
        let err = GnnClassifier::new(cfg())
            .fit_streaming(&mut sharded_dataset(), TrainParams { epochs: 4, ..p }, Some(&cr))
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("in-memory"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn streaming_with_no_training_graphs_is_a_typed_error() {
        let mut empty = MemorySource::from_shards(vec![(Vec::new(), Vec::new())]);
        let err = GnnClassifier::new(cfg())
            .fit_streaming(&mut empty, TrainParams::default(), None)
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("no training graphs"), "{err}");
    }

    #[test]
    fn truncated_or_flipped_model_file_is_invalid_data_not_garbage() {
        let (gs, ls) = dataset();
        let mut clf = GnnClassifier::new(cfg());
        clf.fit(&gs, &ls, TrainParams { epochs: 2, batch_size: 8, lr: 3e-3, seed: 9 });
        let dir = ckpt_dir("model-corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        clf.save_json(&path).unwrap();

        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 40]).unwrap();
        let err = GnnClassifier::load_json(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        std::fs::write(&path, &flipped).unwrap();
        let err = GnnClassifier::load_json(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).ok();
    }
}
