//! Bit-identity contract of the kernel-dispatch layer: every specialized
//! path — monomorphized tile kernels, prepacked weight panels, each SpMM
//! strategy, and the fully planned inference/training passes — must produce
//! *bit-identical* f32 results to the generic blocked kernels, across
//! awkward shapes (row counts around block boundaries, odd inner sizes,
//! post-relu zeros, empty relations, duplicate edges).

use irnuma_nn::backprop::{fused_loss_grads_threadlocal, GradBuffer};
use irnuma_nn::dispatch::{
    matmul_accumulate_auto, spmm_backward, spmm_forward, PackedMatrix, RelView, SpmmStrategy,
    SPEC_COLS,
};
use irnuma_nn::graphdata::NUM_RELATIONS;
use irnuma_nn::tensor::matmul_accumulate;
use irnuma_nn::{Csr, FusedEngine, GnnConfig, GnnModel, GraphData, Scratch};
use proptest::prelude::*;

const VOCAB: usize = 20;

/// Random connected-ish multigraph (chain backbone + arbitrary extra edges,
/// self-loops and duplicates allowed — the same shape family the backprop
/// proptests use).
fn graph_strategy() -> impl Strategy<Value = GraphData> {
    (2usize..9, prop::collection::vec((0u8..3, 0u16..64, 0u16..64), 0..14)).prop_map(
        |(n, extra)| {
            let node_text: Vec<u32> = (0..n as u32).map(|i| (i * 7 + 3) % VOCAB as u32).collect();
            let mut edges: [Vec<(u32, u32)>; NUM_RELATIONS] = Default::default();
            for i in 1..n as u32 {
                edges[0].push((i - 1, i));
            }
            for (r, s, d) in extra {
                edges[r as usize].push((s as u32 % n as u32, d as u32 % n as u32));
            }
            GraphData::from_edge_lists(node_text, edges)
        },
    )
}

/// Deterministic pseudo-random matrix with post-relu-style zeros (about a
/// quarter of entries) to exercise the kernels' zero-skip paths.
fn mat(len: usize, seed: u64) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let v = (i as u64).wrapping_mul(6364136223846793005).wrapping_add(seed) >> 33;
            if v % 4 == 0 {
                0.0
            } else {
                (v % 1000) as f32 / 250.0 - 2.0
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every supported tile width, dynamic and packed operand layouts,
    /// across awkward (rows, inner) shapes, accumulating into a nonzero
    /// output: all three kernels agree bitwise.
    #[test]
    fn tile_variants_and_packed_path_match_generic_bitwise(
        which in 0usize..SPEC_COLS.len(),
        rows in 1usize..14,
        inner in 1usize..70,
        seed_a in 0u64..1000,
    ) {
        let cols = SPEC_COLS[which];
        let a = mat(rows * inner, seed_a);
        let b = mat(inner * cols, seed_a ^ 0xBEEF);
        let init: f32 = (seed_a % 7) as f32 * 0.25 - 0.5;

        let mut generic = vec![init; rows * cols];
        let mut auto = generic.clone();
        let mut packed = generic.clone();
        matmul_accumulate(&a, rows, inner, &b, cols, &mut generic);
        matmul_accumulate_auto(&a, rows, inner, &b, cols, &mut auto);
        let pm = PackedMatrix::pack(&b, inner, cols);
        irnuma_nn::dispatch::matmul_accumulate_packed(&a, rows, &pm, &mut packed);

        prop_assert_eq!(&auto, &generic, "auto-dispatch {}x{}x{}", rows, inner, cols);
        prop_assert_eq!(&packed, &generic, "packed {}x{}x{}", rows, inner, cols);
    }

    /// Both SpMM strategies agree bitwise on forward (overwrite) and
    /// backward (accumulate) over random multigraphs.
    #[test]
    fn spmm_strategies_agree_bitwise(
        g in graph_strategy(),
        d in prop::sample::select(vec![3usize, 8, 13]),
        seed in 0u64..1000,
    ) {
        let n = g.num_nodes();
        let h: Vec<f32> = (0..n * d).map(|i| ((i as u64 * 37 + seed) % 17) as f32 - 8.0).collect();
        for r in 0..NUM_RELATIONS {
            let fwd = RelView { rows: &g.csr()[r], edges: &g.edges[r], norm: &g.norm[r] };
            let mut a = vec![f32::NAN; n * d]; // stale content must be overwritten
            let mut b = vec![f32::NAN; n * d];
            spmm_forward(SpmmStrategy::CsrGather, fwd, &h, n, d, &mut a);
            spmm_forward(SpmmStrategy::EdgeMajor, fwd, &h, n, d, &mut b);
            prop_assert_eq!(&a, &b, "forward relation {}", r);

            let bwd = RelView { rows: &g.csc()[r], edges: &g.edges[r], norm: &g.norm[r] };
            let mut ga = vec![0.125f32; n * d]; // += semantics: nonzero seed
            let mut gb = ga.clone();
            spmm_backward(SpmmStrategy::CsrGather, bwd, &h, n, d, &mut ga);
            spmm_backward(SpmmStrategy::EdgeMajor, bwd, &h, n, d, &mut gb);
            prop_assert_eq!(&ga, &gb, "backward relation {}", r);
        }
    }

    /// The fully planned pipelines (prepacked inference, planned fused
    /// training through `FusedEngine`) are bit-identical to the planless
    /// ones, at widths with a specialized kernel (8), without one (12 —
    /// exercising the fallback inside an enabled plan), and at the odd
    /// label-count width.
    #[test]
    fn planned_inference_and_training_match_planless_bitwise(
        g in graph_strategy(),
        hidden in prop::sample::select(vec![8usize, 12, 13]),
        label in 0usize..5,
        seed in 0u64..1000,
    ) {
        let m = GnnModel::new(GnnConfig {
            vocab_size: VOCAB,
            hidden,
            classes: 5,
            layers: 2,
            layer_norm: true,
            seed,
        });

        let planless = m.infer_with(&g, &mut Scratch::new());
        let plan = m.plan();
        let planned = m.infer_planned(&plan, &g, &mut Scratch::new());
        prop_assert_eq!(planned.logits, planless.logits);
        prop_assert_eq!(planned.pooled, planless.pooled);

        let mut direct = GradBuffer::for_model(&m);
        let direct_loss = fused_loss_grads_threadlocal(&m, &g, label, &mut direct);
        let graphs = [g];
        let labels = [label];
        let mut engine = FusedEngine::new();
        let (batch_loss, batch_gb) = engine.batch_grads(&m, &graphs, &labels, &[0]);
        prop_assert_eq!(batch_loss, direct_loss, "planned forward loss drifted");
        // A single-graph batch is scaled by 1/1, so the reduced gradient
        // must equal the planless per-graph gradient bit-for-bit.
        for i in 0..m.params.len() {
            prop_assert_eq!(
                batch_gb.view(i), direct.view(i),
                "param {} ({}) gradient drifted under the plan", i, m.param_name(i)
            );
        }
    }
}

/// Batched inference (which prepacks and fans out across threads) matches
/// serial planless inference bitwise at a paper-style width.
#[test]
fn batched_prepacked_inference_matches_serial_planless() {
    let m = GnnModel::new(GnnConfig {
        vocab_size: VOCAB,
        hidden: 64,
        classes: 13,
        layers: 2,
        layer_norm: true,
        seed: 3,
    });
    let graphs: Vec<GraphData> = (2..10)
        .map(|n| {
            let node_text: Vec<u32> = (0..n).map(|i| (i * 3 + 1) % VOCAB as u32).collect();
            let mut edges: [Vec<(u32, u32)>; NUM_RELATIONS] = Default::default();
            for i in 1..n {
                edges[0].push((i - 1, i));
                edges[1].push((i, i - 1));
            }
            edges[2].push((0, n - 1));
            GraphData::from_edge_lists(node_text, edges)
        })
        .collect();
    let batch = m.infer_batch(&graphs);
    for (g, out) in graphs.iter().zip(&batch) {
        let serial = m.infer_with(g, &mut Scratch::new());
        assert_eq!(out.logits, serial.logits);
        assert_eq!(out.pooled, serial.pooled);
        assert_eq!(out.probs, serial.probs);
    }
}

/// The CSR/CSC views really are what RelView consumers assume: grouped rows
/// that expand back to the original edge list.
#[test]
fn relview_invariants_hold_on_a_toy_graph() {
    let g = GraphData::from_edge_lists(
        vec![1, 2, 3, 4],
        [vec![(0, 1), (1, 2), (0, 1), (3, 3)], vec![], vec![(2, 0)]],
    );
    let csr: &Csr = &g.csr()[0];
    // Duplicate edges (0,1) keep both slots, in original order.
    let (srcs, ws) = csr.row(1);
    assert_eq!(srcs, &[0, 0]);
    assert_eq!(ws, &[0.5, 0.5]);
    let stats = g.rel_stats();
    assert_eq!(stats[0].edges, 4);
    assert_eq!(stats[0].max_in_degree, 2);
    assert_eq!(stats[1].edges, 0);
}
