//! The dispatch kill-switch: with specialization force-disabled, every path
//! must run (proving the generic fallback stays live) and produce the exact
//! same bits as the specialized path. One `#[test]` only — `set_dispatch`
//! flips process-global state, so this file must never run tests in
//! parallel with each other (separate test binaries are separate
//! processes, so the rest of the suite is unaffected).

use irnuma_nn::backprop::{fused_loss_grads_threadlocal, GradBuffer};
use irnuma_nn::dispatch::{dispatch_enabled, plan_for, set_dispatch, GraphPlan};
use irnuma_nn::graphdata::NUM_RELATIONS;
use irnuma_nn::{GnnConfig, GnnModel, GraphData, Scratch, SpmmStrategy};

fn toy_graph(n: u32) -> GraphData {
    let node_text: Vec<u32> = (0..n).map(|i| (i * 5 + 2) % 20).collect();
    let mut edges: [Vec<(u32, u32)>; NUM_RELATIONS] = Default::default();
    for i in 1..n {
        edges[0].push((i - 1, i));
        edges[1].push((i, i - 1));
    }
    edges[2].push((0, n - 1));
    GraphData::from_edge_lists(node_text, edges)
}

#[test]
fn disabling_dispatch_keeps_outputs_bitwise_and_falls_back_everywhere() {
    // Width 8 has a specialized kernel, so the enabled run truly exercises
    // the monomorphized + prepacked path.
    let m = GnnModel::new(GnnConfig {
        vocab_size: 20,
        hidden: 8,
        classes: 13,
        layers: 2,
        layer_norm: true,
        seed: 11,
    });
    let graphs: Vec<GraphData> = (2..8).map(toy_graph).collect();

    set_dispatch(true);
    assert!(dispatch_enabled());
    assert!(m.plan().is_packed(), "enabled plan must prepack weights");
    let specialized: Vec<_> = graphs.iter().map(|g| m.infer_with(g, &mut Scratch::new())).collect();
    let spec_batch = m.infer_batch(&graphs);
    let mut spec_grads = GradBuffer::for_model(&m);
    let spec_loss = fused_loss_grads_threadlocal(&m, &graphs[0], 3, &mut spec_grads);

    set_dispatch(false);
    assert!(!dispatch_enabled());
    // A plan built with dispatch off packs nothing, and the graph plan
    // degrades to the pre-dispatch behavior (CSR gather everywhere).
    assert!(!m.plan().is_packed(), "disabled plan must be empty");
    let gplan = plan_for(8, 13, 2, &graphs[0]);
    assert_eq!(gplan, GraphPlan::generic());
    assert_eq!(gplan.spmm, [SpmmStrategy::CsrGather; NUM_RELATIONS]);

    for (g, spec) in graphs.iter().zip(&specialized) {
        let generic = m.infer_with(g, &mut Scratch::new());
        assert_eq!(generic.logits, spec.logits, "logits drifted with dispatch off");
        assert_eq!(generic.pooled, spec.pooled, "pooled drifted with dispatch off");
    }
    let generic_batch = m.infer_batch(&graphs);
    for (a, b) in generic_batch.iter().zip(&spec_batch) {
        assert_eq!(a.logits, b.logits, "batched logits drifted with dispatch off");
    }
    let mut generic_grads = GradBuffer::for_model(&m);
    let generic_loss = fused_loss_grads_threadlocal(&m, &graphs[0], 3, &mut generic_grads);
    assert_eq!(generic_loss, spec_loss, "training loss drifted with dispatch off");
    for i in 0..m.params.len() {
        assert_eq!(
            generic_grads.view(i),
            spec_grads.view(i),
            "gradient of {} drifted with dispatch off",
            m.param_name(i)
        );
    }

    set_dispatch(true);
}
