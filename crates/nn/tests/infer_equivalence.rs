//! Property tests: the tape-free inference engine agrees with the autograd
//! tape on random graphs (including single-node graphs and graphs with
//! empty relations), and the CSR adjacency is a lossless regrouping of the
//! edge list.

use irnuma_nn::graphdata::{Csr, NUM_RELATIONS};
use irnuma_nn::{GnnConfig, GnnModel, GraphData, Scratch};
use proptest::prelude::*;

const VOCAB: usize = 32;

/// Build a valid random graph from raw draws: node count plus wide-range
/// `(src, dst, relation)` triples folded into range by modulo.
fn graph_from_raw(n: usize, raw: &[(u32, u32, u32)]) -> GraphData {
    let node_text: Vec<u32> = (0..n).map(|i| (i * 7 % VOCAB) as u32).collect();
    let mut edges: [Vec<(u32, u32)>; NUM_RELATIONS] = Default::default();
    for &(s, d, r) in raw {
        edges[r as usize % NUM_RELATIONS].push((s % n as u32, d % n as u32));
    }
    GraphData::from_edge_lists(node_text, edges)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The ≤1e-4 divergence bound of the inference engine, over random
    /// graph shapes, widths, and seeds. `0..96` edges over `1..24` nodes
    /// covers single-node graphs and empty relations.
    #[test]
    fn tape_and_infer_agree(
        n in 1usize..24,
        raw in prop::collection::vec((0u32..10_000, 0u32..10_000, 0u32..3), 0..96),
        width in 0usize..3,
        layers in 1usize..3,
        seed in 0u64..1_000,
    ) {
        let g = graph_from_raw(n, &raw);
        let hidden = [4usize, 8, 13][width];
        let m = GnnModel::new(GnnConfig { vocab_size: VOCAB, hidden, classes: 5, layers, layer_norm: true, seed });

        let f = m.forward(&g);
        let tape_logits = &f.tape.value(f.logits).data;
        let tape_pooled = &f.tape.value(f.pooled).data;
        let out = m.infer_with(&g, &mut Scratch::new());

        prop_assert_eq!(out.logits.len(), tape_logits.len());
        prop_assert_eq!(out.pooled.len(), tape_pooled.len());
        for (a, b) in out.logits.iter().zip(tape_logits) {
            prop_assert!((a - b).abs() <= 1e-4, "logits diverge: {} vs {}", a, b);
        }
        for (a, b) in out.pooled.iter().zip(tape_pooled) {
            prop_assert!((a - b).abs() <= 1e-4, "pooled diverges: {} vs {}", a, b);
        }

        // Softmax recomputed from the tape's logits must match `probs`.
        let max = tape_logits.iter().cloned().fold(f32::MIN, f32::max);
        let exps: Vec<f32> = tape_logits.iter().map(|v| (v - max).exp()).collect();
        let z: f32 = exps.iter().sum();
        for (a, e) in out.probs.iter().zip(&exps) {
            prop_assert!((a - e / z).abs() <= 1e-4, "probs diverge: {} vs {}", a, e / z);
        }
        prop_assert!(out.margin >= -1e-6 && out.margin <= 1.0 + 1e-6);
    }

    /// Expanding the CSR rows recovers exactly the edge list stably sorted
    /// by destination — nothing lost, nothing reordered within a row.
    #[test]
    fn csr_round_trips(
        n in 1usize..40,
        raw in prop::collection::vec((0u32..10_000, 0u32..10_000), 0..128),
    ) {
        let edges: Vec<(u32, u32)> =
            raw.iter().map(|&(s, d)| (s % n as u32, d % n as u32)).collect();
        let norm: Vec<f32> = (0..edges.len()).map(|i| 1.0 / (1.0 + i as f32)).collect();
        let csr = Csr::from_edges(n, &edges, &norm);

        prop_assert_eq!(csr.row_ptr.len(), n + 1);
        prop_assert_eq!(csr.src.len(), edges.len());
        let mut recovered: Vec<(u32, u32, f32)> = Vec::new();
        for i in 0..n {
            let (srcs, ws) = csr.row(i);
            for (&s, &w) in srcs.iter().zip(ws) {
                recovered.push((s, i as u32, w));
            }
        }
        let mut expect: Vec<(u32, u32, f32)> =
            edges.iter().zip(&norm).map(|(&(s, d), &w)| (s, d, w)).collect();
        expect.sort_by_key(|&(_, d, _)| d); // stable: preserves edge order per dst
        prop_assert_eq!(recovered, expect);
    }
}
