//! Property tests for the NN substrate: tensor algebra laws, autograd
//! gradient checks on randomized compositions, and training invariances.

use irnuma_nn::autograd::Tape;
use irnuma_nn::Tensor;
use proptest::prelude::*;
use std::rc::Rc;

fn tensor_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |data| Tensor::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_distributes_over_addition(
        a in tensor_strategy(3, 4),
        b in tensor_strategy(4, 2),
        c in tensor_strategy(4, 2),
    ) {
        // a @ (b + c) == a@b + a@c  (within f32 tolerance)
        let mut bc = b.clone();
        bc.add_assign(&c);
        let left = a.matmul(&bc);
        let mut right = a.matmul(&b);
        right.add_assign(&a.matmul(&c));
        for (l, r) in left.data.iter().zip(&right.data) {
            prop_assert!((l - r).abs() < 1e-3, "{l} vs {r}");
        }
    }

    #[test]
    fn transpose_of_matmul_swaps(
        a in tensor_strategy(3, 4),
        b in tensor_strategy(4, 2),
    ) {
        // (a@b)^T == b^T @ a^T
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        for (l, r) in left.data.iter().zip(&right.data) {
            prop_assert!((l - r).abs() < 1e-4);
        }
    }

    #[test]
    fn backward_matches_numeric_gradient_on_random_mlp(
        x in tensor_strategy(1, 5),
        w1 in tensor_strategy(5, 4),
        w2 in tensor_strategy(4, 3),
        label in 0usize..3,
    ) {
        let f = |x: &Tensor, w1: &Tensor, w2: &Tensor| -> f32 {
            let mut t = Tape::new();
            let xv = t.leaf(x.clone());
            let w1v = t.leaf(w1.clone());
            let w2v = t.leaf(w2.clone());
            let h = t.matmul(xv, w1v);
            let h = t.relu(h);
            let logits = t.matmul(h, w2v);
            let loss = t.softmax_ce(logits, label);
            t.value(loss).data[0]
        };
        // Analytic gradient w.r.t. w2 (avoids relu kinks that break the
        // numeric check for x/w1).
        let mut t = Tape::new();
        let xv = t.leaf(x.clone());
        let w1v = t.leaf(w1.clone());
        let w2v = t.leaf(w2.clone());
        let h = t.matmul(xv, w1v);
        let h = t.relu(h);
        let logits = t.matmul(h, w2v);
        let loss = t.softmax_ce(logits, label);
        let grads = t.backward(loss);
        let gw2 = grads[w2v.index()].clone().unwrap();

        let eps = 1e-2f32;
        for j in [0usize, 5, 11] {
            let mut p = w2.clone();
            p.data[j] += eps;
            let mut m = w2.clone();
            m.data[j] -= eps;
            let numeric = (f(&x, &w1, &p) - f(&x, &w1, &m)) / (2.0 * eps);
            let analytic = gw2.data[j];
            let denom = numeric.abs().max(analytic.abs()).max(0.05);
            prop_assert!(
                (numeric - analytic).abs() / denom < 0.15,
                "elem {j}: numeric {numeric} analytic {analytic}"
            );
        }
    }

    #[test]
    fn spmm_is_linear_in_inputs(
        x in tensor_strategy(4, 3),
        y in tensor_strategy(4, 3),
        alpha in -2.0f32..2.0,
    ) {
        let edges = Rc::new(vec![(0u32, 1u32), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let norm = Rc::new(vec![1.0f32, 0.5, 0.5, 1.0, 0.5]);
        let run = |input: &Tensor| -> Tensor {
            let mut t = Tape::new();
            let v = t.leaf(input.clone());
            let out = t.spmm(v, edges.clone(), norm.clone());
            t.value(out).clone()
        };
        // spmm(x + αy) == spmm(x) + α·spmm(y)
        let mut lhs_in = x.clone();
        lhs_in.axpy(alpha, &y);
        let lhs = run(&lhs_in);
        let mut rhs = run(&x);
        rhs.axpy(alpha, &run(&y));
        for (l, r) in lhs.data.iter().zip(&rhs.data) {
            prop_assert!((l - r).abs() < 1e-3);
        }
    }

    #[test]
    fn layer_norm_output_is_normalized(x in tensor_strategy(3, 8)) {
        let mut t = Tape::new();
        let xv = t.leaf(x);
        let mut gamma = Tensor::zeros(1, 8);
        gamma.data.fill(1.0);
        let g = t.leaf(gamma);
        let b = t.leaf(Tensor::zeros(1, 8));
        let out = t.layer_norm(xv, g, b);
        let o = t.value(out);
        for r in 0..o.rows {
            let row = o.row(r);
            let mean: f32 = row.iter().sum::<f32>() / 8.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 8.0;
            prop_assert!(mean.abs() < 1e-3, "row {r} mean {mean}");
            // variance ≈ 1 unless the row was (near-)constant
            prop_assert!(var < 1.2, "row {r} var {var}");
        }
    }

    #[test]
    fn mean_pool_is_permutation_invariant(x in tensor_strategy(5, 4), seed in 0u64..100) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut perm: Vec<usize> = (0..5).collect();
        perm.shuffle(&mut rng);
        let mut shuffled = Tensor::zeros(5, 4);
        for (dst, &src) in perm.iter().enumerate() {
            shuffled.data[dst * 4..(dst + 1) * 4].copy_from_slice(x.row(src));
        }
        let pool = |input: Tensor| -> Tensor {
            let mut t = Tape::new();
            let v = t.leaf(input);
            let out = t.mean_pool(v);
            t.value(out).clone()
        };
        let a = pool(x);
        let b = pool(shuffled);
        for (l, r) in a.data.iter().zip(&b.data) {
            prop_assert!((l - r).abs() < 1e-4);
        }
    }
}
