//! Property tests pinning the fused forward+backward engine to the autograd
//! tape, its reference oracle: over random graphs, widths, depths, labels
//! and the layer-norm ablation, the fused forward loss must be bit-identical
//! to the tape's and every parameter gradient must agree within `1e-4`.

use irnuma_nn::backprop::{fused_loss_grads_threadlocal, GradBuffer};
use irnuma_nn::graphdata::NUM_RELATIONS;
use irnuma_nn::{FusedEngine, GnnConfig, GnnModel, GraphData};
use proptest::prelude::*;

const VOCAB: usize = 20;

/// A random connected-ish multigraph: a chain backbone guarantees every node
/// participates, random extra edges (any relation, self-loops and duplicates
/// allowed) exercise fan-in, empty relations, and `1/c` normalization.
fn graph_strategy() -> impl Strategy<Value = GraphData> {
    (2usize..9, prop::collection::vec((0u8..3, 0u16..64, 0u16..64), 0..14)).prop_map(
        |(n, extra)| {
            let node_text: Vec<u32> = (0..n as u32).map(|i| (i * 7 + 3) % VOCAB as u32).collect();
            let mut edges: [Vec<(u32, u32)>; NUM_RELATIONS] = Default::default();
            for i in 1..n as u32 {
                edges[0].push((i - 1, i));
            }
            for (r, s, d) in extra {
                edges[r as usize].push((s as u32 % n as u32, d as u32 % n as u32));
            }
            GraphData::from_edge_lists(node_text, edges)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fused_gradients_match_the_tape_oracle(
        g in graph_strategy(),
        hidden in prop::sample::select(vec![4usize, 8, 11]),
        layers in 1usize..4,
        ln_bit in 0u8..2,
        label in 0usize..5,
        seed in 0u64..1000,
    ) {
        let m = GnnModel::new(GnnConfig {
            vocab_size: VOCAB,
            hidden,
            classes: 5,
            layers,
            layer_norm: ln_bit == 1,
            seed,
        });
        let (tape_loss, tape_grads) = m.loss_and_grads(&g, label);
        let mut gb = GradBuffer::for_model(&m);
        let fused_loss = fused_loss_grads_threadlocal(&m, &g, label, &mut gb);

        prop_assert_eq!(
            fused_loss, tape_loss,
            "fused forward must reproduce the tape loss bit-for-bit"
        );
        for (i, t) in tape_grads.iter().enumerate() {
            for (j, (&f, &r)) in gb.view(i).iter().zip(&t.data).enumerate() {
                prop_assert!(
                    (f - r).abs() <= 1e-4,
                    "param {} ({}) elem {}: fused {} vs tape {}",
                    i, m.param_name(i), j, f, r
                );
            }
        }

        // The batch engine prepacks weights and dispatches shape-specialized
        // kernels; a single-graph batch must still reproduce the planless
        // fused gradients bit-for-bit (and therefore stay within the tape
        // tolerance above).
        let graphs = [g];
        let labels = [label];
        let mut engine = FusedEngine::new();
        let (planned_loss, planned) = engine.batch_grads(&m, &graphs, &labels, &[0]);
        prop_assert_eq!(planned_loss, fused_loss, "planned forward loss drifted");
        for i in 0..m.params.len() {
            prop_assert_eq!(
                planned.view(i), gb.view(i),
                "param {} ({}) gradient drifted under the kernel plan", i, m.param_name(i)
            );
        }
    }
}
