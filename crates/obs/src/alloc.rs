//! Allocation accounting: a counting wrapper around the system allocator.
//!
//! [`CountingAlloc`] delegates every request to [`std::alloc::System`] and
//! maintains four process-wide relaxed atomics (cumulative allocated bytes,
//! live bytes, peak live bytes, allocation calls) plus a per-thread
//! cumulative-allocated counter used for per-span allocation deltas. The
//! accounting path is a handful of relaxed atomic ops and one `#[thread_local]`
//! add — no locks, no allocation, safe to run inside the allocator.
//!
//! Install it from a binary (the `alloc-track` feature marks builds that do):
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: irnuma_obs::alloc::CountingAlloc = irnuma_obs::alloc::CountingAlloc::new();
//! ```
//!
//! Once installed, [`tracking_active`] turns true (the allocator runs before
//! `main`, so by the time anything asks, calls have been counted), spans
//! attach `alloc_bytes` deltas to their trace events, and
//! [`refresh_mem_gauges`] publishes `mem.alloc_bytes` / `mem.live_bytes` /
//! `mem.peak_bytes` gauges for snapshots and `irnuma top`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

static TOTAL_BYTES: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);
static TOTAL_CALLS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // Const-initialized Cell<u64> lowers to a plain `#[thread_local]` static
    // (no lazy init, no destructor), so touching it inside the allocator
    // cannot recurse.
    static THREAD_BYTES: Cell<u64> = const { Cell::new(0) };
}

#[inline]
fn count_alloc(bytes: usize) {
    let bytes = bytes as u64;
    TOTAL_BYTES.fetch_add(bytes, Ordering::Relaxed);
    TOTAL_CALLS.fetch_add(1, Ordering::Relaxed);
    let live = LIVE_BYTES.fetch_add(bytes, Ordering::Relaxed) + bytes;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
    THREAD_BYTES.with(|t| t.set(t.get().wrapping_add(bytes)));
}

#[inline]
fn count_dealloc(bytes: usize) {
    LIVE_BYTES.fetch_sub(bytes as u64, Ordering::Relaxed);
}

/// A counting [`GlobalAlloc`] wrapping the system allocator.
pub struct CountingAlloc;

impl CountingAlloc {
    pub const fn new() -> CountingAlloc {
        CountingAlloc
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        CountingAlloc::new()
    }
}

// SAFETY: pure delegation to `System`; the accounting uses only relaxed
// atomics and a const-initialized thread-local, neither of which allocates.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            count_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            count_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        count_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            // A grow counts the grown-by bytes as fresh allocation; a shrink
            // only lowers the live figure. Either way live moves by the
            // difference, matching alloc(new) + dealloc(old).
            if new_size > layout.size() {
                count_alloc(new_size - layout.size());
            } else {
                count_dealloc(layout.size() - new_size);
            }
        }
        p
    }
}

/// Cumulative bytes ever allocated process-wide (monotonic).
pub fn total_allocated() -> u64 {
    TOTAL_BYTES.load(Ordering::Relaxed)
}

/// Bytes currently allocated and not yet freed.
pub fn live_bytes() -> u64 {
    LIVE_BYTES.load(Ordering::Relaxed)
}

/// High-water mark of [`live_bytes`].
pub fn peak_bytes() -> u64 {
    PEAK_BYTES.load(Ordering::Relaxed)
}

/// Number of allocation calls (alloc + alloc_zeroed + growing reallocs).
pub fn alloc_calls() -> u64 {
    TOTAL_CALLS.load(Ordering::Relaxed)
}

/// Cumulative bytes allocated by the calling thread (monotonic). Spans use
/// open/close differences of this for their `alloc_bytes` field, so
/// concurrent allocation on other threads never pollutes a span's delta.
pub fn thread_allocated() -> u64 {
    THREAD_BYTES.with(|t| t.get())
}

/// Whether a [`CountingAlloc`] is installed as the global allocator. The
/// allocator serves every allocation from process start, so "any call was
/// ever counted" is equivalent to "installed".
#[inline]
pub fn tracking_active() -> bool {
    TOTAL_CALLS.load(Ordering::Relaxed) != 0
}

/// Publish the current allocation figures as `mem.*` gauges. A no-op (the
/// gauges stay at their defaults) when no counting allocator is installed.
pub fn refresh_mem_gauges() {
    if !tracking_active() {
        return;
    }
    crate::registry().gauge("mem.alloc_bytes").set(total_allocated() as f64);
    crate::registry().gauge("mem.live_bytes").set(live_bytes() as f64);
    crate::registry().gauge("mem.peak_bytes").set(peak_bytes() as f64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::alloc::{GlobalAlloc, Layout};

    // Exercise the accounting arithmetic by calling the wrapper directly —
    // no global installation needed, so these tests run without the
    // `alloc-track` feature. The counters are process-global, so the tests
    // serialize on a shared lock.
    fn counter_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::OnceLock<std::sync::Mutex<()>> = std::sync::OnceLock::new();
        match LOCK.get_or_init(|| std::sync::Mutex::new(())).lock() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    #[test]
    fn alloc_dealloc_realloc_arithmetic() {
        let _guard = counter_lock();
        let a = CountingAlloc::new();
        let layout = Layout::from_size_align(1024, 8).unwrap();
        let (t0, l0, c0, th0) =
            (total_allocated(), live_bytes(), alloc_calls(), thread_allocated());

        unsafe {
            let p = a.alloc(layout);
            assert!(!p.is_null());
            assert_eq!(total_allocated() - t0, 1024);
            assert_eq!(live_bytes() - l0, 1024);
            assert_eq!(alloc_calls() - c0, 1);
            assert_eq!(thread_allocated() - th0, 1024);
            assert!(peak_bytes() >= l0 + 1024);

            // Grow: +1024 allocated, live moves to 2048 over baseline.
            let p = a.realloc(p, layout, 2048);
            assert!(!p.is_null());
            assert_eq!(total_allocated() - t0, 2048);
            assert_eq!(live_bytes() - l0, 2048);

            // Shrink: no new allocation, live drops to 512 over baseline.
            let layout2 = Layout::from_size_align(2048, 8).unwrap();
            let p = a.realloc(p, layout2, 512);
            assert!(!p.is_null());
            assert_eq!(total_allocated() - t0, 2048);
            assert_eq!(live_bytes() - l0, 512);

            let layout3 = Layout::from_size_align(512, 8).unwrap();
            a.dealloc(p, layout3);
            assert_eq!(live_bytes(), l0);
            assert_eq!(total_allocated() - t0, 2048, "dealloc never lowers the total");
        }
    }

    #[test]
    fn peak_tracks_high_water_not_current() {
        let _guard = counter_lock();
        let a = CountingAlloc::new();
        let layout = Layout::from_size_align(1 << 16, 8).unwrap();
        unsafe {
            let p = a.alloc(layout);
            let peak_at_high = peak_bytes();
            a.dealloc(p, layout);
            assert!(peak_bytes() >= peak_at_high, "peak is monotonic");
            assert!(live_bytes() < peak_at_high, "live fell back below peak");
        }
    }

    #[test]
    fn zeroed_allocations_count_like_plain_ones() {
        let _guard = counter_lock();
        let a = CountingAlloc::new();
        let layout = Layout::from_size_align(256, 8).unwrap();
        let t0 = total_allocated();
        unsafe {
            let p = a.alloc_zeroed(layout);
            assert!(!p.is_null());
            assert!((0..256).all(|i| *p.add(i) == 0));
            assert_eq!(total_allocated() - t0, 256);
            a.dealloc(p, layout);
        }
    }
}
