//! Trace identity and cross-thread context propagation.
//!
//! Every span belongs to a **trace**: a 64-bit id allocated when a root
//! span (one with no open ancestor) opens, and inherited by every
//! descendant. Within a thread, inheritance is automatic through the
//! thread-local context stack. Across threads — rayon `par_iter` workers,
//! spawned threads — the vendored runtime has no tracing hooks, so
//! propagation is explicit: capture the context before the fan-out and
//! attach it inside the worker closure.
//!
//! ```
//! let batch = irnuma_obs::span!("batch");
//! let ctx = batch.ctx(); // or irnuma_obs::TraceContext::capture()
//! std::thread::scope(|s| {
//!     s.spawn(move || {
//!         let _scope = ctx.attach();
//!         // spans opened here nest under `batch` and share its trace id
//!         let _w = irnuma_obs::span!("batch.worker");
//!     });
//! });
//! ```
//!
//! The disabled path stays one relaxed atomic load: [`TraceContext::capture`]
//! checks [`crate::telemetry_enabled`] and returns [`TraceContext::NONE`],
//! whose [`TraceContext::attach`] is a no-op.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Next trace sequence number (mixed through splitmix64 so ids are
/// well-spread 64-bit values, not small integers that collide across
/// processes appending to one trace file).
static NEXT_TRACE_SEQ: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// This thread's innermost open context (NONE at top level).
    static CURRENT: Cell<TraceContext> = const { Cell::new(TraceContext::NONE) };
}

/// A capturable, `Copy + Send` reference to an open span and the trace it
/// belongs to. `span_id` is the would-be parent of spans opened under this
/// context; `trace_id` groups every span of one causal unit (an epoch, a
/// batched-inference call, a dataset build, a future served request).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    pub trace_id: u64,
    pub span_id: u64,
}

impl TraceContext {
    /// The empty context: no trace, no parent span.
    pub const NONE: TraceContext = TraceContext { trace_id: 0, span_id: 0 };

    /// Whether this is the empty context.
    pub fn is_none(&self) -> bool {
        self.trace_id == 0 && self.span_id == 0
    }

    /// Snapshot this thread's innermost open context, for handing into a
    /// worker closure. One relaxed load when telemetry is off.
    #[inline]
    pub fn capture() -> TraceContext {
        if !crate::telemetry_enabled() {
            return TraceContext::NONE;
        }
        CURRENT.with(|c| c.get())
    }

    /// Install this context as the current one on *this* thread, returning
    /// a guard that restores the previous context on drop. Spans opened
    /// while the guard lives nest under `span_id` and inherit `trace_id`.
    /// Attaching [`TraceContext::NONE`] is a no-op.
    #[inline]
    pub fn attach(self) -> ScopeGuard {
        if self.is_none() {
            return ScopeGuard { prev: None };
        }
        let prev = CURRENT.with(|c| c.replace(self));
        ScopeGuard { prev: Some(prev) }
    }
}

/// RAII guard from [`TraceContext::attach`]: restores the thread's previous
/// context when dropped.
pub struct ScopeGuard {
    prev: Option<TraceContext>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            CURRENT.with(|c| c.set(prev));
        }
    }
}

/// The current thread context (crate-internal accessor for span opening).
pub(crate) fn current() -> TraceContext {
    CURRENT.with(|c| c.get())
}

/// Overwrite the current thread context (crate-internal: span open installs
/// itself, span drop restores what it displaced).
pub(crate) fn restore(ctx: TraceContext) {
    CURRENT.with(|c| c.set(ctx));
}

/// Allocate a fresh, non-zero trace id for a new root span: a process-wide
/// sequence number mixed with a per-process seed through splitmix64.
pub(crate) fn fresh_trace_id() -> u64 {
    let seq = NEXT_TRACE_SEQ.fetch_add(1, Ordering::Relaxed);
    let id = splitmix64(seq.wrapping_add(process_seed()));
    if id == 0 {
        1
    } else {
        id
    }
}

/// Lazily initialized per-process seed so trace ids from different
/// processes (or restarts appending to one file) don't collide on the
/// plain sequence numbers.
fn process_seed() -> u64 {
    static SEED: AtomicU64 = AtomicU64::new(0);
    let mut s = SEED.load(Ordering::Relaxed);
    if s == 0 {
        s = splitmix64(crate::epoch_ns() | 1);
        if s == 0 {
            s = 0x9e37_79b9_7f4a_7c15;
        }
        // A racing initializer computes a different seed; first store wins
        // so every thread settles on one value.
        if let Err(won) = SEED.compare_exchange(0, s, Ordering::Relaxed, Ordering::Relaxed) {
            s = won;
        }
    }
    s
}

/// SplitMix64 finalizer: a cheap bijective mixer over u64.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_context_attach_is_a_noop() {
        let before = current();
        {
            let _g = TraceContext::NONE.attach();
            assert_eq!(current(), before);
        }
        assert_eq!(current(), before);
    }

    #[test]
    fn attach_installs_and_restores() {
        let ctx = TraceContext { trace_id: 7, span_id: 9 };
        {
            let _g = ctx.attach();
            assert_eq!(current(), ctx);
            let inner = TraceContext { trace_id: 7, span_id: 11 };
            {
                let _g2 = inner.attach();
                assert_eq!(current(), inner);
            }
            assert_eq!(current(), ctx);
        }
        assert_eq!(current(), TraceContext::NONE);
    }

    #[test]
    fn trace_ids_are_unique_and_nonzero() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let id = fresh_trace_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id), "duplicate trace id {id}");
        }
    }
}
