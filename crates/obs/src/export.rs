//! Minimal TCP metrics endpoint (stdlib only).
//!
//! [`serve`] binds a listener and answers each connection with a fresh
//! [`crate::TelemetrySnapshot`]: `GET /metrics` (or anything else) returns
//! Prometheus text exposition, `GET /json` returns the JSON wire format
//! `irnuma top` consumes. Responses speak just enough HTTP/1.0 for `curl`
//! and Prometheus scrapers; the server handles one connection at a time on
//! one background thread (snapshots are cheap, and this is an introspection
//! port, not a serving path).
//!
//! Enabled by `IRNUMA_METRICS=<addr>` in [`crate::init`], which also turns
//! on live stats aggregation so span latency percentiles are populated.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Handle to a running export server. Dropping it does NOT stop the server
/// (the thread serves until [`ServerHandle::stop`] or process exit).
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
}

impl ServerHandle {
    /// The bound address (useful when serving on port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Ask the server thread to exit after its next accept.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
    }
}

/// Serve telemetry snapshots on `addr`. Turns on live stats aggregation
/// (span drops start feeding per-name latency histograms) and spawns the
/// accept loop on a background thread.
pub fn serve(addr: impl ToSocketAddrs) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    crate::set_stats_enabled(true);
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = stop.clone();
    std::thread::Builder::new()
        .name("irnuma-metrics".into())
        .spawn(move || {
            for conn in listener.incoming() {
                if stop2.load(Ordering::Relaxed) {
                    break;
                }
                if let Ok(stream) = conn {
                    handle_conn(stream);
                }
            }
        })
        .expect("spawn metrics server thread");
    Ok(ServerHandle { addr: bound, stop })
}

fn handle_conn(mut stream: TcpStream) {
    stream.set_read_timeout(Some(Duration::from_millis(500))).ok();
    stream.set_write_timeout(Some(Duration::from_secs(2))).ok();
    // One request line is all the routing needs; drain up to 1 KiB of it.
    let mut buf = [0u8; 1024];
    let n = stream.read(&mut buf).unwrap_or(0);
    let request = String::from_utf8_lossy(&buf[..n]);
    let first_line = request.lines().next().unwrap_or("");
    crate::registry().counter("export.requests").inc(1);

    let snap = crate::TelemetrySnapshot::capture();
    let (content_type, body) = if first_line.contains("/json") {
        ("application/json", snap.to_json())
    } else {
        ("text/plain; version=0.0.4", snap.to_prometheus())
    };
    let header = format!(
        "HTTP/1.0 200 OK\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(header.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// Fetch `path` (e.g. `"/json"` or `"/metrics"`) from an export endpoint
/// and return the response body with HTTP headers stripped.
pub fn fetch(addr: &str, path: &str) -> std::io::Result<String> {
    let sock = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::other(format!("cannot resolve {addr}")))?;
    let mut stream = TcpStream::connect_timeout(&sock, Duration::from_secs(2))?;
    stream.set_read_timeout(Some(Duration::from_secs(5))).ok();
    stream.write_all(format!("GET {path} HTTP/1.0\r\nHost: {addr}\r\n\r\n").as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    match response.split_once("\r\n\r\n") {
        Some((headers, body)) if headers.starts_with("HTTP/") => Ok(body.to_string()),
        _ => Err(std::io::Error::other("malformed HTTP response from metrics endpoint")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_json_and_prometheus_over_tcp() {
        crate::registry().counter("export.test.counter").inc(3);
        let server = serve("127.0.0.1:0").expect("bind");
        let addr = server.addr().to_string();

        let json = fetch(&addr, "/json").expect("fetch json");
        assert!(json.starts_with("{\"ts_ns\":"), "{json}");
        assert!(json.contains("\"export.test.counter\":"), "{json}");

        let prom = fetch(&addr, "/metrics").expect("fetch prometheus");
        assert!(prom.contains("# TYPE irnuma_export_test_counter counter"), "{prom}");
        // The endpoint counts its own requests.
        assert!(prom.contains("irnuma_export_requests"), "{prom}");

        server.stop();
    }
}
