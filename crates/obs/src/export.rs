//! Minimal TCP metrics endpoint (stdlib only).
//!
//! [`serve`] binds a listener and answers each connection with a fresh
//! [`crate::TelemetrySnapshot`]: `GET /metrics` (or anything else) returns
//! Prometheus text exposition, `GET /json` returns the JSON wire format
//! `irnuma top` consumes. Responses speak just enough HTTP/1.0 for `curl`
//! and Prometheus scrapers; the server handles one connection at a time on
//! one background thread (snapshots are cheap, and this is an introspection
//! port, not a serving path).
//!
//! Enabled by `IRNUMA_METRICS=<addr>` in [`crate::init`], which also turns
//! on live stats aggregation so span latency percentiles are populated.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Handle to a running export server. Dropping it does NOT stop the server
/// (the thread serves until [`ServerHandle::stop`] or process exit).
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
}

impl ServerHandle {
    /// The bound address (useful when serving on port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Ask the server thread to exit after its next accept.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
    }
}

/// Serve telemetry snapshots on `addr`. Turns on live stats aggregation
/// (span drops start feeding per-name latency histograms) and spawns the
/// accept loop on a background thread.
pub fn serve(addr: impl ToSocketAddrs) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    crate::set_stats_enabled(true);
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = stop.clone();
    std::thread::Builder::new()
        .name("irnuma-metrics".into())
        .spawn(move || {
            for conn in listener.incoming() {
                if stop2.load(Ordering::Relaxed) {
                    break;
                }
                if let Ok(stream) = conn {
                    handle_conn(stream);
                }
            }
        })
        .expect("spawn metrics server thread");
    Ok(ServerHandle { addr: bound, stop })
}

/// Longest request line accepted before the server answers 400 — far above
/// any legitimate `GET /json HTTP/1.x` line, far below anything that could
/// tie up the single server thread buffering garbage.
const MAX_REQUEST_LINE: usize = 8 * 1024;

/// Read one CRLF/LF-terminated request line, looping over however many TCP
/// segments it arrives in. `Ok(None)` means the line was malformed: longer
/// than [`MAX_REQUEST_LINE`], or the peer closed/timed out before sending a
/// newline. A client that dribbles the line across several writes — which
/// the old single-`read` implementation misrouted — is handled correctly.
fn read_request_line(stream: &mut TcpStream) -> Option<String> {
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 512];
    loop {
        if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let mut line = &buf[..pos];
            if line.last() == Some(&b'\r') {
                line = &line[..line.len() - 1];
            }
            return Some(String::from_utf8_lossy(line).into_owned());
        }
        // Size and wall-clock caps: neither a giant line nor a byte-trickle
        // client may pin the single server thread.
        if buf.len() > MAX_REQUEST_LINE || std::time::Instant::now() > deadline {
            return None;
        }
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return None, // EOF or timeout mid-line
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
    }
}

fn handle_conn(mut stream: TcpStream) {
    stream.set_read_timeout(Some(Duration::from_millis(500))).ok();
    stream.set_write_timeout(Some(Duration::from_secs(2))).ok();
    crate::registry().counter("export.requests").inc(1);

    // Route on a fully-read, well-formed `GET <path> …` request line;
    // anything else — oversized, truncated, or non-GET — is a 400, never a
    // panic or a misrouted 200 (this thread serves every future scrape).
    let path = read_request_line(&mut stream).and_then(|line| {
        let mut parts = line.split_whitespace();
        match (parts.next(), parts.next()) {
            (Some("GET"), Some(path)) => Some(path.to_string()),
            _ => None,
        }
    });
    let Some(path) = path else {
        crate::registry().counter("export.bad_requests").inc(1);
        let body = "bad request: expected `GET <path>` within 8 KiB\n";
        let header = format!(
            "HTTP/1.0 400 Bad Request\r\nContent-Type: text/plain\r\nContent-Length: {}\r\n\
             Connection: close\r\n\r\n",
            body.len()
        );
        let _ = stream.write_all(header.as_bytes());
        let _ = stream.write_all(body.as_bytes());
        let _ = stream.flush();
        return;
    };

    let snap = crate::TelemetrySnapshot::capture();
    let (content_type, body) = if path == "/json" || path.starts_with("/json?") {
        ("application/json", snap.to_json())
    } else {
        ("text/plain; version=0.0.4", snap.to_prometheus())
    };
    let header = format!(
        "HTTP/1.0 200 OK\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(header.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// Fetch `path` (e.g. `"/json"` or `"/metrics"`) from an export endpoint
/// and return the response body with HTTP headers stripped.
pub fn fetch(addr: &str, path: &str) -> std::io::Result<String> {
    let sock = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::other(format!("cannot resolve {addr}")))?;
    let mut stream = TcpStream::connect_timeout(&sock, Duration::from_secs(2))?;
    stream.set_read_timeout(Some(Duration::from_secs(5))).ok();
    stream.write_all(format!("GET {path} HTTP/1.0\r\nHost: {addr}\r\n\r\n").as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    match response.split_once("\r\n\r\n") {
        Some((headers, body)) if headers.starts_with("HTTP/") => Ok(body.to_string()),
        _ => Err(std::io::Error::other("malformed HTTP response from metrics endpoint")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_json_and_prometheus_over_tcp() {
        crate::registry().counter("export.test.counter").inc(3);
        let server = serve("127.0.0.1:0").expect("bind");
        let addr = server.addr().to_string();

        let json = fetch(&addr, "/json").expect("fetch json");
        assert!(json.starts_with("{\"ts_ns\":"), "{json}");
        assert!(json.contains("\"export.test.counter\":"), "{json}");

        let prom = fetch(&addr, "/metrics").expect("fetch prometheus");
        assert!(prom.contains("# TYPE irnuma_export_test_counter counter"), "{prom}");
        // The endpoint counts its own requests.
        assert!(prom.contains("irnuma_export_requests"), "{prom}");

        server.stop();
    }

    /// Write `parts` as separate TCP segments (flushing and pausing between
    /// them), then return the full raw response.
    fn raw_request(addr: &std::net::SocketAddr, parts: &[&[u8]]) -> String {
        let mut stream = TcpStream::connect_timeout(addr, Duration::from_secs(2)).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(5))).ok();
        for part in parts {
            // Ignore write errors: the server may already have answered
            // (e.g. 400 on an oversized line) and closed its end.
            let _ = stream.write_all(part);
            let _ = stream.flush();
            std::thread::sleep(Duration::from_millis(20));
        }
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap_or(0);
        response
    }

    #[test]
    fn request_line_split_across_reads_still_routes_correctly() {
        let server = serve("127.0.0.1:0").expect("bind");
        // The `/json` path arrives in two TCP segments: a single-read
        // server sees only `GET /js` and misroutes to Prometheus text.
        let response = raw_request(&server.addr(), &[b"GET /js", b"on HTTP/1.0\r\n\r\n"]);
        assert!(response.starts_with("HTTP/1.0 200"), "{response}");
        assert!(response.contains("application/json"), "split write misrouted: {response}");
        server.stop();
    }

    #[test]
    fn oversized_and_malformed_request_lines_get_400_and_leave_the_thread_alive() {
        let server = serve("127.0.0.1:0").expect("bind");
        let addr = server.addr();

        // A request line far beyond the cap is rejected, not buffered.
        let huge = vec![b'A'; 64 * 1024];
        let response = raw_request(&addr, &[b"GET /", &huge]);
        assert!(response.starts_with("HTTP/1.0 400"), "{response}");

        // A non-GET / garbage line is a 400 too.
        let response = raw_request(&addr, &[b"BOGUS\r\n\r\n"]);
        assert!(response.starts_with("HTTP/1.0 400"), "{response}");

        // An empty connection (closed before any newline) is also a 400.
        let response = raw_request(&addr, &[b"GET /metrics"]); // no newline, then EOF
        assert!(response.starts_with("HTTP/1.0 400"), "{response}");

        // And after all of that abuse the server thread still serves.
        let json = fetch(&addr.to_string(), "/json").expect("fetch json after abuse");
        assert!(json.starts_with("{\"ts_ns\":"), "{json}");
        server.stop();
    }
}
