//! # irnuma-obs — structured tracing, metrics & profiling
//!
//! Zero-dependency observability for the train/infer pipeline:
//!
//! * **Spans** — hierarchical wall-clock timing with thread-aware nesting
//!   that works across rayon workers ([`span!`], [`span_under!`],
//!   [`current_span`]);
//! * **Metrics** — monotonic [`Counter`]s, [`Gauge`]s, and log-scale
//!   [`Histogram`]s with p50/p90/p99 extraction, interned in a lock-sharded
//!   global registry ([`counter!`], [`gauge!`], [`histogram!`]);
//! * **Sinks** — a [`JsonlSink`] (one stable-schema event per line) and an
//!   in-memory [`MemorySink`] for tests;
//! * **Logs** — [`error!`]/[`warn!`]/[`info!`]/[`debug!`] to stderr (and to
//!   the trace, when one is active).
//!
//! Configuration is environment-driven:
//!
//! * `IRNUMA_TRACE=<path>` — write a JSONL trace to `<path>`;
//! * `IRNUMA_LOG=error|warn|info|debug` — stderr log level. Defaults to
//!   `warn` in libraries/tests (quiet) and `info` in the CLI binaries.
//!
//! Disabled instrumentation costs one relaxed atomic load per site; the
//! `off` cargo feature compiles every site out entirely.
//!
//! ```
//! let _pipeline = irnuma_obs::span!("train.fit", graphs = 128usize);
//! for epoch in 0..3u64 {
//!     let mut s = irnuma_obs::span!("train.epoch", epoch = epoch);
//!     irnuma_obs::histogram!("train.epoch_ns").record(1000);
//!     s.field("loss", 0.5f64);
//! }
//! irnuma_obs::counter!("train.batches").inc(1);
//! ```

pub mod alloc;
mod context;
pub mod export;
mod macros;
mod metrics;
pub mod perfetto;
pub mod profile;
mod registry;
mod sink;
mod snapshot;
mod span;
pub mod tree;
mod value;

pub use context::{ScopeGuard, TraceContext};
pub use metrics::{
    bucket_index, bucket_lower, bucket_upper, Counter, Gauge, Histogram, HistogramSnapshot,
    NUM_BUCKETS,
};
pub use registry::{flush_metrics, registry, MetricSnapshot, Registry};
pub use sink::{
    clear_sink, emit, epoch_ns, flush_sink, profiling_enabled, set_sink, set_stats_enabled,
    stats_enabled, telemetry_enabled, trace_enabled, Event, JsonlSink, MemorySink, Sink,
};
pub use snapshot::TelemetrySnapshot;
pub use span::{current_span, timed, SpanGuard};
pub use tree::{PathSegment, SpanForest, SpanRecord, SubtreeStats};
pub use value::Value;

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

/// Log severity, most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Error = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
}

impl Level {
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    /// Parse an `IRNUMA_LOG` value (case-insensitive; `None` if unknown).
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" | "trace" => Some(Level::Debug),
            _ => None,
        }
    }
}

/// Sentinel: the level has not been initialized yet.
const LEVEL_UNSET: u8 = u8::MAX;
static LOG_LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNSET);

fn level_from_env(default: Level) -> Level {
    std::env::var("IRNUMA_LOG").ok().and_then(|v| Level::parse(&v)).unwrap_or(default)
}

/// Whether a message at `level` would be printed. One relaxed load on the
/// fast path; the first call lazily reads `IRNUMA_LOG` (defaulting to
/// `warn`, so libraries and tests stay quiet unless asked).
#[inline]
pub fn log_enabled(level: Level) -> bool {
    if cfg!(feature = "off") {
        return false;
    }
    let mut cur = LOG_LEVEL.load(Ordering::Relaxed);
    if cur == LEVEL_UNSET {
        cur = level_from_env(Level::Warn) as u8;
        LOG_LEVEL.store(cur, Ordering::Relaxed);
    }
    (level as u8) <= cur
}

/// Force the stderr log level (overrides any earlier initialization).
pub fn set_log_level(level: Level) {
    LOG_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Write one log line to stderr and, when a trace sink is active, emit a
/// `log` event. Use through the level macros, which gate on
/// [`log_enabled`] first.
pub fn log(level: Level, message: String) {
    match level {
        Level::Error => eprintln!("error: {message}"),
        Level::Warn => eprintln!("warning: {message}"),
        Level::Info | Level::Debug => eprintln!("{message}"),
    }
    if trace_enabled() {
        emit(&Event::now("log", message).field("level", level.as_str()));
    }
}

/// RAII handle returned by [`init`]: flushes metrics and the trace sink
/// when dropped (typically at the end of `main`).
pub struct ObsGuard {
    _priv: (),
}

impl Drop for ObsGuard {
    fn drop(&mut self) {
        shutdown();
    }
}

/// Initialize observability for a binary:
///
/// * stderr log level from `IRNUMA_LOG`, falling back to `default_level`
///   (binaries pass [`Level::Info`] so progress lines show by default);
/// * if `IRNUMA_TRACE=<path>` is set, install a [`JsonlSink`] writing there;
/// * if `IRNUMA_METRICS=<addr>` is set, serve live [`TelemetrySnapshot`]s
///   over TCP (`/metrics` Prometheus text, `/json` for `irnuma top`) and
///   turn on span latency aggregation;
/// * if `IRNUMA_PROFILE=<path>` is set, start the sampling wall-clock
///   profiler (rate from `IRNUMA_PROFILE_HZ`, default 997 Hz); the folded
///   stacks land at `<path>` when the returned guard drops;
/// * a panic hook that flushes the trace sink before unwinding, so crashed
///   runs keep their buffered trace tail ([`install_panic_flush_hook`]).
///
/// Returns a guard that flushes metric snapshots into the trace, flushes
/// the sink, and dumps the profile when dropped.
pub fn init(default_level: Level) -> ObsGuard {
    set_log_level(level_from_env(default_level));
    install_panic_flush_hook();
    if let Ok(path) = std::env::var("IRNUMA_TRACE") {
        if !path.is_empty() {
            match JsonlSink::create(&path) {
                Ok(sink) => set_sink(Arc::new(sink)),
                Err(e) => eprintln!("warning: IRNUMA_TRACE={path}: cannot create trace file: {e}"),
            }
        }
    }
    if let Ok(addr) = std::env::var("IRNUMA_METRICS") {
        if !addr.is_empty() {
            match export::serve(addr.as_str()) {
                Ok(server) => info!("serving telemetry on {}", server.addr()),
                Err(e) => eprintln!("warning: IRNUMA_METRICS={addr}: cannot bind: {e}"),
            }
        }
    }
    if let Ok(path) = std::env::var("IRNUMA_PROFILE") {
        if !path.is_empty() {
            let hz =
                std::env::var("IRNUMA_PROFILE_HZ").ok().and_then(|v| v.parse().ok()).unwrap_or(997);
            profile::start(&path, hz);
        }
    }
    ObsGuard { _priv: () }
}

/// Install a panic hook that flushes the trace sink before unwinding, so a
/// crashed (or `--fault`-injected) run leaves a complete JSONL file rather
/// than one truncated mid-line by the buffered writer. Wraps — and then
/// calls — the previously installed hook; idempotent ([`init`] calls it,
/// but embedders without `init` can too). The flush itself is wrapped in
/// `catch_unwind` so a poisoned sink can't turn one panic into an abort.
pub fn install_panic_flush_hook() {
    use std::sync::Once;
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let _ = std::panic::catch_unwind(flush_sink);
            prev(info);
        }));
    });
}

/// Flush metric snapshots into the trace (one event per metric), flush the
/// sink, and stop the profiler (writing its folded-stacks file) if one is
/// running. Idempotent; called automatically when an [`ObsGuard`] drops.
pub fn shutdown() {
    if let Some(path) = profile::stop_and_dump() {
        info!("wrote profile to {}", path.display());
    }
    alloc::refresh_mem_gauges();
    flush_metrics();
    flush_sink();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parses_case_insensitively() {
        assert_eq!(Level::parse("INFO"), Some(Level::Info));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("Debug"), Some(Level::Debug));
        assert_eq!(Level::parse("nope"), None);
    }

    #[test]
    fn level_ordering_matches_severity() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
    }
}
