//! Instrumentation macros. Every macro front-loads a single relaxed atomic
//! check (`trace_enabled` / `log_enabled`), so disabled instrumentation
//! costs one load and a predictable branch; with the crate's `off` feature
//! the check is a constant and the whole call site compiles out.

/// Open a span: `let _s = span!("train.epoch", epoch = e);`. Returns a
/// [`crate::SpanGuard`] that emits on drop (inert when all telemetry is
/// off). A live span feeds whichever subsystems are on: the trace sink,
/// the per-span-name latency aggregates, and the profiler stack.
#[macro_export]
macro_rules! span {
    ($name:expr $(, $key:ident = $val:expr)* $(,)?) => {
        if $crate::telemetry_enabled() {
            $crate::SpanGuard::new(
                $name,
                vec![$((stringify!($key), $crate::Value::from($val))),*],
            )
        } else {
            $crate::SpanGuard::inert()
        }
    };
}

/// Open a span under an explicitly captured parent — for work fanned out
/// across rayon workers: capture `let ctx = current_span();` (or
/// `TraceContext::capture()`) outside the `par_iter`, then
/// `let _s = span_under!(ctx, "dataset.region", idx = i);`. The child
/// inherits the parent's trace id and stacks correctly on its worker
/// thread.
#[macro_export]
macro_rules! span_under {
    ($ctx:expr, $name:expr $(, $key:ident = $val:expr)* $(,)?) => {
        if $crate::telemetry_enabled() {
            $crate::SpanGuard::under(
                $ctx,
                $name,
                vec![$((stringify!($key), $crate::Value::from($val))),*],
            )
        } else {
            $crate::SpanGuard::inert()
        }
    };
}

/// [`span_under!`] for *hot* fan-out loops: only live while a trace sink is
/// installed (`trace_enabled`), inert in stats-only / profiler-only modes.
/// Use for per-item worker spans inside `par_iter` bodies where the
/// per-item latency-histogram record would cost more than the serving
/// telemetry budget allows — explicit causal tracing opts into the cost,
/// the always-on metrics endpoint does not.
#[macro_export]
macro_rules! span_fanout {
    ($ctx:expr, $name:expr $(, $key:ident = $val:expr)* $(,)?) => {
        if $crate::trace_enabled() {
            $crate::SpanGuard::under(
                $ctx,
                $name,
                vec![$((stringify!($key), $crate::Value::from($val))),*],
            )
        } else {
            $crate::SpanGuard::inert()
        }
    };
}

/// Profiler-only frame marker for hot paths too cheap to span: pushes a
/// name onto this thread's profile stack while the sampling profiler runs,
/// costs one relaxed load otherwise. The interned id is cached per call
/// site. `let _f = profile_frame!("kernel.matmul");`
#[macro_export]
macro_rules! profile_frame {
    ($name:expr) => {
        if $crate::profiling_enabled() {
            static FRAME_ID: ::std::sync::OnceLock<u32> = ::std::sync::OnceLock::new();
            $crate::profile::FrameGuard::push(
                *FRAME_ID.get_or_init(|| $crate::profile::intern($name)),
            )
        } else {
            $crate::profile::FrameGuard::inert()
        }
    };
}

/// The counter named by a string literal, with the registry lookup cached
/// per call site: `counter!("infer.csr_build").inc(1);`.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::Counter> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::registry().counter($name))
    }};
}

/// The gauge named by a string literal (call-site cached).
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::Gauge> = ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::registry().gauge($name))
    }};
}

/// The histogram named by a string literal (call-site cached).
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::registry().histogram($name))
    }};
}

/// `format!`-style log line at `error` level.
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => {
        if $crate::log_enabled($crate::Level::Error) {
            $crate::log($crate::Level::Error, format!($($arg)*));
        }
    };
}

/// `format!`-style log line at `warn` level.
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        if $crate::log_enabled($crate::Level::Warn) {
            $crate::log($crate::Level::Warn, format!($($arg)*));
        }
    };
}

/// `format!`-style log line at `info` level (progress reporting).
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        if $crate::log_enabled($crate::Level::Info) {
            $crate::log($crate::Level::Info, format!($($arg)*));
        }
    };
}

/// `format!`-style log line at `debug` level.
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        if $crate::log_enabled($crate::Level::Debug) {
            $crate::log($crate::Level::Debug, format!($($arg)*));
        }
    };
}
