//! Lock-free metric primitives: monotonic counters, gauges, and fixed-bucket
//! log-scale histograms with quantile extraction.
//!
//! Histograms bucket `u64` samples (typically nanoseconds) on a log scale
//! with four sub-buckets per octave — relative quantile error is bounded by
//! ~12.5% anywhere in the 64-bit range, with 252 fixed buckets and no
//! allocation on the record path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub fn new() -> Counter {
        Counter::default()
    }

    #[inline]
    pub fn inc(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-value-wins gauge (stored as `f64` bits).
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge { bits: AtomicU64::new(0f64.to_bits()) }
    }
}

impl Gauge {
    pub fn new() -> Gauge {
        Gauge::default()
    }

    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    pub(crate) fn reset(&self) {
        self.set(0.0);
    }
}

/// Number of histogram buckets: values 0–3 exactly, then 4 sub-buckets per
/// power-of-two octave up to `u64::MAX`.
pub const NUM_BUCKETS: usize = 252;

/// Bucket index of a sample.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < 4 {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros() as u64; // >= 2
    let sub = (v >> (octave - 2)) & 3;
    ((octave - 1) * 4 + sub) as usize
}

/// Inclusive lower bound of bucket `i`.
pub fn bucket_lower(i: usize) -> u64 {
    if i < 4 {
        return i as u64;
    }
    let octave = i as u64 / 4 + 1;
    let sub = i as u64 % 4;
    (4 + sub) << (octave - 2)
}

/// Exclusive upper bound of bucket `i`.
pub fn bucket_upper(i: usize) -> u64 {
    if i + 1 >= NUM_BUCKETS {
        u64::MAX
    } else {
        bucket_lower(i + 1)
    }
}

/// Fixed-bucket log-scale histogram. All operations are relaxed atomics.
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a duration in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// A consistent-enough copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Immutable view of a histogram at one point in time.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    pub buckets: [u64; NUM_BUCKETS],
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
}

impl HistogramSnapshot {
    /// The `q`-quantile (`0.0..=1.0`) as the midpoint of the bucket holding
    /// the target rank, clamped to the observed `[min, max]`. Returns 0 for
    /// an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                let lo = bucket_lower(i) as f64;
                let hi = bucket_upper(i) as f64;
                let mid = lo + (hi - lo) / 2.0;
                return mid.clamp(self.min as f64, self.max as f64);
            }
        }
        self.max as f64
    }

    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_tile_the_u64_range() {
        // Small values get exact buckets.
        for v in 0..4u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lower(v as usize), v);
        }
        // Buckets are contiguous: upper(i) == lower(i+1), and each value
        // lands inside its bucket's [lower, upper) range.
        for i in 0..NUM_BUCKETS - 1 {
            assert_eq!(bucket_upper(i), bucket_lower(i + 1), "bucket {i}");
        }
        for v in [0, 1, 3, 4, 5, 7, 8, 15, 16, 1000, 1 << 20, u64::MAX / 2, u64::MAX] {
            let i = bucket_index(v);
            assert!(bucket_lower(i) <= v, "v={v} bucket {i}");
            if i + 1 < NUM_BUCKETS {
                assert!(v < bucket_upper(i), "v={v} bucket {i}");
            }
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn bucket_resolution_is_within_an_eighth() {
        // Sub-bucketing keeps the relative width of every bucket ≤ 1/4 of
        // its lower bound (12.5% max midpoint error).
        for i in 8..NUM_BUCKETS - 1 {
            let lo = bucket_lower(i);
            let hi = bucket_upper(i);
            assert!(hi - lo <= lo / 4, "bucket {i}: [{lo},{hi})");
        }
    }
}
