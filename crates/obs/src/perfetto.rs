//! Chrome/Perfetto trace-event export.
//!
//! [`to_chrome_trace`] renders a set of [`SpanRecord`]s as a JSON object in
//! the Trace Event Format (the `{"traceEvents":[...]}` flavour), loadable
//! in `ui.perfetto.dev` or `chrome://tracing`:
//!
//! * every span becomes one complete (`"ph":"X"`) event, laid out on its
//!   emitting thread's track (`tid`), grouped per trace (`pid` — one
//!   process row per `trace_id`, so concurrent traces don't interleave);
//! * every cross-thread parent→child edge (a rayon fan-out) becomes a flow
//!   arrow: a `"ph":"s"` start on the parent's thread and a matching
//!   `"ph":"f"` finish at the child's begin, so the UI draws the causal
//!   hand-off between worker tracks;
//! * metadata (`"ph":"M"`) events name the per-trace process rows and the
//!   thread tracks.
//!
//! Timestamps are rebased to the earliest span start and converted to the
//! format's microsecond unit with nanosecond fractions preserved, so the
//! viewer opens at t=0 with full precision.

use crate::tree::SpanRecord;
use crate::value::write_json_string;
use std::fmt::Write as _;

/// Render `spans` as a Chrome trace-event JSON object. Records are laid
/// out per (trace, thread); `flows` arrows connect cross-thread fan-out
/// edges. Returns `{"traceEvents":[]}` for an empty input.
pub fn to_chrome_trace(spans: &[SpanRecord]) -> String {
    let t0 = spans.iter().map(|s| s.start_ns).min().unwrap_or(0);
    let us = |ns: u64| ns.saturating_sub(t0) as f64 / 1e3;

    // Stable small pid per trace id, in order of first appearance.
    let mut pids: Vec<u64> = Vec::new();
    let pid_of = |trace_id: u64, pids: &mut Vec<u64>| -> usize {
        match pids.iter().position(|&t| t == trace_id) {
            Some(i) => i + 1,
            None => {
                pids.push(trace_id);
                pids.len()
            }
        }
    };

    let mut events: Vec<String> = Vec::with_capacity(spans.len() * 2 + 8);
    let by_id: std::collections::HashMap<u64, &SpanRecord> =
        spans.iter().map(|s| (s.span_id, s)).collect();
    let mut tracks: std::collections::BTreeSet<(usize, u64)> = std::collections::BTreeSet::new();

    for s in spans {
        let pid = pid_of(s.trace_id, &mut pids);
        tracks.insert((pid, s.thread));
        let mut e = String::with_capacity(160);
        e.push_str("{\"name\":");
        write_json_string(&s.name, &mut e);
        let _ = write!(
            e,
            ",\"cat\":\"span\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":{},\"tid\":{}",
            us(s.start_ns),
            s.dur_ns as f64 / 1e3,
            pid,
            s.thread
        );
        let _ = write!(
            e,
            ",\"args\":{{\"trace_id\":\"{:016x}\",\"span_id\":{},\"parent_id\":{}",
            s.trace_id, s.span_id, s.parent_id
        );
        for (k, v) in &s.args {
            e.push(',');
            write_json_string(k, &mut e);
            e.push(':');
            write_json_string(v, &mut e);
        }
        e.push_str("}}");
        events.push(e);

        // Fan-out edge: the parent handed work to a different thread.
        if let Some(parent) = by_id.get(&s.parent_id) {
            if parent.thread != s.thread {
                // Bind the arrow to the child's start, clamped inside the
                // parent so the start anchor lands on the parent's slice.
                let hand_off = s.start_ns.clamp(parent.start_ns, parent.end_ns());
                let mut fs = String::with_capacity(120);
                let _ = write!(
                    fs,
                    "{{\"name\":\"fanout\",\"cat\":\"fanout\",\"ph\":\"s\",\"id\":{},\
                     \"ts\":{:.3},\"pid\":{},\"tid\":{}}}",
                    s.span_id,
                    us(hand_off),
                    pid,
                    parent.thread
                );
                events.push(fs);
                let mut ff = String::with_capacity(120);
                let _ = write!(
                    ff,
                    "{{\"name\":\"fanout\",\"cat\":\"fanout\",\"ph\":\"f\",\"bp\":\"e\",\
                     \"id\":{},\"ts\":{:.3},\"pid\":{},\"tid\":{}}}",
                    s.span_id,
                    us(s.start_ns),
                    pid,
                    s.thread
                );
                events.push(ff);
            }
        }
    }

    // Name the process rows (one per trace) and thread tracks.
    for (i, trace_id) in pids.iter().enumerate() {
        let mut m = String::with_capacity(96);
        let _ = write!(
            m,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\
             \"args\":{{\"name\":\"trace {:016x}\"}}}}",
            i + 1,
            trace_id
        );
        events.push(m);
    }
    for (pid, tid) in tracks {
        let mut m = String::with_capacity(96);
        let _ = write!(
            m,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
             \"args\":{{\"name\":\"thread {tid}\"}}}}"
        );
        events.push(m);
    }

    let mut out = String::with_capacity(events.iter().map(|e| e.len() + 1).sum::<usize>() + 64);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(e);
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(span_id: u64, parent_id: u64, thread: u64, start: u64, dur: u64) -> SpanRecord {
        SpanRecord {
            trace_id: 0xabc,
            span_id,
            parent_id,
            thread,
            name: format!("s{span_id}"),
            start_ns: start,
            dur_ns: dur,
            args: vec![("note".into(), "x\"y".into())],
        }
    }

    #[test]
    fn renders_complete_events_and_flow_arrows() {
        let out = to_chrome_trace(&[rec(1, 0, 1, 1_000, 500), rec(2, 1, 7, 1_100, 200)]);
        assert!(out.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(out.contains("\"ph\":\"X\""), "{out}");
        // Cross-thread child (thread 1 -> 7): one flow start + finish pair.
        assert!(out.contains("\"ph\":\"s\""), "{out}");
        assert!(out.contains("\"ph\":\"f\""), "{out}");
        assert!(out.contains("\"tid\":7"), "{out}");
        // Rebased to the earliest start: the root lands at ts 0.
        assert!(out.contains("\"ts\":0.000"), "{out}");
        // Args escape properly.
        assert!(out.contains("x\\\"y"), "{out}");
        // Metadata rows.
        assert!(out.contains("process_name"), "{out}");
        assert!(out.contains("thread_name"), "{out}");
        // Balanced braces: structural sanity of the hand-rolled writer.
        assert_eq!(out.matches('{').count(), out.matches('}').count(), "{out}");
    }

    #[test]
    fn same_thread_children_draw_no_arrows() {
        let out = to_chrome_trace(&[rec(1, 0, 1, 0, 100), rec(2, 1, 1, 10, 50)]);
        assert!(!out.contains("\"ph\":\"s\""), "{out}");
    }

    #[test]
    fn empty_input_is_valid_json() {
        assert_eq!(to_chrome_trace(&[]), "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}");
    }
}
