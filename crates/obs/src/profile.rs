//! Sampling wall-clock profiler over the span/frame stack.
//!
//! Every thread that opens a span (or a [`crate::profile_frame!`] marker)
//! while profiling is on maintains a lock-free stack of interned frame ids.
//! A background sampler thread wakes at a fixed rate (`IRNUMA_PROFILE_HZ`,
//! default 997 Hz), walks every registered thread's stack, and accumulates
//! the joined frame names into a folded-stacks map. [`stop_and_dump`] writes
//! the accumulated samples in the flamegraph-compatible folded format — one
//! `frame;frame;frame count` line per distinct stack:
//!
//! ```text
//! train.fit;train.epoch;kernel.matmul 4821
//! ```
//!
//! The push/pop path is two relaxed atomic stores on a per-thread cache
//! line; sampling reads may tear against a concurrent push/pop, which at
//! worst misattributes that one sample — acceptable noise for a statistical
//! profiler. Frame ids are stored `+1` so a torn read of a half-initialized
//! slot (0) is recognizably empty.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Deepest stack the profiler records; deeper frames are counted for
/// push/pop balance but truncated out of samples.
const MAX_DEPTH: usize = 64;

struct Intern {
    ids: HashMap<&'static str, u32>,
    names: Vec<&'static str>,
}

fn intern_table() -> &'static Mutex<Intern> {
    static TABLE: OnceLock<Mutex<Intern>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(Intern { ids: HashMap::new(), names: Vec::new() }))
}

/// Intern a frame name, returning its stable id. Hot call sites cache the
/// id in a `OnceLock` (see [`crate::profile_frame!`]).
pub fn intern(name: &'static str) -> u32 {
    let mut t = match intern_table().lock() {
        Ok(g) => g,
        Err(poison) => poison.into_inner(),
    };
    if let Some(&id) = t.ids.get(name) {
        return id;
    }
    let id = t.names.len() as u32;
    t.names.push(name);
    t.ids.insert(name, id);
    id
}

struct ThreadStack {
    /// Interned frame ids, stored `id + 1` (0 = empty slot).
    frames: [AtomicU32; MAX_DEPTH],
    depth: AtomicUsize,
}

impl ThreadStack {
    fn new() -> ThreadStack {
        ThreadStack {
            frames: std::array::from_fn(|_| AtomicU32::new(0)),
            depth: AtomicUsize::new(0),
        }
    }
}

fn thread_registry() -> &'static Mutex<Vec<Arc<ThreadStack>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<ThreadStack>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static TLS_STACK: std::cell::RefCell<Option<Arc<ThreadStack>>> =
        const { std::cell::RefCell::new(None) };
}

fn with_thread_stack(f: impl FnOnce(&ThreadStack)) {
    TLS_STACK.with(|slot| {
        let mut slot = slot.borrow_mut();
        let stack = slot.get_or_insert_with(|| {
            let s = Arc::new(ThreadStack::new());
            match thread_registry().lock() {
                Ok(mut r) => r.push(s.clone()),
                Err(poison) => poison.into_inner().push(s.clone()),
            }
            s
        });
        f(stack);
    });
}

/// Push an interned frame id onto this thread's profile stack.
pub fn push_frame(id: u32) {
    with_thread_stack(|s| {
        let d = s.depth.load(Ordering::Relaxed);
        if d < MAX_DEPTH {
            s.frames[d].store(id + 1, Ordering::Relaxed);
        }
        s.depth.store(d + 1, Ordering::Release);
    });
}

/// Pop the innermost frame pushed by [`push_frame`].
pub fn pop_frame() {
    with_thread_stack(|s| {
        let d = s.depth.load(Ordering::Relaxed);
        if d > 0 {
            s.depth.store(d - 1, Ordering::Release);
            if d <= MAX_DEPTH {
                s.frames[d - 1].store(0, Ordering::Relaxed);
            }
        }
    });
}

/// Span-open hook: intern (uncached — spans are coarse) and push.
pub(crate) fn push_span_frame(name: &'static str) {
    push_frame(intern(name));
}

/// Span-drop hook.
pub(crate) fn pop_span_frame() {
    pop_frame();
}

/// RAII frame marker for hot paths, via [`crate::profile_frame!`].
pub struct FrameGuard {
    active: bool,
}

impl FrameGuard {
    pub fn push(id: u32) -> FrameGuard {
        push_frame(id);
        FrameGuard { active: true }
    }

    pub fn inert() -> FrameGuard {
        FrameGuard { active: false }
    }
}

impl Drop for FrameGuard {
    fn drop(&mut self) {
        if self.active {
            pop_frame();
        }
    }
}

/// Take one sample of every registered thread's stack into `samples`.
/// Returns the number of non-empty stacks sampled.
fn sample_once(samples: &mut HashMap<String, u64>) -> usize {
    let stacks: Vec<Arc<ThreadStack>> = match thread_registry().lock() {
        Ok(r) => r.clone(),
        Err(poison) => poison.into_inner().clone(),
    };
    let names: Vec<&'static str> = {
        let t = match intern_table().lock() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        };
        t.names.clone()
    };
    let mut sampled = 0;
    let mut key = String::new();
    for stack in &stacks {
        let depth = stack.depth.load(Ordering::Acquire).min(MAX_DEPTH);
        if depth == 0 {
            continue;
        }
        key.clear();
        for i in 0..depth {
            let raw = stack.frames[i].load(Ordering::Relaxed);
            if raw == 0 {
                break; // torn read of a slot mid-update; truncate the sample
            }
            let Some(name) = names.get((raw - 1) as usize) else { break };
            if !key.is_empty() {
                key.push(';');
            }
            key.push_str(name);
        }
        if key.is_empty() {
            continue;
        }
        *samples.entry(key.clone()).or_insert(0) += 1;
        sampled += 1;
    }
    sampled
}

struct Profiler {
    stop: Arc<AtomicBool>,
    join: std::thread::JoinHandle<HashMap<String, u64>>,
    path: PathBuf,
}

fn profiler_slot() -> &'static Mutex<Option<Profiler>> {
    static SLOT: OnceLock<Mutex<Option<Profiler>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Start the background sampler writing to `path` on [`stop_and_dump`],
/// sampling at `hz`. Enables the profiling flag (spans begin maintaining
/// the per-thread stacks). A second start replaces the destination but
/// keeps the running sampler.
pub fn start(path: impl AsRef<Path>, hz: u32) {
    let mut slot = match profiler_slot().lock() {
        Ok(g) => g,
        Err(poison) => poison.into_inner(),
    };
    crate::sink::set_flag(crate::sink::FLAG_PROFILE, true);
    if let Some(p) = slot.as_mut() {
        p.path = path.as_ref().to_path_buf();
        return;
    }
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = stop.clone();
    let interval = Duration::from_secs_f64(1.0 / hz.clamp(1, 100_000) as f64);
    let join = std::thread::Builder::new()
        .name("irnuma-profiler".into())
        .spawn(move || {
            let mut samples = HashMap::new();
            while !stop2.load(Ordering::Relaxed) {
                let n = sample_once(&mut samples);
                if n > 0 {
                    crate::registry().counter("profile.samples").inc(n as u64);
                }
                std::thread::sleep(interval);
            }
            samples
        })
        .expect("spawn profiler thread");
    *slot = Some(Profiler { stop, join, path: path.as_ref().to_path_buf() });
}

/// Stop the sampler and write the folded-stacks file. Returns the path
/// written, or `None` when no profiler was running. Idempotent.
pub fn stop_and_dump() -> Option<PathBuf> {
    let profiler = {
        let mut slot = match profiler_slot().lock() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        };
        slot.take()?
    };
    crate::sink::set_flag(crate::sink::FLAG_PROFILE, false);
    profiler.stop.store(true, Ordering::Relaxed);
    let samples = profiler.join.join().unwrap_or_default();
    let mut lines: Vec<(&String, &u64)> = samples.iter().collect();
    lines.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
    let mut body = String::new();
    for (stack, count) in lines {
        body.push_str(stack);
        body.push(' ');
        body.push_str(&count.to_string());
        body.push('\n');
    }
    if std::fs::write(&profiler.path, body).is_err() {
        eprintln!("warning: cannot write profile to {}", profiler.path.display());
        return None;
    }
    Some(profiler.path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_and_dense() {
        let a = intern("profile.test.a");
        let b = intern("profile.test.b");
        assert_ne!(a, b);
        assert_eq!(intern("profile.test.a"), a);
    }

    #[test]
    fn push_pop_and_sampling_round_trip() {
        let a = intern("pp.outer");
        let b = intern("pp.inner");
        push_frame(a);
        push_frame(b);
        let mut samples = HashMap::new();
        // Sampling from this same thread sees this thread's own stack.
        assert!(sample_once(&mut samples) >= 1);
        assert!(
            samples.keys().any(|k| k.contains("pp.outer;pp.inner")),
            "stack joins outer-to-inner: {samples:?}"
        );
        pop_frame();
        pop_frame();
        let mut after = HashMap::new();
        sample_once(&mut after);
        assert!(
            !after.keys().any(|k| k.contains("pp.outer")),
            "popped frames leave the stack: {after:?}"
        );
    }

    #[test]
    fn overflow_beyond_max_depth_stays_balanced() {
        let id = intern("pp.deep");
        for _ in 0..MAX_DEPTH + 8 {
            push_frame(id);
        }
        for _ in 0..MAX_DEPTH + 8 {
            pop_frame();
        }
        let mut samples = HashMap::new();
        sample_once(&mut samples);
        assert!(!samples.keys().any(|k| k.contains("pp.deep")), "{samples:?}");
    }
}
