//! The lock-sharded global metric registry.
//!
//! Metric handles are interned once and leaked (`&'static`), so hot call
//! sites can cache the reference in a `OnceLock` (which is exactly what the
//! [`crate::counter!`]/[`crate::gauge!`]/[`crate::histogram!`] macros do)
//! and never touch a lock again. Name → handle lookups shard across 16
//! mutexes by name hash to keep dynamic-name registration cheap under
//! rayon-wide concurrency.

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
use crate::sink::{emit, Event};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Mutex, OnceLock};

const SHARDS: usize = 16;

enum Entry {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

/// The global registry; obtain it through [`registry`].
pub struct Registry {
    shards: [Mutex<HashMap<String, Entry>>; SHARDS],
    /// Per-span-name latency histograms (nanoseconds), fed by span drops
    /// while live stats aggregation is on. Kept in their own namespace so
    /// span latencies never collide with user metrics of the same name.
    span_shards: [Mutex<HashMap<String, &'static Histogram>>; SHARDS],
}

/// One metric's current state, as captured by [`Registry::snapshot`].
pub enum MetricSnapshot {
    Counter(u64),
    Gauge(f64),
    Histogram(Box<HistogramSnapshot>),
}

/// Poison-tolerant lock: a kind-mismatch panic in one thread must not take
/// the whole shard down with it (insertions complete before any panic, so
/// the map is consistent).
fn lock_shard(
    shard: &Mutex<HashMap<String, Entry>>,
) -> std::sync::MutexGuard<'_, HashMap<String, Entry>> {
    match shard.lock() {
        Ok(g) => g,
        Err(poison) => poison.into_inner(),
    }
}

fn shard_of(name: &str) -> usize {
    let mut h = DefaultHasher::new();
    name.hash(&mut h);
    h.finish() as usize % SHARDS
}

impl Registry {
    fn new() -> Registry {
        Registry {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            span_shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
        }
    }

    /// The counter named `name` (registered on first use).
    pub fn counter(&self, name: &str) -> &'static Counter {
        let mut map = lock_shard(&self.shards[shard_of(name)]);
        match map
            .entry(name.to_string())
            .or_insert_with(|| Entry::Counter(Box::leak(Box::new(Counter::new()))))
        {
            Entry::Counter(c) => c,
            _ => panic!("metric `{name}` is already registered with a different kind"),
        }
    }

    /// The gauge named `name` (registered on first use).
    pub fn gauge(&self, name: &str) -> &'static Gauge {
        let mut map = lock_shard(&self.shards[shard_of(name)]);
        match map
            .entry(name.to_string())
            .or_insert_with(|| Entry::Gauge(Box::leak(Box::new(Gauge::new()))))
        {
            Entry::Gauge(g) => g,
            _ => panic!("metric `{name}` is already registered with a different kind"),
        }
    }

    /// The histogram named `name` (registered on first use).
    pub fn histogram(&self, name: &str) -> &'static Histogram {
        let mut map = lock_shard(&self.shards[shard_of(name)]);
        match map
            .entry(name.to_string())
            .or_insert_with(|| Entry::Histogram(Box::leak(Box::new(Histogram::new()))))
        {
            Entry::Histogram(h) => h,
            _ => panic!("metric `{name}` is already registered with a different kind"),
        }
    }

    /// The span-latency histogram named `name` (registered on first use).
    /// Lives in a namespace separate from [`Registry::histogram`].
    pub fn span_hist(&self, name: &str) -> &'static Histogram {
        let shard = &self.span_shards[shard_of(name)];
        let mut map = match shard.lock() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        };
        map.entry(name.to_string()).or_insert_with(|| Box::leak(Box::new(Histogram::new())))
    }

    /// Every span name's latency histogram snapshot, sorted by name. Only
    /// spans closed while stats aggregation was on appear here.
    pub fn snapshot_spans(&self) -> Vec<(String, HistogramSnapshot)> {
        let mut out = Vec::new();
        for shard in &self.span_shards {
            let map = match shard.lock() {
                Ok(g) => g,
                Err(poison) => poison.into_inner(),
            };
            for (name, h) in map.iter() {
                out.push((name.clone(), h.snapshot()));
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Every registered metric's current state, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, MetricSnapshot)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let map = lock_shard(shard);
            for (name, entry) in map.iter() {
                let snap = match entry {
                    Entry::Counter(c) => MetricSnapshot::Counter(c.get()),
                    Entry::Gauge(g) => MetricSnapshot::Gauge(g.get()),
                    Entry::Histogram(h) => MetricSnapshot::Histogram(Box::new(h.snapshot())),
                };
                out.push((name.clone(), snap));
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Zero every metric's value. Handles stay registered and valid (call
    /// sites cache `&'static` references), only the stored values reset.
    pub fn reset(&self) {
        for shard in &self.shards {
            let map = lock_shard(shard);
            for entry in map.values() {
                match entry {
                    Entry::Counter(c) => c.reset(),
                    Entry::Gauge(g) => g.reset(),
                    Entry::Histogram(h) => h.reset(),
                }
            }
        }
        for shard in &self.span_shards {
            let map = match shard.lock() {
                Ok(g) => g,
                Err(poison) => poison.into_inner(),
            };
            for h in map.values() {
                h.reset();
            }
        }
    }
}

/// The process-global metric registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

/// Emit every registered metric's current value to the trace sink: one
/// `counter`/`gauge`/`hist` event per metric. Histogram events carry count,
/// sum, min, max, mean, and p50/p90/p99. No-op when tracing is disabled or
/// a metric has recorded nothing.
pub fn flush_metrics() {
    if !crate::trace_enabled() {
        return;
    }
    for (name, snap) in registry().snapshot() {
        match snap {
            MetricSnapshot::Counter(v) => {
                if v > 0 {
                    emit(&Event::now("counter", name).field("value", v));
                }
            }
            MetricSnapshot::Gauge(v) => emit(&Event::now("gauge", name).field("value", v)),
            MetricSnapshot::Histogram(h) => {
                if h.count == 0 {
                    continue;
                }
                emit(
                    &Event::now("hist", name)
                        .field("count", h.count)
                        .field("sum", h.sum)
                        .field("min", h.min)
                        .field("max", h.max)
                        .field("mean", h.mean())
                        .field("p50", h.p50())
                        .field("p90", h.p90())
                        .field("p99", h.p99()),
                );
            }
        }
    }
}
