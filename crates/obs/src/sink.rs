//! Trace events and where they go.
//!
//! Every emitted line follows one stable schema:
//!
//! ```json
//! {"ts_ns":<u64>,"kind":"span|log|counter|gauge|hist","name":"...","fields":{...}}
//! ```
//!
//! * `ts_ns` — nanoseconds since the UNIX epoch at emission time;
//! * `kind` — the event class;
//! * `name` — span/metric name or log message;
//! * `fields` — flat object of structured values ([`Value`]).
//!
//! Sinks are process-global: [`set_sink`] installs one, and the hot-path
//! check [`trace_enabled`] is a single relaxed atomic load so uninstrumented
//! runs pay (almost) nothing.

use crate::value::{write_json_string, Value};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::{SystemTime, UNIX_EPOCH};

/// One trace event (a JSONL line once serialized).
#[derive(Debug, Clone)]
pub struct Event {
    pub ts_ns: u64,
    pub kind: &'static str,
    pub name: String,
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    pub fn now(kind: &'static str, name: impl Into<String>) -> Event {
        Event { ts_ns: epoch_ns(), kind, name: name.into(), fields: Vec::new() }
    }

    pub fn field(mut self, key: &'static str, value: impl Into<Value>) -> Event {
        self.fields.push((key, value.into()));
        self
    }

    /// Serialize as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.name.len() + 24 * self.fields.len());
        let _ = std::fmt::Write::write_fmt(
            &mut out,
            format_args!("{{\"ts_ns\":{},\"kind\":\"{}\",\"name\":", self.ts_ns, self.kind),
        );
        write_json_string(&self.name, &mut out);
        out.push_str(",\"fields\":{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(k, &mut out);
            out.push(':');
            v.write_json(&mut out);
        }
        out.push_str("}}");
        out
    }

    /// Look up a field by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

/// Nanoseconds since the UNIX epoch (saturating; good until the year 2554).
pub fn epoch_ns() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// Destination for trace events.
pub trait Sink: Send + Sync {
    fn emit(&self, event: &Event);
    fn flush(&self) {}
}

/// Appends one JSON object per line to a buffered file.
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<JsonlSink> {
        let file = File::create(path)?;
        Ok(JsonlSink { writer: Mutex::new(BufWriter::new(file)) })
    }
}

impl Sink for JsonlSink {
    fn emit(&self, event: &Event) {
        let line = event.to_json();
        let mut w = self.writer.lock().expect("jsonl writer lock");
        let _ = w.write_all(line.as_bytes());
        let _ = w.write_all(b"\n");
    }

    fn flush(&self) {
        let _ = self.writer.lock().expect("jsonl writer lock").flush();
    }
}

/// Collects events in memory — the test sink.
#[derive(Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    pub fn new() -> Arc<MemorySink> {
        Arc::new(MemorySink::default())
    }

    /// A copy of everything emitted so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("memory sink lock").clone()
    }

    pub fn clear(&self) {
        self.events.lock().expect("memory sink lock").clear();
    }
}

impl Sink for MemorySink {
    fn emit(&self, event: &Event) {
        self.events.lock().expect("memory sink lock").push(event.clone());
    }
}

static TRACE_ON: AtomicBool = AtomicBool::new(false);

fn sink_slot() -> &'static RwLock<Option<Arc<dyn Sink>>> {
    static SLOT: OnceLock<RwLock<Option<Arc<dyn Sink>>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

/// Whether a trace sink is installed. One relaxed load; with the `off`
/// feature this is a constant `false` and instrumentation compiles out.
#[inline(always)]
pub fn trace_enabled() -> bool {
    if cfg!(feature = "off") {
        return false;
    }
    TRACE_ON.load(Ordering::Relaxed)
}

/// Install the process-global trace sink (replacing any previous one).
pub fn set_sink(sink: Arc<dyn Sink>) {
    *sink_slot().write().expect("sink lock") = Some(sink);
    TRACE_ON.store(!cfg!(feature = "off"), Ordering::Relaxed);
}

/// Remove the global sink (flushing it first).
pub fn clear_sink() {
    let prev = sink_slot().write().expect("sink lock").take();
    TRACE_ON.store(false, Ordering::Relaxed);
    if let Some(s) = prev {
        s.flush();
    }
}

/// Send an event to the installed sink, if any.
pub fn emit(event: &Event) {
    if !trace_enabled() {
        return;
    }
    let sink = sink_slot().read().expect("sink lock").clone();
    if let Some(s) = sink {
        s.emit(event);
    }
}

/// Flush the installed sink, if any.
pub fn flush_sink() {
    let sink = sink_slot().read().expect("sink lock").clone();
    if let Some(s) = sink {
        s.flush();
    }
}
