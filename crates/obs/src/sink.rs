//! Trace events and where they go.
//!
//! Every emitted line follows one stable schema:
//!
//! ```json
//! {"ts_ns":<u64>,"kind":"span|log|counter|gauge|hist","name":"...","fields":{...}}
//! ```
//!
//! * `ts_ns` — nanoseconds since the UNIX epoch at emission time;
//! * `kind` — the event class;
//! * `name` — span/metric name or log message;
//! * `fields` — flat object of structured values ([`Value`]).
//!
//! Sinks are process-global: [`set_sink`] installs one, and the hot-path
//! check [`trace_enabled`] is a single relaxed atomic load so uninstrumented
//! runs pay (almost) nothing.

use crate::value::{write_json_string, Value};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::{SystemTime, UNIX_EPOCH};

/// One trace event (a JSONL line once serialized).
#[derive(Debug, Clone)]
pub struct Event {
    pub ts_ns: u64,
    pub kind: &'static str,
    pub name: String,
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    pub fn now(kind: &'static str, name: impl Into<String>) -> Event {
        Event { ts_ns: epoch_ns(), kind, name: name.into(), fields: Vec::new() }
    }

    pub fn field(mut self, key: &'static str, value: impl Into<Value>) -> Event {
        self.fields.push((key, value.into()));
        self
    }

    /// Serialize as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.name.len() + 24 * self.fields.len());
        let _ = std::fmt::Write::write_fmt(
            &mut out,
            format_args!("{{\"ts_ns\":{},\"kind\":\"{}\",\"name\":", self.ts_ns, self.kind),
        );
        write_json_string(&self.name, &mut out);
        out.push_str(",\"fields\":{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(k, &mut out);
            out.push(':');
            v.write_json(&mut out);
        }
        out.push_str("}}");
        out
    }

    /// Look up a field by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

/// Nanoseconds since the UNIX epoch (saturating; good until the year 2554).
pub fn epoch_ns() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// Destination for trace events.
pub trait Sink: Send + Sync {
    fn emit(&self, event: &Event);
    fn flush(&self) {}
}

/// Appends one JSON object per line to a buffered file.
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<JsonlSink> {
        let file = File::create(path)?;
        Ok(JsonlSink { writer: Mutex::new(BufWriter::new(file)) })
    }
}

impl Sink for JsonlSink {
    fn emit(&self, event: &Event) {
        let line = event.to_json();
        // Poison-tolerant: a panic on another thread must not silence the
        // trace (and the panic-hook flush must still work afterwards).
        let mut w = self.writer.lock().unwrap_or_else(|p| p.into_inner());
        let _ = w.write_all(line.as_bytes());
        let _ = w.write_all(b"\n");
    }

    fn flush(&self) {
        let _ = self.writer.lock().unwrap_or_else(|p| p.into_inner()).flush();
    }
}

/// Collects events in memory — the test sink.
#[derive(Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    pub fn new() -> Arc<MemorySink> {
        Arc::new(MemorySink::default())
    }

    /// A copy of everything emitted so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("memory sink lock").clone()
    }

    pub fn clear(&self) {
        self.events.lock().expect("memory sink lock").clear();
    }
}

impl Sink for MemorySink {
    fn emit(&self, event: &Event) {
        self.events.lock().expect("memory sink lock").push(event.clone());
    }
}

/// Telemetry mode bits, packed into one byte so every fast-path check is a
/// single relaxed load of [`FLAGS`] regardless of how many subsystems are on.
pub(crate) const FLAG_TRACE: u8 = 1 << 0;
pub(crate) const FLAG_STATS: u8 = 1 << 1;
pub(crate) const FLAG_PROFILE: u8 = 1 << 2;

static FLAGS: AtomicU8 = AtomicU8::new(0);

fn sink_slot() -> &'static RwLock<Option<Arc<dyn Sink>>> {
    static SLOT: OnceLock<RwLock<Option<Arc<dyn Sink>>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

#[inline(always)]
fn flags() -> u8 {
    if cfg!(feature = "off") {
        return 0;
    }
    FLAGS.load(Ordering::Relaxed)
}

pub(crate) fn set_flag(flag: u8, on: bool) {
    if on {
        FLAGS.fetch_or(flag, Ordering::Relaxed);
    } else {
        FLAGS.fetch_and(!flag, Ordering::Relaxed);
    }
}

/// Whether a trace sink is installed. One relaxed load; with the `off`
/// feature this is a constant `false` and instrumentation compiles out.
#[inline(always)]
pub fn trace_enabled() -> bool {
    flags() & FLAG_TRACE != 0
}

/// Whether live stats aggregation is on (per-span-name latency histograms
/// feeding [`crate::TelemetrySnapshot`], enabled by the metrics endpoint).
#[inline(always)]
pub fn stats_enabled() -> bool {
    flags() & FLAG_STATS != 0
}

/// Whether the sampling profiler is running (span opens/closes maintain the
/// per-thread profile stack).
#[inline(always)]
pub fn profiling_enabled() -> bool {
    flags() & FLAG_PROFILE != 0
}

/// Whether any telemetry subsystem wants spans opened: a trace sink, live
/// stats aggregation, or the sampling profiler. Still one relaxed load —
/// this is the check the `span!` macros front-load.
#[inline(always)]
pub fn telemetry_enabled() -> bool {
    flags() != 0
}

/// Turn live stats aggregation on or off (normally done by
/// [`crate::export::serve`] / `IRNUMA_METRICS`, but tests and embedders can
/// flip it directly).
pub fn set_stats_enabled(on: bool) {
    set_flag(FLAG_STATS, on);
}

/// Install the process-global trace sink (replacing any previous one).
pub fn set_sink(sink: Arc<dyn Sink>) {
    *sink_slot().write().expect("sink lock") = Some(sink);
    set_flag(FLAG_TRACE, true);
}

/// Remove the global sink (flushing it first).
pub fn clear_sink() {
    let prev = sink_slot().write().expect("sink lock").take();
    set_flag(FLAG_TRACE, false);
    if let Some(s) = prev {
        s.flush();
    }
}

/// Send an event to the installed sink, if any.
pub fn emit(event: &Event) {
    if !trace_enabled() {
        return;
    }
    let sink = sink_slot().read().expect("sink lock").clone();
    if let Some(s) = sink {
        s.emit(event);
    }
}

/// Flush the installed sink, if any.
pub fn flush_sink() {
    let sink = sink_slot().read().expect("sink lock").clone();
    if let Some(s) = sink {
        s.flush();
    }
}
