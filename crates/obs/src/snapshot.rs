//! Point-in-time telemetry snapshots.
//!
//! [`TelemetrySnapshot::capture`] freezes every registered counter, gauge,
//! and histogram plus the per-span-name latency aggregates into one value,
//! serializable two ways:
//!
//! * [`TelemetrySnapshot::to_json`] — the wire format served on `/json` by
//!   the export endpoint and consumed by `irnuma top`;
//! * [`TelemetrySnapshot::to_prometheus`] — Prometheus text exposition
//!   (version 0.0.4) served on `/metrics`, with histograms and span
//!   latencies rendered as summaries with p50/p90/p99 quantiles.
//!
//! Capture is lock-sharded reads of relaxed atomics: writers are never
//! blocked for longer than one shard lookup, and each metric's value is a
//! single consistent load (histograms snapshot bucket-by-bucket, so a
//! histogram under concurrent writes may be mid-record; counts are
//! monotonic and never invented).

use crate::metrics::HistogramSnapshot;
use crate::registry::MetricSnapshot;
use crate::value::write_json_string;
use std::fmt::Write as _;

/// Everything the registry held at one instant.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySnapshot {
    /// Nanoseconds since the UNIX epoch at capture time.
    pub ts_ns: u64,
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub hists: Vec<(String, HistogramSnapshot)>,
    /// Per-span-name latency histograms (nanoseconds), fed by span drops
    /// while live stats aggregation is on.
    pub spans: Vec<(String, HistogramSnapshot)>,
}

impl TelemetrySnapshot {
    /// Capture the current state of the global registry (refreshing the
    /// `mem.*` gauges first when allocation tracking is live).
    pub fn capture() -> TelemetrySnapshot {
        crate::alloc::refresh_mem_gauges();
        let mut snap = TelemetrySnapshot { ts_ns: crate::epoch_ns(), ..Default::default() };
        for (name, m) in crate::registry().snapshot() {
            match m {
                MetricSnapshot::Counter(v) => snap.counters.push((name, v)),
                MetricSnapshot::Gauge(v) => snap.gauges.push((name, v)),
                MetricSnapshot::Histogram(h) => snap.hists.push((name, *h)),
            }
        }
        snap.spans = crate::registry().snapshot_spans();
        snap
    }

    /// Serialize as one JSON object (the `/json` wire format).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        let _ = write!(out, "{{\"ts_ns\":{},\"counters\":{{", self.ts_ns);
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(name, &mut out);
            let _ = write!(out, ":{v}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(name, &mut out);
            if v.is_finite() {
                let _ = write!(out, ":{v}");
            } else {
                out.push_str(":null");
            }
        }
        out.push_str("},\"hists\":{");
        Self::write_hist_group(&self.hists, &mut out);
        out.push_str("},\"spans\":{");
        Self::write_hist_group(&self.spans, &mut out);
        out.push_str("}}");
        out
    }

    fn write_hist_group(group: &[(String, HistogramSnapshot)], out: &mut String) {
        for (i, (name, h)) in group.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(name, out);
            let min = if h.count == 0 { 0 } else { h.min };
            let _ = write!(
                out,
                ":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{:.3},\
                 \"p50\":{:.1},\"p90\":{:.1},\"p99\":{:.1}}}",
                h.count,
                h.sum,
                min,
                h.max,
                h.mean(),
                h.p50(),
                h.p90(),
                h.p99()
            );
        }
    }

    /// Serialize as Prometheus text exposition (the `/metrics` format):
    /// counters and gauges as-is, histograms and span latencies as summaries
    /// with `quantile` labels plus `_sum`/`_count` series. Metric names are
    /// prefixed `irnuma_` and sanitized (`.` → `_`); every family carries
    /// `# HELP` (from the central [`metric_help`] table) and `# TYPE`
    /// lines so the output passes promtool-style linting.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(512);
        for (name, v) in &self.counters {
            let n = prom_name("irnuma_", name);
            let _ = writeln!(out, "# HELP {n} {}", metric_help(name));
            let _ = writeln!(out, "# TYPE {n} counter\n{n} {v}");
        }
        for (name, v) in &self.gauges {
            let n = prom_name("irnuma_", name);
            let _ = writeln!(out, "# HELP {n} {}", metric_help(name));
            let _ = writeln!(out, "# TYPE {n} gauge\n{n} {v}");
        }
        for (group, prefix, is_span) in
            [(&self.hists, "irnuma_", false), (&self.spans, "irnuma_span_", true)]
        {
            for (name, h) in group.iter() {
                let n = prom_name(prefix, name);
                if is_span {
                    let _ = writeln!(out, "# HELP {n} Wall-clock latency of span `{name}` (ns).");
                } else {
                    let _ = writeln!(out, "# HELP {n} {}", metric_help(name));
                }
                let _ = writeln!(out, "# TYPE {n} summary");
                for (q, v) in [("0.5", h.p50()), ("0.9", h.p90()), ("0.99", h.p99())] {
                    let _ = writeln!(out, "{n}{{quantile=\"{q}\"}} {v}");
                }
                let _ = writeln!(out, "{n}_sum {}\n{n}_count {}", h.sum, h.count);
            }
        }
        out
    }
}

/// Central metric-description table for `# HELP` lines: exact names first,
/// then subsystem prefixes, then a generic fallback — so every exported
/// family has a description without each call site registering one.
pub fn metric_help(name: &str) -> &'static str {
    match name {
        "train.batches" => "Optimizer steps taken (one per minibatch).",
        "train.fused_graphs" => "Graphs pushed through the fused forward+backward engine.",
        "train.loss" => "Mean training loss of the most recent epoch.",
        "infer.graphs" => "Graphs classified through the batched inference engine.",
        "infer.batch_ns" => "Latency of one batched inference call (ns).",
        "dataset.skipped" => "Regions dropped from a dataset build after retry.",
        "dataset.retried" => "Region builds retried after a first failure.",
        "dataset.shards_read" => "Dataset shards read by the streaming loader.",
        "dataset.decode_ns" => "Time spent decoding dataset shards into graphs (ns).",
        "loader.prefetch_stall_ns" => "Time the trainer blocked waiting on shard prefetch (ns).",
        "graph.builds" => "ProGraML-style region graphs constructed.",
        "sim.config.skipped" => "Simulated configurations skipped after a panic.",
        "store.write_bytes" => "Bytes durably written through the artifact store.",
        "store.fsync_ns" => "Latency of artifact-store fsync calls (ns).",
        "store.corruption_detected" => "Artifact reads rejected by checksum verification.",
        "export.requests" => "Requests served by the telemetry export endpoint.",
        "ml.ga_fitness_evals" => "GA fitness evaluations actually computed.",
        "ml.ga_fitness_cached" => "GA fitness evaluations resolved from the memo cache.",
        _ => match name.split_once('.').map(|(fam, _)| fam) {
            Some("train") => "Training-engine metric.",
            Some("infer") => "Inference-engine metric.",
            Some("dataset") => "Dataset-construction metric.",
            Some("loader") => "Streaming-loader metric.",
            Some("graph") => "Graph-construction metric.",
            Some("sim") => "Simulator metric.",
            Some("store") => "Artifact-store metric.",
            Some("mem") => "Allocation-tracking gauge (bytes).",
            Some("dispatch") => "Kernel-dispatch counter (see `irnuma report`).",
            Some("ml") => "Feature-selection / GA metric.",
            Some("export") => "Telemetry-export metric.",
            _ => "irnuma metric (no registered description).",
        },
    }
}

/// `prefix` + `name` with every non-`[a-zA-Z0-9_]` byte replaced by `_`.
fn prom_name(prefix: &str, name: &str) -> String {
    let mut out = String::with_capacity(prefix.len() + name.len());
    out.push_str(prefix);
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_sees_registered_metrics() {
        crate::registry().counter("snap.test.counter").inc(5);
        crate::registry().gauge("snap.test.gauge").set(1.25);
        crate::registry().histogram("snap.test.hist").record(1000);
        let snap = TelemetrySnapshot::capture();
        assert!(snap.ts_ns > 0);
        assert!(snap.counters.iter().any(|(n, v)| n == "snap.test.counter" && *v >= 5));
        assert!(snap.gauges.iter().any(|(n, v)| n == "snap.test.gauge" && *v == 1.25));
        assert!(snap.hists.iter().any(|(n, h)| n == "snap.test.hist" && h.count >= 1));
    }

    #[test]
    fn json_is_well_formed_and_carries_quantiles() {
        crate::registry().counter("snap.json.counter").inc(2);
        crate::registry().histogram("snap.json.hist").record(500);
        let json = TelemetrySnapshot::capture().to_json();
        assert!(json.starts_with("{\"ts_ns\":"), "{json}");
        assert!(json.contains("\"snap.json.counter\":"), "{json}");
        assert!(json.contains("\"p99\":"), "{json}");
        // Balanced braces — a cheap structural sanity check on the
        // hand-rolled writer.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes, "{json}");
    }

    #[test]
    fn prometheus_exposition_has_types_and_summaries() {
        crate::registry().counter("snap.prom.requests").inc(7);
        crate::registry().histogram("snap.prom.latency_ns").record(123456);
        let text = TelemetrySnapshot::capture().to_prometheus();
        assert!(text.contains("# TYPE irnuma_snap_prom_requests counter"), "{text}");
        assert!(text.contains("irnuma_snap_prom_requests 7"), "{text}");
        assert!(text.contains("# TYPE irnuma_snap_prom_latency_ns summary"), "{text}");
        assert!(text.contains("irnuma_snap_prom_latency_ns{quantile=\"0.99\"}"), "{text}");
        assert!(text.contains("irnuma_snap_prom_latency_ns_count 1"), "{text}");
    }

    #[test]
    fn span_aggregates_appear_when_stats_are_on() {
        crate::set_stats_enabled(true);
        {
            let _s = crate::span!("snap.span.stage");
        }
        crate::set_stats_enabled(false);
        let snap = TelemetrySnapshot::capture();
        let (_, h) = snap
            .spans
            .iter()
            .find(|(n, _)| n == "snap.span.stage")
            .expect("span aggregate recorded");
        assert!(h.count >= 1);
        assert!(snap.to_prometheus().contains("irnuma_span_snap_span_stage"));
    }
}
