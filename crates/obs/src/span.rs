//! Hierarchical wall-clock spans.
//!
//! A [`SpanGuard`] measures from construction to drop and emits one `span`
//! event carrying its duration, a process-unique id, its parent id, and the
//! emitting thread. Nesting is tracked per thread: a new span's parent is
//! the thread's innermost open span. For work fanned out across rayon
//! workers, capture [`current_span`] before the `par_iter` and open children
//! with [`crate::span_under!`] — the child records the captured parent while
//! still stacking correctly on its worker thread.

use crate::sink::{emit, Event};
use crate::value::Value;
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_IDX: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Innermost open span id on this thread (0 = root).
    static CURRENT: Cell<u64> = const { Cell::new(0) };
    /// Small dense per-thread index (ThreadId's integer form is unstable).
    static THREAD_IDX: u64 = NEXT_THREAD_IDX.fetch_add(1, Ordering::Relaxed);
}

/// A capturable reference to an open span (or the root, id 0). `Copy + Send`
/// so it can cross into rayon closures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanCtx(pub u64);

impl SpanCtx {
    /// The root context (no parent span).
    pub const ROOT: SpanCtx = SpanCtx(0);
}

/// The id of this thread's innermost open span.
pub fn current_span() -> SpanCtx {
    CURRENT.with(|c| SpanCtx(c.get()))
}

struct ActiveSpan {
    id: u64,
    parent: u64,
    /// What `CURRENT` must be restored to on drop (differs from `parent`
    /// when the span was adopted across threads via [`SpanGuard::under`]).
    prev: u64,
    name: &'static str,
    fields: Vec<(&'static str, Value)>,
    start: Instant,
    /// Cumulative bytes this thread had allocated when the span opened
    /// (present only while the counting allocator is live) — the drop
    /// attaches the delta as an `alloc_bytes` field.
    alloc_at_open: Option<u64>,
    /// Whether this span pushed a frame onto the thread's profile stack
    /// (profiling may toggle mid-span; only pop what was pushed).
    profiled: bool,
}

/// An open span; emits its event when dropped. Construct through the
/// [`crate::span!`] / [`crate::span_under!`] macros, which skip all work when
/// tracing is disabled.
pub struct SpanGuard {
    inner: Option<ActiveSpan>,
}

impl SpanGuard {
    /// Open a span whose parent is this thread's innermost open span.
    pub fn new(name: &'static str, fields: Vec<(&'static str, Value)>) -> SpanGuard {
        let parent = CURRENT.with(|c| c.get());
        SpanGuard::open(name, fields, parent, parent)
    }

    /// Open a span under an explicitly captured parent (cross-thread
    /// nesting, e.g. inside `par_iter`).
    pub fn under(
        ctx: SpanCtx,
        name: &'static str,
        fields: Vec<(&'static str, Value)>,
    ) -> SpanGuard {
        let prev = CURRENT.with(|c| c.get());
        SpanGuard::open(name, fields, ctx.0, prev)
    }

    fn open(
        name: &'static str,
        fields: Vec<(&'static str, Value)>,
        parent: u64,
        prev: u64,
    ) -> SpanGuard {
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        CURRENT.with(|c| c.set(id));
        let alloc_at_open = crate::alloc::tracking_active().then(crate::alloc::thread_allocated);
        let profiled = crate::profiling_enabled();
        if profiled {
            crate::profile::push_span_frame(name);
        }
        SpanGuard {
            inner: Some(ActiveSpan {
                id,
                parent,
                prev,
                name,
                fields,
                start: Instant::now(),
                alloc_at_open,
                profiled,
            }),
        }
    }

    /// A no-op guard: nothing is recorded or emitted.
    pub fn inert() -> SpanGuard {
        SpanGuard { inner: None }
    }

    /// Attach a field after construction (e.g. a result computed inside the
    /// span, like an epoch's loss).
    pub fn field(&mut self, key: &'static str, value: impl Into<Value>) {
        if let Some(s) = self.inner.as_mut() {
            s.fields.push((key, value.into()));
        }
    }

    /// This span as a parent context for children on other threads
    /// (`SpanCtx::ROOT` if the guard is inert).
    pub fn ctx(&self) -> SpanCtx {
        SpanCtx(self.inner.as_ref().map_or(0, |s| s.id))
    }

    /// Time since the span opened (zero for inert guards).
    pub fn elapsed(&self) -> Duration {
        self.inner.as_ref().map_or(Duration::ZERO, |s| s.start.elapsed())
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(s) = self.inner.take() else { return };
        let dur_ns = u64::try_from(s.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        CURRENT.with(|c| c.set(s.prev));
        if s.profiled {
            crate::profile::pop_span_frame();
        }
        if crate::stats_enabled() {
            crate::registry().span_hist(s.name).record(dur_ns);
        }
        if !crate::trace_enabled() {
            return;
        }
        let mut event = Event::now("span", s.name);
        event.fields = s.fields;
        if let Some(at_open) = s.alloc_at_open {
            let delta = crate::alloc::thread_allocated().saturating_sub(at_open);
            event = event.field("alloc_bytes", delta);
        }
        let thread = THREAD_IDX.with(|t| *t);
        event = event
            .field("span", s.id)
            .field("parent", s.parent)
            .field("thread", thread)
            .field("dur_ns", dur_ns);
        emit(&event);
    }
}

/// Run `f` inside a span named `name`, returning its result and the measured
/// wall time in seconds. The duration is measured (and returned) even when
/// tracing is disabled, so callers can use it for their own reporting.
pub fn timed<T>(name: &'static str, f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let guard = if crate::telemetry_enabled() {
        SpanGuard::new(name, Vec::new())
    } else {
        SpanGuard::inert()
    };
    let out = f();
    drop(guard);
    (out, start.elapsed().as_secs_f64())
}
