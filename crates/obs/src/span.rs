//! Hierarchical wall-clock spans with causal identity.
//!
//! A [`SpanGuard`] measures from construction to drop and emits one `span`
//! event carrying its duration, its [`crate::TraceContext`] identity
//! (`trace_id`/`span_id`/`parent_id`), and the emitting thread. Nesting is
//! tracked per thread: a new span's parent is the thread's innermost open
//! span, and it inherits that span's trace id; a span opened with no
//! ancestor starts a fresh trace. For work fanned out across rayon workers,
//! capture the context before the `par_iter` ([`SpanGuard::ctx`] or
//! [`crate::TraceContext::capture`]) and either attach it
//! ([`crate::TraceContext::attach`]) or open children directly with
//! [`crate::span_under!`] / [`crate::span_fanout!`] — the child records the
//! captured parent and trace while still stacking correctly on its worker
//! thread.

use crate::context::{self, TraceContext};
use crate::sink::{emit, Event};
use crate::value::Value;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_IDX: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Small dense per-thread index (ThreadId's integer form is unstable).
    static THREAD_IDX: u64 = NEXT_THREAD_IDX.fetch_add(1, Ordering::Relaxed);
}

/// The context of this thread's innermost open span
/// ([`TraceContext::NONE`] at top level).
pub fn current_span() -> TraceContext {
    context::current()
}

struct ActiveSpan {
    trace: u64,
    id: u64,
    parent: u64,
    /// What the thread context must be restored to on drop (differs from
    /// `parent` when the span was adopted across threads via
    /// [`SpanGuard::under`]).
    prev: TraceContext,
    name: &'static str,
    fields: Vec<(&'static str, Value)>,
    start: Instant,
    /// Cumulative bytes this thread had allocated when the span opened
    /// (present only while the counting allocator is live) — the drop
    /// attaches the delta as an `alloc_bytes` field.
    alloc_at_open: Option<u64>,
    /// Whether this span pushed a frame onto the thread's profile stack
    /// (profiling may toggle mid-span; only pop what was pushed).
    profiled: bool,
    /// A [`SpanGuard::detached`] span: it never touched this (or any)
    /// thread's context stack, so the drop must not restore `prev` — the
    /// guard may be dropped on a different thread than it was opened on,
    /// and restoring there would corrupt that thread's context.
    detached: bool,
}

/// An open span; emits its event when dropped. Construct through the
/// [`crate::span!`] / [`crate::span_under!`] macros, which skip all work when
/// tracing is disabled.
pub struct SpanGuard {
    inner: Option<ActiveSpan>,
}

impl SpanGuard {
    /// Open a span whose parent is this thread's innermost open span
    /// (starting a fresh trace when there is none).
    pub fn new(name: &'static str, fields: Vec<(&'static str, Value)>) -> SpanGuard {
        let cur = context::current();
        SpanGuard::open(name, fields, cur, cur)
    }

    /// Open a span under an explicitly captured parent context
    /// (cross-thread nesting, e.g. inside `par_iter`).
    pub fn under(
        ctx: TraceContext,
        name: &'static str,
        fields: Vec<(&'static str, Value)>,
    ) -> SpanGuard {
        let prev = context::current();
        SpanGuard::open(name, fields, ctx, prev)
    }

    fn open(
        name: &'static str,
        fields: Vec<(&'static str, Value)>,
        parent: TraceContext,
        prev: TraceContext,
    ) -> SpanGuard {
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        // No open ancestor and no adopted context: this span roots a new
        // trace; otherwise it inherits the parent's trace id.
        let trace = if parent.trace_id != 0 { parent.trace_id } else { context::fresh_trace_id() };
        context::restore(TraceContext { trace_id: trace, span_id: id });
        let alloc_at_open = crate::alloc::tracking_active().then(crate::alloc::thread_allocated);
        let profiled = crate::profiling_enabled();
        if profiled {
            crate::profile::push_span_frame(name);
        }
        SpanGuard {
            inner: Some(ActiveSpan {
                trace,
                id,
                parent: parent.span_id,
                prev,
                name,
                fields,
                start: Instant::now(),
                alloc_at_open,
                profiled,
                detached: false,
            }),
        }
    }

    /// Open a **detached** root span: it starts a fresh trace, is never
    /// installed on any thread's context stack, and is therefore safe to
    /// move across threads and drop wherever the work it measures finishes
    /// — the lifecycle of a served request, which is parsed on a reader
    /// thread, queued, and completed on a batch worker. A regular guard
    /// must drop on its opening thread (its drop restores that thread's
    /// context); a detached guard has nothing to restore. It still emits a
    /// `span` event (parent 0 ⇒ a forest root in `trace analyze`) and
    /// feeds the per-span-name latency aggregates; children on any thread
    /// hang off [`SpanGuard::ctx`] via [`crate::span_under!`] /
    /// [`crate::span_fanout!`]. Returns an inert guard when telemetry is
    /// off, like the macros.
    pub fn detached(name: &'static str, fields: Vec<(&'static str, Value)>) -> SpanGuard {
        if !crate::telemetry_enabled() {
            return SpanGuard::inert();
        }
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        SpanGuard {
            inner: Some(ActiveSpan {
                trace: context::fresh_trace_id(),
                id,
                parent: 0,
                prev: TraceContext::NONE,
                name,
                fields,
                start: Instant::now(),
                // Thread-bound bookkeeping (allocation deltas, the profile
                // stack) is skipped: open and drop may be different threads.
                alloc_at_open: None,
                profiled: false,
                detached: true,
            }),
        }
    }

    /// A no-op guard: nothing is recorded or emitted.
    pub fn inert() -> SpanGuard {
        SpanGuard { inner: None }
    }

    /// Attach a field after construction (e.g. a result computed inside the
    /// span, like an epoch's loss).
    pub fn field(&mut self, key: &'static str, value: impl Into<Value>) {
        if let Some(s) = self.inner.as_mut() {
            s.fields.push((key, value.into()));
        }
    }

    /// This span as a parent context for children on other threads
    /// ([`TraceContext::NONE`] if the guard is inert).
    pub fn ctx(&self) -> TraceContext {
        self.inner
            .as_ref()
            .map_or(TraceContext::NONE, |s| TraceContext { trace_id: s.trace, span_id: s.id })
    }

    /// Time since the span opened (zero for inert guards).
    pub fn elapsed(&self) -> Duration {
        self.inner.as_ref().map_or(Duration::ZERO, |s| s.start.elapsed())
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(s) = self.inner.take() else { return };
        let dur_ns = u64::try_from(s.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        if !s.detached {
            context::restore(s.prev);
        }
        if s.profiled {
            crate::profile::pop_span_frame();
        }
        if crate::stats_enabled() {
            crate::registry().span_hist(s.name).record(dur_ns);
        }
        if !crate::trace_enabled() {
            return;
        }
        let mut event = Event::now("span", s.name);
        event.fields = s.fields;
        if let Some(at_open) = s.alloc_at_open {
            let delta = crate::alloc::thread_allocated().saturating_sub(at_open);
            event = event.field("alloc_bytes", delta);
        }
        let thread = THREAD_IDX.with(|t| *t);
        // `span`/`parent` are the legacy field names; `trace_id`/`span_id`/
        // `parent_id` are the causal-tracing schema. Both are emitted so
        // pre-causal consumers keep working (additive schema change).
        event = event
            .field("span", s.id)
            .field("parent", s.parent)
            .field("trace_id", s.trace)
            .field("span_id", s.id)
            .field("parent_id", s.parent)
            .field("thread", thread)
            .field("dur_ns", dur_ns);
        emit(&event);
    }
}

/// Run `f` inside a span named `name`, returning its result and the measured
/// wall time in seconds. The duration is measured (and returned) even when
/// tracing is disabled, so callers can use it for their own reporting.
pub fn timed<T>(name: &'static str, f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let guard = if crate::telemetry_enabled() {
        SpanGuard::new(name, Vec::new())
    } else {
        SpanGuard::inert()
    };
    let out = f();
    drop(guard);
    (out, start.elapsed().as_secs_f64())
}
