//! Span forest reconstruction and causal analysis.
//!
//! A trace is a flat stream of `span` events; this module rebuilds the
//! hierarchy ([`SpanForest::build`]) and answers the questions a flat
//! per-name table cannot:
//!
//! * **critical path** ([`SpanForest::critical_path`]) — the longest causal
//!   chain through a root span's subtree, walked backwards from the root's
//!   end time through whichever child finished last. Every nanosecond of
//!   the root's wall-clock is attributed to exactly one span on the chain,
//!   so the segment durations sum to the root's duration exactly;
//! * **parallelism efficiency** ([`SpanForest::subtree_stats`]) — total
//!   busy work across the subtree versus `wall × workers`;
//! * **queue vs compute** — self-time of spans that have children (time a
//!   batched stage spent *not* covered by its workers: queueing, packing,
//!   reducing) versus leaf compute time.
//!
//! The input [`SpanRecord`]s can come from an in-memory [`crate::Event`]
//! stream (tests) or a parsed JSONL trace (the `irnuma trace` CLI, which
//! owns the JSON parsing — this crate stays dependency-free).

use crate::sink::Event;
use crate::value::Value;

/// One completed span, in reconstruction-friendly form. `start_ns` is
/// derived from the emission timestamp minus the duration (span events are
/// emitted at close time).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    pub trace_id: u64,
    pub span_id: u64,
    /// 0 = root (no parent).
    pub parent_id: u64,
    pub thread: u64,
    pub name: String,
    pub start_ns: u64,
    pub dur_ns: u64,
    /// Remaining structured fields, stringified (carried into Perfetto
    /// `args`; not interpreted here).
    pub args: Vec<(String, String)>,
}

impl SpanRecord {
    /// End timestamp (saturating).
    pub fn end_ns(&self) -> u64 {
        self.start_ns.saturating_add(self.dur_ns)
    }

    /// Convert an emitted `span` [`Event`] (e.g. from a
    /// [`crate::MemorySink`]) into a record. Returns `None` for non-span
    /// events or spans missing the causal fields.
    pub fn from_event(e: &Event) -> Option<SpanRecord> {
        if e.kind != "span" {
            return None;
        }
        let u64_field = |key: &str| match e.get(key) {
            Some(&Value::U64(v)) => Some(v),
            Some(&Value::I64(v)) => u64::try_from(v).ok(),
            _ => None,
        };
        let dur_ns = u64_field("dur_ns")?;
        let span_id = u64_field("span_id").or_else(|| u64_field("span"))?;
        let parent_id = u64_field("parent_id").or_else(|| u64_field("parent")).unwrap_or(0);
        const CAUSAL_KEYS: [&str; 7] =
            ["span", "parent", "trace_id", "span_id", "parent_id", "thread", "dur_ns"];
        let args = e
            .fields
            .iter()
            .filter(|(k, _)| !CAUSAL_KEYS.contains(k))
            .map(|(k, v)| {
                let mut s = String::new();
                v.write_json(&mut s);
                (k.to_string(), s.trim_matches('"').to_string())
            })
            .collect();
        Some(SpanRecord {
            trace_id: u64_field("trace_id").unwrap_or(0),
            span_id,
            parent_id,
            thread: u64_field("thread").unwrap_or(0),
            name: e.name.clone(),
            start_ns: e.ts_ns.saturating_sub(dur_ns),
            dur_ns,
            args,
        })
    }
}

/// Aggregate timing of one span's subtree.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SubtreeStats {
    /// The root span's own duration.
    pub wall_ns: u64,
    /// Σ exclusive busy time over every span in the subtree (a span's
    /// duration minus the union of its children's intervals). Exceeds
    /// `wall_ns` when work ran in parallel.
    pub work_ns: u64,
    /// Σ duration over leaf spans — the actual compute.
    pub compute_ns: u64,
    /// Σ self-time over non-leaf spans — fan-out overhead, queueing,
    /// packing, reduction: everything a batched stage did around its
    /// workers.
    pub queue_ns: u64,
    /// Distinct thread ids observed in the subtree.
    pub workers: usize,
    /// Number of spans in the subtree (including the root).
    pub spans: usize,
    /// Parallelism efficiency: `work / (wall × workers)` in `[0, 1]`.
    pub efficiency: f64,
}

/// One segment of a critical path: `self_ns` nanoseconds attributed to the
/// span at `index`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathSegment {
    pub index: usize,
    pub self_ns: u64,
}

/// The reconstructed hierarchy of one trace file (possibly holding many
/// traces).
#[derive(Debug, Clone, Default)]
pub struct SpanForest {
    pub spans: Vec<SpanRecord>,
    /// Children of each span, sorted by start time.
    children: Vec<Vec<usize>>,
    /// Indices of true roots: spans with `parent_id == 0`.
    pub roots: Vec<usize>,
    /// Indices of orphans: spans whose parent id never appears in the
    /// trace (truncated file, missing propagation). Treated as extra roots
    /// for traversal, but counted so `trace analyze` can flag them.
    pub orphans: Vec<usize>,
}

impl SpanForest {
    /// Reconstruct the forest. Spans with duplicate ids keep the first
    /// occurrence as the parent-link target (ids are process-unique in
    /// practice; duplicates only arise from corrupted traces).
    pub fn build(spans: Vec<SpanRecord>) -> SpanForest {
        let mut by_id = std::collections::HashMap::with_capacity(spans.len());
        for (i, s) in spans.iter().enumerate() {
            by_id.entry(s.span_id).or_insert(i);
        }
        let mut children = vec![Vec::new(); spans.len()];
        let mut roots = Vec::new();
        let mut orphans = Vec::new();
        for (i, s) in spans.iter().enumerate() {
            if s.parent_id == 0 {
                roots.push(i);
            } else {
                match by_id.get(&s.parent_id) {
                    Some(&p) if p != i => children[p].push(i),
                    _ => orphans.push(i),
                }
            }
        }
        for c in &mut children {
            c.sort_by_key(|&i| (spans[i].start_ns, spans[i].span_id));
        }
        let key = |&i: &usize| (spans[i].start_ns, spans[i].span_id);
        roots.sort_by_key(key);
        orphans.sort_by_key(key);
        SpanForest { spans, children, roots, orphans }
    }

    /// Direct children of span `i`, sorted by start time.
    pub fn children(&self, i: usize) -> &[usize] {
        &self.children[i]
    }

    /// Indices of every span in `i`'s subtree (preorder, `i` first).
    pub fn subtree(&self, i: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack = vec![i];
        while let Some(n) = stack.pop() {
            out.push(n);
            stack.extend(self.children[n].iter().rev());
        }
        out
    }

    /// Exclusive busy time of span `i`: its duration minus the union of its
    /// children's intervals (clamped inside the span).
    pub fn self_ns(&self, i: usize) -> u64 {
        let s = &self.spans[i];
        let covered = interval_union_within(
            self.children[i].iter().map(|&c| (self.spans[c].start_ns, self.spans[c].end_ns())),
            s.start_ns,
            s.end_ns(),
        );
        s.dur_ns.saturating_sub(covered)
    }

    /// Aggregate timing of span `i`'s subtree (see [`SubtreeStats`]).
    pub fn subtree_stats(&self, i: usize) -> SubtreeStats {
        let mut stats = SubtreeStats { wall_ns: self.spans[i].dur_ns, ..Default::default() };
        let mut threads = std::collections::HashSet::new();
        for n in self.subtree(i) {
            stats.spans += 1;
            threads.insert(self.spans[n].thread);
            let self_ns = self.self_ns(n);
            stats.work_ns += self_ns;
            if self.children[n].is_empty() {
                stats.compute_ns += self.spans[n].dur_ns;
            } else {
                stats.queue_ns += self_ns;
            }
        }
        stats.workers = threads.len().max(1);
        let denom = stats.wall_ns.saturating_mul(stats.workers as u64);
        stats.efficiency = if denom == 0 { 0.0 } else { stats.work_ns as f64 / denom as f64 };
        stats
    }

    /// The critical path through span `i`'s subtree: walk backwards from
    /// the span's end, descending into whichever child finished last, until
    /// the span's start is reached. Returns contiguous segments whose
    /// durations sum to exactly `spans[i].dur_ns` (children are clamped to
    /// their parent's interval, so clock skew cannot break the invariant).
    pub fn critical_path(&self, i: usize) -> Vec<PathSegment> {
        let mut out = Vec::new();
        let s = &self.spans[i];
        self.walk_critical(i, s.start_ns, s.end_ns(), &mut out);
        out.reverse(); // built back-to-front; return in chronological order
        out
    }

    fn walk_critical(&self, i: usize, ws: u64, we: u64, out: &mut Vec<PathSegment>) {
        let mut cursor = we;
        // Children by end time, descending: the last finisher bounds the
        // parent's completion, then recursively the last finisher before
        // that child started, and so on.
        let mut kids: Vec<usize> = self.children[i].to_vec();
        kids.sort_by_key(|&k| (self.spans[k].end_ns(), self.spans[k].span_id));
        for &k in kids.iter().rev() {
            if cursor <= ws {
                break;
            }
            let ks = self.spans[k].start_ns.clamp(ws, we);
            let ke = self.spans[k].end_ns().clamp(ws, we);
            if ke <= ws || ks >= cursor {
                // Entirely before the window, or concurrent with a segment
                // already attributed: not on the path.
                continue;
            }
            let ke = ke.min(cursor);
            if ke < cursor {
                // Gap between this child's end and the path so far: the
                // parent itself was busy (reduction, bookkeeping).
                out.push(PathSegment { index: i, self_ns: cursor - ke });
            }
            self.walk_critical(k, ks, ke, out);
            cursor = ks;
        }
        if cursor > ws {
            out.push(PathSegment { index: i, self_ns: cursor - ws });
        }
    }
}

/// Total length of the union of `intervals` clamped to `[lo, hi]`.
fn interval_union_within(intervals: impl Iterator<Item = (u64, u64)>, lo: u64, hi: u64) -> u64 {
    let mut clamped: Vec<(u64, u64)> =
        intervals.map(|(s, e)| (s.clamp(lo, hi), e.clamp(lo, hi))).filter(|(s, e)| e > s).collect();
    clamped.sort_unstable();
    let mut total = 0u64;
    let mut cur: Option<(u64, u64)> = None;
    for (s, e) in clamped {
        match cur {
            Some((cs, ce)) if s <= ce => cur = Some((cs, ce.max(e))),
            Some((cs, ce)) => {
                total += ce - cs;
                cur = Some((s, e));
                let _ = cs;
            }
            None => cur = Some((s, e)),
        }
    }
    if let Some((cs, ce)) = cur {
        total += ce - cs;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(
        span_id: u64,
        parent_id: u64,
        thread: u64,
        name: &str,
        start: u64,
        dur: u64,
    ) -> SpanRecord {
        SpanRecord {
            trace_id: 1,
            span_id,
            parent_id,
            thread,
            name: name.into(),
            start_ns: start,
            dur_ns: dur,
            args: Vec::new(),
        }
    }

    /// root [0,100) with two parallel children a [10,60) and b [20,90):
    /// walking back from 100, b bounds completion until its start (20),
    /// then a is the last finisher over [10,20), then the root's own head
    /// [0,10): 10 + 70 + 10 + 10 = 100.
    #[test]
    fn critical_path_picks_the_last_finisher() {
        let f = SpanForest::build(vec![
            rec(1, 0, 1, "root", 0, 100),
            rec(2, 1, 2, "a", 10, 50),
            rec(3, 1, 3, "b", 20, 70),
        ]);
        assert_eq!(f.roots, vec![0]);
        assert!(f.orphans.is_empty());
        let path = f.critical_path(0);
        let total: u64 = path.iter().map(|p| p.self_ns).sum();
        assert_eq!(total, 100, "path sums to the root wall-clock");
        let by_name: Vec<(&str, u64)> =
            path.iter().map(|p| (f.spans[p.index].name.as_str(), p.self_ns)).collect();
        assert_eq!(by_name, vec![("root", 10), ("a", 10), ("b", 70), ("root", 10)]);
    }

    #[test]
    fn nested_chains_recurse() {
        // root [0,100) -> child [10,90) -> grandchild [20,80).
        let f = SpanForest::build(vec![
            rec(1, 0, 1, "root", 0, 100),
            rec(2, 1, 1, "child", 10, 80),
            rec(3, 2, 1, "grand", 20, 60),
        ]);
        let path = f.critical_path(0);
        let total: u64 = path.iter().map(|p| p.self_ns).sum();
        assert_eq!(total, 100);
        let by_name: Vec<(&str, u64)> =
            path.iter().map(|p| (f.spans[p.index].name.as_str(), p.self_ns)).collect();
        assert_eq!(
            by_name,
            vec![("root", 10), ("child", 10), ("grand", 60), ("child", 10), ("root", 10)]
        );
    }

    #[test]
    fn subtree_stats_measure_parallelism() {
        // root [0,100) with two workers fully parallel on separate threads.
        let f = SpanForest::build(vec![
            rec(1, 0, 1, "root", 0, 100),
            rec(2, 1, 2, "w", 0, 100),
            rec(3, 1, 3, "w", 0, 100),
        ]);
        let st = f.subtree_stats(0);
        assert_eq!(st.wall_ns, 100);
        assert_eq!(st.compute_ns, 200);
        assert_eq!(st.work_ns, 200, "root fully covered by children: zero self time");
        assert_eq!(st.queue_ns, 0);
        assert_eq!(st.workers, 3);
        assert!((st.efficiency - 200.0 / 300.0).abs() < 1e-9);
    }

    #[test]
    fn queue_time_is_uncovered_parent_self_time() {
        // Batch [0,100): workers cover [20,90) in parallel; 30ns of queue.
        let f = SpanForest::build(vec![
            rec(1, 0, 1, "batch", 0, 100),
            rec(2, 1, 2, "w", 20, 70),
            rec(3, 1, 3, "w", 20, 70),
        ]);
        let st = f.subtree_stats(0);
        assert_eq!(st.queue_ns, 30);
        assert_eq!(st.compute_ns, 140);
    }

    #[test]
    fn orphans_are_detected() {
        let f = SpanForest::build(vec![rec(2, 99, 1, "lost", 0, 10), rec(1, 0, 1, "root", 0, 5)]);
        assert_eq!(f.roots.len(), 1);
        assert_eq!(f.orphans.len(), 1);
        assert_eq!(f.spans[f.orphans[0]].name, "lost");
    }

    #[test]
    fn children_clamp_to_parent_interval() {
        // Child claims to end after its parent (clock skew): the path still
        // sums exactly to the parent duration.
        let f = SpanForest::build(vec![rec(1, 0, 1, "root", 0, 100), rec(2, 1, 2, "w", 50, 80)]);
        let total: u64 = f.critical_path(0).iter().map(|p| p.self_ns).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn record_round_trips_from_event() {
        let e = Event::now("span", "stage")
            .field("epoch", 3u64)
            .field("span", 7u64)
            .field("parent", 2u64)
            .field("trace_id", 42u64)
            .field("span_id", 7u64)
            .field("parent_id", 2u64)
            .field("thread", 5u64)
            .field("dur_ns", 1000u64);
        let r = SpanRecord::from_event(&e).unwrap();
        assert_eq!((r.trace_id, r.span_id, r.parent_id, r.thread), (42, 7, 2, 5));
        assert_eq!(r.dur_ns, 1000);
        assert_eq!(r.end_ns(), e.ts_ns);
        assert_eq!(r.args, vec![("epoch".to_string(), "3".to_string())]);
        assert!(SpanRecord::from_event(&Event::now("counter", "x")).is_none());
    }
}
