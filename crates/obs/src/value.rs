//! Structured field values and the hand-rolled JSON writer.
//!
//! The crate is intentionally dependency-free, so events serialize through
//! this module instead of serde. The emitted subset of JSON is small enough
//! to be obviously correct: objects with string keys, strings, booleans,
//! integers, and finite floats (non-finite floats degrade to `null`).

use std::fmt::Write as _;

/// One structured field value attached to an event or span.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    I64(i64),
    U64(u64),
    F64(f64),
    Bool(bool),
    Str(String),
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Value {
        Value::I64(v as i64)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::U64(v as u64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::F64(v as f64)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

impl Value {
    /// Append this value as JSON.
    pub fn write_json(&self, out: &mut String) {
        match self {
            Value::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::F64(v) if v.is_finite() => {
                let _ = write!(out, "{v}");
            }
            Value::F64(_) => out.push_str("null"),
            Value::Bool(v) => {
                let _ = write!(out, "{v}");
            }
            Value::Str(s) => write_json_string(s, out),
        }
    }
}

/// Append `s` as a JSON string literal (quoted, escaped).
pub fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn json(v: Value) -> String {
        let mut s = String::new();
        v.write_json(&mut s);
        s
    }

    #[test]
    fn scalars_serialize() {
        assert_eq!(json(Value::from(-3i64)), "-3");
        assert_eq!(json(Value::from(7usize)), "7");
        assert_eq!(json(Value::from(1.5f64)), "1.5");
        assert_eq!(json(Value::from(true)), "true");
        assert_eq!(json(Value::from(f64::NAN)), "null");
        assert_eq!(json(Value::from(f64::INFINITY)), "null");
    }

    #[test]
    fn strings_escape_controls_and_quotes() {
        assert_eq!(json(Value::from("a\"b\\c\nd\te")), r#""a\"b\\c\nd\te""#);
        assert_eq!(json(Value::from("\u{1}")), "\"\\u0001\"");
        assert_eq!(json(Value::from("héllo")), "\"héllo\"");
    }
}
