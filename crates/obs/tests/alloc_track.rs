//! End-to-end allocation accounting with `CountingAlloc` actually installed
//! as the global allocator — mirrors what the CLI binary does under its
//! `alloc-track` feature. Run with:
//!
//! ```text
//! cargo test -p irnuma-obs --features alloc-track --test alloc_track
//! ```

#![cfg(feature = "alloc-track")]

use irnuma_obs::alloc::{self, CountingAlloc};
use irnuma_obs::{clear_sink, set_sink, span, Event, MemorySink, Value};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

#[test]
fn installed_allocator_counts_and_feeds_span_deltas() {
    // The test harness itself allocates long before this runs, so the
    // installed allocator is detectable without any setup.
    assert!(alloc::tracking_active());
    assert!(alloc::alloc_calls() > 0);
    assert!(alloc::total_allocated() > 0);

    // A fresh allocation moves every figure.
    let (t0, th0) = (alloc::total_allocated(), alloc::thread_allocated());
    let buf = vec![0u8; 1 << 20];
    assert!(alloc::total_allocated() >= t0 + (1 << 20));
    assert!(alloc::thread_allocated() >= th0 + (1 << 20));
    assert!(alloc::peak_bytes() >= 1 << 20);
    assert!(alloc::live_bytes() >= 1 << 20);
    drop(buf);

    // Gauges publish on refresh.
    alloc::refresh_mem_gauges();
    let snap = irnuma_obs::TelemetrySnapshot::capture();
    let gauge = |name: &str| {
        snap.gauges
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("{name} missing: {:?}", snap.gauges))
            .1
    };
    assert!(gauge("mem.alloc_bytes") > 0.0);
    assert!(gauge("mem.peak_bytes") >= gauge("mem.live_bytes"));

    // Spans attach per-thread allocation deltas to their trace events.
    let sink = MemorySink::new();
    set_sink(sink.clone());
    {
        let _s = span!("alloc.test.stage");
        let held = vec![0u8; 4096];
        std::hint::black_box(&held);
    }
    clear_sink();
    let events: Vec<Event> = sink.events();
    let e = events.iter().find(|e| e.name == "alloc.test.stage").expect("span event emitted");
    match e.get("alloc_bytes") {
        Some(&Value::U64(v)) => assert!(v >= 4096, "span saw its own allocations: {v}"),
        other => panic!("alloc_bytes field: {other:?} in {e:?}"),
    }
}
